"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index), asserts its headline *shape* claims, and writes the
paper-style rows to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.

The runs are deterministic simulations, so each experiment executes exactly
once (``benchmark.pedantic(rounds=1)``); the pytest-benchmark timing then
reports the harness wall time.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
