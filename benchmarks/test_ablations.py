"""Ablation benchmarks for DQEMU's design choices (beyond the paper's own
evaluation — these quantify the §4/§5 design decisions DESIGN.md calls out).
"""

from benchmarks.conftest import run_once
from repro.analysis.ablations import (
    ablate_dsm_service,
    ablate_forwarding_window,
    ablate_quantum,
    ablate_splitting_trigger,
)


def test_ablation_forwarding_window(benchmark, record_result):
    result = run_once(benchmark, ablate_forwarding_window)
    record_result("ablation_forwarding_window", result.render())
    mbps = result.column(1)
    # Forwarding off is worst; bandwidth grows monotonically-ish with the cap.
    assert mbps[0] == min(mbps)
    assert max(mbps) > 4 * mbps[0]


def test_ablation_splitting_trigger(benchmark, record_result):
    result = run_once(benchmark, ablate_splitting_trigger)
    record_result("ablation_splitting_trigger", result.render())
    mbps = result.column(1)
    splits = result.column(2)
    # Reachable triggers split and beat the never-split configuration.
    assert splits[0] >= 1
    assert splits[1] >= 1  # the paper's trigger=10 fires too
    assert splits[-1] == 0
    assert mbps[0] > 1.5 * mbps[-1]
    assert mbps[1] > 1.5 * mbps[-1]


def test_ablation_quantum(benchmark, record_result):
    result = run_once(benchmark, ablate_quantum)
    record_result("ablation_quantum", result.render())
    times = result.column(1)
    # Coarse quanta batch whole critical-section bursts per page hold, so the
    # contended lock finishes sooner but with less interleaving fidelity; the
    # sweep must at least show a consistent, strong effect of the knob.
    assert max(times) > 1.5 * min(times)


def test_ablation_dsm_service(benchmark, record_result):
    result = run_once(benchmark, ablate_dsm_service)
    record_result("ablation_dsm_service", result.render())
    lat = result.column(1)
    # Fault latency tracks the master's protocol software cost ~affinely —
    # the paper's point that the 410 us >> 40 us wire bound is software.
    assert lat[0] < lat[-1]
    assert lat[-1] - lat[0] > 400  # ~ (640-40)us of added service, visible
