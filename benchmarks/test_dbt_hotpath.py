"""DBT hot-path experiment: chaining + trace superblocks + idiom fusion.

``test_dbt_hotpath`` runs a PARSEC-stand-in mix on the same fleet shape
under three DBT configurations — ``nochain`` (every dispatch is a
code-cache lookup), ``baseline`` (block chaining, the default), and
``hotpath`` (chaining plus superblock promotion and idiom fusion) — and
measures what each tier of the hot path buys: code-cache lookups and
dispatches per thousand executed instructions, the fig8-style
execute/translate cycle split, superblocks formed, per-pattern fusion
hits, and the virtual cycles the cheaper superblock CPI / fused idioms
avoided.  Architectural identity is asserted alongside the numbers:
computed stdout must be byte-identical across all three configs
(mutex_bench prints virtual-time measurements, so only its exit code is
compared).

The headline column is ``dbt_cpi`` — total DBT cycles (execute +
translate) per executed guest instruction.  Loop-heavy workloads
(pi_taylor, x264) amortize trace compilation and come out ahead; the
short blackscholes run shows the honest flip side, where one-off
translation dominates and superblocks don't pay.

Writes the drift-checked table (``benchmarks/results/dbt_hotpath.txt``)
plus machine-readable ``benchmarks/results/BENCH_dbt.json`` CI consumes.
Deterministic simulation: both artifacts regenerate bit-identically.

``test_dbt_hotpath_smoke`` is the CI smoke run, parameterized by the
``DQEMU_SMOKE_SUPERBLOCKS`` environment variable (the workflow runs it at
0 and 8).  It deliberately does not use the benchmark fixture, so the main
benchmarks job (``--benchmark-only``) skips it.
"""

import json
import os

from benchmarks.conftest import RESULTS_DIR, run_once
from repro import Cluster, DQEMUConfig
from repro.workloads import blackscholes, mutex_bench, pi_taylor, x264

N_SLAVES = 2
SUPERBLOCK_THRESHOLD = 8
CONFIG_NAMES = ("nochain", "baseline", "hotpath")


def _workloads():
    """(name, program, timing_dependent_stdout)."""
    return [
        ("blackscholes", blackscholes.build(n_threads=4, n_options=16), False),
        ("mutex_bench", mutex_bench.build(n_threads=4, iters=40), True),
        ("pi_taylor", pi_taylor.build(n_threads=8, terms=400, reps=4), False),
        ("x264", x264.build(n_frames=32, group_size=4, pages_per_frame=1), False),
    ]


def _configs():
    return {
        "nochain": DQEMUConfig(chaining_enabled=False),
        "baseline": DQEMUConfig(),
        "hotpath": DQEMUConfig(
            superblock_threshold=SUPERBLOCK_THRESHOLD, fusion_enabled=True
        ),
    }


def _measure(config, program):
    cluster = Cluster(N_SLAVES, config)
    result = cluster.run(program, max_virtual_ms=10_000)
    d = result.stats.dbt
    insns = result.stats.insns_executed
    dbt_cycles = d.execute_cycles + d.translate_cycles
    return {
        "exit_code": result.exit_code,
        "stdout": result.stdout,
        "virt_ms": result.virtual_ns / 1e6,
        "insns": insns,
        "lookups_per_kinsn": d.lookups * 1e3 / insns,
        "dispatches_per_kinsn": d.dispatches * 1e3 / insns,
        "lookup_hit_rate": d.lookup_hit_rate,
        "chain_follows": d.chain_follows,
        "translate_share": d.translate_cycles / dbt_cycles if dbt_cycles else 0.0,
        "dbt_cpi": dbt_cycles / insns if insns else 0.0,
        "superblocks_formed": d.superblocks_formed,
        "fusion_hits": dict(sorted(d.fusion_hits.items())),
        "superblock_saved_cycles": d.superblock_saved_cycles,
        "fusion_saved_cycles": d.fusion_saved_cycles,
    }


def run_dbt_hotpath():
    configs = _configs()
    rows = []
    for name, program, timing_dependent in _workloads():
        row = {"workload": name}
        for cfg_name, cfg in configs.items():
            row[cfg_name] = _measure(cfg, program)
        ref = row["baseline"]
        row["identical_output"] = all(
            row[c]["exit_code"] == ref["exit_code"]
            and (timing_dependent or row[c]["stdout"] == ref["stdout"])
            for c in CONFIG_NAMES
        )
        # stdout is an identity check, not a reportable metric; keep the
        # JSON artifact small and byte-stable.
        for c in CONFIG_NAMES:
            row[c].pop("stdout")
        rows.append(row)
    return rows


def render_dbt(rows) -> str:
    lines = [
        "dbt hot path: lookups (nochain) -> chaining (baseline) -> "
        f"superblocks+fusion (hotpath, threshold={SUPERBLOCK_THRESHOLD}; "
        f"{N_SLAVES} slaves)",
        f"{'workload':>12} | {'config':>8} | {'lookups/ki':>10} | "
        f"{'disp/ki':>8} | {'dbt_cpi':>7} | {'tx share':>8} | "
        f"{'sblocks':>7} | {'fuse hits':>9} | {'saved cyc':>9}",
    ]
    lines.append("-" * len(lines[1]))
    for row in rows:
        for cfg_name in CONFIG_NAMES:
            cell = row[cfg_name]
            saved = cell["superblock_saved_cycles"] + cell["fusion_saved_cycles"]
            lines.append(
                f"{row['workload']:>12} | {cfg_name:>8} | "
                f"{cell['lookups_per_kinsn']:>10.3f} | "
                f"{cell['dispatches_per_kinsn']:>8.3f} | "
                f"{cell['dbt_cpi']:>7.3f} | "
                f"{cell['translate_share']:>8.4f} | "
                f"{cell['superblocks_formed']:>7} | "
                f"{sum(cell['fusion_hits'].values()):>9} | {saved:>9.0f}"
            )
    return "\n".join(lines)


def test_dbt_hotpath(benchmark, record_result):
    rows = run_once(benchmark, run_dbt_hotpath)
    record_result("dbt_hotpath", render_dbt(rows))
    (RESULTS_DIR / "BENCH_dbt.json").write_text(
        json.dumps(
            {
                "experiment": "dbt_hotpath",
                "n_slaves": N_SLAVES,
                "superblock_threshold": SUPERBLOCK_THRESHOLD,
                "rows": rows,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    by_name = {row["workload"]: row for row in rows}
    for row in rows:
        nochain, base, hot = row["nochain"], row["baseline"], row["hotpath"]
        # Architectural identity: the hot path changes timing, never results.
        assert row["identical_output"], row["workload"]
        assert all(row[c]["exit_code"] == 0 for c in CONFIG_NAMES)
        # Only the hot path forms superblocks or fuses idioms.
        for cell in (nochain, base):
            assert cell["superblocks_formed"] == 0 and not cell["fusion_hits"]
        # Chaining tier: slow-path lookups per executed instruction drop
        # measurably once dispatch rides direct block references.
        assert nochain["chain_follows"] == 0
        assert base["lookups_per_kinsn"] < 0.7 * nochain["lookups_per_kinsn"]
        # Superblock tier: one trace dispatch covers many blocks, so total
        # dispatches per instruction drop again.
        assert hot["dispatches_per_kinsn"] < base["dispatches_per_kinsn"]
    # Loop-heavy workloads promote traces, bank real cycle savings, and the
    # cheaper superblock CPI beats the trace-compilation cost end to end.
    for name in ("pi_taylor", "x264"):
        base, hot = by_name[name]["baseline"], by_name[name]["hotpath"]
        assert hot["superblocks_formed"] > 0
        assert hot["superblock_saved_cycles"] > 0
        assert hot["dbt_cpi"] < base["dbt_cpi"]
    # Each fusion pattern fires somewhere in the mix: the spinlock idiom in
    # mutex_bench, the load+op idiom in x264's pixel loops.
    assert by_name["mutex_bench"]["hotpath"]["fusion_hits"].get("atomic_branch", 0) > 0
    assert by_name["x264"]["hotpath"]["fusion_hits"].get("load_op", 0) > 0


def test_dbt_hotpath_smoke():
    """Hot-path smoke run, parameterized by CI's superblock matrix."""
    threshold = int(os.environ.get("DQEMU_SMOKE_SUPERBLOCKS", "0"))
    cfg = DQEMUConfig(
        superblock_threshold=threshold, fusion_enabled=threshold > 0
    )
    cluster = Cluster(N_SLAVES, cfg)
    program = x264.build(n_frames=4, group_size=2, pages_per_frame=1)
    result = cluster.run(program, max_virtual_ms=10_000)
    assert result.exit_code == 0
    if threshold:
        assert result.stats.dbt.superblocks_formed > 0
    else:
        assert result.stats.dbt.superblocks_formed == 0
