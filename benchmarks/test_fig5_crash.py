"""Node-crash tolerance experiment (crash / evacuate / checkpoint / drain).

``test_fig5_crash`` regenerates the crash-tolerance table
(``benchmarks/results/services_fig5_crash.txt``) plus machine-readable
``benchmarks/results/BENCH_crash.json`` and asserts its shape claims: a
mid-kernel crash of one slave aborts the run with a ``ServiceTimeout`` when
the failure domain is disarmed (the seed behavior), completes degraded when
evacuation is armed (threads whose contexts died with the node are reaped
and reported lost, its directory footprint is re-homed), completes without
casualties under a cooperative drain, and — across the checkpoint-interval
sweep — restores the victim's threads from their last snapshots, trading
checkpoint wire bytes against rollback distance.

``test_crash_smoke_matrix`` is the seeded crash-matrix smoke run CI
executes once per slave via the ``DQEMU_SMOKE_CRASH_NODE`` environment
variable (and once per checkpoint arm via ``DQEMU_SMOKE_CHECKPOINT``, once
per heartbeat arm via ``DQEMU_SMOKE_HEARTBEAT``).
It deliberately does not use the benchmark fixture, so the main benchmarks
job (``--benchmark-only``) skips it.
"""

import json
import os

from benchmarks.conftest import RESULTS_DIR, run_once
from repro import Cluster, DQEMUConfig
from repro.analysis.experiments import run_fig5_crash
from repro.net.faults import FaultPlan
from repro.workloads import blackscholes


def test_fig5_crash(benchmark, record_result):
    result = run_once(benchmark, run_fig5_crash)
    record_result("services_fig5_crash", result.render())
    (RESULTS_DIR / "BENCH_crash.json").write_text(
        json.dumps(result.as_json_dict(), indent=2, sort_keys=True) + "\n"
    )

    clean = result.scenario("no faults")
    assert clean.completed

    # Seed behavior: a dead slave with no failure domain kills the run.
    bare = result.scenario("crash (no evacuation)")
    assert not bare.completed
    assert "no reply" in bare.failure

    # Evacuation: the run completes degraded.  The victim's threads were
    # mid-kernel (running, contexts on their cores), so they are lost with
    # per-thread attribution; its directory footprint is reclaimed.
    evac = result.scenario("crash + evacuation")
    assert evac.completed
    assert evac.lost_threads > 0
    assert evac.rehomed_pages > 0
    assert evac.detection_ns is not None and evac.detection_ns > 0
    assert evac.recovery_ns is not None
    # Detection is bounded by one call's retry budget against the corpse.
    p = result.params
    windows = p["timeout_ns"] * (p["retries"] + 1)
    backoffs = sum(
        (p["backoff_base_ns"] << k) + p["backoff_jitter_ns"]
        for k in range(p["retries"])
    )
    assert evac.detection_ns <= windows + backoffs
    # Losing a node costs wall time but not the run.
    assert evac.virtual_ns > clean.virtual_ns
    # The detector's verdict sticks: the victim ends the run down.
    assert result.peer_states[p["victim"]] == "down"

    # Cooperative drain: every thread is handed back, nothing is lost.
    drain = result.scenario("cooperative drain")
    assert drain.completed
    assert drain.evacuated_threads > 0
    assert drain.lost_threads == 0 and drain.lost_pages == 0
    assert drain.recovery_ns is not None and drain.recovery_ns > 0

    # Checkpoint-interval sweep: snapshots turn the same crash's casualties
    # into rollbacks.  Some finite interval achieves zero loss, and the
    # interval trades checkpoint wire bytes against rollback distance.
    sweep = result.checkpoint_scenarios()
    assert len(sweep) >= 2
    assert all(s.completed for s in sweep)
    assert any(s.lost_threads == 0 and s.restored_threads > 0 for s in sweep)
    by_interval = sorted(sweep, key=lambda s: s.checkpoint_interval_ns)
    bytes_by_interval = [s.checkpoint_bytes for s in by_interval]
    assert bytes_by_interval == sorted(bytes_by_interval, reverse=True)
    rollbacks = [
        s.mean_rollback_ns for s in by_interval if s.mean_rollback_ns is not None
    ]
    assert rollbacks and rollbacks[-1] > rollbacks[0]
    # Every restored thread rolled back at most one detection span plus one
    # checkpoint interval (the snapshot it restored from was the newest).
    for s in by_interval:
        if s.mean_rollback_ns is not None:
            assert s.mean_rollback_ns > 0

    # The committed tables carry the failure-domain columns; the restored
    # column appears in the checkpoint run's breakdown.
    assert "lost threads" in result.evacuated_breakdown
    assert "rehomed pages" in result.evacuated_breakdown
    assert "restored" in result.checkpoint_breakdown
    assert "checkpoint" in result.checkpoint_breakdown
    # The default (no-checkpoint) breakdown gains no checkpoint service row.
    assert "checkpoint" not in result.evacuated_breakdown


def test_crash_smoke_matrix():
    """Seeded crash smoke run, parameterized by CI's crash-matrix job."""
    victim = int(os.environ.get("DQEMU_SMOKE_CRASH_NODE", "1"))
    checkpointed = os.environ.get("DQEMU_SMOKE_CHECKPOINT", "0") == "1"
    heartbeats = os.environ.get("DQEMU_SMOKE_HEARTBEAT", "0") == "1"
    n_slaves = 3
    prog = blackscholes.build(n_threads=6, n_options=2040, reps=4)

    def cfg(**kw):
        return DQEMUConfig(
            rpc_timeout_ns=20_000,
            rpc_max_retries=4,
            rpc_backoff_base_ns=10_000,
            rpc_backoff_jitter_ns=2_000,
            **kw,
        ).time_scaled(100.0)

    clean = Cluster(n_slaves, cfg()).run(prog, max_virtual_ms=60_000_000)
    assert clean.exit_code == 0

    crash_at = int(0.35 * clean.virtual_ns)
    plan = FaultPlan.crash(victim, crash_at, seed=victim)
    ckpt_kw = (
        dict(checkpoint_interval_ns=max(1, clean.virtual_ns // 10))
        if checkpointed else {}
    )
    config = cfg(
        fault_plan=plan,
        evacuation_enabled=True,
        health_aware_placement=True,
        **ckpt_kw,
    )
    if heartbeats:
        # Post-scale slack lease: the busy victim's RPC retry budget must
        # still win the detection race (heartbeats are a backstop here).
        config = config.with_options(
            heartbeat_interval_ns=max(1, clean.virtual_ns // 5)
        )
    result = Cluster(n_slaves, config).run(prog, max_virtual_ms=60_000_000)
    assert result.exit_code == 0
    assert result.failures is not None
    rec = result.failures.nodes[victim]
    assert rec.kind == "crash"
    assert rec.recovered_ns is not None
    # Everything the victim held is accounted for: evacuated, restored from
    # a checkpoint, or lost.
    assert len(rec.evacuated) + len(rec.restored) + len(rec.lost) > 0
    if checkpointed:
        # With snapshots every tenth of the run, at least one of the
        # victim's threads restores, and its accounting is attributed.
        assert rec.restored
        assert result.stats.protocol.checkpoints_taken > 0
        assert result.stats.services["failure"].restores == len(rec.restored)
        assert all(rollback > 0 for _tid, _tgt, rollback in rec.restored)
    else:
        assert not rec.restored
        assert result.stats.protocol.checkpoints_taken == 0
    if heartbeats:
        # Both detectors were armed; on a chatty victim the passive one
        # fires first, and the merged health view records that.
        assert rec.evidence == "rpc-timeout"
        assert result.stats.protocol.heartbeats_sent > 0
    else:
        assert result.stats.protocol.heartbeats_sent == 0
