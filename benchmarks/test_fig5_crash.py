"""Node-crash tolerance experiment (crash / evacuate / drain).

``test_fig5_crash`` regenerates the crash-tolerance table
(``benchmarks/results/services_fig5_crash.txt``) and asserts its shape
claims: a mid-kernel crash of one slave aborts the run with a
``ServiceTimeout`` when the failure domain is disarmed (the seed behavior),
completes degraded when evacuation is armed (threads whose contexts died
with the node are reaped and reported lost, its directory footprint is
re-homed), and completes without casualties under a cooperative drain.

``test_crash_smoke_matrix`` is the seeded crash-matrix smoke run CI
executes once per slave via the ``DQEMU_SMOKE_CRASH_NODE`` environment
variable.  It deliberately does not use the benchmark fixture, so the main
benchmarks job (``--benchmark-only``) skips it.
"""

import os

from benchmarks.conftest import run_once
from repro import Cluster, DQEMUConfig
from repro.analysis.experiments import run_fig5_crash
from repro.net.faults import FaultPlan
from repro.workloads import blackscholes


def test_fig5_crash(benchmark, record_result):
    result = run_once(benchmark, run_fig5_crash)
    record_result("services_fig5_crash", result.render())

    clean = result.scenario("no faults")
    assert clean.completed

    # Seed behavior: a dead slave with no failure domain kills the run.
    bare = result.scenario("crash (no evacuation)")
    assert not bare.completed
    assert "no reply" in bare.failure

    # Evacuation: the run completes degraded.  The victim's threads were
    # mid-kernel (running, contexts on their cores), so they are lost with
    # per-thread attribution; its directory footprint is reclaimed.
    evac = result.scenario("crash + evacuation")
    assert evac.completed
    assert evac.lost_threads > 0
    assert evac.rehomed_pages > 0
    assert evac.detection_ns is not None and evac.detection_ns > 0
    assert evac.recovery_ns is not None
    # Detection is bounded by one call's retry budget against the corpse.
    p = result.params
    windows = p["timeout_ns"] * (p["retries"] + 1)
    backoffs = sum(
        (p["backoff_base_ns"] << k) + p["backoff_jitter_ns"]
        for k in range(p["retries"])
    )
    assert evac.detection_ns <= windows + backoffs
    # Losing a node costs wall time but not the run.
    assert evac.virtual_ns > clean.virtual_ns
    # The detector's verdict sticks: the victim ends the run down.
    assert result.peer_states[p["victim"]] == "down"

    # Cooperative drain: every thread is handed back, nothing is lost.
    drain = result.scenario("cooperative drain")
    assert drain.completed
    assert drain.evacuated_threads > 0
    assert drain.lost_threads == 0 and drain.lost_pages == 0
    assert drain.recovery_ns is not None and drain.recovery_ns > 0

    # The committed table carries the failure-domain columns.
    assert "lost threads" in result.evacuated_breakdown
    assert "rehomed pages" in result.evacuated_breakdown


def test_crash_smoke_matrix():
    """Seeded crash smoke run, parameterized by CI's crash-matrix job."""
    victim = int(os.environ.get("DQEMU_SMOKE_CRASH_NODE", "1"))
    n_slaves = 3
    prog = blackscholes.build(n_threads=6, n_options=2040, reps=4)

    def cfg(**kw):
        return DQEMUConfig(
            rpc_timeout_ns=20_000,
            rpc_max_retries=4,
            rpc_backoff_base_ns=10_000,
            rpc_backoff_jitter_ns=2_000,
            **kw,
        ).time_scaled(100.0)

    clean = Cluster(n_slaves, cfg()).run(prog, max_virtual_ms=60_000_000)
    assert clean.exit_code == 0

    crash_at = int(0.35 * clean.virtual_ns)
    plan = FaultPlan.crash(victim, crash_at, seed=victim)
    result = Cluster(
        n_slaves,
        cfg(
            fault_plan=plan,
            evacuation_enabled=True,
            health_aware_placement=True,
        ),
    ).run(prog, max_virtual_ms=60_000_000)
    assert result.exit_code == 0
    assert result.failures is not None
    rec = result.failures.nodes[victim]
    assert rec.kind == "crash"
    assert rec.recovered_ns is not None
    # Everything the victim held is accounted for: evacuated or lost.
    assert len(rec.evacuated) + len(rec.lost) > 0
