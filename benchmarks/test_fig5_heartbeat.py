"""Active-liveness experiment (lease-based heartbeat failure detection).

``test_fig5_heartbeat`` regenerates the detection-latency/overhead table
(``benchmarks/results/services_fig5_heartbeat.txt``) plus machine-readable
``benchmarks/results/BENCH_heartbeat.json`` and asserts its shape claims:
a quiet victim — a slave that crashes while nobody has a call outstanding
against it — hangs the run when only the passive RPC-timeout detector is
armed, completes degraded within the configured detection bound once
lease-renewal heartbeats are on, and across the interval sweep detection
latency grows with the renewal interval while renewal wire bytes shrink.
A busy victim with a slack lease is detected by the RPC retry budget
first, so the failure record's evidence reads ``rpc-timeout``.

``test_heartbeat_smoke_matrix`` is the quiet-victim smoke run CI executes
once per heartbeat arm via the ``DQEMU_SMOKE_HEARTBEAT`` environment
variable.  It deliberately does not use the benchmark fixture, so the main
benchmarks job (``--benchmark-only``) skips it.
"""

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR, run_once
from repro import Cluster, DQEMUConfig
from repro.analysis.experiments import run_fig5_heartbeat
from repro.errors import SimulationError
from repro.net.faults import FaultPlan
from repro.workloads import pi_taylor


def test_fig5_heartbeat(benchmark, record_result):
    result = run_once(benchmark, run_fig5_heartbeat)
    record_result("services_fig5_heartbeat", result.render())
    (RESULTS_DIR / "BENCH_heartbeat.json").write_text(
        json.dumps(result.as_json_dict(), indent=2, sort_keys=True) + "\n"
    )

    # Heartbeats default off: the clean baseline sends not a single frame.
    clean = result.scenario("quiet: no faults")
    assert clean.completed
    assert clean.heartbeats_sent == 0 and clean.heartbeat_bytes == 0

    # The quiet victim is invisible to the passive detector: with no call
    # aimed at the corpse the retry budget never trips and the run starves.
    hung = result.scenario("quiet: crash (no heartbeat)")
    assert not hung.completed
    assert "deadlock" in hung.failure or "budget" in hung.failure

    # Interval sweep: every armed run completes degraded, detection is
    # attributed to the lease and lands within the configured bound.
    sweep = result.sweep_scenarios()
    assert len(sweep) >= 2
    for s in sweep:
        assert s.completed
        assert s.evidence == "lease-expiry"
        assert s.lost_threads > 0
        assert s.lease_expiries > 0
        assert s.detection_ns is not None
        assert 0 < s.detection_ns <= s.detection_bound_ns
    # The latency/overhead tradeoff: a longer renewal interval detects
    # later but spends fewer wire bytes keeping the lease warm.
    by_interval = sorted(sweep, key=lambda s: s.heartbeat_interval_ns)
    detections = [s.detection_ns for s in by_interval]
    assert detections == sorted(detections)
    hb_bytes = [s.heartbeat_bytes for s in by_interval]
    assert hb_bytes == sorted(hb_bytes, reverse=True)

    # Evidence merging: the busy victim's retry budget exhausts well inside
    # the slack lease, so the passive detector wins the race — same health
    # view, same failure-domain path, different first evidence.
    busy = result.scenario("busy: crash + slack hb")
    assert busy.completed
    assert busy.evidence == "rpc-timeout"
    assert busy.heartbeats_sent > 0  # heartbeats were armed, just slack

    # The committed breakdown carries both heartbeat service rows; the
    # detector's verdict sticks in the final health view.
    assert "heartbeat" in result.heartbeat_breakdown
    assert "node.heartbeat" in result.heartbeat_breakdown
    assert result.peer_states[result.params["victim"]] == "down"
    assert all(
        state == "up"
        for nid, state in result.peer_states.items()
        if nid != result.params["victim"]
    )


def test_heartbeat_smoke_matrix():
    """Quiet-victim smoke run, parameterized by CI's crash-matrix job."""
    heartbeats = os.environ.get("DQEMU_SMOKE_HEARTBEAT", "0") == "1"
    n_slaves = 3
    victim = 3
    prog = pi_taylor.build(n_threads=3, terms=600, reps=2)

    def cfg(**kw):
        return DQEMUConfig(
            rpc_timeout_ns=5_000_000,
            rpc_max_retries=4,
            rpc_backoff_base_ns=10_000,
            rpc_backoff_jitter_ns=2_000,
            evacuation_enabled=True,
            health_aware_placement=True,
            **kw,
        ).time_scaled(100.0)

    clean = Cluster(n_slaves, cfg()).run(prog, max_virtual_ms=60_000_000)
    assert clean.exit_code == 0

    crash_at = int(0.5 * clean.virtual_ns)
    plan = FaultPlan.crash(victim, crash_at, seed=7)

    if not heartbeats:
        # Passive-only detection: the quiet victim's crash is never seen
        # and the join deadlocks (the pre-heartbeat behavior).
        with pytest.raises(SimulationError):
            Cluster(n_slaves, cfg(fault_plan=plan)).run(
                prog, max_virtual_ms=60_000_000
            )
        return

    # Heartbeat knobs are post-scale virtual ns (derived from the measured
    # clean duration), so they go on after time_scaled.
    interval = max(1, clean.virtual_ns // 50)
    config = cfg(fault_plan=plan).with_options(heartbeat_interval_ns=interval)
    result = Cluster(n_slaves, config).run(prog, max_virtual_ms=60_000_000)
    assert result.exit_code == 0
    assert result.failures is not None
    rec = result.failures.nodes[victim]
    assert rec.kind == "crash"
    assert rec.evidence == "lease-expiry"
    detection = rec.detected_ns - crash_at
    assert 0 < detection <= config.heartbeat_detection_bound_ns()
    assert result.stats.protocol.heartbeats_sent > 0
    assert result.failures.lease_detections == 1
