"""Reliable-delivery recovery experiment (partition-then-heal).

``test_fig5_partition`` regenerates the goodput-vs-drop-rate and
partition-recovery table (``benchmarks/results/services_fig5_partition.txt``)
and asserts its shape claims: a clean run with the retry budget armed sends
nothing extra, background loss degrades goodput but every drop is
retransmitted, and a mid-run partition of one slave aborts with a
``ServiceTimeout`` when retries are off but is ridden out when they are on.

``test_partition_smoke_matrix`` is the seeded fault-matrix smoke run CI
executes across several (drop rate, seed) combinations via the
``DQEMU_SMOKE_DROP_EVERY`` / ``DQEMU_SMOKE_SEED`` environment variables.  It
deliberately does not use the benchmark fixture, so the main benchmarks job
(``--benchmark-only``) skips it.
"""

import os

from benchmarks.conftest import run_once
from repro import Cluster, DQEMUConfig
from repro.analysis.experiments import run_fig5_partition
from repro.net.faults import FaultPlan, drop
from repro.workloads import blackscholes


def test_fig5_partition(benchmark, record_result):
    result = run_once(benchmark, run_fig5_partition)
    record_result("services_fig5_partition", result.render())

    clean = result.scenario("no faults")
    assert clean.completed
    # Arming the retry budget on a lossless fabric must change nothing.
    assert clean.retransmits == 0 and clean.recoveries == 0

    for every in result.params["drop_everies"]:
        lossy = result.scenario(f"drop 1/{every}")
        assert lossy.completed
        # Every loss was detected and retransmitted, at a goodput cost.
        assert lossy.dropped_frames > 0
        assert lossy.retransmits > 0 and lossy.recoveries > 0
        assert lossy.goodput_mips < clean.goodput_mips

    bare = result.scenario("partition (no retry)")
    assert not bare.completed
    assert "no reply" in bare.failure

    healed = result.scenario("partition + retry")
    assert healed.completed
    assert healed.dropped_frames > 0
    assert healed.recoveries > 0
    assert healed.mean_recovery_us > 0
    # Recovering from a partition window costs more wall time than the
    # per-frame background loss (backoff spans the whole window).
    assert healed.mean_recovery_us > result.scenario("drop 1/40").mean_recovery_us
    # Everyone came back: the healed run ends with every peer reachable.
    assert set(result.peer_states.values()) == {"up"}
    # The committed table carries the per-service reliability columns.
    assert "retransmits" in result.healed_breakdown


def test_partition_smoke_matrix():
    """Seeded loss smoke run, parameterized by CI's fault-matrix job."""
    every = int(os.environ.get("DQEMU_SMOKE_DROP_EVERY", "60"))
    seed = int(os.environ.get("DQEMU_SMOKE_SEED", "1"))
    prog = blackscholes.build(n_threads=4, n_options=2040, reps=4)
    cfg = DQEMUConfig(
        rpc_timeout_ns=20_000,
        rpc_max_retries=6,
        rpc_backoff_base_ns=10_000,
        rpc_backoff_jitter_ns=2_000,
        fault_plan=FaultPlan.of(drop(every_nth=every, loopback=False), seed=seed),
    ).time_scaled(100.0)
    result = Cluster(2, cfg).run(prog, max_virtual_ms=60_000_000)
    assert result.exit_code == 0
    assert result.faults.dropped > 0
    # Every dropped frame belonged to a retried call (or its reply), so the
    # run rode out all of them.
    assert result.rpc.retransmits > 0
    assert result.rpc.recoveries > 0
