"""Fig. 5 — performance scalability (pi by Taylor series, no data sharing).

Paper: 120 threads, each computing pi 64 K times; DQEMU speedup over a
single slave node is near-linear in the node count (1.00, 1.97, 2.97, 3.98,
4.93, 5.94) while vanilla QEMU is capped at one node (dashed line at 1.04).
"""

from benchmarks.conftest import run_once
from repro.analysis import run_fig5


def test_fig5_scalability(benchmark, record_result):
    result = run_once(benchmark, run_fig5)
    record_result("fig5_scalability", result.render())

    speedups = result.speedups
    counts = result.slave_counts
    # Monotonic scaling across the whole node range.
    for a, b in zip(counts, counts[1:]):
        assert speedups[b] > speedups[a]
    # Near-linear at the high end: the paper reaches 5.94/6; we accept >= 4.5.
    assert speedups[counts[-1]] >= 4.5
    # Vanilla QEMU is a single-node system, slightly faster than DQEMU-1
    # (paper: 1.04) but far below multi-node DQEMU.
    assert 1.0 <= result.qemu_speedup <= 1.15
    assert speedups[counts[-1]] > 3 * result.qemu_speedup
