"""Fig. 5 (sharded) — master-shard sweep at high node counts.

Extends the scalability story with the sharded master (ROADMAP "Async /
sharded master"): the blackscholes kernel's boundary false sharing keeps
every node's manager busy with coherence traffic on many distinct pages, so
the per-node manager mailbox backs up — measured as the coherence service's
queue wait.  Partitioning the directory across shard pools serves requests
for unrelated pages in parallel and must cut that wait monotonically.
"""

from benchmarks.conftest import run_once
from repro.analysis import run_fig5_sharded


def test_fig5_sharded(benchmark, record_result):
    result = run_once(benchmark, run_fig5_sharded)
    record_result("services_fig5_sharded", result.render())

    top = result.slave_counts[-1]
    shards = result.shard_counts
    assert shards[0] == 1
    # There is head-of-line blocking to attack at the high end...
    assert result.coherence_wait_ns[(top, 1)] > 0
    # ...and sharding attacks it: mean coherence queue wait strictly drops
    # at every shard doubling, at the highest node count.
    waits = [result.mean_wait_us(top, k) for k in shards]
    for narrow, wide in zip(waits, waits[1:]):
        assert wide < narrow
    # The shard sweep never changes guest work: same request volume (within
    # the small jitter retries introduce) at every shard count.
    reqs = [result.coherence_requests[(top, k)] for k in shards]
    assert max(reqs) - min(reqs) <= 0.05 * max(reqs)
