"""Coherence-protocol sweep: MSI vs MESI vs home migration vs adaptive.

``test_fig6_coherence`` extends the Fig. 6 study with the per-page
coherence-protocol layer: the same three discriminating workloads run under
all four protocols and the table records what each protocol actually buys
in round trips —

* ``single-writer`` (private-region RMW): MESI's Exclusive-clean grant
  turns every private page's S→M upgrade round trip into a silent local
  flip, so write upgrades drop by exactly the private page count.
* ``mutex-worst`` (the Fig. 6 global-lock pessimum): upgrades are frequent
  and payload-free upgrade acks trim the mean coherence wait below MSI's.
* ``mixed-sharded`` (private + ping-pong + broadcast pages, two master
  shards): no fixed protocol fits every page; the adaptive classifier must
  match the best fixed choice without knowing the workload.

Writes the drift-checked table (``benchmarks/results/fig6_coherence.txt``)
plus machine-readable ``benchmarks/results/BENCH_coherence.json``.
Deterministic simulation: both artifacts regenerate bit-identically.

``test_fig6_coherence_smoke`` is the CI smoke run, parameterized by the
``DQEMU_SMOKE_COHERENCE`` environment variable (the workflow runs it at
msi, mesi and adaptive).  It deliberately does not use the benchmark
fixture, so the main benchmarks job (``--benchmark-only``) skips it.
"""

import json
import os

from benchmarks.conftest import RESULTS_DIR, run_once
from repro import Cluster, DQEMUConfig
from repro.analysis import run_fig6_coherence
from repro.workloads import memaccess

PROTOCOLS = ("msi", "mesi", "migrate", "adaptive")
RMW_THREADS = 8
RMW_PAGES_PER_THREAD = 8
PRIVATE_PAGES = RMW_THREADS * RMW_PAGES_PER_THREAD


def test_fig6_coherence(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: run_fig6_coherence(
            protocols=PROTOCOLS,
            rmw_threads=RMW_THREADS,
            rmw_pages_per_thread=RMW_PAGES_PER_THREAD,
        ),
    )
    record_result("fig6_coherence", result.render())
    (RESULTS_DIR / "BENCH_coherence.json").write_text(
        json.dumps(
            {
                "experiment": "fig6_coherence",
                "params": result.params,
                "rows": result.rows,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    m = result.metric
    # MSI is the paper's protocol: no Exclusive grants, no silent upgrades,
    # no migrations, ever.
    for wl in result.workloads:
        for key in ("exclusive_grants", "silent_upgrades", "upgrade_acks",
                    "home_migrations", "reclassifications"):
            assert m(wl, "msi", key) == 0, (wl, key)

    # Single-writer pages: MESI converts each private page's S→M upgrade
    # round trip into a silent local flip — write upgrades drop by the full
    # private page count and the saved round trips show up end to end.
    assert m("single-writer", "mesi", "silent_upgrades") >= PRIVATE_PAGES
    assert (
        m("single-writer", "mesi", "write_upgrades")
        <= m("single-writer", "msi", "write_upgrades") - PRIVATE_PAGES
    )
    assert m("single-writer", "mesi", "time_ms") < m("single-writer", "msi", "time_ms")
    assert (
        m("single-writer", "mesi", "mean_wait_us")
        < m("single-writer", "msi", "mean_wait_us")
    )

    # Fig. 6 mutex pessimum: payload-free upgrade acks reduce the mean
    # coherence wait below MSI's.
    assert m("mutex-worst", "mesi", "upgrade_acks") > 0
    assert (
        m("mutex-worst", "mesi", "mean_wait_us")
        < m("mutex-worst", "msi", "mean_wait_us")
    )
    assert m("mutex-worst", "mesi", "time_ms") <= m("mutex-worst", "msi", "time_ms")

    # Home migration actually fires and serves the new home locally.
    assert m("mixed-sharded", "migrate", "home_migrations") > 0
    assert m("mixed-sharded", "migrate", "home_local_hits") > 0

    # The adaptive policy picks per page: it must match the best fixed
    # protocol on the mixed sweep (small tolerance) while clearly beating
    # the MSI default — without being told the workload.
    best_fixed = min(
        m("mixed-sharded", proto, "time_ms") for proto in ("msi", "mesi", "migrate")
    )
    adaptive = m("mixed-sharded", "adaptive", "time_ms")
    assert adaptive <= 1.05 * best_fixed
    assert adaptive <= 0.9 * m("mixed-sharded", "msi", "time_ms")
    assert m("mixed-sharded", "adaptive", "reclassifications") > 0


def test_fig6_coherence_smoke():
    """Coherence smoke run, parameterized by CI's protocol matrix."""
    protocol = os.environ.get("DQEMU_SMOKE_COHERENCE", "msi")
    cfg = DQEMUConfig(coherence_protocol=protocol, adaptive_window=8)
    cluster = Cluster(4, cfg)
    program = memaccess.build_private_rmw(
        n_threads=4, n_nodes=4, pages_per_thread=4, passes=2
    )
    result = cluster.run(program, max_virtual_ms=60_000_000)
    assert result.exit_code == 0
    p = result.stats.protocol
    if protocol == "msi":
        assert p.exclusive_grants == 0 and p.silent_upgrades == 0
    else:
        assert p.exclusive_grants > 0
        assert p.silent_upgrades > 0
