"""Fig. 6 — mutex performance (worst case: global lock; best case: private).

Paper: 32 threads.  Worst case (5 000 acquire/release on one global lock):
best outcome at ONE slave node (5.2 s), degrading as nodes are added (up to
25.6 s at 6) — far above single-node QEMU (0.48 s).  Best case (private
locks, 500 000 ops): identical to QEMU on one node and improving with more
nodes as CPU contention drops (4.0 s → 1.2 s; QEMU 3.4 s).
"""

from benchmarks.conftest import run_once
from repro.analysis import run_fig6


def test_fig6_mutex(benchmark, record_result):
    result = run_once(benchmark, run_fig6)
    record_result("fig6_mutex", result.render())

    counts = result.slave_counts
    worst, best = result.worst_ns, result.best_ns

    # Worst case: one slave node is the best multi-node configuration, and
    # adding nodes makes the global lock substantially more expensive.
    assert worst[1] == min(worst.values())
    assert max(worst.values()) > 1.8 * worst[1]
    # Worst case is an order of magnitude above the QEMU baseline
    # (paper: 5.2 s vs 0.48 s ~ 11x; we accept >= 5x).
    assert worst[1] > 5 * result.qemu_worst_ns
    # Best case: more nodes = more cores = faster (paper: 4.0 -> 1.2 s).
    assert best[counts[-1]] < best[1] / 2
    # Best case at one node is in the same ballpark as QEMU (paper 4.0 vs 3.4).
    assert best[1] < 2 * result.qemu_best_ns
    # Worst case dwarfs best case at every node count.
    assert all(worst[n] > 5 * best[n] for n in counts)
