"""Fig. 7 — PARSEC blackscholes & swaptions speedups with ablation series.

Paper: both programs scale with node count (blackscholes near-linear, to
~4-5x at 6 nodes); data forwarding improves blackscholes 15.7-22.7 %
(avg 17.98 %); page splitting improves swaptions 6.1-14.7 %; vanilla QEMU
sits at a flat 1.26 relative to one-slave DQEMU.
"""

from benchmarks.conftest import run_once
from repro.analysis import run_fig7


def test_fig7_blackscholes(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig7("blackscholes"))
    record_result("fig7_blackscholes", result.render())

    counts = result.slave_counts
    origin = result.speedups("origin")
    fwd = result.speedups("forwarding")
    # Scales with node count (monotone non-decreasing, clearly > 1 at the top).
    assert origin[counts[-1]] >= 1.8
    assert origin[counts[-1]] >= origin[counts[0]]
    # Forwarding helps the data-intensive regular access pattern (paper:
    # 15.7-22.7 %; at our compute-heavier scale we require a consistent,
    # smaller gain: never a regression, >= 2 % on average).
    gains = [fwd[n] / origin[n] for n in counts]
    assert all(g > 0.995 for g in gains)
    assert sum(gains) / len(gains) > 1.02
    # QEMU line is flat and modest (paper: 1.26).
    assert 1.0 <= result.qemu_speedup <= 1.6


def test_fig7_swaptions(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig7("swaptions"))
    record_result("fig7_swaptions", result.render())

    counts = result.slave_counts
    origin = result.speedups("origin")
    both = result.speedups("forwarding+splitting")
    # Little data, little sharing: clear multi-node scaling (the origin
    # series dips at high node counts where result-page ping-pong bites —
    # which is precisely what splitting repairs).
    assert max(origin.values()) >= 1.9
    assert both[counts[-1]] >= 2.0
    # Page splitting improves the result-array false sharing at multi-node
    # counts (paper: 6.1-14.7 %).
    gains = [both[n] / origin[n] for n in counts if n >= 2]
    assert max(gains) > 1.04
    assert 1.0 <= result.qemu_speedup <= 1.3
