"""Fig. 8 — x264-like & fluidanimate-like, 128 threads: per-thread time
breakdown (execute / page fault / syscall) under hint-based locality-aware
scheduling vs round-robin.

Paper: execution time drops as nodes are added, but page-fault time
"increases dramatically if the threads are not properly scheduled"; the
hint-based scheme improves performance "quite substantially" (left bars
below right bars, mostly via the page-fault component).
"""

from benchmarks.conftest import run_once
from repro.analysis import run_fig8


def test_fig8_x264(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig8("x264"))
    record_result("fig8_x264", result.render())

    counts = result.slave_counts
    # Execution component is flat (same guest work on any schedule).
    for n in counts:
        ex_h = result.normalized(n, "hint")["execute_ns"]
        ex_r = result.normalized(n, "round_robin")["execute_ns"]
        assert abs(ex_h - ex_r) / ex_r < 0.1
    # Hint scheduling reduces the page-fault component where cross-node
    # reference reads dominate (the paper's effect; strongest at high node
    # counts in our scaled runs).
    top = counts[-1]
    pf_hint = result.breakdowns[(top, "hint")]["pagefault_ns"]
    pf_rr = result.breakdowns[(top, "round_robin")]["pagefault_ns"]
    assert pf_hint < pf_rr
    assert result.total(top, "hint") < result.total(top, "round_robin")


def test_fig8_fluidanimate(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig8("fluidanimate"))
    record_result("fig8_fluidanimate", result.render())

    counts = result.slave_counts
    for n in counts:
        pf_hint = result.breakdowns[(n, "hint")]["pagefault_ns"]
        pf_rr = result.breakdowns[(n, "round_robin")]["pagefault_ns"]
        # Grouped neighbour blocks slash boundary-exchange page faults
        # (paper: "quite substantially"; we require >= 1.5x at every count).
        assert pf_hint < pf_rr / 1.5
        assert result.total(n, "hint") < result.total(n, "round_robin")
