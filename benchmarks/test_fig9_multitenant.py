"""Multi-tenant job admission experiment (beyond the paper: Fig. 9).

``test_fig9_multitenant`` drives a mixed blackscholes / mutex_bench / x264
job stream through one long-lived fleet at increasing tenant counts and
measures what admission control trades: aggregate goodput (total guest
instructions over the stream's makespan) versus p99 job queue wait.  With
``max_concurrent_jobs = 3``, streams of up to three jobs run wholly
concurrently (zero queue wait); deeper streams queue, so the wait
percentile becomes visible exactly where the admission limit binds.

Writes the drift-checked paper-style table
(``benchmarks/results/fig9_multitenant.txt``) plus the machine-readable
``benchmarks/results/BENCH_multitenant.json`` CI consumes.  All reported
quantities are *virtual-time* measurements of a deterministic simulation,
so both artifacts regenerate bit-identically.

``test_multitenant_smoke`` is the CI smoke run, parameterized by the
``DQEMU_SMOKE_TENANTS`` environment variable (the workflow runs it at 1
and 3 tenants).  It deliberately does not use the benchmark fixture, so
the main benchmarks job (``--benchmark-only``) skips it.
"""

import json
import math
import os
import pathlib

from benchmarks.conftest import RESULTS_DIR, run_once
from repro import Cluster, DQEMUConfig
from repro.workloads import blackscholes, mutex_bench, x264

TENANT_COUNTS = (1, 2, 3, 4, 6)
MAX_CONCURRENT = 3
N_SLAVES = 2


def _job_stream():
    """The mixed workload mix, cycled over the stream in this order."""
    return [
        ("blackscholes", blackscholes.build(n_threads=4, n_options=16)),
        ("mutex_bench", mutex_bench.build(n_threads=4, iters=40)),
        ("x264", x264.build(n_frames=8, group_size=4, pages_per_frame=1)),
    ]


def _percentile(values, q):
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def run_fig9_multitenant(tenant_counts=TENANT_COUNTS):
    mix = _job_stream()
    rows = []
    for n_jobs in tenant_counts:
        cfg = DQEMUConfig(
            max_concurrent_jobs=MAX_CONCURRENT, admission_queue_depth=16
        )
        cluster = Cluster(N_SLAVES, cfg)
        jobs = [
            cluster.submit(mix[i % len(mix)][1], name=mix[i % len(mix)][0],
                           max_virtual_ms=10_000)
            for i in range(n_jobs)
        ]
        results = cluster.join(jobs)
        makespan_ns = max(job.finished_ns for job in jobs)
        total_insns = sum(r.stats.insns_executed for r in results)
        waits = [r.queue_wait_ns for r in results]
        rows.append({
            "tenants": n_jobs,
            "makespan_ms": makespan_ns / 1e6,
            "total_insns": total_insns,
            "goodput_mips": total_insns * 1e3 / makespan_ns,
            "mean_queue_wait_ms": sum(waits) / len(waits) / 1e6,
            "p99_queue_wait_ms": _percentile(waits, 99) / 1e6,
            "queued_jobs": sum(1 for w in waits if w > 0),
            "exit_codes": [r.exit_code for r in results],
        })
    return rows


def render_fig9(rows) -> str:
    lines = [
        "fig9: multi-tenant job admission "
        f"(mixed blackscholes/mutex_bench/x264 stream, {N_SLAVES} slaves, "
        f"max_concurrent_jobs={MAX_CONCURRENT})",
        f"{'tenants':>7} | {'makespan_ms':>11} | {'goodput_mips':>12} | "
        f"{'mean_wait_ms':>12} | {'p99_wait_ms':>11} | {'queued':>6}",
    ]
    lines.append("-" * len(lines[1]))
    for row in rows:
        lines.append(
            f"{row['tenants']:>7} | {row['makespan_ms']:>11.3f} | "
            f"{row['goodput_mips']:>12.2f} | "
            f"{row['mean_queue_wait_ms']:>12.3f} | "
            f"{row['p99_queue_wait_ms']:>11.3f} | {row['queued_jobs']:>6}"
        )
    return "\n".join(lines)


def test_fig9_multitenant(benchmark, record_result):
    rows = run_once(benchmark, run_fig9_multitenant)
    record_result("fig9_multitenant", render_fig9(rows))
    (RESULTS_DIR / "BENCH_multitenant.json").write_text(
        json.dumps(
            {
                "experiment": "fig9_multitenant",
                "n_slaves": N_SLAVES,
                "max_concurrent_jobs": MAX_CONCURRENT,
                "workload_mix": [name for name, _ in _job_stream()],
                "rows": rows,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    by_tenants = {row["tenants"]: row for row in rows}
    # Every job in every stream ran to a clean exit.
    for row in rows:
        assert all(code == 0 for code in row["exit_codes"])
    # Within the admission limit nothing queues; beyond it the limit binds
    # and the queue-wait percentile becomes visible.
    for n in (1, 2, 3):
        assert by_tenants[n]["queued_jobs"] == 0
        assert by_tenants[n]["p99_queue_wait_ms"] == 0
    for n in (4, 6):
        assert by_tenants[n]["queued_jobs"] == n - MAX_CONCURRENT
        assert by_tenants[n]["p99_queue_wait_ms"] > 0
    # Co-scheduling pays: three overlapping tenants beat a solo stream's
    # aggregate goodput on the same fleet.
    assert by_tenants[3]["goodput_mips"] > by_tenants[1]["goodput_mips"]
    # Makespan grows monotonically with offered load.
    makespans = [row["makespan_ms"] for row in rows]
    assert makespans == sorted(makespans)


def test_multitenant_smoke():
    """Admission smoke run, parameterized by CI's multitenant matrix."""
    n_jobs = int(os.environ.get("DQEMU_SMOKE_TENANTS", "1"))
    rows = run_fig9_multitenant(tenant_counts=(n_jobs,))
    (row,) = rows
    assert all(code == 0 for code in row["exit_codes"])
    assert row["goodput_mips"] > 0
    if n_jobs <= MAX_CONCURRENT:
        assert row["queued_jobs"] == 0
