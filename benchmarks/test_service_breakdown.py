"""Per-service load attribution tables (runtime service architecture).

Two representative workloads — the contended-mutex worst case and a
forwarding-friendly sequential page walk — are run once each and their
``RunStats.services`` counters rendered with
:func:`~repro.analysis.reporting.render_service_breakdown`.  The runs are
deterministic, so the emitted tables are byte-stable: CI regenerates them
and fails on drift, turning per-service load into a tracked regression
surface (an optimization that silently shifts work between subsystems now
shows up in review).
"""

from benchmarks.conftest import run_once
from repro import Cluster, DQEMUConfig
from repro.analysis.reporting import render_service_breakdown
from repro.workloads import memaccess, mutex_bench


def test_service_breakdown_mutex(benchmark, record_result):
    def run():
        prog = mutex_bench.build(n_threads=4, iters=200, private=False)
        return Cluster(n_slaves=2).run(prog)

    result = run_once(benchmark, run)
    assert result.exit_code == 0
    record_result("services_mutex", render_service_breakdown(result.stats))

    services = result.stats.services
    # The global lock hammers the master: syscall delegation and coherence
    # dominate, and the futex service sees the wait/wake storm.
    assert services["syscall"].busy_ns > 0
    assert services["coherence"].busy_ns > 0
    assert services["futex"].requests > 0
    # Frame-serialization billing: futex wake/park delivery consumes the
    # master link, so it must not report zero busy time.
    assert services["futex"].busy_ns > 0
    # Node-side control work (wake delivery, shutdown) bills its per-command
    # service span instead of reporting zero.
    assert services["node.control"].busy_ns > 0
    # Contention on the master managers is visible as mailbox queue wait.
    assert services["coherence"].queue_wait_ns > 0
    assert all(s.duplicates == 0 for s in services.values())
    # Default config never retransmits, so the reliability columns must stay
    # out of the rendered table (keeping the committed tables byte-stable).
    assert all(s.retransmits == 0 and s.recoveries == 0 for s in services.values())
    assert "retransmits" not in render_service_breakdown(result.stats)


def test_service_breakdown_seq_forwarding(benchmark, record_result):
    def run():
        prog = memaccess.build_seq_walk(npages=64)
        cfg = DQEMUConfig(forwarding_enabled=True)
        return Cluster(n_slaves=1, config=cfg).run(prog)

    result = run_once(benchmark, run)
    assert result.exit_code == 0
    record_result(
        "services_seq_forwarding", render_service_breakdown(result.stats)
    )

    services = result.stats.services
    # A sequential walk with forwarding on: pushes do the heavy lifting and
    # the node-side coherence client receives them.
    assert services["forwarding"].requests > 0
    assert services["node.coherence"].requests > 0
