"""Table 1 — memory performance of DQEMU.

Paper rows (throughput MB/s, latency us):
  QEMU Sequential Access    173.06      -
  Remote Sequential Access    7.88    410.5
  Page forwarding Enabled   108.01     83.2
  QEMU Access of 128 bytes  20259       -
  False Sharing of 1 Page    2216       -
  Page Splitting Enabled    75294       -

Absolute magnitudes differ (their 128-byte rows are cache-resident native
speeds), but the structure must hold: remote access collapses ~20x below
local QEMU; forwarding recovers most of it and slashes fault latency
(~410 us -> ~83 us); false sharing collapses aggregate bandwidth; page
splitting restores it past the single-node baseline.
"""

from benchmarks.conftest import run_once
from repro.analysis import run_table1


def test_table1_memory(benchmark, record_result):
    result = run_once(benchmark, run_table1)
    record_result("table1_memory", result.render())

    qemu_seq, _ = result.row("QEMU Sequential Access")
    remote, remote_lat = result.row("Remote Sequential Access")
    fwd, fwd_lat = result.row("Page forwarding Enabled")
    qemu_128, _ = result.row("QEMU Access of 128 bytes")
    false_sharing, _ = result.row("False Sharing of 1 Page")
    splitting, _ = result.row("Page Splitting Enabled")

    # Remote sequential access collapses (paper: 173 -> 7.88, ~22x).
    assert remote < qemu_seq / 10
    # Remote page latency calibrated to the paper's 410.5 us (+-20%).
    assert 330 <= remote_lat <= 500
    # Forwarding recovers most of the loss (paper: 7.88 -> 108, 13.7x).
    assert fwd > 5 * remote
    # ... and collapses the observed fault latency (paper: 83.2 us).
    assert fwd_lat < remote_lat / 3
    # False sharing of one page collapses aggregate bandwidth (paper: ~9x
    # below QEMU; our scaled run sustains ~2.6x — the contended phase is
    # bounded by wall-clock budget, see EXPERIMENTS.md).
    assert false_sharing < qemu_128 / 2.5
    # Page splitting restores parallel bandwidth past the single-node
    # baseline (paper: 75294 > 20259).
    assert splitting > 3 * false_sharing
    assert splitting > qemu_128
