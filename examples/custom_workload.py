#!/usr/bin/env python
"""Build your own distributed guest workload with the macro-assembler.

A two-stage pipeline: a producer thread (on a slave node) fills an array
with squares and publishes a done flag; the main thread futex-waits on the
flag, sums the array, and writes the result to a file.  Shows the pieces a
downstream user combines:

* AsmBuilder + the guest runtime library (emit_runtime);
* guest threads and futex synchronization across nodes;
* delegated file I/O — the harness reads the guest-written file back out
  of the cluster's in-memory VFS via RunResult.files.

Run:  python examples/custom_workload.py
"""

from repro import Cluster, DQEMUConfig
from repro.guestlib import emit_runtime
from repro.isa import AsmBuilder
from repro.kernel.sysnums import SYS

N_ITEMS = 512


def build_program():
    b = AsmBuilder()
    emit_runtime(b)

    b.label("main")
    b.addi("sp", "sp", -16)
    b.sd("ra", 8, "sp")
    b.la("a0", "producer")
    b.li("a1", 0)
    b.call("rt_thread_create")
    b.sd("a0", 0, "sp")
    # wait for the producer's publish flag (cross-node futex)
    b.label(".wait_flag")
    b.la("t0", "done_flag")
    b.ld("t1", 0, "t0")
    b.bnez("t1", ".flag_set")
    b.la("a0", "done_flag")
    b.li("a1", 0)  # FUTEX_WAIT
    b.li("a2", 0)
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.j(".wait_flag")
    b.label(".flag_set")
    # sum the array the producer filled on the other node
    b.la("t0", "items")
    b.li("t1", 0)
    b.li("t2", 0)
    b.label(".sum_loop")
    b.slli("t3", "t1", 3)
    b.add("t3", "t3", "t0")
    b.ld("t4", 0, "t3")
    b.add("t2", "t2", "t4")
    b.addi("t1", "t1", 1)
    b.li("t5", N_ITEMS)
    b.blt("t1", "t5", ".sum_loop")
    b.la("t0", "total")
    b.sd("t2", 0, "t0")
    # join, then persist the result: fd = openat(0, "sum.bin", O_CREAT|O_RDWR)
    b.ld("a0", 0, "sp")
    b.call("rt_join")
    b.li("a0", 0)
    b.la("a1", "path")
    b.li("a2", 0o102)
    b.li("a7", SYS.OPENAT)
    b.ecall()
    b.la("a1", "total")
    b.li("a2", 8)
    b.li("a7", SYS.WRITE)
    b.ecall()
    b.li("a0", 0)
    b.ld("ra", 8, "sp")
    b.addi("sp", "sp", 16)
    b.ret()

    b.comment("producer: items[i] = i*i, then publish and wake the waiter")
    b.label("producer")
    b.la("t0", "items")
    b.li("t1", 0)
    b.label(".prod_loop")
    b.mul("t2", "t1", "t1")
    b.slli("t3", "t1", 3)
    b.add("t3", "t3", "t0")
    b.sd("t2", 0, "t3")
    b.addi("t1", "t1", 1)
    b.li("t4", N_ITEMS)
    b.blt("t1", "t4", ".prod_loop")
    b.la("t5", "done_flag")
    b.li("t6", 1)
    b.sd("t6", 0, "t5")
    b.la("a0", "done_flag")
    b.li("a1", 1)  # FUTEX_WAKE
    b.li("a2", 1)
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.li("a0", 0)
    b.ret()

    b.data()
    b.align(8)
    b.label("done_flag").quad(0)
    b.label("total").quad(0)
    b.label("path").asciz("sum.bin")
    b.bss()
    b.align(4096)
    b.label("items").space(8 * N_ITEMS)
    b.text()
    return b.assemble()


def main() -> None:
    result = Cluster(2, DQEMUConfig()).run(build_program())
    total = int.from_bytes(result.files["sum.bin"], "little")
    expected = sum(i * i for i in range(N_ITEMS))

    print("exit code     :", result.exit_code)
    print(f"virtual time  : {result.virtual_ns / 1e6:.3f} ms")
    print("guest's sum   :", total)
    print("expected      :", expected)
    print("remote spawns :", result.stats.protocol.remote_thread_spawns)
    assert total == expected
    print("\nOK — producer on a slave node, consumer on the master, one futex.")


if __name__ == "__main__":
    main()
