#!/usr/bin/env python
"""Page splitting (paper §5.1) on a false-sharing microbenchmark.

Two guest threads on two different nodes hammer disjoint 128-byte slices of
the SAME page.  Without splitting, the page ping-pongs between the nodes
(every write needs the Modified state).  With splitting enabled, the master
detects the disjoint write pattern, splits the page into shadow pages (one
per region, same page offset — Fig. 4) and broadcasts the translation
table; after that every write is node-local.

Also demonstrates the correctness escape hatch: at the end, the main thread
reads 8 bytes straddling the region boundary, which forces the master to
merge the shadow pages back — data intact.

Run:  python examples/false_sharing_splitting.py
"""

from repro import Cluster, DQEMUConfig
from repro.workloads.common import emit_fanout_main, workload_builder

ITERS = 60_000


def build_program():
    b = workload_builder()

    def post_join(bb):
        # read straddling the split boundary: forces a merge, then prints
        bb.la("t0", "arr")
        bb.ld("a0", 2044, "t0")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, 2, post_join=post_join)
    b.label("worker")
    b.li("t0", 2048)
    b.mul("t0", "a0", "t0")
    b.la("t1", "arr")
    b.add("t1", "t1", "t0")  # my 128-byte slice, 2 KiB apart per thread
    b.li("t2", 0)
    b.li("t6", ITERS)
    b.label("loop")
    b.andi("t3", "t2", 127)
    b.add("t4", "t1", "t3")
    b.lbu("t5", 0, "t4")
    b.addi("t5", "t5", 1)
    b.sb("t5", 0, "t4")
    b.addi("t2", "t2", 1)
    b.blt("t2", "t6", "loop")
    b.li("a0", 0)
    b.ret()
    b.bss()
    b.align(4096)
    b.label("arr")
    b.space(4096)
    b.text()
    return b.assemble()


def main() -> None:
    program = build_program()
    fast = dict(dsm_service_ns=30_000, splitting_trigger=6)  # demo-scale knobs
    for splitting in (False, True):
        cfg = DQEMUConfig(splitting_enabled=splitting, **fast)
        result = Cluster(2, cfg).run(build_program())
        p = result.stats.protocol
        print(f"splitting={'on ' if splitting else 'off'}  "
              f"time: {result.virtual_ns / 1e6:7.2f} ms  "
              f"page requests: {p.page_requests:4d}  "
              f"splits: {p.splits}  merges: {p.merges}")
    print("\nWith splitting on: the false-sharing page was split into shadow")
    print("pages (each node writes locally), then merged back when the final")
    print("read straddled the region boundary — same printed value either way.")


if __name__ == "__main__":
    main()
