#!/usr/bin/env python
"""Heterogeneous clusters: nodes with different core counts and clocks.

The paper's introduction motivates DBT as the enabler for clusters whose
nodes have *different kinds of physical cores*.  This example builds such a
cluster — a thin 1-core half-clock node next to a fat 8-core node — runs
the embarrassingly-parallel pi workload across it, and shows (a) results
are identical to a homogeneous run, (b) per-thread lifetimes reflect each
node's capability, (c) live migration (sched_setaffinity) lets a guest
thread escape the slow node.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import Cluster, DQEMUConfig
from repro.workloads import pi_taylor

THREADS = 8
TERMS = 600
REPS = 6


def main() -> None:
    program = pi_taylor.build(n_threads=THREADS, terms=TERMS, reps=REPS)
    expected = pi_taylor.reference_output(TERMS)

    hetero = DQEMUConfig(
        node_cores={1: 1, 2: 8},  # node 1 is thin, node 2 is fat
        node_ghz={1: 1.65, 2: 3.3},  # ... and runs at half clock
    ).time_scaled(1000)

    result = Cluster(2, hetero).run(program)
    assert result.stdout == expected, "heterogeneity must not change results"

    print(f"{THREADS} threads round-robin over: node1 = 1 core @1.65GHz, "
          "node2 = 8 cores @3.3GHz\n")
    print("tid  node  lifetime")
    for ts in sorted(result.stats.threads.values(), key=lambda t: t.tid):
        if ts.tid == 1 or ts.finished_ns is None:
            continue
        life = (ts.finished_ns - ts.created_ns) / 1e3
        print(f"{ts.tid:>3}  {ts.node:>4}  {life:9.1f} us")

    by_node = {1: [], 2: []}
    for ts in result.stats.threads.values():
        if ts.tid != 1 and ts.finished_ns is not None:
            by_node[ts.node].append(ts.finished_ns - ts.created_ns)
    slow = max(by_node[1]) / 1e3
    fast = max(by_node[2]) / 1e3
    print(f"\nslowest thread on the thin node: {slow:9.1f} us")
    print(f"slowest thread on the fat node : {fast:9.1f} us")
    print(f"capability gap                 : {slow / fast:9.1f}x")
    print("\nSame program, same answers — the DSM hides the asymmetry; only")
    print("time differs. A scheduler (or the guest itself, via")
    print("sched_setaffinity) can exploit that: see tests/test_migration.py.")


if __name__ == "__main__":
    main()
