#!/usr/bin/env python
"""Hint-based locality-aware scheduling (paper §5.3), demonstrated.

A fluidanimate-like stencil (one block per thread; neighbours exchange
boundary cells every iteration) runs twice on the same cluster:

* round-robin placement — neighbour blocks usually land on different
  nodes, so every boundary read page-faults across the network;
* hint-based placement — the guest emits `hint` instructions grouping
  consecutive blocks, and the master's scheduler co-locates each group.

The per-thread time breakdown shows where the win comes from: the
page-fault component collapses while execution time stays the same.

Run:  python examples/locality_scheduling.py
"""

from repro import Cluster, DQEMUConfig
from repro.workloads import fluidanimate

THREADS = 16
ITERS = 3
SLAVES = 2


def run(scheduler: str):
    # hint=("div", 8): blocks 0-7 are group 0, blocks 8-15 group 1
    program = fluidanimate.build(n_threads=THREADS, iters=ITERS, hint=("div", 8))
    result = Cluster(SLAVES, DQEMUConfig(scheduler=scheduler)).run(program)
    assert result.stdout == fluidanimate.reference_output(THREADS, ITERS)
    return result


def main() -> None:
    print(f"{THREADS} stencil blocks, {ITERS} iterations, {SLAVES} slave nodes\n")
    for scheduler in ("round_robin", "hint"):
        result = run(scheduler)
        totals = result.stats.totals()
        print(f"scheduler = {scheduler}")
        print(f"  placements        : {result.placements}")
        print(f"  total time        : {result.virtual_ns / 1e6:8.3f} ms")
        print(f"  execute (sum)     : {totals['execute_ns'] / 1e6:8.3f} ms")
        print(f"  page faults (sum) : {totals['pagefault_ns'] / 1e6:8.3f} ms")
        print(f"  syscalls (sum)    : {totals['syscall_ns'] / 1e6:8.3f} ms\n")
    print("Hint-based grouping keeps each block's neighbours on the same node,")
    print("so the boundary exchange stops crossing the network (paper Fig. 8).")


if __name__ == "__main__":
    main()
