#!/usr/bin/env python
"""Parallel pi: the paper's Fig. 5 scalability experiment, hands-on.

A multi-threaded guest program (N threads, each computing pi by Taylor
series, no data sharing) runs on clusters of increasing size, plus the
vanilla single-node QEMU baseline.  Demonstrates:

* the guest runtime library (thread_create/join built on clone + futex);
* remote thread migration — worker threads are created on slave nodes;
* near-linear scaling for embarrassingly-parallel guests;
* bit-exact validation against a Python reference.

Run:  python examples/parallel_pi.py
"""

from repro import Cluster, DQEMUConfig
from repro.baselines import run_qemu
from repro.workloads import pi_taylor

THREADS = 24
TERMS = 800
REPS = 24


def main() -> None:
    program = pi_taylor.build(n_threads=THREADS, terms=TERMS, reps=REPS)
    expected = pi_taylor.reference_output(TERMS)
    # Communication costs are scaled with the reduced compute so the speedup
    # curve keeps the paper's shape (see DQEMUConfig.time_scaled).
    config = DQEMUConfig().time_scaled(1000)

    print(f"{THREADS} threads x {TERMS}-term Taylor series x {REPS} reps")
    print(f"reference: pi = {pi_taylor.reference(TERMS):.9f}\n")

    base_ns = None
    for n_slaves in (1, 2, 4, 6):
        result = Cluster(n_slaves, config).run(program)
        assert result.stdout == expected, "guest result diverged from reference!"
        base_ns = base_ns or result.virtual_ns
        print(
            f"slave nodes: {n_slaves}   virtual time: {result.virtual_ns / 1e6:8.3f} ms"
            f"   speedup vs 1 node: {base_ns / result.virtual_ns:5.2f}x"
            f"   threads spread: {result.placements}"
        )

    qemu = run_qemu(program, config=config)
    assert qemu.stdout == expected
    print(
        f"\nvanilla QEMU (single node): {qemu.virtual_ns / 1e6:8.3f} ms"
        f"   speedup vs DQEMU-1: {base_ns / qemu.virtual_ns:5.2f}x"
        "   (the paper's dashed 1.04 line)"
    )


if __name__ == "__main__":
    main()
