#!/usr/bin/env python
"""Quickstart: assemble a guest program and run it on a DQEMU cluster.

Shows the core public API end to end:

* write GA64 assembly (the guest ISA) and assemble it;
* build a Cluster (1 master + N slaves) and run the program;
* inspect the result: stdout, exit code, virtual time, protocol counters.

Run:  python examples/quickstart.py
"""

from repro import Cluster, DQEMUConfig, assemble

SOURCE = """
# Hello world, distributed: main writes a greeting, then spawns no threads.
_start:
    li a0, 1            # fd = stdout
    la a1, message
    li a2, 22
    li a7, 64           # write(2)
    ecall

    li a0, 0
    li a7, 94           # exit_group(0)
    ecall

.data
message: .asciz "hello from the guest!\\n"
"""


def main() -> None:
    program = assemble(SOURCE)

    # A cluster with 2 slave nodes, default paper-calibrated configuration
    # (4 cores/node @ 3.3 GHz, 1 Gb/s switch, ~55 us RTT).
    cluster = Cluster(n_slaves=2, config=DQEMUConfig())
    result = cluster.run(program)

    print("guest stdout :", result.stdout.strip())
    print("exit code    :", result.exit_code)
    print(f"virtual time : {result.virtual_ns / 1e6:.3f} ms")
    print("page requests:", result.stats.protocol.page_requests)
    print("syscalls     :", result.stats.protocol.delegated_syscalls, "delegated,",
          result.stats.protocol.local_syscalls, "local")
    print("messages     :", result.fabric.messages_sent, "on the wire,",
          result.fabric.bytes_sent, "bytes")

    assert result.stdout == "hello from the guest!\n"
    assert result.exit_code == 0
    print("\nOK — the guest ran across the simulated cluster.")


if __name__ == "__main__":
    main()
