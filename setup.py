"""Setup shim for offline editable installs.

The evaluation environment has no network access and no ``wheel`` package, so
PEP 517 editable builds fail; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``python setup.py develop``) work. Package
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
