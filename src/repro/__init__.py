"""DQEMU reproduction: a scalable distributed dynamic binary translator.

This package reimplements the system of *DQEMU: A Scalable Emulator with
Retargetable DBT on Distributed Platforms* (Zhao et al., ICPP 2020) on a
deterministic discrete-event cluster simulator, together with every
substrate the paper depends on: a guest RISC ISA and assembler, a QEMU-like
DBT engine, a page-level directory-based DSM, a delegated syscall kernel,
and the paper's three optimizations (page splitting, data forwarding,
hint-based locality-aware scheduling).

Quickstart::

    from repro import Cluster, DQEMUConfig, assemble

    program = assemble('''
    _start:
        la a1, msg
        li a0, 1          # stdout
        li a2, 14
        li a7, 64         # write
        ecall
        li a0, 0
        li a7, 94         # exit_group
        ecall
    .data
    msg: .asciz "hello cluster\\n"
    ''')
    result = Cluster(n_slaves=2).run(program)
    assert result.stdout == "hello cluster\\n"
"""

from repro.core.cluster import Cluster, RunResult
from repro.core.config import DQEMUConfig
from repro.core.jobs import Job, JobState
from repro.errors import AdmissionError
from repro.core.services.base import ServiceTimeout
from repro.isa import AsmBuilder, Program, assemble
from repro.net.faults import FaultPlan, FaultRule

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "AsmBuilder",
    "Cluster",
    "DQEMUConfig",
    "FaultPlan",
    "FaultRule",
    "Job",
    "JobState",
    "Program",
    "RunResult",
    "ServiceTimeout",
    "assemble",
    "__version__",
]
