"""Experiment harnesses, metrics and reporting for the paper's evaluation."""

from repro.analysis.experiments import (
    Fig5PartitionResult,
    Fig5Result,
    Fig5ShardedResult,
    Fig6Result,
    Fig7Result,
    Fig8Result,
    PartitionScenario,
    Table1Result,
    run_fig5,
    run_fig5_partition,
    run_fig5_sharded,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table1,
)
from repro.analysis.metrics import (
    mean_fault_latency_us,
    normalized,
    speedup,
    throughput_mbps,
)
from repro.analysis.reporting import render_series, render_table

__all__ = [
    "Fig5PartitionResult",
    "Fig5Result",
    "Fig5ShardedResult",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "PartitionScenario",
    "Table1Result",
    "mean_fault_latency_us",
    "normalized",
    "render_series",
    "render_table",
    "run_fig5",
    "run_fig5_partition",
    "run_fig5_sharded",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_table1",
    "speedup",
    "throughput_mbps",
]
