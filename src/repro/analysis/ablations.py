"""Ablation studies for DQEMU's design choices.

The paper motivates several mechanisms qualitatively; these sweeps quantify
each one on the simulator:

* :func:`ablate_forwarding_window` — read-ahead window cap vs sequential
  bandwidth (§5.2's Linux-readahead-style doubling);
* :func:`ablate_splitting_trigger` — how the false-sharing trigger count
  trades detection latency against spurious splits (§5.1's "over 10 times");
* :func:`ablate_quantum` — scheduling-quantum size vs contended-lock cost
  (vCPU timeslicing granularity);
* :func:`ablate_dsm_service` — master protocol-software cost vs remote-page
  latency (the gap between the 40 µs wire bound and the measured 410 µs the
  paper discusses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import mean_fault_latency_us, throughput_mbps
from repro.analysis.reporting import render_table
from repro.core.cluster import Cluster
from repro.core.config import DQEMUConfig
from repro.workloads import memaccess, mutex_bench

__all__ = [
    "AblationResult",
    "ablate_forwarding_window",
    "ablate_splitting_trigger",
    "ablate_quantum",
    "ablate_dsm_service",
]

RUN_KW = dict(max_virtual_ms=60_000_000)


@dataclass
class AblationResult:
    name: str
    headers: list[str]
    rows: list[tuple]

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.name)

    def column(self, idx: int) -> list:
        return [row[idx] for row in self.rows]


def ablate_forwarding_window(
    windows=(0, 4, 16, 64, 256), npages: int = 128
) -> AblationResult:
    """Window 0 disables forwarding entirely."""
    prog = memaccess.build_seq_walk(npages=npages)
    rows = []
    for w in windows:
        cfg = DQEMUConfig(
            forwarding_enabled=w > 0,
            forwarding_initial_window=max(w // 2, 1) if w else 1,
            forwarding_max_window=max(w, 1),
        )
        r = Cluster(1, cfg).run(prog, **RUN_KW)
        elapsed, _ = memaccess.parse_output(r.stdout)
        rows.append(
            (
                w,
                throughput_mbps(memaccess.seq_walk_bytes(npages), elapsed),
                mean_fault_latency_us(r),
                r.stats.protocol.pages_forwarded,
            )
        )
    return AblationResult(
        "Ablation — forwarding window cap (sequential walk)",
        ["max window", "MB/s", "fault latency us", "pages pushed"],
        rows,
    )


def ablate_splitting_trigger(
    triggers=(5, 10, 20, 10_000), iters: int = 80_000
) -> AblationResult:
    """Run at a reduced protocol-service scale so ownership ping-pong cycles
    are short enough for every trigger level to be reachable in a bounded
    run; trigger=10_000 is effectively 'never split'."""
    prog_args = dict(n_threads=8, n_nodes=2, iters=iters, warmup_iters=iters)
    rows = []
    for trig in triggers:
        cfg = DQEMUConfig(
            splitting_enabled=True, splitting_trigger=trig, dsm_service_ns=30_000
        )
        r = Cluster(2, cfg).run(memaccess.build_false_sharing(**prog_args), **RUN_KW)
        elapsed, _ = memaccess.parse_false_sharing_output(r.stdout)
        rows.append(
            (
                trig,
                memaccess.aggregate_bandwidth_mbps(elapsed, iters),
                r.stats.protocol.splits,
                r.stats.protocol.merges,
            )
        )
    return AblationResult(
        "Ablation — false-sharing trigger count",
        ["trigger", "aggregate MB/s", "splits", "merges"],
        rows,
    )


def ablate_quantum(
    quanta=(5_000, 20_000, 50_000, 200_000), iters: int = 10_000
) -> AblationResult:
    rows = []
    for q in quanta:
        cfg = DQEMUConfig(quantum_cycles=q)
        r = Cluster(2, cfg).run(
            mutex_bench.build(n_threads=8, iters=iters, private=False), **RUN_KW
        )
        rows.append(
            (
                q,
                mutex_bench.elapsed_ns(r.stdout) / 1e6,
                r.stats.protocol.futex_waits,
            )
        )
    return AblationResult(
        "Ablation — scheduling quantum vs contended global lock",
        ["quantum cycles", "lock phase ms", "futex waits"],
        rows,
    )


def ablate_dsm_service(
    services_us=(40, 160, 320, 640), npages: int = 64
) -> AblationResult:
    prog = memaccess.build_seq_walk(npages=npages)
    rows = []
    for s in services_us:
        cfg = DQEMUConfig(dsm_service_ns=s * 1000)
        r = Cluster(1, cfg).run(prog, **RUN_KW)
        elapsed, _ = memaccess.parse_output(r.stdout)
        rows.append(
            (
                s,
                mean_fault_latency_us(r),
                throughput_mbps(memaccess.seq_walk_bytes(npages), elapsed),
            )
        )
    return AblationResult(
        "Ablation — master protocol service time vs remote-page latency",
        ["service us", "fault latency us", "MB/s"],
        rows,
    )
