"""Experiment harnesses: one per table/figure of the paper's evaluation (§6).

Each ``run_*`` function regenerates the corresponding result — same
workload, same parameter roles, same series — on the simulated cluster, and
returns a structured result with a ``render()`` that prints the paper-style
rows.  Scale notes:

* Iteration counts are scaled down (Python simulation vs. a real cluster);
  where an experiment's *compute* is scaled by k, its *communication* costs
  are scaled by the same k (``DQEMUConfig.time_scaled``) so that the
  compute:communication ratio — and therefore the curve shape — is
  preserved.  Table 1 and Fig. 6/8 run with the real (unscaled) §6.1 network
  constants, since those experiments measure the communication costs
  themselves.
* The benchmarks in ``benchmarks/`` call these with their default
  parameters; EXPERIMENTS.md records paper-vs-measured for every row.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.metrics import mean_fault_latency_us, speedup, throughput_mbps
from repro.analysis.reporting import render_series, render_service_breakdown, render_table
from repro.baselines.qemu import run_qemu
from repro.core.cluster import Cluster, RunResult
from repro.core.config import DQEMUConfig
from repro.core.services.base import ServiceTimeout
from repro.errors import SimulationError
from repro.net.faults import FaultPlan, drop
from repro.workloads import (
    blackscholes,
    fluidanimate,
    memaccess,
    mutex_bench,
    pi_taylor,
    swaptions,
    x264,
)

__all__ = [
    "Fig5Result",
    "Fig5CrashResult",
    "Fig5HeartbeatResult",
    "Fig5PartitionResult",
    "Fig5ShardedResult",
    "Fig6Result",
    "Fig6CoherenceResult",
    "COHERENCE_METRICS",
    "Table1Result",
    "Fig7Result",
    "Fig8Result",
    "CrashScenario",
    "HeartbeatScenario",
    "PartitionScenario",
    "run_fig5",
    "run_fig5_crash",
    "run_fig5_heartbeat",
    "run_fig5_partition",
    "run_fig5_sharded",
    "run_fig6",
    "run_fig6_coherence",
    "run_table1",
    "run_fig7",
    "run_fig8",
]

RUN_KW = dict(max_virtual_ms=60_000_000)
MAIN_TID = 1


def _worker_tids(result: RunResult) -> list[int]:
    return [tid for tid in result.stats.threads if tid != MAIN_TID]


# ---------------------------------------------------------------------------
# Fig. 5 — performance scalability (pi by Taylor series, no sharing)
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    slave_counts: list[int]
    times_ns: dict[int, int]
    qemu_ns: int
    params: dict

    @property
    def speedups(self) -> dict[int, float]:
        base = self.times_ns[self.slave_counts[0]]
        return {n: base / t for n, t in self.times_ns.items()}

    @property
    def qemu_speedup(self) -> float:
        return self.times_ns[self.slave_counts[0]] / self.qemu_ns

    def render(self) -> str:
        return render_series(
            "Fig. 5 — speedup vs slave nodes (pi-Taylor, no sharing)",
            self.slave_counts,
            {
                "DQEMU": [self.speedups[n] for n in self.slave_counts],
                "QEMU-4.2.0": [self.qemu_speedup] * len(self.slave_counts),
            },
        )


def run_fig5(
    n_threads: int = 48,
    terms: int = 1500,
    reps: int = 22,
    slave_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    comm_scale: float = 1000.0,
) -> Fig5Result:
    """Paper: 120 threads x 64 K series; here compute and communication are
    both scaled down by ~the same factor (see module docstring)."""
    prog = pi_taylor.build(n_threads=n_threads, terms=terms, reps=reps)
    cfg = DQEMUConfig().time_scaled(comm_scale)
    times = {}
    for n in slave_counts:
        times[n] = Cluster(n, cfg).run(prog, **RUN_KW).virtual_ns
    qemu_ns = run_qemu(prog, config=cfg, **RUN_KW).virtual_ns
    return Fig5Result(
        slave_counts=list(slave_counts),
        times_ns=times,
        qemu_ns=qemu_ns,
        params=dict(n_threads=n_threads, terms=terms, reps=reps, comm_scale=comm_scale),
    )


# ---------------------------------------------------------------------------
# Fig. 5 (sharded) — master-shard sweep at high node counts
# ---------------------------------------------------------------------------


@dataclass
class Fig5ShardedResult:
    """Scalability sweep over ``DQEMUConfig.master_shards`` (ROADMAP "Async /
    sharded master"): for each (slave count, shard count) cell, the run time
    plus the coherence service's mailbox queue wait — the head-of-line
    blocking in the per-node manager that sharding exists to attack."""

    slave_counts: list[int]
    shard_counts: list[int]
    times_ns: dict[tuple[int, int], int]  # (slaves, shards) -> virtual ns
    coherence_requests: dict[tuple[int, int], int]
    coherence_wait_ns: dict[tuple[int, int], int]
    params: dict

    def mean_wait_us(self, slaves: int, shards: int) -> float:
        reqs = self.coherence_requests[(slaves, shards)]
        if reqs == 0:
            return 0.0
        return self.coherence_wait_ns[(slaves, shards)] / reqs / 1e3

    def render(self) -> str:
        rows = []
        for n in self.slave_counts:
            for k in self.shard_counts:
                rows.append(
                    (
                        n,
                        k,
                        self.times_ns[(n, k)] / 1e6,
                        self.coherence_requests[(n, k)],
                        self.coherence_wait_ns[(n, k)] / 1e3,
                        self.mean_wait_us(n, k),
                    )
                )
        return render_table(
            [
                "slaves",
                "shards",
                "time (ms)",
                "coherence reqs",
                "queue-wait (us)",
                "mean wait (us)",
            ],
            rows,
            title=(
                "Fig. 5 (sharded) — master-shard sweep: coherence mailbox "
                "queue wait vs shard count"
            ),
        )


def run_fig5_sharded(
    n_threads: int = 16,
    n_options: int = 16320,
    reps: int = 16,
    slave_counts: Sequence[int] = (4, 6),
    shard_counts: Sequence[int] = (1, 2, 4),
    comm_scale: float = 100.0,
) -> Fig5ShardedResult:
    """Master-shard sweep at the high end of the Fig. 5 node range.

    Fig. 5's pi-Taylor kernel shares no data, so its page faults happen only
    at thread startup (already staggered by clone serialization) and its
    manager mailboxes never back up; the sweep instead uses the Fig. 7
    blackscholes kernel, whose boundary false sharing sustains coherence
    traffic on many distinct pages per node for the whole run — exactly the
    load where one manager per node serializes requests for unrelated pages.
    """
    prog = blackscholes.build(n_threads=n_threads, n_options=n_options, reps=reps)
    times: dict[tuple[int, int], int] = {}
    requests: dict[tuple[int, int], int] = {}
    waits: dict[tuple[int, int], int] = {}
    for n in slave_counts:
        for k in shard_counts:
            cfg = DQEMUConfig(master_shards=k).time_scaled(comm_scale)
            result = Cluster(n, cfg).run(prog, **RUN_KW)
            coherence = result.stats.services["coherence"]
            times[(n, k)] = result.virtual_ns
            requests[(n, k)] = coherence.requests
            waits[(n, k)] = coherence.queue_wait_ns
    return Fig5ShardedResult(
        slave_counts=list(slave_counts),
        shard_counts=list(shard_counts),
        times_ns=times,
        coherence_requests=requests,
        coherence_wait_ns=waits,
        params=dict(
            n_threads=n_threads, n_options=n_options, reps=reps,
            comm_scale=comm_scale,
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 5 (partition) — reliable delivery under loss and a mid-run partition
# ---------------------------------------------------------------------------


@dataclass
class PartitionScenario:
    """One row of the recovery experiment: a fault schedule and its outcome."""

    name: str
    completed: bool
    virtual_ns: Optional[int]  # None when the run aborted
    goodput_mips: Optional[float]  # guest insns / virtual second
    dropped_frames: int
    retransmits: int
    recoveries: int
    reply_replays: int
    mean_recovery_us: float
    failure: str = ""  # ServiceTimeout text when completed is False

    def row(self) -> tuple:
        return (
            self.name,
            "yes" if self.completed else "ABORTED",
            "-" if self.virtual_ns is None else self.virtual_ns / 1e3,
            "-" if self.goodput_mips is None else self.goodput_mips,
            self.dropped_frames,
            self.retransmits,
            self.recoveries,
            self.mean_recovery_us,
        )


@dataclass
class Fig5PartitionResult:
    """Partition-then-heal sweep for the RPC reliability layer (ROADMAP
    "Robustness": retransmission with backoff riding the fault injector).

    Same blackscholes kernel as the sharded sweep — its boundary false
    sharing keeps coherence traffic on the wire for the whole run, so any
    fault window is guaranteed to hit in-flight RPCs.  Scenarios: a clean
    run with the retry budget armed (must behave bit-identically to a
    retry-free run), two background drop rates (goodput degrades but every
    loss is retransmitted), and a mid-run partition of one slave — run once
    with retries disabled (the run must abort with a ``ServiceTimeout``)
    and once with the budget armed (the partition is ridden out and the run
    completes).
    """

    scenarios: list[PartitionScenario]
    healed_breakdown: str  # per-service table from the partition+retry run
    peer_states: dict[int, str]  # final health view of the healed run
    params: dict

    def scenario(self, name: str) -> PartitionScenario:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise KeyError(name)

    def render(self) -> str:
        table = render_table(
            [
                "scenario",
                "completed",
                "time (us)",
                "goodput (MIPS)",
                "drops",
                "retransmits",
                "recovered",
                "mean recovery (us)",
            ],
            [s.row() for s in self.scenarios],
            title=(
                "Fig. 5 (partition) — goodput vs drop rate and "
                "partition-then-heal recovery"
            ),
        )
        aborted = [s for s in self.scenarios if not s.completed]
        lines = [table, ""]
        for s in aborted:
            lines.append(f"{s.name}: {s.failure}")
        peers = ", ".join(
            f"n{nid}={state}" for nid, state in sorted(self.peer_states.items())
        )
        lines.append(f"peer health after healed run: {peers}")
        lines.append("")
        lines.append(self.healed_breakdown)
        return "\n".join(lines)


def run_fig5_partition(
    n_threads: int = 8,
    n_options: int = 8160,
    reps: int = 8,
    n_slaves: int = 2,
    comm_scale: float = 100.0,
    timeout_ns: int = 20_000,
    retries: int = 6,
    backoff_base_ns: int = 10_000,
    backoff_jitter_ns: int = 2_000,
    drop_everies: Sequence[int] = (120, 40),
    window_frac: float = 0.35,
    window_ns: int = 150_000,
    seed: int = 3,
) -> Fig5PartitionResult:
    """Reliable-delivery recovery sweep (see :class:`Fig5PartitionResult`).

    The retry budget must out-span the partition: with the defaults the
    final retransmit of a call first sent at the window's start goes out
    ``timeout * retries + sum(backoffs)`` ≈ 750 us after the first
    transmission, comfortably past the 150 us window.  The partitioned node
    is the highest slave id; the window starts at ``window_frac`` of the
    clean run's duration, when worker threads are mid-kernel and coherence
    traffic is dense.
    """
    prog = blackscholes.build(n_threads=n_threads, n_options=n_options, reps=reps)
    reliable = dict(
        rpc_timeout_ns=timeout_ns,
        rpc_max_retries=retries,
        rpc_backoff_base_ns=backoff_base_ns,
        rpc_backoff_jitter_ns=backoff_jitter_ns,
    )

    def run(**cfg_kw):
        cfg = DQEMUConfig(**cfg_kw).time_scaled(comm_scale)
        return Cluster(n_slaves, cfg).run(prog, **RUN_KW)

    def scenario(name: str, result: RunResult) -> PartitionScenario:
        return PartitionScenario(
            name=name,
            completed=True,
            virtual_ns=result.virtual_ns,
            goodput_mips=result.stats.insns_executed / (result.virtual_ns / 1e9) / 1e6,
            dropped_frames=result.faults.dropped if result.faults else 0,
            retransmits=result.rpc.retransmits,
            recoveries=result.rpc.recoveries,
            reply_replays=result.rpc.reply_replays,
            mean_recovery_us=result.rpc.mean_recovery_us,
        )

    scenarios = []

    clean = run(**reliable)
    scenarios.append(scenario("no faults", clean))

    for every in drop_everies:
        plan = FaultPlan.of(drop(every_nth=every, loopback=False), seed=seed)
        scenarios.append(scenario(f"drop 1/{every}", run(fault_plan=plan, **reliable)))

    start = int(window_frac * clean.virtual_ns)
    plan = FaultPlan.partition([n_slaves], start, start + window_ns, seed=seed)

    try:
        bare = run(rpc_timeout_ns=timeout_ns, fault_plan=plan)
        scenarios.append(scenario("partition (no retry)", bare))
    except ServiceTimeout as exc:
        scenarios.append(
            PartitionScenario(
                name="partition (no retry)",
                completed=False,
                virtual_ns=None,
                goodput_mips=None,
                dropped_frames=0,
                retransmits=0,
                recoveries=0,
                reply_replays=0,
                mean_recovery_us=0.0,
                failure=str(exc),
            )
        )

    healed = run(fault_plan=plan, **reliable)
    scenarios.append(scenario("partition + retry", healed))

    return Fig5PartitionResult(
        scenarios=scenarios,
        healed_breakdown=render_service_breakdown(healed.stats),
        peer_states={
            nid: peer.state.value for nid, peer in healed.health.peers.items()
        },
        params=dict(
            n_threads=n_threads, n_options=n_options, reps=reps,
            n_slaves=n_slaves, comm_scale=comm_scale,
            timeout_ns=timeout_ns, retries=retries,
            backoff_base_ns=backoff_base_ns, backoff_jitter_ns=backoff_jitter_ns,
            drop_everies=tuple(drop_everies),
            window_frac=window_frac, window_ns=window_ns, seed=seed,
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 5 (crash) — node-crash tolerance: evacuate, re-home, degrade
# ---------------------------------------------------------------------------


@dataclass
class CrashScenario:
    """One row of the crash-tolerance experiment."""

    name: str
    completed: bool
    virtual_ns: Optional[int]  # None when the run aborted
    evacuated_threads: int
    lost_threads: int
    rehomed_pages: int
    lost_pages: int
    detection_ns: Optional[int]  # fault time -> failure detected/ordered
    recovery_ns: Optional[int]  # detected -> threads re-homed / drained
    failure: str = ""  # ServiceTimeout text when completed is False
    # Checkpoint sweep columns (zero / None outside the checkpointed rows).
    checkpoint_interval_ns: Optional[int] = None
    restored_threads: int = 0
    mean_rollback_ns: Optional[float] = None
    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0

    def row(self) -> tuple:
        us = lambda v: "-" if v is None else v / 1e3
        return (
            self.name,
            "yes" if self.completed else "ABORTED",
            us(self.virtual_ns),
            self.evacuated_threads,
            self.restored_threads,
            self.lost_threads,
            self.rehomed_pages,
            self.lost_pages,
            us(self.detection_ns),
            us(self.recovery_ns),
            us(self.mean_rollback_ns),
            self.checkpoints_taken,
            self.checkpoint_bytes // 1024,
        )


@dataclass
class Fig5CrashResult:
    """Node-crash tolerance sweep (ROADMAP "Robustness": health-aware
    scheduling and crash recovery; docs/PROTOCOL.md "Failure domains").

    Same blackscholes kernel as the partition sweep, one slave killed (or
    drained) mid-kernel.  Scenarios: a clean reliable run as the baseline;
    the crash with the failure domain disarmed (the run must abort with a
    ``ServiceTimeout`` — the seed behavior); the same crash with evacuation
    armed (the master declares the node dead, re-homes its directory
    footprint, reaps the threads whose contexts died with it, and the run
    completes degraded); a cooperative drain of the same node at the same
    time (every thread is evacuated, nothing is lost); and the same crash
    with periodic checkpointing armed at a sweep of intervals — the
    interval trades checkpoint wire bytes against rollback distance, and at
    a short enough interval every one of the victim's threads restores from
    its last snapshot (zero loss).
    """

    scenarios: list[CrashScenario]
    evacuated_breakdown: str  # per-service table from the crash+evac run
    peer_states: dict[int, str]  # final health view of the crash+evac run
    params: dict
    checkpoint_breakdown: str = ""  # from the shortest-interval checkpoint run

    def scenario(self, name: str) -> CrashScenario:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise KeyError(name)

    def checkpoint_scenarios(self) -> list[CrashScenario]:
        return [s for s in self.scenarios if s.checkpoint_interval_ns is not None]

    def as_json_dict(self) -> dict:
        """Machine-readable form for ``BENCH_crash.json`` (byte-stable)."""
        return {
            "experiment": "fig5_crash",
            "params": dict(self.params),
            "peer_states": {
                str(nid): state for nid, state in self.peer_states.items()
            },
            "scenarios": [dataclasses.asdict(s) for s in self.scenarios],
        }

    def render(self) -> str:
        table = render_table(
            [
                "scenario",
                "completed",
                "time (us)",
                "evacuated",
                "restored",
                "lost threads",
                "rehomed pages",
                "lost M pages",
                "detection (us)",
                "recovery (us)",
                "rollback (us)",
                "ckpt frames",
                "ckpt wire (KiB)",
            ],
            [s.row() for s in self.scenarios],
            title=(
                "Fig. 5 (crash) — node-crash tolerance: evacuation, "
                "checkpoint/restore, re-homing, graceful degradation"
            ),
        )
        aborted = [s for s in self.scenarios if not s.completed]
        lines = [table, ""]
        for s in aborted:
            lines.append(f"{s.name}: {s.failure}")
        peers = ", ".join(
            f"n{nid}={state}" for nid, state in sorted(self.peer_states.items())
        )
        lines.append(f"peer health after crash+evacuation run: {peers}")
        lines.append("")
        lines.append(self.evacuated_breakdown)
        if self.checkpoint_breakdown:
            lines.append("")
            lines.append(self.checkpoint_breakdown)
        return "\n".join(lines)


def run_fig5_crash(
    n_threads: int = 8,
    n_options: int = 8160,
    reps: int = 8,
    n_slaves: int = 3,
    comm_scale: float = 100.0,
    timeout_ns: int = 20_000,
    retries: int = 4,
    backoff_base_ns: int = 10_000,
    backoff_jitter_ns: int = 2_000,
    crash_frac: float = 0.35,
    seed: int = 3,
    victim: Optional[int] = None,
    checkpoint_fracs: Sequence[float] = (0.02, 0.05, 0.15),
) -> Fig5CrashResult:
    """Crash-tolerance sweep (see :class:`Fig5CrashResult`).

    The victim (default: the highest slave id) fails at ``crash_frac`` of
    the clean run's duration — mid-kernel, with worker threads running and
    coherence traffic dense.  Detection latency is the span from the fault
    time to the detector latching the node as failed, which is bounded by
    the retry budget of the first call aimed at the corpse; recovery
    latency is the span from detection to the last thread re-homed (for a
    drain: order sent to ``DrainComplete``).

    ``checkpoint_fracs`` sweeps ``checkpoint_interval_ns`` as fractions of
    the clean run's duration: shorter intervals spend more checkpoint wire
    bytes and buy back rollback distance (and, short enough, zero loss).
    """
    prog = blackscholes.build(n_threads=n_threads, n_options=n_options, reps=reps)
    victim = n_slaves if victim is None else victim
    reliable = dict(
        rpc_timeout_ns=timeout_ns,
        rpc_max_retries=retries,
        rpc_backoff_base_ns=backoff_base_ns,
        rpc_backoff_jitter_ns=backoff_jitter_ns,
    )

    def run(**cfg_kw):
        cfg = DQEMUConfig(**cfg_kw).time_scaled(comm_scale)
        return Cluster(n_slaves, cfg).run(prog, **RUN_KW)

    def scenario(
        name: str, result: RunResult, fault_ns: Optional[int],
        interval_ns: Optional[int] = None,
    ) -> CrashScenario:
        failures = result.failures
        rec = failures.nodes.get(victim) if failures is not None else None
        detection = None
        if rec is not None and fault_ns is not None:
            detection = rec.detected_ns - fault_ns
        proto = result.stats.protocol
        return CrashScenario(
            name=name,
            completed=True,
            virtual_ns=result.virtual_ns,
            evacuated_threads=failures.evacuated_threads if failures else 0,
            lost_threads=failures.lost_threads if failures else 0,
            rehomed_pages=failures.rehomed_pages if failures else 0,
            lost_pages=failures.lost_pages if failures else 0,
            detection_ns=detection,
            recovery_ns=rec.recovery_ns if rec is not None else None,
            checkpoint_interval_ns=interval_ns,
            restored_threads=failures.restored_threads if failures else 0,
            mean_rollback_ns=failures.mean_rollback_ns if failures else None,
            checkpoints_taken=proto.checkpoints_taken,
            checkpoint_bytes=proto.checkpoint_bytes,
        )

    scenarios = []

    clean = run(**reliable)
    scenarios.append(scenario("no faults", clean, None))

    crash_at = int(crash_frac * clean.virtual_ns)
    plan = FaultPlan.crash(victim, crash_at, seed=seed)

    try:
        bare = run(fault_plan=plan, **reliable)
        scenarios.append(scenario("crash (no evacuation)", bare, crash_at))
    except ServiceTimeout as exc:
        scenarios.append(
            CrashScenario(
                name="crash (no evacuation)",
                completed=False,
                virtual_ns=None,
                evacuated_threads=0,
                lost_threads=0,
                rehomed_pages=0,
                lost_pages=0,
                detection_ns=None,
                recovery_ns=None,
                failure=str(exc),
            )
        )

    evac_kw = dict(evacuation_enabled=True, health_aware_placement=True)
    evacuated = run(fault_plan=plan, **evac_kw, **reliable)
    scenarios.append(scenario("crash + evacuation", evacuated, crash_at))

    drain_plan = FaultPlan.drain(victim, crash_at)
    drained = run(fault_plan=drain_plan, **evac_kw, **reliable)
    scenarios.append(scenario("cooperative drain", drained, crash_at))

    # Checkpoint-interval sweep: same crash, snapshots armed.  Shortest
    # interval first so its breakdown (the one with the most restores)
    # feeds the committed per-service table.
    checkpoint_breakdown = ""
    for frac in sorted(checkpoint_fracs):
        interval = max(1, int(frac * clean.virtual_ns))
        ckpt = run(
            fault_plan=plan, checkpoint_interval_ns=interval,
            **evac_kw, **reliable,
        )
        scenarios.append(
            scenario(
                f"crash + checkpoint ({frac:g}x)", ckpt, crash_at,
                interval_ns=interval,
            )
        )
        if not checkpoint_breakdown:
            checkpoint_breakdown = render_service_breakdown(ckpt.stats)

    return Fig5CrashResult(
        scenarios=scenarios,
        evacuated_breakdown=render_service_breakdown(evacuated.stats),
        peer_states={
            nid: peer.state.value for nid, peer in evacuated.health.peers.items()
        },
        params=dict(
            n_threads=n_threads, n_options=n_options, reps=reps,
            n_slaves=n_slaves, comm_scale=comm_scale,
            timeout_ns=timeout_ns, retries=retries,
            backoff_base_ns=backoff_base_ns, backoff_jitter_ns=backoff_jitter_ns,
            crash_frac=crash_frac, seed=seed, victim=victim,
            checkpoint_fracs=tuple(sorted(checkpoint_fracs)),
        ),
        checkpoint_breakdown=checkpoint_breakdown,
    )


# ---------------------------------------------------------------------------
# Fig. 5 (heartbeat) — active liveness: bounded detection vs heartbeat cost
# ---------------------------------------------------------------------------


@dataclass
class HeartbeatScenario:
    """One row of the heartbeat detection-latency/overhead experiment."""

    name: str
    completed: bool
    virtual_ns: Optional[int]  # None when the run aborted
    heartbeat_interval_ns: Optional[int]  # None: heartbeats off
    heartbeat_lease_ns: Optional[int]
    detection_bound_ns: Optional[int]  # worst-case bound from the config
    detection_ns: Optional[int]  # fault time -> failure detected
    evidence: str  # which detector fired first: rpc-timeout / lease-expiry
    lost_threads: int
    heartbeats_sent: int
    heartbeat_bytes: int  # renewal wire cost over the whole run
    lease_expiries: int  # expired lease checks (missed-window evidence)
    failure: str = ""  # SimulationError/ServiceTimeout text when aborted

    def row(self) -> tuple:
        us = lambda v: "-" if v is None else v / 1e3
        return (
            self.name,
            "yes" if self.completed else "ABORTED",
            us(self.virtual_ns),
            us(self.heartbeat_interval_ns),
            us(self.heartbeat_lease_ns),
            us(self.detection_bound_ns),
            us(self.detection_ns),
            self.evidence or "-",
            self.lost_threads,
            self.heartbeats_sent,
            self.heartbeat_bytes,
        )


@dataclass
class Fig5HeartbeatResult:
    """Active-liveness sweep (ROADMAP "Robustness": lease-based heartbeat
    failure detection; docs/PROTOCOL.md "Failure detection").

    The *quiet victim* is the failure the passive detector cannot see: a
    slave that crashes while no peer has an outstanding call against it.
    With only RPC-timeout evidence the join hangs until the virtual-time
    budget aborts the run (the seed behavior, reproduced here as an ABORTED
    row).  Arming lease-renewal heartbeats bounds detection at
    ``DQEMUConfig.heartbeat_detection_bound_ns()`` regardless of traffic:
    the sweep shows detection latency growing with the renewal interval
    while the renewal wire bytes shrink — the classic liveness
    latency/overhead tradeoff.  The busy-victim rows crash a node in the
    middle of dense coherence traffic with a *slack* lease armed: the RPC
    retry budget exhausts first and the failure record's evidence says
    ``rpc-timeout``, demonstrating that both detectors merge into the same
    per-peer health view instead of racing each other.
    """

    scenarios: list[HeartbeatScenario]
    heartbeat_breakdown: str  # per-service table, shortest-interval run
    peer_states: dict[int, str]  # final health view of that same run
    params: dict

    def scenario(self, name: str) -> HeartbeatScenario:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise KeyError(name)

    def sweep_scenarios(self) -> list[HeartbeatScenario]:
        return [
            s for s in self.scenarios
            if s.heartbeat_interval_ns is not None and s.name.startswith("quiet")
        ]

    def as_json_dict(self) -> dict:
        """Machine-readable form for ``BENCH_heartbeat.json`` (byte-stable)."""
        return {
            "experiment": "fig5_heartbeat",
            "params": dict(self.params),
            "peer_states": {
                str(nid): state for nid, state in self.peer_states.items()
            },
            "scenarios": [dataclasses.asdict(s) for s in self.scenarios],
        }

    def render(self) -> str:
        table = render_table(
            [
                "scenario",
                "completed",
                "time (us)",
                "hb interval (us)",
                "lease (us)",
                "bound (us)",
                "detection (us)",
                "evidence",
                "lost threads",
                "hb frames",
                "hb wire (B)",
            ],
            [s.row() for s in self.scenarios],
            title=(
                "Fig. 5 (heartbeat) — lease-based liveness: detection "
                "latency vs renewal overhead, quiet and busy victims"
            ),
        )
        aborted = [s for s in self.scenarios if not s.completed]
        lines = [table, ""]
        for s in aborted:
            lines.append(f"{s.name}: {s.failure}")
        peers = ", ".join(
            f"n{nid}={state}" for nid, state in sorted(self.peer_states.items())
        )
        lines.append(f"peer health after shortest-interval run: {peers}")
        lines.append("")
        lines.append(self.heartbeat_breakdown)
        return "\n".join(lines)


def run_fig5_heartbeat(
    n_threads: int = 3,
    terms: int = 600,
    reps: int = 2,
    n_slaves: int = 3,
    comm_scale: float = 100.0,
    timeout_ns: int = 5_000_000,
    retries: int = 4,
    backoff_base_ns: int = 10_000,
    backoff_jitter_ns: int = 2_000,
    crash_frac: float = 0.5,
    seed: int = 7,
    victim: Optional[int] = None,
    interval_fracs: Sequence[float] = (0.01, 0.02, 0.05),
    busy_n_options: int = 2040,
    busy_reps: int = 4,
    busy_timeout_ns: int = 20_000,
    busy_crash_frac: float = 0.35,
    busy_interval_frac: float = 0.2,
) -> Fig5HeartbeatResult:
    """Active-liveness sweep (see :class:`Fig5HeartbeatResult`).

    The quiet-victim workload is pi-Taylor (no page sharing): once the
    victim's worker finishes its quantum requests, no peer addresses it
    again, so a crash there is invisible to the passive RPC-timeout
    detector — ``rpc_timeout_ns`` is deliberately generous to make the
    passive path hopeless within the run budget.  ``interval_fracs`` sweeps
    ``heartbeat_interval_ns`` as fractions of the clean run's duration
    (lease defaulting to 4x the interval).  The busy-victim workload is
    blackscholes with tight RPC retry budgets and a slack lease
    (``busy_interval_frac``), so RPC evidence wins the race.

    Heartbeat parameters are applied *after* ``time_scaled`` — they are
    already expressed in post-scale virtual ns (derived from a measured
    clean duration), unlike the RPC constants which scale with the fabric.
    """
    prog = pi_taylor.build(n_threads=n_threads, terms=terms, reps=reps)
    victim = n_slaves if victim is None else victim
    reliable = dict(
        rpc_timeout_ns=timeout_ns,
        rpc_max_retries=retries,
        rpc_backoff_base_ns=backoff_base_ns,
        rpc_backoff_jitter_ns=backoff_jitter_ns,
        evacuation_enabled=True,
        health_aware_placement=True,
    )

    def make_cfg(hb_kw=None, **cfg_kw) -> DQEMUConfig:
        cfg = DQEMUConfig(**cfg_kw).time_scaled(comm_scale)
        if hb_kw:
            # Post-scale: heartbeat knobs are in final virtual ns already.
            cfg = cfg.with_options(**hb_kw)
        return cfg

    def run(program, cfg: DQEMUConfig) -> RunResult:
        return Cluster(n_slaves, cfg).run(program, **RUN_KW)

    def scenario(
        name: str, result: RunResult, cfg: DQEMUConfig,
        fault_ns: Optional[int], fault_victim: int,
    ) -> HeartbeatScenario:
        failures = result.failures
        rec = failures.nodes.get(fault_victim) if failures is not None else None
        detection = None
        if rec is not None and fault_ns is not None:
            detection = rec.detected_ns - fault_ns
        proto = result.stats.protocol
        armed = cfg.heartbeat_interval_ns is not None
        return HeartbeatScenario(
            name=name,
            completed=True,
            virtual_ns=result.virtual_ns,
            heartbeat_interval_ns=cfg.heartbeat_interval_ns,
            heartbeat_lease_ns=cfg.effective_heartbeat_lease_ns if armed else None,
            detection_bound_ns=cfg.heartbeat_detection_bound_ns() if armed else None,
            detection_ns=detection,
            evidence=rec.evidence if rec is not None else "",
            lost_threads=failures.lost_threads if failures else 0,
            heartbeats_sent=proto.heartbeats_sent,
            heartbeat_bytes=proto.heartbeat_bytes,
            lease_expiries=proto.heartbeat_lease_expiries,
        )

    scenarios = []

    clean = run(prog, make_cfg(**reliable))
    scenarios.append(scenario("quiet: no faults", clean, make_cfg(**reliable),
                              None, victim))

    crash_at = int(crash_frac * clean.virtual_ns)
    plan = FaultPlan.crash(victim, crash_at, seed=seed)

    # Passive detection only: nobody calls the corpse, so nothing trips the
    # retry budget and the join starves until the budget aborts the run.
    try:
        hung = run(prog, make_cfg(fault_plan=plan, **reliable))
        scenarios.append(
            scenario("quiet: crash (no heartbeat)", hung,
                     make_cfg(**reliable), crash_at, victim)
        )
    except (SimulationError, ServiceTimeout) as exc:
        scenarios.append(
            HeartbeatScenario(
                name="quiet: crash (no heartbeat)",
                completed=False,
                virtual_ns=None,
                heartbeat_interval_ns=None,
                heartbeat_lease_ns=None,
                detection_bound_ns=None,
                detection_ns=None,
                evidence="",
                lost_threads=0,
                heartbeats_sent=0,
                heartbeat_bytes=0,
                lease_expiries=0,
                failure=str(exc),
            )
        )

    # Interval sweep: detection latency grows with the renewal interval,
    # renewal wire bytes shrink.  Shortest interval first so its breakdown
    # (the most heartbeat traffic) feeds the committed per-service table.
    heartbeat_breakdown = ""
    peer_states: dict[int, str] = {}
    for frac in sorted(interval_fracs):
        interval = max(1, int(frac * clean.virtual_ns))
        cfg = make_cfg(
            hb_kw=dict(heartbeat_interval_ns=interval),
            fault_plan=plan, **reliable,
        )
        hb = run(prog, cfg)
        scenarios.append(
            scenario(f"quiet: crash + hb ({frac:g}x)", hb, cfg, crash_at, victim)
        )
        if not heartbeat_breakdown:
            heartbeat_breakdown = render_service_breakdown(hb.stats)
            peer_states = {
                nid: peer.state.value for nid, peer in hb.health.peers.items()
            }

    # Busy victim: dense coherence traffic means the first call aimed at
    # the corpse exhausts its retry budget well inside the slack lease —
    # the failure record must say the passive detector fired first.
    busy_prog = blackscholes.build(
        n_threads=2 * n_slaves, n_options=busy_n_options, reps=busy_reps
    )
    busy_kw = dict(reliable, rpc_timeout_ns=busy_timeout_ns)
    busy_clean = run(busy_prog, make_cfg(**busy_kw))
    scenarios.append(
        scenario("busy: no faults", busy_clean, make_cfg(**busy_kw),
                 None, victim)
    )
    busy_crash_at = int(busy_crash_frac * busy_clean.virtual_ns)
    busy_plan = FaultPlan.crash(victim, busy_crash_at, seed=seed)
    busy_interval = max(1, int(busy_interval_frac * busy_clean.virtual_ns))
    busy_cfg = make_cfg(
        hb_kw=dict(heartbeat_interval_ns=busy_interval),
        fault_plan=busy_plan, **busy_kw,
    )
    busy = run(busy_prog, busy_cfg)
    scenarios.append(
        scenario("busy: crash + slack hb", busy, busy_cfg,
                 busy_crash_at, victim)
    )

    return Fig5HeartbeatResult(
        scenarios=scenarios,
        heartbeat_breakdown=heartbeat_breakdown,
        peer_states=peer_states,
        params=dict(
            n_threads=n_threads, terms=terms, reps=reps,
            n_slaves=n_slaves, comm_scale=comm_scale,
            timeout_ns=timeout_ns, retries=retries,
            backoff_base_ns=backoff_base_ns, backoff_jitter_ns=backoff_jitter_ns,
            crash_frac=crash_frac, seed=seed, victim=victim,
            interval_fracs=tuple(sorted(interval_fracs)),
            busy_n_options=busy_n_options, busy_reps=busy_reps,
            busy_timeout_ns=busy_timeout_ns,
            busy_crash_frac=busy_crash_frac,
            busy_interval_frac=busy_interval_frac,
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 6 — mutex performance, worst (global lock) and best (private lock) case
# ---------------------------------------------------------------------------


@dataclass
class Fig6Result:
    slave_counts: list[int]
    worst_ns: dict[int, int]
    best_ns: dict[int, int]
    qemu_worst_ns: int
    qemu_best_ns: int
    params: dict

    def render(self) -> str:
        ms = lambda v: v / 1e6
        return render_series(
            "Fig. 6 — mutex elapsed time (ms) vs slave nodes",
            self.slave_counts,
            {
                "DQEMU-1 (global lock)": [ms(self.worst_ns[n]) for n in self.slave_counts],
                "DQEMU-2 (private lock)": [ms(self.best_ns[n]) for n in self.slave_counts],
                "QEMU-1": [ms(self.qemu_worst_ns)] * len(self.slave_counts),
                "QEMU-2": [ms(self.qemu_best_ns)] * len(self.slave_counts),
            },
        )


def run_fig6(
    n_threads: int = 32,
    worst_iters: int = 5_000,
    best_iters: int = 15_000,
    slave_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
) -> Fig6Result:
    """Paper: 32 threads; worst case 5 000 ops on one global lock, best case
    500 000 ops on private locks (best_iters is scaled down; per-op costs are
    iteration-count independent)."""
    cfg = lambda: DQEMUConfig(quantum_cycles=5_000)
    elapsed = lambda r: mutex_bench.elapsed_ns(r.stdout)
    worst, best = {}, {}
    for n in slave_counts:
        worst[n] = elapsed(
            Cluster(n, cfg()).run(
                mutex_bench.build(n_threads, worst_iters, private=False), **RUN_KW
            )
        )
        best[n] = elapsed(
            Cluster(n, cfg()).run(
                mutex_bench.build(n_threads, best_iters, private=True), **RUN_KW
            )
        )
    qemu_worst = elapsed(
        run_qemu(
            mutex_bench.build(n_threads, worst_iters, private=False),
            config=cfg(), **RUN_KW,
        )
    )
    qemu_best = elapsed(
        run_qemu(
            mutex_bench.build(n_threads, best_iters, private=True),
            config=cfg(), **RUN_KW,
        )
    )
    return Fig6Result(
        slave_counts=list(slave_counts),
        worst_ns=worst,
        best_ns=best,
        qemu_worst_ns=qemu_worst,
        qemu_best_ns=qemu_best,
        params=dict(n_threads=n_threads, worst_iters=worst_iters, best_iters=best_iters),
    )


# ---------------------------------------------------------------------------
# Fig. 6 extension — coherence-protocol sweep (MSI / MESI / migrate / adaptive)
# ---------------------------------------------------------------------------

COHERENCE_METRICS = (
    "time_ms",
    "mean_wait_us",
    "page_requests",
    "write_upgrades",
    "exclusive_grants",
    "silent_upgrades",
    "upgrade_acks",
    "home_migrations",
    "home_local_hits",
    "home_remote_misses",
    "reclassifications",
)


@dataclass
class Fig6CoherenceResult:
    """Per-workload × per-protocol telemetry for the coherence sweep.

    ``rows[workload][protocol]`` maps each name in :data:`COHERENCE_METRICS`
    to its measured value.  Workloads:

    * ``single-writer`` — private-region RMW walk: every page is read first
      and written moments later by one thread.  MESI's Exclusive grant turns
      each page's S→M upgrade round trip into a silent local flip.
    * ``mutex-worst`` — the Fig. 6 global-lock pessimum: the lock page
      ping-pongs, upgrades are frequent, and payload-free upgrade acks trim
      the mean coherence wait.
    * ``mixed-sharded`` — private regions + a multi-writer ping-pong page +
      a producer/consumer broadcast page on a two-shard master: no fixed
      protocol is right for every page, which is the adaptive policy's case.
    """

    protocols: list[str]
    workloads: list[str]
    rows: dict[str, dict[str, dict[str, float]]]
    params: dict

    def metric(self, workload: str, protocol: str, key: str) -> float:
        return self.rows[workload][protocol][key]

    def render(self) -> str:
        parts = []
        for wl in self.workloads:
            headers = ["protocol", *COHERENCE_METRICS]
            table_rows = [
                [proto, *(self.rows[wl][proto][k] for k in COHERENCE_METRICS)]
                for proto in self.protocols
            ]
            parts.append(
                render_table(
                    headers, table_rows,
                    title=f"Fig. 6 (coherence) — {wl}",
                )
            )
        return "\n\n".join(parts)


def run_fig6_coherence(
    protocols: Sequence[str] = ("msi", "mesi", "migrate", "adaptive"),
    n_slaves: int = 4,
    rmw_threads: int = 8,
    rmw_pages_per_thread: int = 8,
    rmw_passes: int = 4,
    mutex_threads: int = 8,
    mutex_iters: int = 2_000,
    mixed_shards: int = 2,
    adaptive_window: int = 8,
) -> Fig6CoherenceResult:
    """Coherence-protocol sweep over the three discriminating workloads.

    Uses the real §6.1 network constants (like Fig. 6 / Table 1): the sweep
    measures protocol round trips themselves, so communication costs must
    stay unscaled.
    """
    workloads = ["single-writer", "mutex-worst", "mixed-sharded"]
    rows: dict[str, dict[str, dict[str, float]]] = {wl: {} for wl in workloads}

    def measure(result: RunResult) -> dict[str, float]:
        p = result.stats.protocol
        return {
            "time_ms": result.virtual_ns / 1e6,
            "mean_wait_us": mean_fault_latency_us(result),
            "page_requests": p.page_requests,
            "write_upgrades": p.write_upgrades,
            "exclusive_grants": p.exclusive_grants,
            "silent_upgrades": p.silent_upgrades,
            "upgrade_acks": p.upgrade_acks,
            "home_migrations": p.home_migrations,
            "home_local_hits": p.home_local_hits,
            "home_remote_misses": p.home_remote_misses,
            "reclassifications": p.adaptive_reclassifications,
        }

    rmw_prog = memaccess.build_private_rmw(
        rmw_threads, n_slaves, rmw_pages_per_thread, passes=rmw_passes
    )
    mutex_prog = mutex_bench.build(mutex_threads, mutex_iters, private=False)
    mixed_prog = memaccess.build_private_rmw(
        rmw_threads, n_slaves, rmw_pages_per_thread, passes=rmw_passes,
        shared_beat=16, bcast_beat=16,
    )
    for proto in protocols:
        rows["single-writer"][proto] = measure(
            Cluster(
                n_slaves, DQEMUConfig(coherence_protocol=proto,
                                      adaptive_window=adaptive_window)
            ).run(rmw_prog, **RUN_KW)
        )
        rows["mutex-worst"][proto] = measure(
            Cluster(
                n_slaves, DQEMUConfig(coherence_protocol=proto,
                                      adaptive_window=adaptive_window)
            ).run(mutex_prog, **RUN_KW)
        )
        rows["mixed-sharded"][proto] = measure(
            Cluster(
                n_slaves, DQEMUConfig(coherence_protocol=proto,
                                      adaptive_window=adaptive_window,
                                      master_shards=mixed_shards)
            ).run(mixed_prog, **RUN_KW)
        )
    return Fig6CoherenceResult(
        protocols=list(protocols),
        workloads=workloads,
        rows=rows,
        params=dict(
            n_slaves=n_slaves, rmw_threads=rmw_threads,
            rmw_pages_per_thread=rmw_pages_per_thread, rmw_passes=rmw_passes,
            mutex_threads=mutex_threads, mutex_iters=mutex_iters,
            mixed_shards=mixed_shards, adaptive_window=adaptive_window,
        ),
    )


# ---------------------------------------------------------------------------
# Table 1 — memory performance (sequential walks and false sharing)
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    rows: list[tuple[str, float, Optional[float]]]  # (name, MB/s, latency us)
    params: dict

    def render(self) -> str:
        return render_table(
            ["Access Type", "Throughput(MB/s)", "Latency(us)"],
            [(n, t, "-" if l is None else l) for n, t, l in self.rows],
            title="Table 1 — memory performance",
        )

    def row(self, name: str) -> tuple[float, Optional[float]]:
        for n, t, l in self.rows:
            if n == name:
                return t, l
        raise KeyError(name)


def run_table1(
    seq_pages: int = 256,
    fs_threads: int = 32,
    fs_nodes: int = 4,
    fs_iters: int = 400_000,
    fs_warmup: int = 40_000,
) -> Table1Result:
    """Paper: a 1 GB sequential walk (here ``seq_pages`` pages) and a
    32-thread false-sharing walk over one page's 128-byte sections, on the
    real §6.1 network constants."""
    rows: list[tuple[str, float, Optional[float]]] = []
    seq_prog = memaccess.build_seq_walk(npages=seq_pages)
    seq_bytes = memaccess.seq_walk_bytes(seq_pages)

    def seq_row(name, r, with_latency=True):
        elapsed, _checksum = memaccess.parse_output(r.stdout)
        rows.append(
            (
                name,
                throughput_mbps(seq_bytes, elapsed),
                mean_fault_latency_us(r, _worker_tids(r)) if with_latency else None,
            )
        )

    seq_row("QEMU Sequential Access", run_qemu(seq_prog, **RUN_KW), with_latency=False)
    seq_row("Remote Sequential Access", Cluster(1, DQEMUConfig()).run(seq_prog, **RUN_KW))
    seq_row(
        "Page forwarding Enabled",
        Cluster(1, DQEMUConfig(forwarding_enabled=True)).run(seq_prog, **RUN_KW),
    )

    fs_prog = memaccess.build_false_sharing(
        fs_threads, fs_nodes, fs_iters, warmup_iters=fs_warmup
    )

    def fs_row(name, r):
        elapsed, _checksum = memaccess.parse_false_sharing_output(r.stdout)
        rows.append((name, memaccess.aggregate_bandwidth_mbps(elapsed, fs_iters), None))

    fs_row("QEMU Access of 128 bytes", run_qemu(fs_prog, **RUN_KW))
    fs_row("False Sharing of 1 Page", Cluster(fs_nodes, DQEMUConfig()).run(fs_prog, **RUN_KW))
    fs_row(
        "Page Splitting Enabled",
        Cluster(fs_nodes, DQEMUConfig(splitting_enabled=True)).run(fs_prog, **RUN_KW),
    )

    return Table1Result(
        rows=rows,
        params=dict(seq_pages=seq_pages, fs_threads=fs_threads,
                    fs_nodes=fs_nodes, fs_iters=fs_iters, fs_warmup=fs_warmup),
    )


# ---------------------------------------------------------------------------
# Fig. 7 — PARSEC speedups (blackscholes / swaptions) with ablation series
# ---------------------------------------------------------------------------


@dataclass
class Fig7Result:
    workload: str
    slave_counts: list[int]
    times_ns: dict[str, dict[int, int]]  # series -> nodes -> ns
    qemu_ns: int
    params: dict

    def speedups(self, series: str) -> dict[int, float]:
        base = self.times_ns["origin"][self.slave_counts[0]]
        return {n: base / t for n, t in self.times_ns[series].items()}

    @property
    def qemu_speedup(self) -> float:
        return self.times_ns["origin"][self.slave_counts[0]] / self.qemu_ns

    def render(self) -> str:
        series = {
            name: [self.speedups(name)[n] for n in self.slave_counts]
            for name in self.times_ns
        }
        series["qemu-4.2.0"] = [self.qemu_speedup] * len(self.slave_counts)
        return render_series(
            f"Fig. 7 — {self.workload}: speedup vs slave nodes "
            "(normalized to 1 slave, origin)",
            self.slave_counts,
            series,
        )


_FIG7_SERIES = {
    "origin": dict(),
    "forwarding": dict(forwarding_enabled=True),
    "forwarding+splitting": dict(forwarding_enabled=True, splitting_enabled=True),
}


def run_fig7(
    workload: str = "blackscholes",
    slave_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    n_threads: int = 16,
    comm_scale: float = 100.0,
    **wl_params,
) -> Fig7Result:
    if workload == "blackscholes":
        # Slices deliberately not page-multiples: result-array boundary pages
        # false-share between adjacent threads, as in the real benchmark.
        params = dict(
            n_options=wl_params.pop("n_options", 16320),
            reps=wl_params.pop("reps", 16),
        )
        prog = blackscholes.build(n_threads=n_threads, **params)
    elif workload == "swaptions":
        params = dict(
            n_swaptions=wl_params.pop("n_swaptions", 256),
            trials=wl_params.pop("trials", 2000),
        )
        prog = swaptions.build(n_threads=n_threads, **params)
    else:
        raise ValueError(f"unknown Fig. 7 workload {workload!r}")
    if wl_params:
        raise TypeError(f"unexpected params {sorted(wl_params)}")

    base_cfg = DQEMUConfig().time_scaled(comm_scale)
    times: dict[str, dict[int, int]] = {}
    for name, opts in _FIG7_SERIES.items():
        times[name] = {}
        for n in slave_counts:
            cfg = base_cfg.with_options(**opts)
            times[name][n] = Cluster(n, cfg).run(prog, **RUN_KW).virtual_ns
    qemu_ns = run_qemu(prog, config=base_cfg, **RUN_KW).virtual_ns
    return Fig7Result(
        workload=workload,
        slave_counts=list(slave_counts),
        times_ns=times,
        qemu_ns=qemu_ns,
        params=dict(n_threads=n_threads, comm_scale=comm_scale, **params),
    )


# ---------------------------------------------------------------------------
# Fig. 8 — per-thread time breakdown with hint-based scheduling (x264 / fluid)
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    workload: str
    slave_counts: list[int]
    #: (nodes, scheduler) -> {"execute_ns", "pagefault_ns", "syscall_ns"}
    breakdowns: dict[tuple[int, str], dict[str, float]]
    qemu_mean_ns: float
    params: dict

    def normalized(self, nodes: int, scheduler: str) -> dict[str, float]:
        bd = self.breakdowns[(nodes, scheduler)]
        return {k: v / self.qemu_mean_ns for k, v in bd.items()}

    def total(self, nodes: int, scheduler: str) -> float:
        return sum(self.breakdowns[(nodes, scheduler)].values())

    def render(self) -> str:
        rows = []
        for n in self.slave_counts:
            for sched in ("hint", "round_robin"):
                norm = self.normalized(n, sched)
                rows.append(
                    (
                        n,
                        sched,
                        norm["execute_ns"],
                        norm["pagefault_ns"],
                        norm["syscall_ns"],
                        sum(norm.values()),
                    )
                )
        return render_table(
            ["nodes", "scheduler", "execute", "pagefault", "syscall", "total"],
            rows,
            title=(
                f"Fig. 8 — {self.workload}: mean per-thread time breakdown, "
                "normalized to QEMU-4.2.0"
            ),
        )


def run_fig8(
    workload: str = "x264",
    slave_counts: Sequence[int] = (2, 3, 4, 5, 6),
    n_threads: int = 128,
    **wl_params,
) -> Fig8Result:
    def build(n_nodes: int):
        if workload == "x264":
            # Largest power-of-two group with >= 2 groups per node (the
            # paper embeds several grouping strategies and picks by node
            # count); n_threads is expected to be a power of two.
            group = wl_params.get("group_size")
            if group is None:
                group = 2
                while group * 2 * (2 * n_nodes) <= n_threads:
                    group *= 2
            return x264.build(
                n_frames=n_threads,
                group_size=group,
                pages_per_frame=wl_params.get("pages_per_frame", 2),
                passes=wl_params.get("passes", 6),
                hint=("div", group),
            )
        if workload == "fluidanimate":
            block = max(n_threads // n_nodes, 1)
            return fluidanimate.build(
                n_threads=n_threads,
                iters=wl_params.get("iters", 4),
                hint=("div", block),
            )
        raise ValueError(f"unknown Fig. 8 workload {workload!r}")

    breakdowns = {}
    for n in slave_counts:
        prog = build(n)
        for sched in ("hint", "round_robin"):
            r = Cluster(n, DQEMUConfig(scheduler=sched)).run(prog, **RUN_KW)
            breakdowns[(n, sched)] = r.stats.mean_breakdown(_worker_tids(r))
    qemu = run_qemu(build(slave_counts[0]), **RUN_KW)
    qemu_mean = qemu.stats.mean_breakdown(_worker_tids(qemu))
    qemu_total = sum(qemu_mean.values())
    return Fig8Result(
        workload=workload,
        slave_counts=list(slave_counts),
        breakdowns=breakdowns,
        qemu_mean_ns=qemu_total,
        params=dict(n_threads=n_threads, **wl_params),
    )
