"""Derived metrics for the experiment harnesses."""

from __future__ import annotations

from repro.core.cluster import RunResult

__all__ = ["speedup", "throughput_mbps", "mean_fault_latency_us", "normalized"]


def speedup(baseline_ns: int, measured_ns: int) -> float:
    """How much faster ``measured`` is than ``baseline``."""
    if measured_ns <= 0:
        raise ValueError("measured time must be positive")
    return baseline_ns / measured_ns


def throughput_mbps(bytes_accessed: int, virtual_ns: int) -> float:
    """MB/s (decimal MB, as in the paper's Table 1)."""
    if virtual_ns <= 0:
        raise ValueError("time must be positive")
    return bytes_accessed / (virtual_ns / 1e9) / 1e6


def mean_fault_latency_us(result: RunResult, tids: list[int] | None = None) -> float:
    """Average page-fault handling latency (paper Table 1 'Latency')."""
    faults = 0
    wait_ns = 0
    for ts in result.stats.threads.values():
        if tids is not None and ts.tid not in tids:
            continue
        faults += ts.page_faults
        wait_ns += ts.pagefault_ns
    if faults == 0:
        return 0.0
    return wait_ns / faults / 1e3


def normalized(values: dict, base_key) -> dict:
    """Normalize a {key: time} map to the entry at ``base_key``."""
    base = values[base_key]
    return {k: base / v for k, v in values.items()}
