"""Plain-text rendering of experiment results (paper-style rows/series)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_series", "render_service_breakdown", "format_value"]


def format_value(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.1f}"
        if abs(v) >= 10:
            return f"{v:.2f}"
        return f"{v:.3f}"
    return str(v)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    cells = [[format_value(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[Any], series: dict[str, Sequence[float]]) -> str:
    """Render figure-style data: one x column, one column per series."""
    headers = ["x"] + list(series)
    rows = [[x, *(vals[i] for vals in series.values())] for i, x in enumerate(xs)]
    return render_table(headers, rows, title=name)


def render_service_breakdown(stats) -> str:
    """Per-service load attribution from a run's ``RunStats.services``.

    One row per runtime service (master + node side), sorted by busy time —
    a direct read on which protocol subsystem eats the master-link budget.
    ``queue-wait`` is time served frames sat in the handling process's
    mailbox before dispatch (head-of-line blocking).  Services dispatched on
    more than one master shard get per-shard sub-rows under the aggregate,
    exposing shard load imbalance.

    The reliability columns (retransmits / recoveries / mean recovery
    latency, fed by the RPC retransmit layer) appear only when some service
    actually retried — zero-loss tables keep rendering byte-identically.
    The failure-domain columns (threads evacuated / restored from
    checkpoint / lost, directory pages re-homed / written off) follow the
    same rule: they appear only when a node actually crashed or drained
    mid-run.  So do the coherence-protocol
    columns (Exclusive grants, silent E→M upgrades, home migrations,
    adaptive reclassifications): they only render under a non-MSI
    ``coherence_protocol``, keeping every default table byte-identical.
    """
    services = sorted(
        stats.services.values(), key=lambda s: (-s.busy_ns, -s.requests, s.name)
    )
    reliable = any(s.retransmits or s.recoveries for s in services)
    failure = any(
        s.evacuations or s.restores or s.lost_threads or s.rehomed_pages
        or s.lost_pages
        for s in services
    )
    coherent = any(
        s.exclusive_grants or s.silent_upgrades or s.home_migrations
        or s.reclassifications
        for s in services
    )
    headers = ["service", "shard", "requests", "busy (us)", "queue-wait (us)"]
    if reliable:
        headers += ["retransmits", "recovered", "mean recovery (us)"]
    if failure:
        headers += [
            "evacuated", "restored", "lost threads", "rehomed pages",
            "lost M pages",
        ]
    if coherent:
        headers += ["E grants", "silent E->M", "migrations", "reclass"]
    rows = []
    for s in services:
        row = [s.name, "all", s.requests, s.busy_ns / 1e3, s.queue_wait_ns / 1e3]
        if reliable:
            mean = s.recovery_wait_ns / s.recoveries / 1e3 if s.recoveries else 0.0
            row += [s.retransmits, s.recoveries, mean]
        if failure:
            row += [
                s.evacuations, s.restores, s.lost_threads, s.rehomed_pages,
                s.lost_pages,
            ]
        if coherent:
            row += [
                s.exclusive_grants, s.silent_upgrades, s.home_migrations,
                s.reclassifications,
            ]
        rows.append(row)
        if len(s.shards) > 1:
            for k in sorted(s.shards):
                sh = s.shards[k]
                sub = [s.name, k, sh.requests, sh.busy_ns / 1e3, sh.queue_wait_ns / 1e3]
                if reliable:
                    # Retransmit counters are per service, not per shard.
                    sub += ["", "", ""]
                if failure:
                    # Failure accounting is per service, not per shard.
                    sub += ["", "", "", "", ""]
                if coherent:
                    # Protocol telemetry is per service, not per shard.
                    sub += ["", "", "", ""]
                rows.append(sub)
    return render_table(headers, rows, title="Runtime service load")
