"""Baseline comparators: the single-node vanilla QEMU model."""

from repro.baselines.qemu import qemu_config, run_qemu

__all__ = ["qemu_config", "run_qemu"]
