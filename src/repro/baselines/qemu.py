"""Vanilla single-node QEMU baseline (the paper's QEMU 4.2.0 comparator).

A DQEMU cluster with zero slaves, the DSM layer removed (all pages local),
syscalls executed directly against a local kernel, and the ~4 % per-
instruction discount the paper measures for vanilla QEMU over a one-node
DQEMU (Fig. 5's dashed line).
"""

from __future__ import annotations

from typing import Optional

from repro.core.cluster import Cluster, RunResult
from repro.core.config import DQEMUConfig
from repro.isa.program import Program

__all__ = ["qemu_config", "run_qemu"]


def qemu_config(base: Optional[DQEMUConfig] = None) -> DQEMUConfig:
    base = base or DQEMUConfig()
    return base.with_options(
        pure_qemu=True,
        forwarding_enabled=False,
        splitting_enabled=False,
    )


def run_qemu(program: Program, *, config: Optional[DQEMUConfig] = None, **run_kwargs) -> RunResult:
    """Run ``program`` under the single-node QEMU model."""
    return Cluster(0, qemu_config(config)).run(program, **run_kwargs)
