"""Command-line tools: repro-run, repro-asm, repro-experiments."""

from repro.cli import asm, experiments, run

__all__ = ["asm", "experiments", "run"]
