"""``repro-asm``: assemble GA64 source and print a listing.

Examples::

    repro-asm prog.s                # listing to stdout
    repro-asm prog.s --symbols      # symbol table only
    repro-asm prog.s -o prog.lst
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.isa import assemble, disassemble_block

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-asm", description="Assemble GA64 source and print a listing."
    )
    p.add_argument("source", help="GA64 assembly file (use '-' for stdin)")
    p.add_argument("-o", "--output", default=None, help="write the listing to a file")
    p.add_argument("--symbols", action="store_true", help="print the symbol table only")
    p.add_argument("--entry", default="_start", help="entry symbol (default _start)")
    return p


def render_listing(program) -> str:
    lines = []
    lines.append(f"entry: {program.entry:#x}")
    lines.append("")
    lines.append("sections:")
    for sec in sorted(program.sections.values(), key=lambda s: s.base):
        lines.append(f"  {sec.name:<8} {sec.base:#010x}..{sec.end:#010x}  {len(sec.data)} bytes")
    lines.append("")
    lines.append("symbols:")
    for name, addr in sorted(program.symbols.items(), key=lambda kv: kv[1]):
        lines.append(f"  {addr:#010x}  {name}")
    lines.append("")
    lines.append("disassembly (.text):")
    text = program.text
    lines.extend("  " + ln for ln in disassemble_block(bytes(text.data), base=text.base))
    return "\n".join(lines)


def render_symbols(program) -> str:
    return "\n".join(
        f"{addr:#010x}  {name}"
        for name, addr in sorted(program.symbols.items(), key=lambda kv: kv[1])
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    source = sys.stdin.read() if args.source == "-" else Path(args.source).read_text()
    program = assemble(source, entry_symbol=args.entry)
    text = render_symbols(program) if args.symbols else render_listing(program)
    if args.output:
        Path(args.output).write_text(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
