"""``repro-experiments``: regenerate the paper's tables and figures.

Examples::

    repro-experiments fig5
    repro-experiments table1 --out results/
    repro-experiments all
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis import (
    run_fig5,
    run_fig5_crash,
    run_fig5_heartbeat,
    run_fig5_sharded,
    run_fig6,
    run_fig6_coherence,
    run_fig7,
    run_fig8,
    run_table1,
)
from repro.analysis.ablations import (
    ablate_dsm_service,
    ablate_forwarding_window,
    ablate_quantum,
    ablate_splitting_trigger,
)

__all__ = ["main", "build_parser", "EXPERIMENTS"]


def _fig7_both():
    class _Both:
        def __init__(self):
            self.parts = [run_fig7("blackscholes"), run_fig7("swaptions")]

        def render(self):
            return "\n\n".join(p.render() for p in self.parts)

    return _Both()


def _fig8_both():
    class _Both:
        def __init__(self):
            self.parts = [run_fig8("x264"), run_fig8("fluidanimate")]

        def render(self):
            return "\n\n".join(p.render() for p in self.parts)

    return _Both()


def _ablations():
    class _All:
        def __init__(self):
            self.parts = [
                ablate_forwarding_window(),
                ablate_splitting_trigger(),
                ablate_quantum(),
                ablate_dsm_service(),
            ]

        def render(self):
            return "\n\n".join(p.render() for p in self.parts)

    return _All()


EXPERIMENTS = {
    "fig5": run_fig5,
    "fig5_crash": run_fig5_crash,
    "fig5_heartbeat": run_fig5_heartbeat,
    "fig5_sharded": run_fig5_sharded,
    "fig6": run_fig6,
    "fig6_coherence": run_fig6_coherence,
    "table1": run_table1,
    "fig7": _fig7_both,
    "fig8": _fig8_both,
    "ablations": _ablations,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's evaluation tables/figures.",
    )
    p.add_argument(
        "which",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment to run",
    )
    p.add_argument("--out", default=None, metavar="DIR",
                   help="also write each table to DIR/<name>.txt")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.which == "all" else [args.which]
    for name in names:
        result = EXPERIMENTS[name]()
        text = result.render()
        print(text)
        print()
        if args.out:
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
