"""``repro-run``: run a GA64 assembly program on a simulated DQEMU cluster.

Examples::

    repro-run prog.s --slaves 4
    repro-run prog.s --slaves 2 --forwarding --splitting --scheduler hint
    repro-run prog.s --trace --trace-limit 50
    echo data | repro-run prog.s --stdin -
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import Cluster, DQEMUConfig, assemble

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-run",
        description="Run a GA64 assembly program on a simulated DQEMU cluster.",
    )
    p.add_argument("source", help="GA64 assembly file (use '-' for stdin)")
    p.add_argument("--slaves", type=int, default=1, help="slave node count (default 1)")
    p.add_argument("--cores", type=int, default=4, help="cores per node (default 4)")
    p.add_argument("--forwarding", action="store_true", help="enable data forwarding (§5.2)")
    p.add_argument("--splitting", action="store_true", help="enable page splitting (§5.1)")
    p.add_argument(
        "--scheduler", choices=("round_robin", "hint"), default="round_robin",
        help="thread placement policy (§5.3)",
    )
    p.add_argument(
        "--coherence-protocol", choices=("msi", "mesi", "migrate", "adaptive"),
        default="msi",
        help="page-coherence protocol: the paper's MSI (default), MESI "
             "(exclusive-clean grants kill the first-write upgrade round "
             "trip), home migration toward dominant writers, or per-page "
             "adaptive selection",
    )
    p.add_argument("--migration-trigger", type=int, default=4, metavar="N",
                   help="consecutive write acquisitions by one node before a "
                        "page's home migrates to it (default 4)")
    p.add_argument("--master-shards", type=int, default=1, metavar="K",
                   help="partition the master directory across K shard pools "
                        "(default 1: the paper's single-directory master)")
    p.add_argument("--health-suspect-after", type=int, default=2, metavar="N",
                   help="consecutive missed timeout windows before a peer is "
                        "marked suspect (default 2)")
    p.add_argument("--health-down-after", type=int, default=5, metavar="N",
                   help="consecutive missed timeout windows before a peer is "
                        "marked down (default 5; must exceed the suspect "
                        "threshold)")
    p.add_argument("--rpc-timeout-ns", type=int, default=None, metavar="NS",
                   help="arm the RPC retransmit layer with this per-call "
                        "timeout (default: off)")
    p.add_argument("--evacuation", action="store_true",
                   help="arm the failure domain: crashes evacuate/restore "
                        "threads instead of aborting the run (requires "
                        "--rpc-timeout-ns)")
    p.add_argument("--checkpoint-interval-ns", type=int, default=None,
                   metavar="NS",
                   help="snapshot each running thread's context every NS of "
                        "virtual time for crash restore (requires "
                        "--evacuation; default: off)")
    p.add_argument("--checkpoint-target", choices=("master", "peer"),
                   default="master",
                   help="where register snapshots live: the master (default) "
                        "or a ring-buddy peer (Modified pages always flush "
                        "home)")
    p.add_argument("--heartbeat-interval-ns", type=int, default=None,
                   metavar="NS",
                   help="send a lease-renewal heartbeat from every slave to "
                        "the master each NS of virtual time, bounding crash "
                        "detection even on nodes nobody calls (requires "
                        "--evacuation; default: off)")
    p.add_argument("--heartbeat-lease-ns", type=int, default=None,
                   metavar="NS",
                   help="silence the master tolerates before a peer accrues "
                        "missed-lease evidence (>= 2x the interval; default "
                        "4x the interval)")
    p.add_argument("--checkpoint-lease-factor", type=float, default=None,
                   metavar="K",
                   help="derive the checkpoint interval as K x the heartbeat "
                        "detector's worst-case detection latency instead of "
                        "an explicit --checkpoint-interval-ns")
    p.add_argument("--rebalance-threshold-ns", type=int, default=None,
                   metavar="NS",
                   help="queue-wait threshold beyond which a node sheds its "
                        "hottest thread to an underloaded peer (requires "
                        "--evacuation; default: off)")
    p.add_argument("--superblock-threshold", type=int, default=0, metavar="N",
                   help="promote a block into a trace superblock after N "
                        "executions (default 0: disabled)")
    p.add_argument("--superblock-max-blocks", type=int, default=8, metavar="N",
                   help="trace-length cap in blocks, loop bodies may repeat "
                        "(default 8)")
    p.add_argument("--cpi-superblock", type=float, default=1.0, metavar="C",
                   help="virtual cycles per instruction inside a superblock "
                        "(default 1.0)")
    p.add_argument("--fusion", action="store_true",
                   help="fuse recurring guest idioms (compare+branch, "
                        "load+op, atomic spin) into single host operations")
    p.add_argument("--no-chaining", action="store_true",
                   help="disable block chaining: every dispatch goes through "
                        "the code-cache lookup")
    p.add_argument("--qemu", action="store_true",
                   help="run the vanilla single-node QEMU baseline instead")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="submit the program N times as concurrent tenants "
                        "on one fleet (default 1)")
    p.add_argument("--max-concurrent-jobs", type=int, default=3, metavar="N",
                   help="jobs allowed to run at once; later submissions "
                        "queue (default 3)")
    p.add_argument("--admission-queue-depth", type=int, default=16, metavar="N",
                   help="queued submissions tolerated beyond the running set "
                        "before submit() is refused (default 16)")
    p.add_argument("--stdin", default=None,
                   help="file fed to the guest's stdin ('-' for this process's stdin)")
    p.add_argument("--file", action="append", default=[], metavar="PATH",
                   help="preload a host file into the guest VFS (repeatable)")
    p.add_argument("--max-ms", type=float, default=60_000.0,
                   help="virtual-time budget in ms (default 60000)")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="divide communication costs by this factor")
    p.add_argument("--trace", action="store_true", help="record a protocol trace")
    p.add_argument("--trace-limit", type=int, default=100,
                   help="trace lines to print (default 100)")
    p.add_argument("--stats", action="store_true", help="print protocol counters")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    source = sys.stdin.read() if args.source == "-" else Path(args.source).read_text()
    program = assemble(source)

    stdin = b""
    if args.stdin == "-":
        stdin = sys.stdin.buffer.read()
    elif args.stdin:
        stdin = Path(args.stdin).read_bytes()
    files = {Path(f).name: Path(f).read_bytes() for f in args.file}

    config = DQEMUConfig(
        cores_per_node=args.cores,
        forwarding_enabled=args.forwarding,
        splitting_enabled=args.splitting,
        scheduler=args.scheduler,
        coherence_protocol=args.coherence_protocol,
        migration_trigger=args.migration_trigger,
        master_shards=args.master_shards,
        health_suspect_after=args.health_suspect_after,
        health_down_after=args.health_down_after,
        rpc_timeout_ns=args.rpc_timeout_ns,
        evacuation_enabled=args.evacuation,
        checkpoint_interval_ns=args.checkpoint_interval_ns,
        checkpoint_target=args.checkpoint_target,
        heartbeat_interval_ns=args.heartbeat_interval_ns,
        heartbeat_lease_ns=args.heartbeat_lease_ns,
        checkpoint_lease_factor=args.checkpoint_lease_factor,
        rebalance_threshold_ns=args.rebalance_threshold_ns,
        pure_qemu=args.qemu,
        max_concurrent_jobs=args.max_concurrent_jobs,
        admission_queue_depth=args.admission_queue_depth,
        chaining_enabled=not args.no_chaining,
        superblock_threshold=args.superblock_threshold,
        superblock_max_blocks=args.superblock_max_blocks,
        cpi_superblock=args.cpi_superblock,
        fusion_enabled=args.fusion,
    )
    if args.time_scale != 1.0:
        config = config.time_scaled(args.time_scale)

    cluster = Cluster(0 if args.qemu else args.slaves, config, trace=args.trace)
    if args.jobs > 1:
        jobs = [
            cluster.submit(program, name=f"job{i}", stdin=stdin, files=files,
                           max_virtual_ms=args.max_ms)
            for i in range(args.jobs)
        ]
        results = cluster.join(jobs)
        for job, res in zip(jobs, results):
            sys.stdout.write(res.stdout)
            if res.stderr:
                sys.stderr.write(res.stderr)
            print(f"[{job.name}: exit {res.exit_code}; "
                  f"{res.virtual_ns / 1e6:.3f} ms virtual; "
                  f"queue wait {res.queue_wait_ns / 1e6:.3f} ms]",
                  file=sys.stderr)
        return max(res.exit_code for res in results)

    result = cluster.run(program, stdin=stdin, files=files,
                         max_virtual_ms=args.max_ms)

    sys.stdout.write(result.stdout)
    if result.stderr:
        sys.stderr.write(result.stderr)
    print(f"[exit {result.exit_code}; {result.virtual_ns / 1e6:.3f} ms virtual]",
          file=sys.stderr)

    if args.stats:
        p = result.stats.protocol
        print(
            f"[page requests {p.page_requests} (r{p.read_requests}/w{p.write_requests}),"
            f" invalidations {p.invalidations}, forwarded {p.pages_forwarded},"
            f" splits {p.splits}, merges {p.merges},"
            f" syscalls {p.delegated_syscalls} delegated/{p.local_syscalls} local]",
            file=sys.stderr,
        )
        if (p.exclusive_grants or p.silent_upgrades or p.home_migrations
                or p.adaptive_reclassifications):
            print(
                f"[coherence {args.coherence_protocol}:"
                f" E grants {p.exclusive_grants},"
                f" silent E->M {p.silent_upgrades},"
                f" upgrade acks {p.upgrade_acks},"
                f" home migrations {p.home_migrations},"
                f" home hits {p.home_local_hits}/misses {p.home_remote_misses},"
                f" reclassifications {p.adaptive_reclassifications}]",
                file=sys.stderr,
            )
    if args.trace and result.trace is not None:
        print(result.trace.render(limit=args.trace_limit), file=sys.stderr)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
