"""DQEMU core: cluster orchestration, DSM, delegation, optimizations."""

from repro.core.cluster import Cluster, RunResult
from repro.core.config import DQEMUConfig
from repro.core.dsmmem import DSMMemory, LocalMemory, MergeStall
from repro.core.forwarding import ReadAheadEngine
from repro.core.gthread import GuestThread, GuestThreadState
from repro.core.llsc import LLSCTable
from repro.core.master import MasterRuntime
from repro.core.node import NodeRuntime
from repro.core.scheduler import ThreadPlacer
from repro.core.splitting import FalseSharingDetector, SplitDecision
from repro.core.stats import ProtocolStats, RunStats, ThreadStats

__all__ = [
    "Cluster",
    "DQEMUConfig",
    "DSMMemory",
    "FalseSharingDetector",
    "GuestThread",
    "GuestThreadState",
    "LLSCTable",
    "LocalMemory",
    "MasterRuntime",
    "MergeStall",
    "NodeRuntime",
    "ProtocolStats",
    "ReadAheadEngine",
    "RunResult",
    "RunStats",
    "SplitDecision",
    "ThreadPlacer",
    "ThreadStats",
]
