"""Public entry point: build a DQEMU cluster and run a guest program on it.

Usage::

    from repro import Cluster, DQEMUConfig, assemble

    cluster = Cluster(n_slaves=4, config=DQEMUConfig(forwarding_enabled=True))
    result = cluster.run(program)
    print(result.stdout, result.virtual_seconds)

One :class:`Cluster` is single-use (it owns a simulator instance); create a
fresh one per run, as the experiments do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import DQEMUConfig
from repro.core.localkernel import LocalKernel
from repro.core.master import MasterRuntime
from repro.core.node import NodeRuntime
from repro.core.scheduler import ThreadPlacer
from repro.core.stats import FailureStats, RunStats
from repro.core.trace import NULL_TRACER, Tracer
from repro.dbt.cpu import CPUState
from repro.errors import ConfigError, SimulationError
from repro.isa.program import Program
from repro.kernel.syscalls import SystemState
from repro.mem.layout import STACK_TOP, page_of
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.net.fabric import Fabric, FabricStats
from repro.net.faults import FaultInjector, FaultStats
from repro.net.health import ClusterHealthView, HealthTracker
from repro.net.messages import reset_req_seq
from repro.net.rpc import RpcStats
from repro.sim.engine import Simulator

__all__ = ["Cluster", "RunResult"]


@dataclass
class RunResult:
    exit_code: int
    stdout: str
    stderr: str
    virtual_ns: int
    stats: RunStats
    fabric: Optional[FabricStats] = None
    faults: Optional[FaultStats] = None  # set when the run had a fault plan
    rpc: Optional[RpcStats] = None  # channel reliability counters, summed
    health: Optional[HealthTracker] = None  # per-peer up/suspect/down view
    #: Structured failure accounting (docs/PROTOCOL.md "Failure domains");
    #: only set when the failure domain was armed for the run.
    failures: Optional[FailureStats] = None
    placements: dict[int, int] = field(default_factory=dict)
    #: Placement decisions the health-aware placer diverted, keyed
    #: "n<node>:<reason>" (empty unless health_aware_placement skipped any).
    placement_skips: dict[str, int] = field(default_factory=dict)
    files: dict[str, bytes] = field(default_factory=dict)
    trace: Optional["Tracer"] = None  # set when the cluster ran with trace=True

    @property
    def virtual_seconds(self) -> float:
        return self.virtual_ns / 1e9

    def __repr__(self) -> str:
        return (
            f"RunResult(exit_code={self.exit_code}, virtual_seconds="
            f"{self.virtual_seconds:.6f}, threads={len(self.stats.threads)})"
        )


class Cluster:
    """A master plus ``n_slaves`` slave nodes (paper Fig. 2)."""

    def __init__(self, n_slaves: int = 0, config: Optional[DQEMUConfig] = None,
                 *, trace: bool = False):
        if n_slaves < 0:
            raise ConfigError("n_slaves must be >= 0")
        self.config = config or DQEMUConfig()
        if self.config.pure_qemu and n_slaves:
            raise ConfigError("the QEMU baseline is single-node (n_slaves=0)")
        self.n_slaves = n_slaves
        self.tracer = Tracer() if trace else NULL_TRACER
        self._used = False

    # -- running ------------------------------------------------------------

    def run(
        self,
        program: Program,
        *,
        stdin: bytes = b"",
        files: Optional[dict[str, bytes]] = None,
        max_virtual_ms: Optional[float] = None,
    ) -> RunResult:
        if self._used:
            raise ConfigError("Cluster instances are single-use; build a new one")
        self._used = True
        cfg = self.config

        # Req ids (and the backoff jitter keyed on them) must be a function
        # of this run alone, not of earlier runs in the same process.
        reset_req_seq()
        sim = Simulator()
        fabric = Fabric(
            sim,
            bandwidth_bps=cfg.bandwidth_bps,
            one_way_latency_ns=cfg.one_way_latency_ns,
            loopback_latency_ns=cfg.loopback_latency_ns,
        )
        injector: Optional[FaultInjector] = None
        if cfg.fault_plan is not None:
            injector = FaultInjector(sim, cfg.fault_plan).attach(fabric)
        # Peer health is pure bookkeeping (no simulator events), so every run
        # carries a tracker; the RPC channels feed it through fabric.health.
        health = HealthTracker(
            sim,
            suspect_after=cfg.health_suspect_after,
            down_after=cfg.health_down_after,
        )
        fabric.health = health
        # Failure-domain schedules and the latched cluster view over the
        # tracker (None keeps every component on its failure-blind paths).
        crashes = cfg.fault_plan.crashes if cfg.fault_plan is not None else ()
        drains = cfg.fault_plan.drains if cfg.fault_plan is not None else ()
        need_view = (
            cfg.evacuation_enabled or cfg.health_aware_placement or bool(drains)
        )
        view: Optional[ClusterHealthView] = (
            ClusterHealthView(tracker=health) if need_view else None
        )
        stats = RunStats()
        done = sim.event()

        def fail(exc: BaseException) -> None:
            if not done.triggered:
                done.fail(exc)

        self.tracer.bind_clock(lambda: sim.now)
        node_ids = list(range(self.n_slaves + 1))
        nodes = {
            nid: NodeRuntime(
                sim, fabric, nid, cfg, stats, on_failure=fail, tracer=self.tracer
            )
            for nid in node_ids
        }
        if cfg.rpc_max_retries:
            # Retransmits of already-answered requests are deduplicated by the
            # dispatchers, so the answer must come from the channels' reply
            # caches; armed only with retries to keep default-state footprints
            # identical.
            for node in nodes.values():
                node.endpoint.rpc.enable_reply_cache()

        # Authoritative guest memory on the master (the "home" copies).
        home = PageStore()
        for vaddr, data in program.iter_load_segments():
            self._load_segment(home, vaddr, data)

        state = SystemState(
            brk_start=program.load_end, stdin=stdin, clock_ns=lambda: sim.now
        )
        if files:
            for path, data in files.items():
                state.vfs.add_file(path, data)

        candidates = node_ids[1:] if (self.n_slaves and not cfg.schedule_on_master) else [0]
        placer = ThreadPlacer(
            cfg.scheduler, candidates,
            health=view if cfg.health_aware_placement else None,
            fallback=0,
        )

        master: Optional[MasterRuntime] = None
        if cfg.pure_qemu:
            nodes[0].local_kernel = LocalKernel(
                nodes[0], state, finish=lambda status: self._finish_local(nodes[0], done, status)
            )
            # The baseline executes against its own page store directly.
            for page in home.pages():
                nodes[0].pagestore.install(page, home.snapshot(page), MSIState.MODIFIED)
        else:
            master_view = view if (cfg.evacuation_enabled or drains) else None
            master = MasterRuntime(
                sim, cfg, nodes[0], node_ids, home, state, placer, stats, done,
                failure_view=master_view,
            )

        # -- failure-domain wiring (docs/PROTOCOL.md "Failure domains") --------
        failure_domain = master.failure_domain if master is not None else None
        if cfg.evacuation_enabled:
            if failure_domain is None:
                raise ConfigError("evacuation_enabled requires a master runtime")
            # Promote peer-level DOWN (retry budget exhausted) into a
            # cluster-level node failure: latch the view, evict the
            # directory, recover the threads.
            health.on_down.append(failure_domain.node_failed)
        for node_id, at_ns in crashes:
            if node_id not in nodes or node_id == 0:
                raise ConfigError(f"cannot crash node {node_id}")
            sim.timeout(at_ns).add_callback(
                lambda _e, n=node_id: nodes[n].crash()
            )
        for node_id, at_ns in drains:
            if node_id not in nodes or node_id == 0:
                raise ConfigError(f"cannot drain node {node_id}")
            if failure_domain is None:
                raise ConfigError("drain schedules require a master runtime")
            sim.timeout(at_ns).add_callback(
                lambda _e, n=node_id: failure_domain.start_drain(n)
            )

        # Main thread starts on the master (paper Fig. 2).
        main_rec = state.threads.create(node=0, parent_tid=0)
        main_cpu = CPUState(pc=program.entry, tid=main_rec.tid, sp=STACK_TOP - 64)

        for node in nodes.values():
            node.start()
        if master is not None:
            master.start()
        nodes[0].add_thread(main_cpu)

        deadline = None if max_virtual_ms is None else int(max_virtual_ms * 1e6)
        exit_code = self._drive(sim, done, deadline)

        # -- collect results ----------------------------------------------------
        stats.wall_ns = sim.now
        for node in nodes.values():
            stats.insns_executed += node.engine.insns_executed
            stats.insns_translated += node.engine.insns_translated
        return RunResult(
            exit_code=exit_code,
            stdout=state.vfs.stdout_text(),
            stderr=state.vfs.stderr_text(),
            virtual_ns=sim.now,
            stats=stats,
            fabric=fabric.stats,
            faults=injector.stats if injector is not None else None,
            rpc=RpcStats.collect(node.endpoint.rpc for node in nodes.values()),
            health=health,
            failures=(
                failure_domain.failures if failure_domain is not None else None
            ),
            placements=placer.distribution(),
            placement_skips=placer.skip_counts(),
            files=state.vfs.dump_files(),
            trace=self.tracer if self.tracer.enabled else None,
        )

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _load_segment(home: PageStore, vaddr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            page = page_of(vaddr + pos)
            off = (vaddr + pos) & 0xFFF
            n = min(4096 - off, len(data) - pos)
            buf = home.ensure(page, MSIState.SHARED)
            buf[off : off + n] = data[pos : pos + n]
            pos += n

    @staticmethod
    def _finish_local(node: NodeRuntime, done, status: int) -> None:
        node.shutdown = True
        for _ in range(node.n_cores):
            node.runqueue.put(None)
        if not done.triggered:
            done.succeed(status & 0xFF)

    @staticmethod
    def _drive(sim: Simulator, done, deadline: Optional[int]) -> int:
        while not done.processed:
            if not sim._heap:
                raise SimulationError(
                    f"guest program deadlocked at t={sim.now} ns "
                    "(all threads blocked, no pending events)"
                )
            if deadline is not None and sim._heap[0][0] > deadline:
                raise SimulationError(
                    f"virtual-time budget exceeded ({deadline} ns): guest still running"
                )
            sim.step()
        if not done.ok:
            raise done.value
        return done.value
