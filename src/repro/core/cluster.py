"""Public entry point: build a DQEMU fleet and admit guest programs to it.

Usage::

    from repro import Cluster, DQEMUConfig, assemble

    cluster = Cluster(n_slaves=4, config=DQEMUConfig(forwarding_enabled=True))
    result = cluster.run(program)
    print(result.stdout, result.virtual_seconds)

A :class:`Cluster` is long-lived: it owns one simulated fleet (simulator,
fabric, nodes) and *admits* jobs onto it.  :meth:`Cluster.submit` hands a
program to the admission queue and returns a :class:`~repro.core.jobs.Job`;
:meth:`Cluster.join` drives the simulation until the given jobs settle.
Multiple concurrent guests share the nodes — each admitted job is a
*tenant* with its own master runtime, directory shards, system state, futex
namespace, and per-node memory bundles, so isolation is structural rather
than filtered.  At most ``config.max_concurrent_jobs`` run at once; up to
``config.admission_queue_depth`` more wait in FIFO order, and beyond that
``submit`` raises :class:`~repro.errors.AdmissionError`.

:meth:`Cluster.run` survives as the one-job convenience wrapper (submit +
join); a single ``run`` on a fresh cluster is bit-identical to the
historical single-use behavior.  Fault plans, evacuation, and the
pure-QEMU baseline remain single-job per cluster — their schedules are
properties of one run, not of a shared fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import DQEMUConfig
from repro.core.jobs import Job, JobManager, JobState
from repro.core.localkernel import LocalKernel
from repro.core.master import MasterRuntime
from repro.core.node import NodeRuntime
from repro.core.scheduler import ThreadPlacer
from repro.core.stats import FailureStats, RunStats
from repro.core.trace import NULL_TRACER, Tracer
from repro.dbt.cpu import CPUState
from repro.errors import ConfigError, SimulationError
from repro.isa.program import Program
from repro.kernel.syscalls import SystemState
from repro.mem.layout import STACK_TOP, page_of
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.mem.sharding import TenantDirectoryView
from repro.net.fabric import Fabric, FabricStats
from repro.net.faults import FaultInjector, FaultStats
from repro.net.health import ClusterHealthView, HealthTracker
from repro.net.rpc import RpcStats
from repro.sim.engine import Event, Simulator

__all__ = ["Cluster", "RunResult", "Job", "JobState"]


@dataclass
class RunResult:
    exit_code: int
    stdout: str
    stderr: str
    virtual_ns: int
    stats: RunStats
    fabric: Optional[FabricStats] = None
    faults: Optional[FaultStats] = None  # set when the run had a fault plan
    rpc: Optional[RpcStats] = None  # channel reliability counters, summed
    health: Optional[HealthTracker] = None  # per-peer up/suspect/down view
    #: Structured failure accounting (docs/PROTOCOL.md "Failure domains");
    #: only set when the failure domain was armed for the run.
    failures: Optional[FailureStats] = None
    placements: dict[int, int] = field(default_factory=dict)
    #: Placement decisions the health-aware placer diverted, keyed
    #: "n<node>:<reason>" (empty unless health_aware_placement skipped any).
    placement_skips: dict[str, int] = field(default_factory=dict)
    files: dict[str, bytes] = field(default_factory=dict)
    trace: Optional["Tracer"] = None  # set when the cluster ran with trace=True
    #: Which admitted job produced this result (0 for a fresh cluster's
    #: first — and a solo run's only — job).
    tenant: int = 0
    #: Virtual ns the job sat in the admission queue before starting.
    queue_wait_ns: int = 0

    @property
    def virtual_seconds(self) -> float:
        return self.virtual_ns / 1e9

    def __repr__(self) -> str:
        return (
            f"RunResult(exit_code={self.exit_code}, virtual_seconds="
            f"{self.virtual_seconds:.6f}, threads={len(self.stats.threads)})"
        )


@dataclass
class _JobRuntime:
    """Cluster-private per-job runtime bundle attached to ``Job.runtime``."""

    stats: RunStats
    done: Event
    home: PageStore
    state: SystemState
    placer: ThreadPlacer
    master: Optional[MasterRuntime]
    failure_domain: object  # Optional[FailureDomainService]
    rpc_base: RpcStats
    deadline_ns: Optional[int]


class _Fleet:
    """The long-lived shared substrate: simulator, fabric, nodes, health.

    Built lazily on the first admission so a fresh cluster's first run
    reproduces the historical construction order event-for-event.  Tenants
    come and go; the fleet persists until the :class:`Cluster` is dropped
    or a node-level failure marks it broken.
    """

    def __init__(self, cluster: "Cluster", first_stats: RunStats) -> None:
        cfg = cluster.config
        self.sim = Simulator()
        self.fabric = Fabric(
            self.sim,
            bandwidth_bps=cfg.bandwidth_bps,
            one_way_latency_ns=cfg.one_way_latency_ns,
            loopback_latency_ns=cfg.loopback_latency_ns,
        )
        self.injector: Optional[FaultInjector] = None
        if cfg.fault_plan is not None:
            self.injector = FaultInjector(self.sim, cfg.fault_plan).attach(self.fabric)
        # Peer health is pure bookkeeping (no simulator events), so every
        # fleet carries a tracker; the RPC channels feed it via fabric.health.
        self.health = HealthTracker(
            self.sim,
            suspect_after=cfg.health_suspect_after,
            down_after=cfg.health_down_after,
        )
        self.fabric.health = self.health
        drains = cfg.fault_plan.drains if cfg.fault_plan is not None else ()
        need_view = (
            cfg.evacuation_enabled or cfg.health_aware_placement or bool(drains)
        )
        self.view: Optional[ClusterHealthView] = (
            ClusterHealthView(tracker=self.health) if need_view else None
        )
        cluster.tracer.bind_clock(lambda: self.sim.now)
        self.node_ids = list(range(cluster.n_slaves + 1))
        self.nodes = {
            nid: NodeRuntime(
                self.sim, self.fabric, nid, cfg, first_stats,
                on_failure=self.fail, tracer=cluster.tracer,
            )
            for nid in self.node_ids
        }
        if cfg.rpc_max_retries:
            # Retransmits of already-answered requests are deduplicated by the
            # dispatchers, so the answer must come from the channels' reply
            # caches; armed only with retries to keep default-state footprints
            # identical.
            for node in self.nodes.values():
                node.endpoint.rpc.enable_reply_cache()
        # Topology handout: peer-mode checkpoint buddies are computed from
        # the node-id ring (pure arithmetic, no wire traffic).
        for node in self.nodes.values():
            node.peer_ids = list(self.node_ids)
        #: Tenant-keyed read-only views over each job's directory shards.
        self.directories = TenantDirectoryView()
        #: Jobs currently running (admitted, not yet settled).
        self.active: list[Job] = []
        self.started = False
        self.broken_error: Optional[BaseException] = None

    def fail(self, exc: BaseException) -> None:
        """A node-level failure poisons every active job on the fleet."""
        self.broken_error = exc
        for job in list(self.active):
            done = job.runtime.done
            if not done.triggered:
                done.fail(exc)


class Cluster:
    """A master plus ``n_slaves`` slave nodes (paper Fig. 2), job-admitting."""

    def __init__(self, n_slaves: int = 0, config: Optional[DQEMUConfig] = None,
                 *, trace: bool = False):
        if n_slaves < 0:
            raise ConfigError("n_slaves must be >= 0")
        self.config = config or DQEMUConfig()
        if self.config.pure_qemu and n_slaves:
            raise ConfigError("the QEMU baseline is single-node (n_slaves=0)")
        self.n_slaves = n_slaves
        self.tracer = Tracer() if trace else NULL_TRACER
        self._fleet: Optional[_Fleet] = None
        self._next_tenant = 0
        self.jobs: list[Job] = []
        self.manager = JobManager(
            self.config.max_concurrent_jobs,
            self.config.admission_queue_depth,
            self._admit,
        )

    @property
    def directories(self) -> TenantDirectoryView:
        """Tenant-keyed read-only directory views (debugging, tests)."""
        if self._fleet is None:
            raise ConfigError("no jobs admitted yet")
        return self._fleet.directories

    # -- admission ------------------------------------------------------------

    @property
    def _single_job_fleet(self) -> bool:
        # Fault schedules, evacuation wiring, and the local-kernel baseline
        # are properties of one run; sharing a fleet under them is undefined.
        cfg = self.config
        return bool(cfg.pure_qemu or cfg.evacuation_enabled
                    or cfg.fault_plan is not None)

    def submit(
        self,
        program: Program,
        *,
        name: Optional[str] = None,
        stdin: bytes = b"",
        files: Optional[dict[str, bytes]] = None,
        max_virtual_ms: Optional[float] = None,
    ) -> Job:
        """Admit ``program`` as a new job (or queue it; or refuse).

        Returns immediately with the :class:`Job` handle; nothing executes
        until :meth:`join` (or another job's ``join``) drives the simulator.
        Raises :class:`~repro.errors.AdmissionError` when both the running
        set and the admission queue are full.
        """
        if self._fleet is not None and self._fleet.broken_error is not None:
            raise ConfigError(
                "cluster fleet has failed; build a new Cluster"
            ) from self._fleet.broken_error
        if self._single_job_fleet and self.jobs:
            raise ConfigError(
                "fault plans, evacuation, and the pure-QEMU baseline are "
                "single-job per Cluster; build a new one per run"
            )
        job = Job(
            tenant=self._next_tenant,
            name=name if name is not None else f"job{self._next_tenant}",
            program=program,
            stdin=bytes(stdin),
            files=dict(files or {}),
            max_virtual_ms=max_virtual_ms,
        )
        job.submitted_ns = self._fleet.sim.now if self._fleet is not None else 0
        self.manager.submit(job)  # may raise AdmissionError; nothing recorded
        self._next_tenant += 1
        self.jobs.append(job)
        return job

    def join(self, jobs: Optional[list[Job]] = None) -> list[RunResult]:
        """Drive the fleet until the given jobs (default: all) settle.

        Returns their results in the given (submission) order; re-raises
        the first failed job's error.
        """
        targets = list(jobs) if jobs is not None else list(self.jobs)
        if not targets:
            return []
        self._drive(targets)
        for job in targets:
            if job.error is not None:
                raise job.error
        return [job.result for job in targets]

    # -- one-job compatibility wrapper ---------------------------------------

    def run(
        self,
        program: Program,
        *,
        stdin: bytes = b"",
        files: Optional[dict[str, bytes]] = None,
        max_virtual_ms: Optional[float] = None,
    ) -> RunResult:
        """Submit one job and drive it to completion (the classic API)."""
        job = self.submit(
            program, stdin=stdin, files=files, max_virtual_ms=max_virtual_ms
        )
        self._drive([job])
        if job.error is not None:
            raise job.error
        return job.result

    # -- job lifecycle --------------------------------------------------------

    def _admit(self, job: Job) -> None:
        """Build and start one job's runtime on the (possibly new) fleet.

        Called by the :class:`JobManager` either synchronously from
        ``submit`` or from a finishing job's done callback — i.e. inside
        the simulation timeline, which is what makes queued-job admission
        deterministic.
        """
        cfg = self.config
        stats = RunStats(tenant=job.tenant)
        first = self._fleet is None
        if first:
            fleet = self._fleet = _Fleet(self, stats)
        else:
            fleet = self._fleet
            if fleet.broken_error is not None:
                job.state = JobState.FAILED
                job.error = fleet.broken_error
                return
            for node in fleet.nodes.values():
                node.add_tenant(job.tenant, stats)
        sim = fleet.sim
        job.state = JobState.RUNNING
        job.admitted_ns = sim.now
        program = job.program
        done = sim.event()

        # Authoritative guest memory on the master (the "home" copies).
        home = PageStore()
        for vaddr, data in program.iter_load_segments():
            self._load_segment(home, vaddr, data)

        state = SystemState(
            brk_start=program.load_end, stdin=job.stdin,
            clock_ns=lambda: sim.now, tenant=job.tenant,
        )
        for path, data in job.files.items():
            state.vfs.add_file(path, data)

        candidates = (
            fleet.node_ids[1:]
            if (self.n_slaves and not cfg.schedule_on_master) else [0]
        )
        placer = ThreadPlacer(
            cfg.scheduler, candidates,
            health=fleet.view if cfg.health_aware_placement else None,
            fallback=0,
            # Stagger each tenant's round-robin cursor so concurrent jobs
            # interleave across the slaves instead of piling onto node 1.
            rr_offset=job.tenant % len(candidates),
        )

        master: Optional[MasterRuntime] = None
        if cfg.pure_qemu:
            node0 = fleet.nodes[0]
            node0.local_kernel = LocalKernel(
                node0, state,
                finish=lambda status: self._finish_local(node0, done, status),
            )
            # The baseline executes against its own page store directly.
            bundle = node0.tenants[job.tenant]
            for page in home.pages():
                bundle.pagestore.install(page, home.snapshot(page), MSIState.MODIFIED)
        else:
            drains = cfg.fault_plan.drains if cfg.fault_plan is not None else ()
            master_view = (
                fleet.view if (cfg.evacuation_enabled or drains) else None
            )
            master = MasterRuntime(
                sim, cfg, fleet.nodes[0], fleet.node_ids, home, state, placer,
                stats, done, failure_view=master_view, tenant=job.tenant,
            )
            fleet.directories.add_tenant(
                job.tenant,
                [shard.coherence.directory for shard in master.shards],
                policies=[shard.coherence.policy for shard in master.shards],
            )

        # -- failure-domain wiring (docs/PROTOCOL.md "Failure domains") --------
        failure_domain = master.failure_domain if master is not None else None
        if first:
            crashes = cfg.fault_plan.crashes if cfg.fault_plan is not None else ()
            drains = cfg.fault_plan.drains if cfg.fault_plan is not None else ()
            if cfg.evacuation_enabled:
                if failure_domain is None:
                    raise ConfigError("evacuation_enabled requires a master runtime")
                # Promote peer-level DOWN (retry budget exhausted) into a
                # cluster-level node failure: latch the view, evict the
                # directory, recover the threads.
                fleet.health.on_down.append(failure_domain.node_failed)
            for node_id, at_ns in crashes:
                if node_id not in fleet.nodes or node_id == 0:
                    raise ConfigError(f"cannot crash node {node_id}")
                sim.timeout(at_ns).add_callback(
                    lambda _e, n=node_id: fleet.nodes[n].crash()
                )
            for node_id, at_ns in drains:
                if node_id not in fleet.nodes or node_id == 0:
                    raise ConfigError(f"cannot drain node {node_id}")
                if failure_domain is None:
                    raise ConfigError("drain schedules require a master runtime")
                sim.timeout(at_ns).add_callback(
                    lambda _e, n=node_id: failure_domain.start_drain(n)
                )

        # Main thread starts on the master (paper Fig. 2).
        main_rec = state.threads.create(node=0, parent_tid=0)
        main_cpu = CPUState(pc=program.entry, tid=main_rec.tid, sp=STACK_TOP - 64)

        job.runtime = _JobRuntime(
            stats=stats,
            done=done,
            home=home,
            state=state,
            placer=placer,
            master=master,
            failure_domain=failure_domain,
            # Channel counters are fleet-wide; a snapshot at admission lets
            # the result report this job's delta.
            rpc_base=RpcStats.collect(
                n.endpoint.rpc for n in fleet.nodes.values()
            ),
            deadline_ns=(
                None if job.max_virtual_ms is None
                else job.admitted_ns + int(job.max_virtual_ms * 1e6)
            ),
        )
        fleet.active.append(job)
        done.add_callback(lambda _ev, j=job: self._settle(j))

        if not fleet.started:
            fleet.started = True
            for node in fleet.nodes.values():
                node.start()
        if master is not None:
            master.start()
        fleet.nodes[0].add_thread(main_cpu, tenant=job.tenant)

    def _settle(self, job: Job) -> None:
        """Done-event callback: finalize the job and free its slot."""
        fleet = self._fleet
        done = job.runtime.done
        job.finished_ns = fleet.sim.now
        if done.ok:
            job.state = JobState.FINISHED
            job.result = self._build_result(job, done.value)
        else:
            job.state = JobState.FAILED
            job.error = done.value
        if job in fleet.active:
            fleet.active.remove(job)
        # Freeing the slot may admit the queue head — at this virtual time.
        self.manager.job_done(job)

    def _build_result(self, job: Job, exit_code: int) -> RunResult:
        fleet = self._fleet
        rt: _JobRuntime = job.runtime
        stats = rt.stats
        stats.wall_ns = fleet.sim.now
        for node in fleet.nodes.values():
            bundle = node.tenants[job.tenant]
            engine = bundle.engine
            stats.insns_executed += engine.insns_executed
            stats.insns_translated += engine.insns_translated
            dbt = stats.dbt
            cs = engine.cache.stats
            dbt.lookups += cs.lookups
            dbt.misses += cs.misses
            dbt.chain_follows += cs.chain_follows
            dbt.translations += cs.translations
            dbt.invalidations += cs.invalidations
            dbt.unchains += cs.unchains
            dbt.superblocks_formed += engine.superblocks_formed
            dbt.execute_cycles += engine.execute_cycles
            dbt.translate_cycles += engine.translate_cycles
            dbt.superblock_saved_cycles += engine.superblock_saved_cycles
            dbt.fusion_saved_cycles += engine.fusion_saved_cycles
            for pattern, hits in engine.fusion_hits.items():
                dbt.fusion_hits[pattern] = dbt.fusion_hits.get(pattern, 0) + hits
        rpc_total = RpcStats.collect(
            node.endpoint.rpc for node in fleet.nodes.values()
        )
        return RunResult(
            exit_code=exit_code,
            stdout=rt.state.vfs.stdout_text(),
            stderr=rt.state.vfs.stderr_text(),
            virtual_ns=fleet.sim.now - job.admitted_ns,
            stats=stats,
            fabric=fleet.fabric.stats_for(job.tenant),
            faults=fleet.injector.stats if fleet.injector is not None else None,
            rpc=rpc_total.minus(rt.rpc_base),
            health=fleet.health,
            failures=(
                rt.failure_domain.failures
                if rt.failure_domain is not None else None
            ),
            placements=rt.placer.distribution(),
            placement_skips=rt.placer.skip_counts(),
            files=rt.state.vfs.dump_files(),
            trace=self.tracer if self.tracer.enabled else None,
            tenant=job.tenant,
            queue_wait_ns=job.queue_wait_ns,
        )

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _load_segment(home: PageStore, vaddr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            page = page_of(vaddr + pos)
            off = (vaddr + pos) & 0xFFF
            n = min(4096 - off, len(data) - pos)
            buf = home.ensure(page, MSIState.SHARED)
            buf[off : off + n] = data[pos : pos + n]
            pos += n

    @staticmethod
    def _finish_local(node: NodeRuntime, done, status: int) -> None:
        node.shutdown = True
        for _ in range(node.n_cores):
            node.runqueue.put(None)
        if not done.triggered:
            done.succeed(status & 0xFF)

    @staticmethod
    def _settled(job: Job) -> bool:
        return job.state in (JobState.FINISHED, JobState.FAILED)

    def _drive(self, targets: list[Job]) -> None:
        fleet = self._fleet
        sim = fleet.sim
        while any(not self._settled(job) for job in targets):
            if not sim._heap:
                raise SimulationError(
                    f"guest program deadlocked at t={sim.now} ns "
                    "(all threads blocked, no pending events)"
                )
            deadline: Optional[int] = None
            for job in fleet.active:
                d = job.runtime.deadline_ns
                if d is not None and (deadline is None or d < deadline):
                    deadline = d
            if deadline is not None and sim._heap[0][0] > deadline:
                raise self._deadline_error(deadline)
            sim.step()

    def _deadline_error(self, deadline: int) -> SimulationError:
        """Budget-exceeded report: how far we got and who was still running."""
        fleet = self._fleet
        sim = fleet.sim
        live = 0
        jobs_desc = []
        for job in fleet.active:
            alive = len(job.runtime.state.threads.alive())
            live += alive
            jobs_desc.append(
                f"{job.name} (tenant {job.tenant}, {alive} live thread(s))"
            )
        detail = "; ".join(jobs_desc) if jobs_desc else "no jobs running"
        return SimulationError(
            f"virtual-time budget exceeded ({deadline} ns): guest still "
            f"running — virtual time advanced to t={sim.now} ns, "
            f"{live} guest thread(s) still live; running job(s): {detail}"
        )
