"""DQEMU configuration and calibrated cost model.

Defaults reproduce the paper's testbed (§6.1): nodes with 4 cores at
3.3 GHz, a 1 Gb/s switch with ~55 µs round-trip for small control messages,
4 KiB pages, forwarding triggered by 4 sequential page requests, splitting
by 10 multi-node false-sharing requests.

Calibration notes (see EXPERIMENTS.md for the resulting numbers):

* ``page_fault_trap_cycles = 2000`` — the paper cites ~2 000 cycles for a
  page-fault trap.
* ``dsm_service_ns = 320_000`` — the measured remote-page latency in the
  paper is 410.5 µs against a ~40 µs wire lower bound; the residual is
  master-side protocol software (directory lookup, mprotect fiddling,
  manager queueing).  We bill it as the manager's per-request service time.
* ``qemu_cpi_discount`` — vanilla QEMU 4.2.0 runs ~4 % faster than a
  one-node DQEMU (Fig. 5's dashed line at 1.04): DQEMU adds a shadow-page
  lookup to guest address translation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError
from repro.net.faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.rpc import RetryPolicy

__all__ = ["DQEMUConfig"]


@dataclass(frozen=True)
class DQEMUConfig:
    # -- cluster shape -------------------------------------------------------
    cores_per_node: int = 4
    cpu_ghz: float = 3.3
    # Heterogeneous clusters (paper §1: DBT "allows nodes in a cluster to
    # have different kinds of physical cores"): per-node overrides of core
    # count and clock, keyed by node id.  None = homogeneous.
    node_cores: Optional[dict[int, int]] = None
    node_ghz: Optional[dict[int, float]] = None

    # -- network (paper §6.1: TP-Link Gigabit switch, 55 us TCP RTT) ----------
    bandwidth_bps: float = 1e9
    one_way_latency_ns: int = 27_400
    loopback_latency_ns: int = 300

    # -- DBT engine ----------------------------------------------------------
    mode: str = "dbt"  # "dbt" | "interp"
    cpi_dbt: float = 3.0
    cpi_interp: float = 30.0
    translate_per_insn: float = 800.0
    max_block_insns: int = 64
    quantum_cycles: int = 50_000
    # DBT hot-path tier (docs/PROTOCOL.md "DBT hot path").  Chaining is
    # timing-neutral dispatch plumbing and stays on; superblocks and idiom
    # fusion change the cost model, so they default off and every committed
    # table regenerates bit-identically.
    chaining_enabled: bool = True
    # exec_count at which a hot block is grown into a trace superblock;
    # 0 disables promotion entirely.
    superblock_threshold: int = 0
    superblock_max_blocks: int = 8  # trace-length cap (members, may repeat)
    cpi_superblock: float = 1.0  # per-insn cost inside a superblock
    fusion_enabled: bool = False  # peephole idiom fusion (compare+branch, ...)

    # -- DSM / coherence ----------------------------------------------------
    # Page-coherence protocol (docs/PROTOCOL.md "Coherence protocols"):
    #   "msi"      the paper's directory MSI (default; every committed table
    #              regenerates bit-identically),
    #   "mesi"     Exclusive-clean read grants + silent node-side E->M
    #              upgrades + payload-free S->M upgrade acks,
    #   "migrate"  MESI + home migration toward each page's dominant writer,
    #   "adaptive" per-page choice among the three from online access-
    #              pattern stats with hysteresis.
    coherence_protocol: str = "msi"
    # Consecutive write acquisitions by one node before a page's home
    # migrates to it ("migrate"/"adaptive").
    migration_trigger: int = 4
    # Extra hop paid by every OTHER node's request once a page's home has
    # migrated: the master must reach the remote home for the authoritative
    # copy instead of its own store.  Makes migration a real bet — it only
    # pays off while the new home stays the dominant requester.
    migration_penalty_ns: int = 160_000
    # Page requests between adaptive-classifier evaluations of a page.
    adaptive_window: int = 16
    page_fault_trap_cycles: int = 2_000
    dsm_service_ns: int = 320_000  # master manager per page-request
    # A request racing an already-delivered forwarded page (the directory
    # already lists the node as sharer) is a cheap directory-lookup ack.
    dsm_fast_service_ns: int = 2_000
    slave_coherence_service_ns: int = 2_000  # slave handling inval/downgrade
    syscall_service_ns: int = 3_000  # master executing a delegated syscall
    syscall_trap_cycles: int = 500  # local trap cost (both modes)

    # -- optimizations (§5) ----------------------------------------------------
    forwarding_enabled: bool = False
    forwarding_trigger: int = 4  # sequential requests before pushing (§6.1.1)
    forwarding_initial_window: int = 8
    # Linux-readahead-style doubling; a large cap keeps long streams miss-free
    # (the paper's 1 GB walk approaches wire speed, 108 MB/s on 1 Gb/s).
    forwarding_max_window: int = 256
    forwarding_push_ns: int = 4_000  # master-side cost per pushed page

    splitting_enabled: bool = False
    splitting_trigger: int = 10  # multi-node requests before split (§6.1.1)
    splitting_max_regions: int = 32
    splitting_history: int = 64  # per-page access records kept
    split_service_ns: int = 50_000  # master work: probe space, copy, broadcast
    merge_service_ns: int = 50_000

    # -- master sharding (ROADMAP "Async / sharded master") --------------------
    # Number of independent shard pools the master's directory is partitioned
    # into.  Each shard owns the pages with page_no % master_shards == shard
    # (see repro.mem.sharding.shard_of), with its own dispatcher, directory
    # partition, split-table partition, and per-node manager processes.  The
    # default of 1 is the paper's single-directory master and reproduces every
    # run bit-for-bit; higher values attack manager head-of-line blocking at
    # large node counts (measured as ServiceStats.queue_wait_ns).
    master_shards: int = 1

    # -- scheduling (§5.3) ----------------------------------------------------
    scheduler: str = "round_robin"  # "round_robin" | "hint"
    schedule_on_master: bool = False  # workers normally go to slave nodes

    # -- robustness / fault injection (docs/PROTOCOL.md "Failure modes") -------
    # Per-request timeout for every service-issued RPC.  None (the default)
    # is the paper's lossless-fabric assumption: wait forever.  Set, it makes
    # a dead or partitioned peer fail the run loudly with a ServiceTimeout
    # naming the service, message kind and peer instead of deadlocking.
    rpc_timeout_ns: Optional[int] = None
    # Reliable delivery (docs/PROTOCOL.md "Reliable delivery"): with
    # rpc_max_retries > 0 every service-issued RPC retransmits a cloned frame
    # up to that many times on timeout expiry — waiting out an exponential
    # backoff (base << attempt, plus a deterministic jitter in
    # [0, rpc_backoff_jitter_ns] hashed from the request id) before each —
    # and only then escalates to ServiceTimeout.  Requires rpc_timeout_ns
    # (loss is detected by the timeout).  The default of 0 sends nothing
    # extra ever: wire traffic and timings stay bit-identical to the
    # retry-free protocol.
    rpc_max_retries: int = 0
    rpc_backoff_base_ns: int = 50_000
    rpc_backoff_jitter_ns: int = 0
    # Fault plan applied to the fabric (repro.net.faults.FaultPlan).  None
    # leaves the wire untouched; an empty plan attaches the injection
    # machinery but injects nothing — runs stay bit-identical either way.
    fault_plan: Optional[FaultPlan] = None
    # Health-tracker thresholds (docs/PROTOCOL.md "Failure domains"):
    # consecutive missed timeout windows before a peer is demoted to
    # suspect, and before it is demoted to down.  Any call exhausting its
    # whole retry budget demotes the peer to down regardless.
    health_suspect_after: int = 2
    health_down_after: int = 5
    # Health-aware placement (§5.3 + failure domains): the ThreadPlacer
    # consults the cluster health view, skipping down/failed/draining
    # candidates and deprioritizing suspect ones.  Off by default — the
    # paper's scheduler is health-blind, and default runs must stay
    # bit-identical.
    health_aware_placement: bool = False
    # Failure-domain runtime: arm the master-side failure detector and the
    # FailureDomainService (thread evacuation, directory re-homing, lost
    # thread/page accounting).  Requires rpc_timeout_ns — crashes are
    # detected by timeout expiry.
    evacuation_enabled: bool = False
    # Checkpoint/restore (docs/PROTOCOL.md "Checkpoint/restore"): every
    # checkpoint_interval_ns of virtual time each slave snapshots a running
    # thread's register context at a quantum boundary — together with a
    # write-back of the tenant's Modified pages, so the snapshot is a
    # consistent cut under every coherence protocol — and ships it to the
    # master (checkpoint_target="master") or to a buddy peer with the page
    # flush still going home ("peer").  On a crash, threads with a live
    # checkpoint are rolled back and re-placed instead of reaped.  None (the
    # default) sends nothing: wire traffic and every committed table stay
    # bit-identical.  Requires evacuation_enabled (restore rides the failure
    # domain's recovery path).
    checkpoint_interval_ns: Optional[int] = None
    checkpoint_target: str = "master"  # "master" | "peer"
    # Master-side cost of landing one checkpoint frame (store the context,
    # before per-page install work under the shard locks).
    checkpoint_service_ns: int = 4_000
    # Active liveness (docs/PROTOCOL.md "Failure detection"): every slave
    # sends a lease-renewal heartbeat frame to the master every
    # heartbeat_interval_ns of virtual time.  The master's HeartbeatService
    # treats a renewal as positive liveness evidence and a whole lease of
    # silence as failure evidence, escalated through the same HealthTracker
    # thresholds as RPC timeouts (up -> suspect -> down) — so a crash on a
    # *quiet victim*, a node nobody happens to call, is detected within a
    # bounded window (heartbeat_detection_bound_ns) instead of hanging the
    # join forever.  None (the default) sends nothing: wire traffic and
    # every committed table stay bit-identical.  Requires
    # evacuation_enabled: lease expiry drives the failure domain's recovery
    # path exactly as an RPC-detected death does.
    heartbeat_interval_ns: Optional[int] = None
    # Lease duration: how much silence the master tolerates before a peer
    # starts accruing missed-lease evidence.  Must cover at least two
    # renewal intervals, so one delayed or dropped frame can never
    # false-positive a healthy node.  None derives 4x the interval.
    heartbeat_lease_ns: Optional[int] = None
    # Adaptive checkpoint cadence (ROADMAP, PR 9 leftover): derive the
    # checkpoint interval from the heartbeat detector's worst-case latency
    # (interval = factor * heartbeat_detection_bound_ns) instead of
    # hand-tuning checkpoint_interval_ns.  A restored thread re-executes at
    # most one detection span plus one checkpoint interval, so keying the
    # cadence on the bound makes rollback distance track the detector's
    # guarantee.  Mutually exclusive with an explicit
    # checkpoint_interval_ns; requires heartbeat_interval_ns.
    checkpoint_lease_factor: Optional[float] = None
    # Drain-driven load rebalancing: when a thread's single-stint queue wait
    # on a slave crosses this threshold, the node cooperatively evacuates its
    # hottest runnable thread to an underloaded node via the EvacuateThread
    # path (reason="rebalance").  None disables.  Requires evacuation_enabled
    # (the master-side evacuation handler is the failure domain's).
    rebalance_threshold_ns: Optional[int] = None

    # -- multi-tenant job admission (docs/PROTOCOL.md "Multi-tenant jobs") ----
    # Jobs submitted beyond max_concurrent_jobs wait in the admission queue;
    # beyond queue depth on top of that, submit() refuses outright
    # (back-pressure to the caller instead of unbounded buffering).
    max_concurrent_jobs: int = 3
    admission_queue_depth: int = 16

    # -- baseline -------------------------------------------------------------
    pure_qemu: bool = False  # single-node vanilla-QEMU model (no DSM layer)
    qemu_cpi_discount: float = 0.96

    def __post_init__(self):
        if self.cores_per_node < 1:
            raise ConfigError("cores_per_node must be >= 1")
        if self.mode not in ("dbt", "interp"):
            raise ConfigError(f"unknown mode {self.mode!r}")
        if self.scheduler not in ("round_robin", "hint"):
            raise ConfigError(f"unknown scheduler {self.scheduler!r}")
        if self.coherence_protocol not in ("msi", "mesi", "migrate", "adaptive"):
            raise ConfigError(
                f"unknown coherence protocol {self.coherence_protocol!r} "
                "(choose msi, mesi, migrate or adaptive)"
            )
        if self.migration_trigger < 1:
            raise ConfigError("migration_trigger must be >= 1")
        if self.migration_penalty_ns < 0:
            raise ConfigError("migration_penalty_ns must be >= 0")
        if self.adaptive_window < 2:
            raise ConfigError("adaptive_window must be >= 2")
        if self.cpu_ghz <= 0:
            raise ConfigError("cpu_ghz must be positive")
        if self.forwarding_trigger < 1 or self.splitting_trigger < 1:
            raise ConfigError("optimization triggers must be >= 1")
        if self.superblock_threshold < 0:
            raise ConfigError("superblock_threshold must be >= 0 (0 disables)")
        if self.superblock_threshold and not self.chaining_enabled:
            raise ConfigError(
                "superblocks require chaining_enabled: traces grow along "
                "recorded chain edges"
            )
        if self.superblock_max_blocks < 2:
            raise ConfigError("superblock_max_blocks must be >= 2")
        if self.cpi_superblock <= 0 or self.cpi_superblock > self.cpi_dbt:
            raise ConfigError(
                "cpi_superblock must be positive and no costlier than cpi_dbt"
            )
        if self.master_shards < 1:
            raise ConfigError("master_shards must be >= 1")
        if self.rpc_timeout_ns is not None and self.rpc_timeout_ns <= 0:
            raise ConfigError("rpc_timeout_ns must be positive (or None)")
        if self.rpc_max_retries < 0:
            raise ConfigError("rpc_max_retries must be >= 0")
        if self.rpc_max_retries and self.rpc_timeout_ns is None:
            raise ConfigError(
                "rpc_max_retries needs rpc_timeout_ns: retransmission is "
                "triggered by timeout expiry"
            )
        if self.rpc_backoff_base_ns < 0 or self.rpc_backoff_jitter_ns < 0:
            raise ConfigError("rpc backoff delays must be non-negative")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ConfigError("fault_plan must be a repro.net.faults.FaultPlan")
        if self.max_concurrent_jobs < 1:
            raise ConfigError("max_concurrent_jobs must be >= 1")
        if self.admission_queue_depth < 0:
            raise ConfigError("admission_queue_depth must be >= 0")
        if self.health_suspect_after < 1:
            raise ConfigError("health_suspect_after must be >= 1")
        if self.health_down_after <= self.health_suspect_after:
            raise ConfigError(
                "health_down_after must exceed health_suspect_after "
                "(a peer is suspect before it is down)"
            )
        if self.evacuation_enabled and self.rpc_timeout_ns is None:
            raise ConfigError(
                "evacuation_enabled needs rpc_timeout_ns: node failures are "
                "detected by timeout expiry"
            )
        if self.checkpoint_interval_ns is not None and self.checkpoint_interval_ns <= 0:
            raise ConfigError("checkpoint_interval_ns must be positive (or None)")
        if self.checkpoint_target not in ("master", "peer"):
            raise ConfigError(
                f"unknown checkpoint target {self.checkpoint_target!r} "
                "(choose master or peer)"
            )
        if self.checkpoint_service_ns < 0:
            raise ConfigError("checkpoint_service_ns must be >= 0")
        if self.checkpoint_interval_ns is not None and not self.evacuation_enabled:
            raise ConfigError(
                "checkpoint_interval_ns needs evacuation_enabled: restore "
                "rides the failure domain's recovery path"
            )
        if self.heartbeat_interval_ns is not None and self.heartbeat_interval_ns <= 0:
            raise ConfigError("heartbeat_interval_ns must be positive (or None)")
        if self.heartbeat_interval_ns is not None and not self.evacuation_enabled:
            raise ConfigError(
                "heartbeat_interval_ns needs evacuation_enabled: lease expiry "
                "drives the failure domain's recovery path"
            )
        if self.heartbeat_lease_ns is not None:
            if self.heartbeat_interval_ns is None:
                raise ConfigError(
                    "heartbeat_lease_ns needs heartbeat_interval_ns: a lease "
                    "is renewed by heartbeat frames"
                )
            if self.heartbeat_lease_ns < 2 * self.heartbeat_interval_ns:
                raise ConfigError(
                    "heartbeat_lease_ns must cover at least two renewal "
                    "intervals: a single delayed frame must never "
                    "false-positive a healthy node"
                )
        if self.checkpoint_lease_factor is not None:
            if self.checkpoint_lease_factor <= 0:
                raise ConfigError(
                    "checkpoint_lease_factor must be positive (or None)"
                )
            if self.heartbeat_interval_ns is None:
                raise ConfigError(
                    "checkpoint_lease_factor needs heartbeat_interval_ns: the "
                    "checkpoint cadence derives from the detection bound"
                )
            if self.checkpoint_interval_ns is not None:
                raise ConfigError(
                    "checkpoint_lease_factor and checkpoint_interval_ns are "
                    "mutually exclusive: use the derived or the explicit "
                    "cadence, not both"
                )
        if self.rebalance_threshold_ns is not None and self.rebalance_threshold_ns <= 0:
            raise ConfigError("rebalance_threshold_ns must be positive (or None)")
        if self.rebalance_threshold_ns is not None and not self.evacuation_enabled:
            raise ConfigError(
                "rebalance_threshold_ns needs evacuation_enabled: rebalancing "
                "reuses the failure domain's evacuation handler"
            )
        for nid, cores in (self.node_cores or {}).items():
            if cores < 1:
                raise ConfigError(f"node {nid}: cores must be >= 1")
        for nid, ghz in (self.node_ghz or {}).items():
            if ghz <= 0:
                raise ConfigError(f"node {nid}: clock must be positive")

    # -- helpers ----------------------------------------------------------------

    def cycles_to_ns(self, cycles: float) -> int:
        return int(round(cycles / self.cpu_ghz))

    def cores_of(self, node_id: int) -> int:
        if self.node_cores and node_id in self.node_cores:
            return self.node_cores[node_id]
        return self.cores_per_node

    def ghz_of(self, node_id: int) -> float:
        if self.node_ghz and node_id in self.node_ghz:
            return self.node_ghz[node_id]
        return self.cpu_ghz

    @property
    def effective_cpi_dbt(self) -> float:
        return self.cpi_dbt * self.qemu_cpi_discount if self.pure_qemu else self.cpi_dbt

    @property
    def effective_heartbeat_lease_ns(self) -> Optional[int]:
        """The armed lease duration: explicit, or 4x the renewal interval.

        Four intervals tolerate up to three consecutive lost-or-late
        renewals before the first missed-lease evidence accrues, keeping
        the detector quiet under transient loss while still bounding
        detection at a small multiple of the interval.
        """
        if self.heartbeat_lease_ns is not None:
            return self.heartbeat_lease_ns
        if self.heartbeat_interval_ns is None:
            return None
        return 4 * self.heartbeat_interval_ns

    def heartbeat_detection_bound_ns(self) -> Optional[int]:
        """Worst-case crash-to-``node_failed`` latency of the detector.

        A renewal in flight at the crash lands up to one one-way wire
        latency later and re-arms a full lease; the master's monitor then
        needs ``health_down_after`` consecutive expired checks — one per
        renewal interval, plus up to one interval of tick phase — before
        the peer is demoted to down and the failure domain fires.
        """
        if self.heartbeat_interval_ns is None:
            return None
        return (
            self.effective_heartbeat_lease_ns
            + (self.health_down_after + 1) * self.heartbeat_interval_ns
            + self.one_way_latency_ns
        )

    @property
    def effective_checkpoint_interval_ns(self) -> Optional[int]:
        """The armed checkpoint cadence: explicit ``checkpoint_interval_ns``,
        or ``checkpoint_lease_factor`` times the heartbeat detector's
        worst-case detection latency (the two are mutually exclusive)."""
        if self.checkpoint_interval_ns is not None:
            return self.checkpoint_interval_ns
        if self.checkpoint_lease_factor is None:
            return None
        return max(
            1,
            int(self.checkpoint_lease_factor * self.heartbeat_detection_bound_ns()),
        )

    def retry_policy(self) -> Optional["RetryPolicy"]:
        """The RPC reliability policy these options describe, or ``None``.

        ``None`` (the default) is the protocol's historic behavior: one
        transmission per call, timeout (if armed) escalating straight to
        :class:`ServiceTimeout`.  Services resolve this once at construction
        and pass it to every request they issue.
        """
        if not self.rpc_max_retries:
            return None
        from repro.net.rpc import RetryPolicy

        return RetryPolicy(
            max_retries=self.rpc_max_retries,
            backoff_base_ns=self.rpc_backoff_base_ns,
            backoff_jitter_ns=self.rpc_backoff_jitter_ns,
        )

    def nested_retry_policy(self) -> Optional["RetryPolicy"]:
        """Retry policy for master-side *nested* calls (handler -> node).

        With the failure domain armed, a handler stuck calling a dead node
        must give up strictly before its own clients' budgets expire —
        otherwise a recoverable crash cascades into a client
        :class:`ServiceTimeout` before the detector can latch the failure
        (docs/PROTOCOL.md "Failure domains").  One fewer retransmit window
        leaves a full timeout-plus-final-backoff margin between the
        handler's exhaustion (which marks the peer down and aborts every
        other pending call against it) and the earliest client expiry.
        Without the failure domain this is exactly :meth:`retry_policy`,
        keeping budgets symmetric and default runs untouched.
        """
        policy = self.retry_policy()
        if policy is None or not self.evacuation_enabled:
            return policy
        from repro.net.rpc import RetryPolicy

        return RetryPolicy(
            max_retries=max(1, self.rpc_max_retries - 1),
            backoff_base_ns=self.rpc_backoff_base_ns,
            backoff_jitter_ns=self.rpc_backoff_jitter_ns,
        )

    def with_options(self, **kwargs) -> "DQEMUConfig":
        """Return a modified copy (configs are frozen)."""
        return replace(self, **kwargs)

    def time_scaled(self, k: float) -> "DQEMUConfig":
        """Shrink every *communication* cost by ``k`` (and raise bandwidth by
        ``k``), for experiments whose compute is scaled down by the same
        factor.  Preserving the compute:communication ratio preserves the
        paper's speedup-curve shapes at a fraction of the simulation cost
        (see EXPERIMENTS.md, "scaling methodology").  CPU-side trap costs are
        untouched: they scale with guest work, not with the network.
        """
        if k <= 0:
            raise ConfigError("scale factor must be positive")
        hb_interval = (
            None if self.heartbeat_interval_ns is None
            else max(1, int(self.heartbeat_interval_ns / k))
        )
        # Clamp the scaled lease so the two-interval invariant survives
        # integer truncation at extreme scale factors.
        hb_lease = (
            None if self.heartbeat_lease_ns is None
            else max(2 * hb_interval, int(self.heartbeat_lease_ns / k))
        )
        return replace(
            self,
            heartbeat_interval_ns=hb_interval,
            heartbeat_lease_ns=hb_lease,
            bandwidth_bps=self.bandwidth_bps * k,
            one_way_latency_ns=max(1, int(self.one_way_latency_ns / k)),
            loopback_latency_ns=max(1, int(self.loopback_latency_ns / k)),
            dsm_service_ns=max(1, int(self.dsm_service_ns / k)),
            dsm_fast_service_ns=max(1, int(self.dsm_fast_service_ns / k)),
            migration_penalty_ns=max(1, int(self.migration_penalty_ns / k)),
            slave_coherence_service_ns=max(1, int(self.slave_coherence_service_ns / k)),
            syscall_service_ns=max(1, int(self.syscall_service_ns / k)),
            checkpoint_service_ns=max(1, int(self.checkpoint_service_ns / k)),
            forwarding_push_ns=max(1, int(self.forwarding_push_ns / k)),
            split_service_ns=max(1, int(self.split_service_ns / k)),
            merge_service_ns=max(1, int(self.merge_service_ns / k)),
        )
