"""Node memory systems.

:class:`DSMMemory` is what a DQEMU instance's engine executes against: the
guest→host address translation step applies the shadow-page split table
(§5.1), then the page-protection check — an access to a page the node does
not hold (or holds in an insufficient MSI state) raises
:class:`~repro.mem.api.PageStall`, the software analogue of the
page-protection faults DQEMU drives its coherence state machine with (§4.2).

:class:`LocalMemory` is the same interface with the DSM layer removed: every
page is local and writable.  It backs the vanilla single-node QEMU baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.llsc import LLSCTable
from repro.errors import UnalignedAccess
from repro.mem.api import M64, PageStall, check_span, sign_extend
from repro.mem.layout import PAGE_SIZE
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.mem.splitmap import SplitCrossing, SplitMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.dbt.cpu import CPUState

__all__ = ["MergeStall", "DSMMemory", "LocalMemory"]


class MergeStall(PageStall):
    """An access straddles split regions: the node must ask the master to
    merge the shadow pages back before the access can proceed."""

    def __init__(self, orig_page: int, offset: int):
        super().__init__(orig_page, True, offset)
        self.orig_page = orig_page


class DSMMemory:
    """MemoryAPI over a node's page cache, split table and LL/SC table."""

    def __init__(self, store: PageStore, split: SplitMap, llsc: LLSCTable):
        self.pages = store
        self.split = split
        self.llsc = llsc

    # -- translation + protection ----------------------------------------------

    def _translate(self, addr: int, size: int) -> int:
        if len(self.split):
            try:
                addr = self.split.translate_span(addr, size)
            except SplitCrossing as sc:
                raise MergeStall(sc.page, sc.offset) from None
        check_span(addr, size)
        return addr

    def _need_read(self, addr: int, size: int = 8) -> None:
        page = addr >> 12
        if not self.pages.has_read(page):
            raise PageStall(page, False, addr & (PAGE_SIZE - 1), size)

    def _need_write(self, addr: int, size: int = 8) -> None:
        page = addr >> 12
        if not self.pages.has_write(page):
            raise PageStall(page, True, addr & (PAGE_SIZE - 1), size)

    # -- MemoryAPI ------------------------------------------------------------

    def load(self, addr: int, size: int, signed: bool) -> int:
        taddr = self._translate(addr, size)
        self._need_read(taddr, size)
        value = self.pages.read(taddr, size)
        if signed and size < 8:
            return sign_extend(value, size)
        return value

    def store(self, addr: int, size: int, value: int) -> None:
        taddr = self._translate(addr, size)
        self._need_write(taddr, size)
        self.pages.write(taddr, size, value)
        if not self.llsc.empty:
            self.llsc.kill_store(taddr, size)

    def fetch_code(self, addr: int, size: int) -> bytes:
        taddr = self._translate(addr, size)
        self._need_read(taddr)
        return self.pages.read_bytes(taddr, size)

    # -- atomics (two-level scheme, §4.4) --------------------------------------

    @staticmethod
    def _check_atomic(addr: int) -> None:
        if addr % 8:
            raise UnalignedAccess(f"atomic access to unaligned address {addr:#x}", addr=addr)

    def load_reserved(self, cpu: "CPUState", addr: int) -> int:
        self._check_atomic(addr)
        taddr = self._translate(addr, 8)
        self._need_read(taddr)
        self.llsc.reserve(taddr, cpu.tid)
        return self.pages.read(taddr, 8)

    def store_conditional(self, cpu: "CPUState", addr: int, value: int) -> bool:
        self._check_atomic(addr)
        taddr = self._translate(addr, 8)
        # SC stores, so it needs the page Modified — this is what makes one
        # node's spinlock exclusive cluster-wide (Fig. 3).
        self._need_write(taddr)
        if not self.llsc.consume(taddr, cpu.tid):
            return False
        self.pages.write(taddr, 8, value)
        return True

    def atomic_cas(self, cpu: "CPUState", addr: int, expected: int, desired: int) -> int:
        self._check_atomic(addr)
        taddr = self._translate(addr, 8)
        self._need_write(taddr)
        old = self.pages.read(taddr, 8)
        if old == (expected & M64):
            self.pages.write(taddr, 8, desired & M64)
            self.llsc.kill_store(taddr, 8)
        return old

    def atomic_add(self, cpu: "CPUState", addr: int, operand: int) -> int:
        self._check_atomic(addr)
        taddr = self._translate(addr, 8)
        self._need_write(taddr)
        old = self.pages.read(taddr, 8)
        self.pages.write(taddr, 8, (old + operand) & M64)
        self.llsc.kill_store(taddr, 8)
        return old

    def atomic_swap(self, cpu: "CPUState", addr: int, operand: int) -> int:
        self._check_atomic(addr)
        taddr = self._translate(addr, 8)
        self._need_write(taddr)
        old = self.pages.read(taddr, 8)
        self.pages.write(taddr, 8, operand & M64)
        self.llsc.kill_store(taddr, 8)
        return old


class LocalMemory:
    """Single-node memory: every page local and writable (QEMU baseline)."""

    def __init__(self, store: PageStore, llsc: LLSCTable):
        self.pages = store
        self.llsc = llsc

    def _page(self, addr: int):
        page = addr >> 12
        if page not in self.pages:
            self.pages.ensure(page, MSIState.MODIFIED)
        return page

    def load(self, addr: int, size: int, signed: bool) -> int:
        check_span(addr, size)
        self._page(addr)
        value = self.pages.read(addr, size)
        if signed and size < 8:
            return sign_extend(value, size)
        return value

    def store(self, addr: int, size: int, value: int) -> None:
        check_span(addr, size)
        self._page(addr)
        self.pages.write(addr, size, value)
        if not self.llsc.empty:
            self.llsc.kill_store(addr, size)

    def fetch_code(self, addr: int, size: int) -> bytes:
        check_span(addr, size)
        self._page(addr)
        return self.pages.read_bytes(addr, size)

    def load_reserved(self, cpu: "CPUState", addr: int) -> int:
        DSMMemory._check_atomic(addr)
        self._page(addr)
        self.llsc.reserve(addr, cpu.tid)
        return self.pages.read(addr, 8)

    def store_conditional(self, cpu: "CPUState", addr: int, value: int) -> bool:
        DSMMemory._check_atomic(addr)
        self._page(addr)
        if not self.llsc.consume(addr, cpu.tid):
            return False
        self.pages.write(addr, 8, value)
        return True

    def atomic_cas(self, cpu: "CPUState", addr: int, expected: int, desired: int) -> int:
        DSMMemory._check_atomic(addr)
        self._page(addr)
        old = self.pages.read(addr, 8)
        if old == (expected & M64):
            self.pages.write(addr, 8, desired & M64)
            self.llsc.kill_store(addr, 8)
        return old

    def atomic_add(self, cpu: "CPUState", addr: int, operand: int) -> int:
        DSMMemory._check_atomic(addr)
        self._page(addr)
        old = self.pages.read(addr, 8)
        self.pages.write(addr, 8, (old + operand) & M64)
        self.llsc.kill_store(addr, 8)
        return old

    def atomic_swap(self, cpu: "CPUState", addr: int, operand: int) -> int:
        DSMMemory._check_atomic(addr)
        self._page(addr)
        old = self.pages.read(addr, 8)
        self.pages.write(addr, 8, operand & M64)
        self.llsc.kill_store(addr, 8)
        return old
