"""Data forwarding / read-ahead stream detection (paper §5.2).

The master keeps a page-request history per node.  Since several guest
threads on one node stream *different* regions concurrently (e.g. each
blackscholes worker reads its own option slice), the engine tracks multiple
active streams per node, like the Linux VFS readahead the paper cites keeps
per-file readahead state.  A request that extends a known stream advances
it; when a stream reaches ``trigger`` consecutive pages (4 in §6.1.1), the
master pushes pages ahead of it in Shared state, doubling the window up to
``max_window``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReadAheadEngine", "StreamState"]


@dataclass
class StreamState:
    last_page: int = -2
    run_length: int = 0
    window: int = 0
    pushed_until: int = -1  # highest page already pushed for this stream
    last_used: int = 0  # LRU tick


class ReadAheadEngine:
    def __init__(
        self,
        *,
        trigger: int = 4,
        initial_window: int = 8,
        max_window: int = 256,
        max_streams_per_node: int = 16,
    ):
        self.trigger = trigger
        self.initial_window = initial_window
        self.max_window = max_window
        self.max_streams = max_streams_per_node
        self._streams: dict[int, list[StreamState]] = {}
        self._tick = 0
        self.pushes_issued = 0
        self.streams_detected = 0

    def _match(self, streams: list[StreamState], page: int) -> StreamState | None:
        for st in streams:
            if page == st.last_page:
                return st  # repeat (e.g. upgrade): neutral
            if page == st.last_page + 1:
                return st
            if st.window > 0 and st.last_page < page <= st.pushed_until + 1:
                # stream already being forwarded: pushed pages are consumed
                # locally, so the next miss lands just past the pushed range
                return st
        return None

    def record(self, node: int, page: int) -> list[int]:
        """Record a (read) page request; returns pages to push to ``node``."""
        self._tick += 1
        streams = self._streams.setdefault(node, [])
        st = self._match(streams, page)
        if st is None:
            st = StreamState(last_page=page, run_length=1)
            streams.append(st)
            if len(streams) > self.max_streams:
                streams.sort(key=lambda s: s.last_used)
                streams.pop(0)
            st.last_used = self._tick
            return []
        st.last_used = self._tick
        if page == st.last_page:
            return []
        st.run_length += 1
        st.last_page = page

        if st.run_length < self.trigger:
            return []
        if st.window == 0:
            st.window = self.initial_window
            st.pushed_until = page
            self.streams_detected += 1
        else:
            st.window = min(st.window * 2, self.max_window)

        start = max(st.pushed_until, page) + 1
        end = page + st.window
        if start > end:
            return []
        pushes = list(range(start, end + 1))
        st.pushed_until = end
        self.pushes_issued += len(pushes)
        return pushes

    def streams_of(self, node: int) -> list[StreamState]:
        return self._streams.setdefault(node, [])
