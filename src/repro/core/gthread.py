"""Guest-thread runtime object (node-side)."""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.stats import ThreadStats
from repro.dbt.cpu import CPUState

__all__ = ["GuestThreadState", "GuestThread"]


class GuestThreadState(enum.Enum):
    READY = "ready"  # in the node run queue
    RUNNING = "running"  # on a core (or in a fault/syscall handler)
    BLOCKED = "blocked"  # parked in futex_wait
    EXITED = "exited"


class GuestThread:
    """A guest thread as a DQEMU node sees it: vCPU context + accounting."""

    __slots__ = (
        "cpu", "stats", "state", "enqueued_at", "blocked_at", "tenant",
        "last_checkpoint_ns", "evac_requested",
    )

    def __init__(self, cpu: CPUState, stats: ThreadStats, tenant: int = 0):
        self.cpu = cpu
        self.stats = stats
        self.state = GuestThreadState.READY
        self.enqueued_at: int = 0
        self.blocked_at: Optional[int] = None
        self.tenant = tenant
        #: Virtual time of the last checkpoint shipped for this thread
        #: (set to arrival time on spawn, so the first snapshot waits a
        #: full checkpoint_interval_ns).
        self.last_checkpoint_ns: int = 0
        #: Set by the load rebalancer: evacuate this thread at its next
        #: dequeue instead of running it (docs/PROTOCOL.md
        #: "Checkpoint/restore", rebalancing).
        self.evac_requested: bool = False

    @property
    def tid(self) -> int:
        return self.cpu.tid

    def __repr__(self) -> str:
        return (
            f"GuestThread(tid={self.tid}, tenant={self.tenant}, "
            f"state={self.state.value}, pc={self.cpu.pc:#x})"
        )
