"""Guest-thread runtime object (node-side)."""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.stats import ThreadStats
from repro.dbt.cpu import CPUState

__all__ = ["GuestThreadState", "GuestThread"]


class GuestThreadState(enum.Enum):
    READY = "ready"  # in the node run queue
    RUNNING = "running"  # on a core (or in a fault/syscall handler)
    BLOCKED = "blocked"  # parked in futex_wait
    EXITED = "exited"


class GuestThread:
    """A guest thread as a DQEMU node sees it: vCPU context + accounting."""

    __slots__ = ("cpu", "stats", "state", "enqueued_at", "blocked_at", "tenant")

    def __init__(self, cpu: CPUState, stats: ThreadStats, tenant: int = 0):
        self.cpu = cpu
        self.stats = stats
        self.state = GuestThreadState.READY
        self.enqueued_at: int = 0
        self.blocked_at: Optional[int] = None
        self.tenant = tenant

    @property
    def tid(self) -> int:
        return self.cpu.tid

    def __repr__(self) -> str:
        return (
            f"GuestThread(tid={self.tid}, tenant={self.tenant}, "
            f"state={self.state.value}, pc={self.cpu.pc:#x})"
        )
