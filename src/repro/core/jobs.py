"""Job admission and lifecycle for the multi-tenant cluster.

A long-lived :class:`~repro.core.cluster.Cluster` no longer runs one guest
program and dies; it *admits* jobs.  Each submitted program becomes a
:class:`Job` with a cluster-unique tenant id, and the :class:`JobManager`
decides when it actually starts:

* at most ``max_concurrent`` jobs run at once (each gets its own
  ``MasterRuntime``, system state, futex namespace, and per-node memory
  bundles — sharing nodes and wires, never state);
* up to ``queue_depth`` further submissions wait in a FIFO admission
  queue; a finishing job admits the head of the queue *at the virtual
  time it finishes*, so queue wait is a measurable simulated quantity;
* beyond that, :class:`~repro.errors.AdmissionError` — backpressure is
  explicit, not an unbounded queue.

The manager is deliberately simulation-agnostic: it never touches the
event loop.  The cluster hands it an ``admit`` callback that does the
actual runtime construction, and calls :meth:`JobManager.job_done` from
the job's completion callback, which is what makes admission order
deterministic (it happens inside the discrete-event timeline).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Optional

from collections import deque

from repro.errors import AdmissionError

__all__ = ["Job", "JobState", "JobManager"]


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class Job:
    """One admitted (or waiting) guest program.

    ``tenant`` is the cluster-unique id threaded through every layer: RPC
    frames, directory shards, futex tables, thread records, and stat rows
    all carry it, which is what keeps concurrent guests isolated on a
    shared fleet.
    """

    tenant: int
    name: str
    program: Any
    stdin: bytes = b""
    files: dict[str, bytes] = field(default_factory=dict)
    max_virtual_ms: Optional[float] = None

    state: JobState = JobState.QUEUED
    #: Virtual timestamps (ns).  ``submitted`` is when ``submit()`` was
    #: called (0 for jobs submitted before the fleet starts driving),
    #: ``admitted`` when the job actually started, ``finished`` when its
    #: done event fired.  ``admitted - submitted`` is the queue wait the
    #: multi-tenant benchmark reports at p99.
    submitted_ns: int = 0
    admitted_ns: int = 0
    finished_ns: int = 0

    result: Any = None          # RunResult once FINISHED
    error: Optional[BaseException] = None  # the failure once FAILED
    #: Cluster-private per-job runtime bundle (master, state, placer, ...).
    runtime: Any = None

    @property
    def queue_wait_ns(self) -> int:
        return max(0, self.admitted_ns - self.submitted_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Job(tenant={self.tenant}, name={self.name!r}, "
                f"state={self.state.value})")


class JobManager:
    """Admission control: bounded concurrency, bounded FIFO queue."""

    def __init__(self, max_concurrent: int, queue_depth: int,
                 admit: Callable[[Job], None]) -> None:
        self.max_concurrent = max_concurrent
        self.queue_depth = queue_depth
        self._admit = admit
        self.running: dict[int, Job] = {}
        self.queue: Deque[Job] = deque()
        self.admitted_total = 0
        self.rejected_total = 0

    def submit(self, job: Job) -> None:
        """Start ``job`` now if a slot is free, else queue it, else refuse."""
        if len(self.running) < self.max_concurrent:
            self._start(job)
        elif len(self.queue) < self.queue_depth:
            self.queue.append(job)
        else:
            self.rejected_total += 1
            raise AdmissionError(
                f"admission queue full: {len(self.running)} jobs running "
                f"(max_concurrent_jobs={self.max_concurrent}), "
                f"{len(self.queue)} queued "
                f"(admission_queue_depth={self.queue_depth})"
            )

    def job_done(self, job: Job) -> None:
        """Release ``job``'s slot and admit queued jobs into freed slots.

        Called from the job's done-event callback, i.e. *inside* the
        simulation timeline — the admitted job's startup events are pushed
        at the finishing job's completion time, deterministically.
        """
        self.running.pop(job.tenant, None)
        while self.queue and len(self.running) < self.max_concurrent:
            self._start(self.queue.popleft())

    def _start(self, job: Job) -> None:
        self.running[job.tenant] = job
        self.admitted_total += 1
        self._admit(job)

    @property
    def active(self) -> int:
        return len(self.running) + len(self.queue)
