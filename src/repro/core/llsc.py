"""Per-node global LL/SC hash table (paper §4.4).

Each DQEMU instance keeps a hash table of live load-linked reservations:
``address → {thread ids}``.  Plain stores check the table only while it is
non-empty (the LL→SC window is short, so this is rare).  Cross-node stores
are *not* tracked; instead, when the coherence protocol invalidates a page,
every reservation on that page is killed — the paper's false-positive
scheme: an SC may fail spuriously, costing a retry, never correctness.
"""

from __future__ import annotations

from repro.mem.layout import page_of

__all__ = ["LLSCTable"]


class LLSCTable:
    def __init__(self) -> None:
        self._res: dict[int, set[int]] = {}
        self.spurious_kills = 0  # reservations killed by page invalidation

    def __len__(self) -> int:
        return len(self._res)

    @property
    def empty(self) -> bool:
        return not self._res

    def reserve(self, addr: int, tid: int) -> None:
        self._res.setdefault(addr, set()).add(tid)

    def validate(self, addr: int, tid: int) -> bool:
        holders = self._res.get(addr)
        return bool(holders and tid in holders)

    def consume(self, addr: int, tid: int) -> bool:
        """SC: check-and-clear.  A successful SC removes every reservation at
        the address (its store would kill them anyway)."""
        if not self.validate(addr, tid):
            return False
        del self._res[addr]
        return True

    def kill_store(self, addr: int, size: int) -> None:
        """A store touching [addr, addr+size) kills overlapping reservations."""
        lo = addr & ~7
        hi = (addr + size - 1) & ~7
        for a in ((lo,) if lo == hi else (lo, hi)):
            self._res.pop(a, None)

    def kill_page(self, page: int) -> int:
        """Page invalidated by the coherence protocol: kill its reservations.

        Returns how many addresses were cleared (the paper's false-positive
        SC failures originate here).
        """
        doomed = [a for a in self._res if page_of(a) == page]
        for a in doomed:
            del self._res[a]
        self.spurious_kills += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._res.clear()
