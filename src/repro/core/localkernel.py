"""Single-node fast syscall path (vanilla-QEMU baseline).

User-mode QEMU traps guest syscalls and issues the equivalent host syscall
directly — no delegation, no network.  This class gives the baseline node
the same behaviour: syscalls execute inline against a local
:class:`~repro.kernel.syscalls.SystemState`, futexes park/wake threads on
the node's own run queue, and clone always lands on this node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.core.gthread import GuestThread, GuestThreadState
from repro.core.migration import build_child_context
from repro.dbt.cpu import CPUState
from repro.kernel.syscalls import SyscallExecutor, SyscallResult, SystemState
from repro.kernel.sysnums import CLONE_CHILD_CLEARTID, CLONE_CHILD_SETTID, CLONE_PARENT_SETTID
from repro.mem.api import M64

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import NodeRuntime

__all__ = ["LocalKernel"]

A0 = 10


class _LocalGuestMemory:
    """KernelMemory over the node's LocalMemory (never stalls)."""

    def __init__(self, node: "NodeRuntime"):
        self.node = node

    def read_guest(self, addr: int, size: int) -> Generator:
        out = bytearray()
        mem = self.node.memory
        pos = 0
        while pos < size:
            step = min(8, size - pos)
            out += mem.load(addr + pos, step, False).to_bytes(8, "little")[:step]
            pos += step
        return bytes(out)
        yield  # pragma: no cover

    def write_guest(self, addr: int, data: bytes) -> Generator:
        mem = self.node.memory
        pos = 0
        while pos < len(data):
            step = min(8, len(data) - pos)
            mem.store(addr + pos, step, int.from_bytes(data[pos : pos + step], "little"))
            pos += step
        return None
        yield  # pragma: no cover


class LocalKernel:
    def __init__(self, node: "NodeRuntime", state: SystemState,
                 finish: Callable[[int], None]):
        self.node = node
        self.state = state
        self.finish = finish
        self.executor = SyscallExecutor(state, _LocalGuestMemory(node))

    def handle(self, node: "NodeRuntime", th: GuestThread, sysno: int,
               args: tuple[int, ...]):
        cpu = th.cpu
        result: SyscallResult = yield from self.executor.execute(
            cpu.tid, node.node_id, sysno, args
        )

        if result.action == "clone":
            yield from self._clone(node, th, result)
            return
        if result.action == "migrate":
            # single-node baseline: affinity is trivially satisfied
            cpu.regs[A0] = 0
            node._requeue(th)
            return

        for waiter in result.woken:
            node._wake_thread(waiter.tid, 0)

        if result.action == "blocked":
            th.state = GuestThreadState.BLOCKED
            th.blocked_at = node.sim.now
            return
        if result.action == "exit":
            th.state = GuestThreadState.EXITED
            th.stats.finished_ns = node.sim.now
            cpu.halted = True
            node.threads.pop(cpu.tid, None)
            return
        if result.action == "exit_group":
            th.state = GuestThreadState.EXITED
            th.stats.finished_ns = node.sim.now
            self.finish(result.exit_status)
            return
        cpu.regs[A0] = result.retval & M64
        node._requeue(th)

    def _clone(self, node: "NodeRuntime", th: GuestThread, result: SyscallResult):
        clone = result.clone
        hint = th.cpu.hint_group
        ctid = clone.ctid if clone.flags & CLONE_CHILD_CLEARTID else 0
        rec = self.state.threads.create(
            node=node.node_id, parent_tid=clone.parent_tid, ctid=ctid, hint_group=hint
        )
        mem = _LocalGuestMemory(node)
        if clone.flags & CLONE_PARENT_SETTID and clone.ptid:
            yield from mem.write_guest(clone.ptid, rec.tid.to_bytes(8, "little"))
        if clone.flags & CLONE_CHILD_SETTID and clone.ctid:
            yield from mem.write_guest(clone.ctid, rec.tid.to_bytes(8, "little"))
        child_cpu = CPUState.from_snapshot(
            build_child_context(th.cpu.snapshot(), clone, rec.tid, hint)
        )
        node.add_thread(child_cpu)
        th.cpu.regs[A0] = rec.tid
        node._requeue(th)
