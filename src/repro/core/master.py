"""Master-node runtime (paper Fig. 2, §4.2–§4.4, §5).

The master owns the page directory, the centralized system state, and the
manager processes serving each node's requests (including its own — the
master's guest threads talk to their managers over the fabric's loopback).
The protocol work itself lives in the service layer
(:mod:`repro.core.services`); this class is the composition root wiring it
together.

The directory is partitioned across ``DQEMUConfig.master_shards``
independent *shard pools* (:class:`MasterShard`): shard ``s`` owns the
pages with ``page % K == s`` and runs its own coherence service (directory
partition + page locks), splitting service (split-table partition +
shard-affine shadow allocator), dispatcher, and one manager process per
node.  Inbound frames are routed to ``("mgr", src, shard)`` by the
endpoint's routing function (page-keyed kinds by their page's shard,
control kinds to shard 0), so two nodes' requests for pages on different
shards never queue behind each other.  Cross-shard work — split-table
broadcasts, multi-page guest-memory access from global syscalls, read-ahead
pushes — goes through the
:class:`~repro.core.services.coordinator.CrossShardCoordinator`.  With the
default ``master_shards = 1`` this collapses to the paper's
single-directory master, bit-for-bit.

Multi-tenancy: one ``MasterRuntime`` per admitted job, all sharing node 0's
physical endpoint through a :class:`~repro.net.endpoint.TenantEndpoint`
that stamps the job's tenant id onto every frame the runtime originates.
Manager subscriptions are keyed ``("mgr", tenant, src, shard)``, so each
job's managers only ever see its own frames, and the whole service stack
below them (directory, futexes, thread table, system state) is per job by
construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.config import DQEMUConfig
from repro.core.node import NodeRuntime
from repro.core.scheduler import ThreadPlacer
from repro.core.services.base import Dispatcher
from repro.core.services.checkpoint import CheckpointService
from repro.core.services.coherence import CoherenceService, CoherentGuestMemory
from repro.core.services.coordinator import CrossShardCoordinator
from repro.core.services.failure import FailureDomainService
from repro.core.services.forwarding import ForwardingService
from repro.core.services.futexes import FutexService
from repro.core.services.heartbeat import HeartbeatService
from repro.core.services.splitting import SplittingService
from repro.core.services.syscalls import SyscallService
from repro.core.stats import RunStats
from repro.kernel.syscalls import SystemState
from repro.mem.pagestore import PageStore
from repro.mem.sharding import ShardedDirectoryView, ShardedSplitView
from repro.net.endpoint import TenantEndpoint
from repro.net.messages import Shutdown
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.health import ClusterHealthView

__all__ = ["MasterRuntime", "MasterShard", "MasterGuestMemory"]

#: Backwards-compatible name for the kernel's coherent guest-memory accessor.
MasterGuestMemory = CoherentGuestMemory


class MasterShard:
    """One shard pool: directory partition, split partition, dispatcher.

    The shard's coherence and splitting services only ever see pages whose
    :func:`~repro.mem.sharding.shard_of` is this shard (routing enforces
    it), so their directory, split table, page locks, and shadow allocations
    are disjoint from every other shard's by construction.
    """

    def __init__(
        self,
        shard: int,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint,
        trace,
        run_stats: RunStats,
        home: PageStore,
        node_ids: list[int],
        node_id: int,
        spawn_guarded,
        coordinator: CrossShardCoordinator,
        view: Optional["ClusterHealthView"] = None,
    ) -> None:
        self.shard = shard
        self.coherence = CoherenceService(
            sim, config, endpoint, trace, run_stats, home, view=view
        )
        self.splitting = SplittingService(
            sim, config, endpoint, trace, run_stats,
            node_ids, node_id, spawn_guarded, coordinator, shard,
        )
        self.dispatcher = Dispatcher(sim, run_stats, shard=shard, endpoint=endpoint)
        self.dispatcher.register(self.coherence)
        self.dispatcher.register(self.splitting)


class MasterRuntime:
    """Composition root for the master's shard pools and shared services."""

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        node: NodeRuntime,  # the master's own node (id 0)
        node_ids: list[int],
        home: PageStore,
        state: SystemState,
        placer: ThreadPlacer,
        run_stats: RunStats,
        done: Event,
        *,
        failure_view: Optional["ClusterHealthView"] = None,
        tenant: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.node = node
        self.tenant = tenant
        # Every frame this runtime's services originate carries the job's
        # tenant id; replies inherit it from the request automatically.
        self.endpoint = TenantEndpoint(node.endpoint, tenant)
        self.node_ids = list(node_ids)
        self.home = home
        self.state = state
        self.placer = placer
        self.run_stats = run_stats
        self.done = done
        self.trace = node.trace
        self._finished = False
        # Cluster failure view; None keeps every service on its
        # failure-blind, bit-identical code paths.
        self.failure_view = failure_view

        spawn_guarded = self._spawn_guarded

        # -- shard pools (see docs/PROTOCOL.md "Sharded master") ----------------
        self.coordinator = CrossShardCoordinator(
            sim, config, self.endpoint, self.node_ids, view=failure_view
        )
        self.shards = [
            MasterShard(
                s, sim, config, self.endpoint, self.trace, run_stats, home,
                self.node_ids, node.node_id, spawn_guarded, self.coordinator,
                view=failure_view,
            )
            for s in range(config.master_shards)
        ]
        self.coordinator.bind(
            [shard.coherence for shard in self.shards],
            [shard.splitting for shard in self.shards],
        )

        # -- shared services (control shard 0) ---------------------------------
        # Forwarding spans the page space (consecutive stream pages interleave
        # over every shard); syscalls and futexes operate on the centralized
        # system state.  They live on shard 0's dispatcher, and control frames
        # (syscall_request has no page key) route there.
        self.forwarding = ForwardingService(
            sim, config, self.endpoint, self.trace, run_stats, spawn_guarded
        )
        self.futexes = FutexService(
            self.endpoint, run_stats, config, spawn_guarded, view=failure_view
        )
        guest_mem = CoherentGuestMemory(self.coordinator)
        self.syscalls = SyscallService(
            sim, config, self.endpoint, self.trace, run_stats,
            state, placer, self.node_ids, node.node_id,
            guest_mem, self.futexes, self._finish, view=failure_view,
        )
        for shard in self.shards:
            shard.coherence.bind(shard.splitting, self.forwarding)
            shard.splitting.bind(shard.coherence)
        self.forwarding.bind(self.coordinator)

        # The failure domain exists only when armed: registering it eagerly
        # would add a zero "failure" row to every committed breakdown table.
        # Same rule for the checkpoint service (checkpoint_interval_ns set
        # implies evacuation_enabled, so failure_view is always there too).
        self.failure_domain: Optional[FailureDomainService] = None
        self.checkpoint_service: Optional[CheckpointService] = None
        self.heartbeat_service: Optional[HeartbeatService] = None
        if failure_view is not None and config.effective_checkpoint_interval_ns is not None:
            self.checkpoint_service = CheckpointService(
                sim, config, self.endpoint, self.trace, run_stats,
                failure_view, self.node_ids, node.node_id,
            )
            self.checkpoint_service.bind(
                [shard.coherence for shard in self.shards]
            )
        if failure_view is not None:
            self.failure_domain = FailureDomainService(
                sim, config, self.endpoint, self.trace, run_stats,
                state, failure_view, placer.candidates, node.node_id,
                spawn_guarded, lambda: self._finished,
            )
            self.failure_domain.bind(
                [shard.coherence for shard in self.shards],
                self.syscalls.executor, self.futexes,
                checkpoints=self.checkpoint_service,
            )
        if failure_view is not None and config.heartbeat_interval_ns is not None:
            # Active liveness (docs/PROTOCOL.md "Failure detection"): lease
            # expiry escalates through the shared HealthTracker, whose
            # on_down callbacks the fleet wires to the failure domain —
            # exactly the path an exhausted RPC budget takes.
            self.heartbeat_service = HeartbeatService(
                sim, config, self.endpoint, self.trace, run_stats,
                node.endpoint.fabric.health, failure_view,
                self.node_ids, node.node_id,
                spawn_guarded, lambda: self._finished,
            )

        shard0 = self.shards[0]
        for service in (self.syscalls, self.forwarding, self.futexes):
            shard0.dispatcher.register(service)
        if self.failure_domain is not None:
            shard0.dispatcher.register(self.failure_domain)
        if self.checkpoint_service is not None:
            shard0.dispatcher.register(self.checkpoint_service)
        if self.heartbeat_service is not None:
            shard0.dispatcher.register(self.heartbeat_service)

        # Single-shard aliases (debugging, tests, unsharded call sites).
        self.coherence = shard0.coherence
        self.splitting = shard0.splitting
        self.dispatcher = shard0.dispatcher

    # -- convenience views (debugging, tests) ----------------------------------

    @property
    def directory(self):
        """The page directory: the raw partition for one shard, a read-only
        merged view across partitions otherwise."""
        if len(self.shards) == 1:
            return self.shards[0].coherence.directory
        return ShardedDirectoryView(
            [shard.coherence.directory for shard in self.shards]
        )

    @property
    def split(self):
        """The canonical split table (merged view when sharded)."""
        if len(self.shards) == 1:
            return self.shards[0].splitting.split
        return ShardedSplitView([shard.splitting.split for shard in self.shards])

    @property
    def executor(self):
        return self.syscalls.executor

    # -- lifecycle ------------------------------------------------------------

    def _spawn_guarded(self, gen, name: str):
        """Spawn a master process whose crashes surface as run failures."""
        return self.sim.spawn(self.node._guarded(gen), name=name)

    def start(self) -> None:
        # Node-major spawn order: with one shard this is exactly the
        # unsharded manager-per-node spawn sequence (bit-identity).
        for nid in self.node_ids:
            for shard in self.shards:
                self._spawn_guarded(
                    self._manager(nid, shard), f"mgr{nid}.{shard.shard}@master"
                )
        if self.heartbeat_service is not None:
            self.heartbeat_service.start()

    def _manager(self, nid: int, shard: MasterShard):
        """One manager per (node, shard), serving that node's requests for
        that shard's pages (§4; sharding per docs/PROTOCOL.md)."""
        q = self.endpoint.subscribe(("mgr", self.tenant, nid, shard.shard))
        while True:
            msg = yield q.get()
            if self._finished:
                # The guest is gone; drop the frame but keep the drop visible
                # (a silently swallowed post-exit frame made races
                # undiagnosable).
                self.run_stats.protocol.post_finish_drops += 1
                continue
            yield from shard.dispatcher.dispatch(msg)

    def _finish(self, status: int) -> None:
        self.trace.emit("run", self.node.node_id, f"exit_group({status})")
        self._finished = True
        for nid in self.node_ids:
            self.endpoint.request(nid, Shutdown())  # acks intentionally unawaited
        if not self.done.triggered:
            self.done.succeed(status & 0xFF)
