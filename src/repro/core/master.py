"""Master-node runtime (paper Fig. 2, §4.2–§4.4, §5).

The master owns the page directory, the centralized system state, and one
*manager* process per node (including itself — the master's own guest
threads talk to their manager over the fabric's loopback).  The protocol
work itself lives in the service layer (:mod:`repro.core.services`): the
manager processes are thin pumps feeding a :class:`Dispatcher` that routes
each frame by kind to the coherence, syscall, or splitting service;
forwarding and futex delivery are internal services driven by those.  This
class is the composition root wiring them together.
"""

from __future__ import annotations

from repro.core.config import DQEMUConfig
from repro.core.node import NodeRuntime
from repro.core.scheduler import ThreadPlacer
from repro.core.services.base import Dispatcher
from repro.core.services.coherence import CoherenceService, CoherentGuestMemory
from repro.core.services.forwarding import ForwardingService
from repro.core.services.futexes import FutexService
from repro.core.services.splitting import SplittingService
from repro.core.services.syscalls import SyscallService
from repro.core.stats import RunStats
from repro.kernel.syscalls import SystemState
from repro.mem.pagestore import PageStore
from repro.net.messages import Shutdown
from repro.sim.engine import Event, Simulator

__all__ = ["MasterRuntime", "MasterGuestMemory"]

#: Backwards-compatible name for the kernel's coherent guest-memory accessor.
MasterGuestMemory = CoherentGuestMemory


class MasterRuntime:
    """Composition root for the master's services and manager processes."""

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        node: NodeRuntime,  # the master's own node (id 0)
        node_ids: list[int],
        home: PageStore,
        state: SystemState,
        placer: ThreadPlacer,
        run_stats: RunStats,
        done: Event,
    ) -> None:
        self.sim = sim
        self.config = config
        self.node = node
        self.endpoint = node.endpoint
        self.node_ids = list(node_ids)
        self.home = home
        self.state = state
        self.placer = placer
        self.run_stats = run_stats
        self.done = done
        self.trace = node.trace
        self._finished = False

        spawn_guarded = self._spawn_guarded

        # -- services (see docs/PROTOCOL.md "Runtime service architecture") ----
        self.coherence = CoherenceService(
            sim, config, self.endpoint, self.trace, run_stats, home
        )
        self.splitting = SplittingService(
            sim, config, self.endpoint, self.trace, run_stats,
            self.node_ids, node.node_id, spawn_guarded,
        )
        self.forwarding = ForwardingService(
            sim, config, self.endpoint, self.trace, run_stats, spawn_guarded
        )
        self.futexes = FutexService(self.endpoint, run_stats, config, spawn_guarded)
        guest_mem = CoherentGuestMemory(self.coherence, self.splitting)
        self.syscalls = SyscallService(
            sim, config, self.endpoint, self.trace, run_stats,
            state, placer, self.node_ids, node.node_id,
            guest_mem, self.futexes, self._finish,
        )
        self.coherence.bind(self.splitting, self.forwarding)
        self.splitting.bind(self.coherence)
        self.forwarding.bind(self.coherence, self.splitting)

        self.dispatcher = Dispatcher(sim, run_stats)
        for service in (
            self.coherence,
            self.syscalls,
            self.splitting,
            self.forwarding,
            self.futexes,
        ):
            self.dispatcher.register(service)

    # -- convenience views (debugging, tests) ----------------------------------

    @property
    def directory(self):
        return self.coherence.directory

    @property
    def split(self):
        return self.splitting.split

    @property
    def executor(self):
        return self.syscalls.executor

    # -- lifecycle ------------------------------------------------------------

    def _spawn_guarded(self, gen, name: str):
        """Spawn a master process whose crashes surface as run failures."""
        return self.sim.spawn(self.node._guarded(gen), name=name)

    def start(self) -> None:
        for nid in self.node_ids:
            self._spawn_guarded(self._manager(nid), f"mgr{nid}@master")

    def _manager(self, nid: int):
        """One manager thread per node, serving that node's requests (§4)."""
        q = self.endpoint.subscribe(("mgr", nid))
        while True:
            msg = yield q.get()
            if self._finished:
                continue
            yield from self.dispatcher.dispatch(msg)

    def _finish(self, status: int) -> None:
        self.trace.emit("run", self.node.node_id, f"exit_group({status})")
        self._finished = True
        for nid in self.node_ids:
            self.endpoint.request(nid, Shutdown())  # acks intentionally unawaited
        if not self.done.triggered:
            self.done.succeed(status & 0xFF)
