"""Master-node runtime (paper Fig. 2, §4.2–§4.4, §5).

The master owns the page directory, the centralized system state, and one
*manager* process per node (including itself — the master's own guest
threads talk to their manager over the fabric's loopback).  Managers drive
MSI transactions under per-page locks, execute delegated syscalls, create
threads remotely, and run the two §5 optimizations: the false-sharing
detector + page splitter and the read-ahead data forwarder.
"""

from __future__ import annotations

from typing import Generator

from repro.core.config import DQEMUConfig
from repro.core.forwarding import ReadAheadEngine
from repro.core.migration import build_child_context
from repro.core.node import NodeRuntime
from repro.core.scheduler import ThreadPlacer
from repro.core.splitting import FalseSharingDetector, SplitDecision
from repro.core.stats import RunStats
from repro.errors import ProtocolError
from repro.kernel.syscalls import SyscallExecutor, SyscallResult, SystemState
from repro.kernel.sysnums import (
    CLONE_CHILD_CLEARTID,
    CLONE_CHILD_SETTID,
    CLONE_PARENT_SETTID,
)
from repro.mem.directory import Directory
from repro.mem.layout import PAGE_SIZE, SHADOW_BASE, page_of, page_offset
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.mem.splitmap import SplitEntry, SplitMap
from repro.net.messages import (
    FutexWake,
    Invalidate,
    PageData,
    PagePush,
    Shutdown,
    SpawnThread,
    SplitTableUpdate,
    SyscallReply,
    WriteBack,
)
from repro.sim.engine import Event, Simulator
from repro.sim.sync import SimLock

__all__ = ["MasterRuntime", "MasterGuestMemory"]


class MasterGuestMemory:
    """Kernel access to guest memory through the coherence protocol.

    Pointer-argument pages are migrated to the master before the syscall
    reads or writes them (§4.3): reads pull the freshest copy home (owner
    downgraded), writes invalidate every copy so slaves re-fetch.
    """

    def __init__(self, master: "MasterRuntime"):
        self.master = master

    def _spans(self, addr: int, size: int):
        """Split [addr, addr+size) into translated (taddr, length) chunks that
        stay within one page and one split region."""
        m = self.master
        pos = addr
        end = addr + size
        while pos < end:
            page = page_of(pos)
            off = page_offset(pos)
            entry = m.split.entry(page)
            if entry is not None:
                step = min(end - pos, entry.region_bytes - off % entry.region_bytes)
                taddr = entry.shadow_pages[off // entry.region_bytes] * PAGE_SIZE + off
            else:
                step = min(end - pos, PAGE_SIZE - off)
                taddr = pos
            yield taddr, step
            pos += step

    def read_guest(self, addr: int, size: int) -> Generator:
        m = self.master
        out = bytearray()
        for taddr, step in list(self._spans(addr, size)):
            yield from m.own_page_for_read(page_of(taddr))
            out += m.home_bytes(taddr, step)
        return bytes(out)

    def write_guest(self, addr: int, data: bytes) -> Generator:
        m = self.master
        pos = 0
        for taddr, step in list(self._spans(addr, len(data))):
            yield from m.own_page_for_write(page_of(taddr))
            m.home_write(taddr, data[pos : pos + step])
            pos += step
        return None


class MasterRuntime:
    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        node: NodeRuntime,  # the master's own node (id 0)
        node_ids: list[int],
        home: PageStore,
        state: SystemState,
        placer: ThreadPlacer,
        run_stats: RunStats,
        done: Event,
    ) -> None:
        self.sim = sim
        self.config = config
        self.node = node
        self.endpoint = node.endpoint
        self.node_ids = list(node_ids)
        self.home = home
        self.state = state
        self.placer = placer
        self.run_stats = run_stats
        self.done = done

        self.directory = Directory()
        self.split = SplitMap()  # canonical split table
        self.detector = FalseSharingDetector(
            trigger=config.splitting_trigger,
            history=config.splitting_history,
            max_regions=config.splitting_max_regions,
        )
        self.readahead = ReadAheadEngine(
            trigger=config.forwarding_trigger,
            initial_window=config.forwarding_initial_window,
            max_window=config.forwarding_max_window,
        )
        self.executor = SyscallExecutor(state, MasterGuestMemory(self))
        self.trace = node.trace
        self._page_locks: dict[int, SimLock] = {}
        self._shadow_cursor = SHADOW_BASE // PAGE_SIZE
        self._retired_shadows: set[int] = set()
        # Adaptive revert (§5.1 "adaptive scheme"): a split whose shadow pages
        # keep ping-ponging was mis-inferred; merge it back and never re-split.
        self._shadow_conflicts: dict[int, tuple[int, int, int]] = {}  # shadow -> (node, off, n)
        self._split_blacklist: set[int] = set()
        self._merging: set[int] = set()
        self._finished = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        for nid in self.node_ids:
            self.sim.spawn(
                self.node._guarded(self._manager(nid)), name=f"mgr{nid}@master"
            )

    def _manager(self, nid: int):
        """One manager thread per node, serving that node's requests (§4)."""
        q = self.endpoint.subscribe(("mgr", nid))
        while True:
            msg = yield q.get()
            if self._finished:
                continue
            if msg.kind == "page_request":
                yield from self._handle_page_request(msg)
            elif msg.kind == "syscall_request":
                yield from self._handle_syscall(msg)
            elif msg.kind == "merge_request":
                yield from self._handle_merge(msg)
            else:  # pragma: no cover - router keeps this unreachable
                raise ProtocolError(f"master: unexpected {msg.kind} from {msg.src}")

    # -- home-copy helpers ------------------------------------------------------

    def _lock(self, page: int) -> SimLock:
        lock = self._page_locks.get(page)
        if lock is None:
            lock = SimLock(self.sim)
            self._page_locks[page] = lock
        return lock

    def _home_page(self, page: int) -> bytearray:
        if page not in self.home:
            return self.home.ensure(page, MSIState.SHARED)
        return self.home.raw(page)

    def home_bytes(self, addr: int, size: int) -> bytes:
        self._home_page(page_of(addr))
        return self.home.read_bytes(addr, size)

    def home_write(self, addr: int, data: bytes) -> None:
        self._home_page(page_of(addr))
        self.home.write_bytes(addr, data)

    def home_install(self, page: int, data: bytes) -> None:
        self.home.install(page, data, MSIState.SHARED)

    def home_snapshot(self, page: int) -> bytes:
        self._home_page(page)
        return self.home.snapshot(page)

    # -- kernel page ownership (syscall pointer arguments, §4.3) -----------------

    def own_page_for_read(self, page: int):
        lock = self._lock(page)
        yield lock.acquire()
        try:
            owner = self.directory.owner(page)
            if owner is not None:
                ack = yield self.endpoint.request(owner, WriteBack(page=page))
                self.home_install(page, ack.data)
                self.directory.downgrade_owner(page)
                self.run_stats.protocol.downgrades += 1
        finally:
            lock.release()

    def own_page_for_write(self, page: int):
        lock = self._lock(page)
        yield lock.acquire()
        try:
            yield from self._pull_home_and_invalidate(page)
        finally:
            lock.release()

    def _pull_home_and_invalidate(self, page: int):
        """Invalidate every copy, pulling the owner's data home first."""
        owner = self.directory.owner(page)
        holders = self.directory.holders(page)
        if holders:
            acks = yield self.sim.all_of(
                [
                    self.endpoint.request(n, Invalidate(page=page, want_data=(n == owner)))
                    for n in holders
                ]
            )
            for ack in acks:
                if ack.data is not None:
                    self.home_install(page, ack.data)
            for n in holders:
                self.trace.emit("page", n, "invalidate", page=page)
            self.run_stats.protocol.invalidations += len(holders)
        self.directory.invalidate_all(page)

    # -- page requests (§4.2) ------------------------------------------------------

    def _handle_page_request(self, msg):
        cfg = self.config
        page, node, write = msg.page, msg.src, msg.write
        proto = self.run_stats.protocol
        lock = self._lock(page)
        yield lock.acquire()
        try:
            proto.page_requests += 1
            if write:
                proto.write_requests += 1
            else:
                proto.read_requests += 1

            # Fast path: a read fault that raced a forwarded page — the
            # directory already lists the node as sharer, so this is a cheap
            # directory-lookup ack (home is fresh for any shared page).
            if (
                not write
                and self.split.entry(page) is None
                and self.directory.plan(node, page, write=False).already_granted
            ):
                yield self.sim.timeout(cfg.dsm_fast_service_ns)
                # No payload: the node's copy arrived via PagePush already.
                self.trace.emit("page", node, "fast-ack (already sharer)", page=page)
                self.endpoint.reply(msg, PageData(page=page, write=False, ack_only=True))
                return

            yield self.sim.timeout(cfg.dsm_service_ns)

            # Requests racing a split/merge retry against the new table.
            if self.split.entry(page) is not None or page in self._retired_shadows:
                proto.split_retry_replies += 1
                self.endpoint.reply(msg, PageData(page=page, retry=True))
                return

            # False-sharing detection on write traffic (§5.1).  Shadow pages
            # are never split again; instead, a shadow page that keeps
            # ping-ponging means the split granularity was mis-inferred, so
            # the page is merged back and blacklisted (the adaptive revert).
            if cfg.splitting_enabled and write:
                shadow_of = self.split.shadow_to_orig(page)
                if shadow_of is not None:
                    self._track_shadow_conflict(page, shadow_of[0], node, msg.offset)
                elif page not in self._split_blacklist:
                    decision = self.detector.record(page, node, msg.offset, msg.size)
                    if decision is not None:
                        yield from self._do_split(decision)
                        proto.split_retry_replies += 1
                        self.endpoint.reply(msg, PageData(page=page, retry=True))
                        return

            plan = self.directory.plan(node, page, write)
            if plan.fetch_from is not None:
                if write:
                    ack = yield self.endpoint.request(
                        plan.fetch_from, Invalidate(page=page, want_data=True)
                    )
                    proto.invalidations += 1
                else:
                    ack = yield self.endpoint.request(plan.fetch_from, WriteBack(page=page))
                    proto.downgrades += 1
                if ack.data is not None:
                    self.home_install(page, ack.data)
            others = [n for n in plan.invalidate if n != plan.fetch_from]
            if others:
                yield self.sim.all_of(
                    [
                        self.endpoint.request(n, Invalidate(page=page, want_data=False))
                        for n in others
                    ]
                )
                proto.invalidations += len(others)

            data = self.home_snapshot(page)
            self.directory.commit(node, page, write)
            self.trace.emit(
                "page", node, "grant M" if write else "grant S", page=page
            )
            self.endpoint.reply(msg, PageData(page=page, write=write, data=data))
        finally:
            lock.release()

        if cfg.forwarding_enabled and not write:
            pushes = self.readahead.record(node, page)
            if pushes:
                # Pushes run in their own process so the manager can keep
                # serving this node's demand requests.
                self.sim.spawn(
                    self.node._guarded(self._pusher(node, pushes)),
                    name=f"pusher->{node}",
                )

    def _pusher(self, node: int, pages: list[int]):
        """Forward pages ahead of a detected sequential stream (§5.2).

        Pushes are paced against the target's downlink backlog so a demand
        reply never queues behind a long push burst, and each page's
        directory commit + send is atomic under the page lock (an Invalidate
        racing a push must be ordered after it on the wire)."""
        proto = self.run_stats.protocol
        fabric = self.endpoint.fabric
        # Let the push frontier run well ahead of consumption (the paper's
        # 1 GB walk approaches wire speed), while still bounding how long a
        # demand reply can sit behind queued pushes.
        pace_cap = 12 * fabric.serialization_ns(4096)
        for p in pages:
            backlog = fabric.downlink_backlog_ns(node)
            if backlog > pace_cap:
                yield self.sim.timeout(backlog - pace_cap)
            lock = self._lock(p)
            yield lock.acquire()
            try:
                if self.directory.owner(p) is not None:
                    continue  # modified elsewhere: a push would need invalidations
                if node in self.directory.holders(p):
                    continue
                if self.split.entry(p) is not None or p in self._retired_shadows:
                    continue
                yield self.sim.timeout(self.config.forwarding_push_ns)
                self.directory.commit(node, p, write=False)
                self.trace.emit("push", node, "forwarded", page=p)
                self.endpoint.send(node, PagePush(page=p, data=self.home_snapshot(p)))
                proto.pages_forwarded += 1
            finally:
                lock.release()

    # -- page splitting (§5.1) ------------------------------------------------------

    def _alloc_shadow(self) -> int:
        page = self._shadow_cursor
        self._shadow_cursor += 1
        return page

    def _do_split(self, decision: SplitDecision):
        """Caller holds the original page's lock."""
        cfg = self.config
        page = decision.page
        yield self.sim.timeout(cfg.split_service_ns)
        yield from self._pull_home_and_invalidate(page)
        content = self.home_snapshot(page)
        shadows = tuple(self._alloc_shadow() for _ in range(decision.regions))
        for s in shadows:
            # Each shadow page carries the region at its original offset; we
            # copy the whole page so offsets line up (Fig. 4) — only the
            # region's bytes are ever authoritative.
            self.home_install(s, content)
        self.split.install(
            SplitEntry(orig_page=page, shadow_pages=shadows, region_bytes=decision.region_bytes)
        )
        yield from self._broadcast_split_table()
        self.detector.forget(page)
        self.trace.emit(
            "split", self.node.node_id,
            f"split into {decision.regions} x {decision.region_bytes}B shadows",
            page=page,
        )
        self.run_stats.protocol.splits += 1

    def _broadcast_split_table(self):
        entries = self.split.clone_state()
        acks = yield self.sim.all_of(
            [
                self.endpoint.request(nid, SplitTableUpdate(entries=entries))
                for nid in self.node_ids
            ]
        )
        return acks

    # -- merging (correctness escape hatch for region-crossing accesses) ----------

    def _track_shadow_conflict(self, shadow: int, orig: int, node: int, offset: int) -> None:
        """Count cross-node write ping-pong on a shadow page; past the
        trigger, schedule a merge + blacklist (the split was mis-inferred)."""
        last_node, last_off, n = self._shadow_conflicts.get(shadow, (-1, -1, 0))
        if last_node >= 0 and node != last_node and offset != last_off:
            n += 1
        self._shadow_conflicts[shadow] = (node, offset, n)
        if n >= self.config.splitting_trigger and orig not in self._merging:
            self._merging.add(orig)
            self._split_blacklist.add(orig)
            self.trace.emit(
                "split", self.node.node_id,
                "shadow still ping-ponging: revert + blacklist", page=orig,
            )
            self.sim.spawn(
                self.node._guarded(self._merge_and_release(orig)),
                name=f"revert-split@{orig:#x}",
            )

    def _merge_and_release(self, orig: int):
        try:
            yield from self._do_merge(orig)
        finally:
            self._merging.discard(orig)

    def _do_merge(self, orig: int):
        """Merge a split page's shadows back into the original (locks the
        original and every shadow in sorted order; single-lock managers and
        disjoint merge lock-sets cannot deadlock against this)."""
        entry = self.split.entry(orig)
        if entry is None:
            return
        pages = sorted([orig, *entry.shadow_pages])
        locks = [self._lock(p) for p in pages]
        for lock in locks:
            yield lock.acquire()
        try:
            if self.split.entry(orig) is None:
                return  # merged concurrently
            yield self.sim.timeout(self.config.merge_service_ns)
            rb = entry.region_bytes
            for k, shadow in enumerate(entry.shadow_pages):
                yield from self._pull_home_and_invalidate(shadow)
                region = self.home_bytes(shadow * PAGE_SIZE + k * rb, rb)
                self.home_write(orig * PAGE_SIZE + k * rb, region)
                self._retired_shadows.add(shadow)
                self._shadow_conflicts.pop(shadow, None)
            self.split.remove(orig)
            yield from self._broadcast_split_table()
            self.trace.emit("split", self.node.node_id, "merged back", page=orig)
            self.run_stats.protocol.merges += 1
        finally:
            for lock in reversed(locks):
                lock.release()

    def _handle_merge(self, msg):
        from repro.net.messages import Ack

        yield from self._do_merge(msg.page)
        # A guest access straddled the regions: this page must stay whole.
        self._split_blacklist.add(msg.page)
        self.endpoint.reply(msg, Ack())

    # -- delegated syscalls (§4.3) ---------------------------------------------------

    def _handle_syscall(self, msg):
        cfg = self.config
        yield self.sim.timeout(cfg.syscall_service_ns)
        from repro.kernel.sysnums import sys_name

        self.trace.emit("syscall", msg.src, sys_name(msg.sysno), tid=msg.tid)
        result: SyscallResult = yield from self.executor.execute(
            msg.tid, msg.src, msg.sysno, msg.args
        )
        proto = self.run_stats.protocol

        if result.action == "clone":
            yield from self._handle_clone(msg, result)
            return
        if result.action == "migrate":
            yield from self._handle_migrate(msg, result)
            return

        for waiter in result.woken:
            proto.futex_wakes += 1
            self.endpoint.send(waiter.node, FutexWake(tid=waiter.tid, retval=0))

        if result.action == "blocked":
            proto.futex_waits += 1
            self.endpoint.reply(msg, SyscallReply(parked=True))
        elif result.action == "exit":
            self.endpoint.reply(msg, SyscallReply(exited=True))
        elif result.action == "exit_group":
            self.endpoint.reply(msg, SyscallReply(exited=True))
            self._finish(result.exit_status)
        else:  # "return" / "yield"
            self.endpoint.reply(msg, SyscallReply(retval=result.retval))

    def _handle_clone(self, msg, result: SyscallResult):
        clone = result.clone
        hint = (msg.context or {}).get("hint_group")
        node_id = self.placer.place(hint)
        ctid = clone.ctid if clone.flags & CLONE_CHILD_CLEARTID else 0
        rec = self.state.threads.create(
            node=node_id, parent_tid=clone.parent_tid, ctid=ctid, hint_group=hint
        )
        mem = MasterGuestMemory(self)
        if clone.flags & CLONE_PARENT_SETTID and clone.ptid:
            yield from mem.write_guest(clone.ptid, rec.tid.to_bytes(8, "little"))
        if clone.flags & CLONE_CHILD_SETTID and clone.ctid:
            yield from mem.write_guest(clone.ctid, rec.tid.to_bytes(8, "little"))
        child = build_child_context(msg.context, clone, rec.tid, hint)
        if node_id != self.node.node_id:
            self.run_stats.protocol.remote_thread_spawns += 1
        self.trace.emit(
            "thread", node_id,
            f"clone: placed (hint={hint})", tid=rec.tid,
        )
        yield self.endpoint.request(node_id, SpawnThread(tid=rec.tid, context=child))
        self.endpoint.reply(msg, SyscallReply(retval=rec.tid))

    def _handle_migrate(self, msg, result: SyscallResult):
        """Live thread migration (sched_setaffinity): re-place the calling
        thread.  The syscall request already carries the CPU context, so the
        move reuses the remote-creation path: ship the context to the target
        node and tell the source node to forget the thread.  The thread's
        data follows through the coherence protocol, as at creation (§4.1).
        """
        from repro.kernel.sysnums import ERRNO

        target = result.migrate_to
        if target not in self.node_ids:
            self.endpoint.reply(
                msg, SyscallReply(retval=(-ERRNO.EINVAL) & 0xFFFF_FFFF_FFFF_FFFF)
            )
            return
        if target == msg.src:
            self.endpoint.reply(msg, SyscallReply(retval=0))
            return
        self.state.threads.move(msg.tid, target)
        context = dict(msg.context)
        regs = list(context["regs"])
        regs[10] = 0  # a0: sched_setaffinity returns 0 on the new node
        context["regs"] = regs
        self.trace.emit(
            "thread", target, f"migrated from n{msg.src}", tid=msg.tid
        )
        self.run_stats.protocol.thread_migrations += 1
        yield self.endpoint.request(target, SpawnThread(tid=msg.tid, context=context))
        self.endpoint.reply(msg, SyscallReply(migrated=True))

    def _finish(self, status: int) -> None:
        self.trace.emit("run", self.node.node_id, f"exit_group({status})")
        self._finished = True
        for nid in self.node_ids:
            self.endpoint.request(nid, Shutdown())  # acks intentionally unawaited
        if not self.done.triggered:
            self.done.succeed(status & 0xFF)
