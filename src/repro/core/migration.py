"""Remote thread creation (paper §4.1).

``clone()`` is trapped; the parent's CPU context plus the syscall parameters
travel to the master, which picks a node and ships a cloned context there.
The child "holds an identical execution environment as if a thread is
created locally": same registers and pc (just past the ecall), a0 = 0 (the
Linux clone convention for the child), and the new stack pointer.  The data
the child touches follows later through the coherence protocol.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.registers import SP
from repro.kernel.syscalls import CloneRequest

__all__ = ["build_child_context"]

A0 = 10


def build_child_context(parent_snapshot: dict, clone: CloneRequest, child_tid: int,
                        hint_group: Optional[int]) -> dict:
    """Construct the child's CPU snapshot from the parent's at the ecall."""
    regs = list(parent_snapshot["regs"])
    regs[A0] = 0  # clone returns 0 in the child
    if clone.child_stack:
        regs[SP] = clone.child_stack
    return {
        "regs": regs,
        "pc": parent_snapshot["pc"],  # already points past the ecall
        "tid": child_tid,
        "hint_group": hint_group,
    }
