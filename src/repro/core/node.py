"""A DQEMU instance: one node of the cluster (paper Fig. 2).

Each node runs:

* ``cores_per_node`` *core* processes executing guest (TCG-)threads in
  quanta through the DBT engine;
* one *communicator* process pumping inbound commands through a
  :class:`~repro.core.services.base.Dispatcher` over the node-side services
  (coherence client, split-table client, thread control — see
  :mod:`repro.core.services.nodeside`);
* per-fault/per-syscall handler processes, so a thread waiting on a remote
  page or a delegated syscall frees its core for other runnable threads
  (the host OS would deschedule the blocked TCG thread the same way).

The same class is every node: the master is node 0 with a
:class:`~repro.core.master.MasterRuntime` attached, talking to itself over
the fabric's loopback path.

Multi-tenancy: a long-lived node hosts guest threads of several concurrent
jobs.  Everything address-space-shaped — page store, split table, LL/SC
reservations, DBT engine (whose code cache is keyed by guest PC), thread
table, in-flight fault tracking — lives in a per-tenant :class:`NodeTenant`
bundle, so jobs cannot see each other's pages or threads even though they
share the node's cores and NIC.  The cores themselves are shared hardware:
one run queue (tenant-fair, see
:class:`~repro.core.scheduler.FairRunQueue`) feeds every core.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.config import DQEMUConfig
from repro.core.dsmmem import DSMMemory, LocalMemory, MergeStall
from repro.core.gthread import GuestThread, GuestThreadState
from repro.core.llsc import LLSCTable
from repro.core.services.base import Dispatcher, attribute_timeouts
from repro.core.services.heartbeat import NodeHeartbeatService
from repro.core.services.nodeside import (
    NodeCheckpointService,
    NodeCoherenceService,
    NodeControlService,
    NodeSplitTableService,
)
from repro.core.stats import RunStats
from repro.dbt.cpu import CPUState
from repro.dbt.engine import EngineTiming, ExecutionEngine
from repro.dbt.stop import StopKind
from repro.errors import GuestFault, ProtocolError
from repro.kernel.classify import is_global
from repro.kernel.sysnums import SYS
from repro.mem.api import M64, PageStall
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.mem.sharding import shard_of
from repro.mem.splitmap import SplitMap
from repro.net.endpoint import Endpoint
from repro.net.fabric import Fabric
from repro.net.messages import (
    Checkpoint,
    CheckpointFlush,
    DrainComplete,
    EvacuateThread,
    MergeRequest,
    PageRequest,
    PeerCheckpoint,
    SyscallRequest,
)
from repro.core.scheduler import FairRunQueue
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.localkernel import LocalKernel

__all__ = ["NodeRuntime", "NodeTenant", "COMMAND_KINDS"]

A0, A7 = 10, 17

#: Inbound kinds handled by a node's communicator (vs. master managers),
#: derived from the node-side services' routing claims.
COMMAND_KINDS = (
    NodeCoherenceService.handled_kinds
    | NodeSplitTableService.handled_kinds
    | NodeControlService.handled_kinds
)


def _master_shard_key(msg, nshards: int) -> int:
    """Master shard a request frame routes to: page-keyed kinds go to their
    page's shard, control kinds (no ``page`` attribute — syscall delegation)
    to shard 0, where the shared syscall/futex services are registered."""
    page = getattr(msg, "page", None)
    if page is None:
        return 0
    return shard_of(page, nshards)


class NodeTenant:
    """One job's private slice of a node.

    Page numbers and thread ids are per-job namespaces, so everything keyed
    by them is bundled here rather than on the node: two tenants both using
    page 5 or tid 2 must never collide.  The bundle also carries the job's
    :class:`RunStats`, which is how per-tenant attribution of node-side
    service work happens structurally.
    """

    __slots__ = (
        "tenant", "run_stats", "pagestore", "splitmap", "llsc", "memory",
        "engine", "threads", "inflight", "push_gates", "finished",
        "page_retry_stats", "merge_retry_stats", "syscall_retry_stats",
        "evac_retry_stats", "ckpt_retry_stats",
    )

    def __init__(self, node: "NodeRuntime", tenant: int, run_stats: RunStats):
        config = node.config
        self.tenant = tenant
        self.run_stats = run_stats
        # Eager rows mirror Dispatcher.register: every tenant's RunStats
        # lists the node-side services even at zero requests.
        for name in (
            NodeCoherenceService.name,
            NodeSplitTableService.name,
            NodeControlService.name,
        ):
            run_stats.service(name)
        if config.effective_checkpoint_interval_ns is not None:
            # Mirrors the conditional dispatcher registration: the row
            # exists exactly when the service does.
            run_stats.service(NodeCheckpointService.name)
        if (
            config.heartbeat_interval_ns is not None
            and node.node_id != node.master_id
        ):
            # Same rule for the lease-renewal sender (slaves only: the
            # master's liveness is axiomatic).
            run_stats.service(NodeHeartbeatService.name)
        if node.rpc_retry is not None:
            self.page_retry_stats = run_stats.service(NodeCoherenceService.name)
            self.merge_retry_stats = run_stats.service(NodeSplitTableService.name)
            self.syscall_retry_stats = run_stats.service("node.syscall")
            self.evac_retry_stats = run_stats.service(NodeControlService.name)
        else:
            self.page_retry_stats = None
            self.merge_retry_stats = None
            self.syscall_retry_stats = None
            self.evac_retry_stats = None
        if node.rpc_retry is not None and config.effective_checkpoint_interval_ns is not None:
            self.ckpt_retry_stats = run_stats.service(NodeCheckpointService.name)
        else:
            self.ckpt_retry_stats = None
        self.pagestore = PageStore()
        self.splitmap = SplitMap()
        self.llsc = LLSCTable()
        if config.pure_qemu:
            self.memory = LocalMemory(self.pagestore, self.llsc)
        else:
            self.memory = DSMMemory(self.pagestore, self.splitmap, self.llsc)
        self.engine = ExecutionEngine(
            self.memory,
            timing=EngineTiming(
                cpi_dbt=config.effective_cpi_dbt,
                cpi_interp=config.cpi_interp,
                cpi_superblock=config.cpi_superblock,
                translate_per_insn=config.translate_per_insn,
            ),
            mode=config.mode,
            max_block_insns=config.max_block_insns,
            chaining=config.chaining_enabled,
            superblock_threshold=config.superblock_threshold,
            superblock_max_blocks=config.superblock_max_blocks,
            fusion=config.fusion_enabled,
        )
        self.threads: dict[int, GuestThread] = {}
        self.inflight: dict[int, tuple] = {}  # page -> (event, write)
        #: page -> event fired when a forwarded page (§5.2) is installed;
        #: lets an outstanding read fault complete as soon as the push lands.
        self.push_gates: dict[int, object] = {}
        #: The job finished (tenant-scoped Shutdown landed): threads of this
        #: bundle are dropped at their next scheduling point.
        self.finished = False


class NodeRuntime:
    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        node_id: int,
        config: DQEMUConfig,
        run_stats: RunStats,
        *,
        master_id: int = 0,
        on_failure: Optional[Callable[[BaseException], None]] = None,
        tracer=None,
    ) -> None:
        from repro.core.trace import NULL_TRACER

        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.master_id = master_id
        self.run_stats = run_stats
        self.trace = tracer if tracer is not None else NULL_TRACER
        self.on_failure = on_failure or (lambda exc: (_ for _ in ()).throw(exc))

        self.endpoint = Endpoint(sim, fabric, node_id)
        # Node-side services serve every tenant on this node; billing follows
        # the frame's tenant to that job's RunStats via the resolver.
        self.dispatcher = Dispatcher(
            sim, run_stats, endpoint=self.endpoint,
            stats_resolver=lambda msg: self.tenants[msg.tenant].run_stats,
        )
        for service in (
            NodeCoherenceService(self),
            NodeSplitTableService(self),
            NodeControlService(self),
        ):
            self.dispatcher.register(service)
        #: Buddy-held register snapshots (peer-mode checkpointing):
        #: (source node, tenant, tid) -> (taken_ns, context).
        self.peer_checkpoints: dict[tuple[int, int, int], tuple] = {}
        if config.effective_checkpoint_interval_ns is not None:
            # Must register before the router captures the command-kind set
            # below, or peer_checkpoint/fetch_checkpoints frames would route
            # to a master manager.  Conditional so default runs create no
            # "node.checkpoint" stats row and stay bit-identical.
            self.dispatcher.register(NodeCheckpointService(self))
        #: Lease-renewal sender (docs/PROTOCOL.md "Failure detection"):
        #: built only when heartbeats are armed, and only on slaves — the
        #: master never renews a lease with itself.
        self.heartbeat_sender: Optional[NodeHeartbeatService] = None
        if config.heartbeat_interval_ns is not None and node_id != master_id:
            self.heartbeat_sender = NodeHeartbeatService(self)
        command_kinds = self.dispatcher.kinds
        nshards = config.master_shards
        self.endpoint.set_router(
            lambda msg: "comm" if msg.kind in command_kinds
            else ("mgr", msg.tenant, msg.src, _master_shard_key(msg, nshards))
        )
        # Loss recovery for node-issued RPCs (page requests, merge requests,
        # delegated syscalls).  Retransmit traffic is attributed to the
        # node-side service name that owns the protocol plane; the stats
        # bindings exist only when retries are armed, so default runs create
        # no extra RunStats rows ("node.syscall" is not a registered service).
        self.rpc_retry = config.retry_policy()
        self.n_cores = config.cores_of(node_id)
        self.ghz = config.ghz_of(node_id)
        #: Tenant bundles; tenant 0 exists from birth so a bare node is
        #: immediately usable the way the single-job node always was.
        self.tenants: dict[int, NodeTenant] = {}
        self.add_tenant(0, run_stats)
        self.runqueue = FairRunQueue(sim)
        self.shutdown = False
        #: Failure-domain state (docs/PROTOCOL.md "Failure domains"):
        #: ``crashed`` is fail-stop (set by FaultPlan.crash schedules);
        #: ``draining`` diverts every thread reaching a scheduling point
        #: into evacuation back to the master.
        self.crashed = False
        self.draining = False
        self._evacuating = 0  # evacuation RPCs still in flight
        self._drain_sent = False
        #: Cluster node ids (set by the fleet once the topology exists);
        #: checkpoint buddies are computed from it.  A bare node only knows
        #: itself — peer-mode checkpoints then fall back to the master.
        self.peer_ids: list[int] = [node_id]
        #: Virtual time of the last rebalance this node triggered
        #: (cooldown: at most one per rebalance_threshold_ns window).
        self._last_rebalance_ns = 0
        #: Set for the pure-QEMU baseline: syscalls short-circuit locally.
        self.local_kernel: Optional["LocalKernel"] = None

    # -- tenancy ------------------------------------------------------------

    def add_tenant(self, tenant: int, run_stats: RunStats) -> NodeTenant:
        """Provision a job's private slice of this node (idempotent per id)."""
        if tenant in self.tenants:
            raise ProtocolError(f"node {self.node_id}: tenant {tenant} already exists")
        bundle = NodeTenant(self, tenant, run_stats)
        self.tenants[tenant] = bundle
        return bundle

    def bundle(self, tenant: int) -> NodeTenant:
        return self.tenants[tenant]

    # Single-tenant views: the node's original attribute surface delegates
    # to tenant 0, so the pure-QEMU local kernel, tests and tooling written
    # against the one-job node keep reading the same names.

    @property
    def pagestore(self) -> PageStore:
        return self.tenants[0].pagestore

    @property
    def splitmap(self) -> SplitMap:
        return self.tenants[0].splitmap

    @property
    def llsc(self) -> LLSCTable:
        return self.tenants[0].llsc

    @property
    def memory(self):
        return self.tenants[0].memory

    @property
    def engine(self) -> ExecutionEngine:
        return self.tenants[0].engine

    @property
    def threads(self) -> dict[int, GuestThread]:
        return self.tenants[0].threads

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self.sim.spawn(self._guarded(self._communicator()), name=f"comm@{self.node_id}")
        for k in range(self.n_cores):
            self.sim.spawn(self._guarded(self._core(k)), name=f"core{k}@{self.node_id}")
        if self.heartbeat_sender is not None:
            self.heartbeat_sender.start()

    def _guarded(self, gen):
        """Wrap a node process so crashes surface as run failures."""

        def runner():
            try:
                yield from gen
            except BaseException as exc:  # noqa: BLE001 - report and stop
                if self.crashed:
                    return  # a dead node's processes fail silently with it
                self.on_failure(exc)

        return runner()

    def crash(self) -> None:
        """Fail-stop this node (FaultPlan.crash): freeze it mid-flight.

        Cores stop at their next scheduling point, the RPC channel is
        neutered (no retransmit timers keep firing, calls issued by
        still-suspended processes go nowhere and never complete — exactly
        what death looks like to the process), and the permanent wire drop
        rules the crash plan installed take care of any frame already in
        flight.  Nothing is cleaned up: a crashed machine does not get to
        run recovery code.
        """
        if self.crashed:
            return
        self.crashed = True
        self.shutdown = True
        self.trace.emit("node", self.node_id, "crash")
        self.endpoint.rpc.halt()
        for _ in range(self.n_cores):
            self.runqueue.put(None)

    # -- thread management ------------------------------------------------------

    def add_thread(self, cpu: CPUState, tenant: int = 0) -> GuestThread:
        bundle = self.tenants[tenant]
        ts = bundle.run_stats.thread(cpu.tid)
        ts.node = self.node_id
        if ts.quanta == 0:  # fresh thread (not a live migration)
            ts.created_ns = self.sim.now
        th = GuestThread(cpu, ts, tenant)
        th.last_checkpoint_ns = self.sim.now  # first snapshot waits a full interval
        bundle.threads[cpu.tid] = th
        self.trace.emit("thread", self.node_id, "start", tid=cpu.tid)
        self._requeue(th)
        return th

    def _cycles_to_ns(self, cycles: float) -> int:
        return int(round(cycles / self.ghz))

    def _requeue(self, th: GuestThread) -> None:
        if self.draining and not self.shutdown:
            # Cooperative drain: every thread reaching a scheduling point is
            # handed back to the master instead of queued locally.
            self._evacuate(th)
            return
        if self._checkpoint_due(th):
            # Every requeue is a consistent capture point: the fault or
            # syscall that stopped the thread has fully resolved, so the
            # context sits at an instruction boundary with no pending
            # kernel interaction to replay (docs/PROTOCOL.md
            # "Checkpoint/restore").
            self._take_checkpoint(th, self.tenants[th.tenant])
        th.state = GuestThreadState.READY
        th.enqueued_at = self.sim.now
        self.runqueue.put(th)

    def _wake_thread(self, tid: int, retval: int, tenant: int = 0) -> None:
        th = self.tenants[tenant].threads.get(tid)
        if th is None or th.state is not GuestThreadState.BLOCKED:
            raise ProtocolError(f"node {self.node_id}: futex wake for non-blocked tid {tid}")
        if th.blocked_at is not None:
            th.stats.blocked_ns += self.sim.now - th.blocked_at
            th.blocked_at = None
        th.cpu.regs[A0] = retval & M64
        self.trace.emit("thread", self.node_id, "wake", tid=tid)
        self._requeue(th)

    # -- drain evacuation (docs/PROTOCOL.md "Failure domains") -----------------

    def _evacuate(self, th: GuestThread, reason: str = "drain") -> None:
        """Hand a thread back to the master for re-placement elsewhere.

        Locally this looks exactly like a live migration away (same
        bookkeeping as the ``reply.migrated`` branch of the syscall
        handler); the context travels in an ``EvacuateThread`` request and
        the master's failure-domain service re-spawns it on a usable node.
        ``reason`` distinguishes a drain (the node is emptying itself) from
        a load rebalance (the node is shedding its hottest thread).
        """
        cpu = th.cpu
        bundle = self.tenants[th.tenant]
        th.state = GuestThreadState.EXITED
        cpu.halted = True
        bundle.threads.pop(cpu.tid, None)
        self.trace.emit("thread", self.node_id, f"evacuating ({reason})", tid=cpu.tid)
        self._evacuating += 1
        self.sim.spawn(
            self._guarded(self._evacuate_rpc(cpu, bundle, reason)),
            name=f"evac@{self.node_id}",
        )

    def _evacuate_rpc(self, cpu: CPUState, bundle: NodeTenant, reason: str):
        with attribute_timeouts(NodeControlService.name):
            yield self.endpoint.request(
                self.master_id,
                EvacuateThread(
                    tid=cpu.tid, context=cpu.snapshot(), tenant=bundle.tenant,
                    reason=reason,
                ),
                timeout_ns=self.config.rpc_timeout_ns,
                retry=self.rpc_retry, stats=bundle.evac_retry_stats,
            )
        self._evacuating -= 1
        self._check_drain_complete()

    def _check_drain_complete(self) -> None:
        """Announce drain completion once no thread remains on this node.

        Parked threads stay local until their futex wake arrives (the wake
        path then diverts them into evacuation), so a drain completes lazily
        — exactly when the last local incarnation is gone and every
        evacuation RPC has been acknowledged.
        """
        if (
            not self.draining
            or self._drain_sent
            or self.shutdown
            or any(b.threads for b in self.tenants.values())
            or self._evacuating
        ):
            return
        self._drain_sent = True
        self.sim.spawn(
            self._guarded(self._send_drain_complete()),
            name=f"drained@{self.node_id}",
        )

    def _send_drain_complete(self):
        done = DrainComplete()  # drains are single-job (tenant 0) territory
        if self.config.rpc_timeout_ns is not None:
            with attribute_timeouts(NodeControlService.name):
                yield self.endpoint.request(
                    self.master_id, done,
                    timeout_ns=self.config.rpc_timeout_ns,
                    retry=self.rpc_retry, stats=self.tenants[0].evac_retry_stats,
                )
        else:  # pragma: no cover - drains require armed timeouts in practice
            self.endpoint.send(self.master_id, done)

    # -- checkpointing (docs/PROTOCOL.md "Checkpoint/restore") ------------------

    def _checkpoint_due(self, th: GuestThread) -> bool:
        interval = self.config.effective_checkpoint_interval_ns
        return (
            interval is not None
            and self.node_id != self.master_id  # the master cannot crash
            and not self.draining  # a draining node evacuates live contexts
            and not self.tenants[th.tenant].finished
            and self.sim.now - th.last_checkpoint_ns >= interval
        )

    def _take_checkpoint(self, th: GuestThread, bundle: NodeTenant) -> None:
        """Snapshot ``th`` at this scheduling boundary and ship it async.

        The capture itself is synchronous — the register context plus
        byte-copies of every page the tenant holds Modified on this node,
        taken before the thread runs another instruction.  That page set is
        a conservative superset of the thread's own dirty pages (no
        per-thread dirty tracking), and copying it here is what makes the
        snapshot a consistent cut: restoring (context, flushed pages)
        reproduces exactly the memory this thread could have observed at
        ``taken_ns``, under any coherence protocol.  Shipping happens in a
        spawned process so the core keeps executing.
        """
        taken_ns = self.sim.now
        th.last_checkpoint_ns = taken_ns
        context = th.cpu.snapshot()
        store = bundle.pagestore
        pages = tuple(
            (page, store.snapshot(page))
            for page in sorted(store.pages())
            if store.state(page) is MSIState.MODIFIED
        )
        bundle.run_stats.protocol.checkpoints_taken += 1
        self.trace.emit(
            "thread", self.node_id,
            f"checkpoint ({len(pages)} M pages)", tid=th.tid,
        )
        self.sim.spawn(
            self._guarded(self._checkpoint_rpc(th.tid, taken_ns, context,
                                               pages, bundle)),
            name=f"ckpt@{self.node_id}",
        )

    def _checkpoint_rpc(self, tid: int, taken_ns: int, context, pages,
                        bundle: NodeTenant):
        from repro.core.services.checkpoint import checkpoint_buddy

        from repro.net.rpc import RpcTimeout

        proto = bundle.run_stats.protocol
        buddy = self.master_id
        if self.config.checkpoint_target == "peer":
            buddy = checkpoint_buddy(self.node_id, self.peer_ids, self.master_id)
        try:
            with attribute_timeouts(NodeCheckpointService.name):
                if buddy != self.master_id:
                    # Peer mode: register context to the ring buddy, Modified
                    # pages still flush home — the master stays page
                    # authority.
                    ctx_msg = PeerCheckpoint(
                        tid=tid, taken_ns=taken_ns, context=context,
                        tenant=bundle.tenant,
                    )
                    flush = CheckpointFlush(
                        taken_ns=taken_ns, pages=pages, tenant=bundle.tenant,
                    )
                    proto.checkpoint_bytes += (
                        ctx_msg.size_bytes() + flush.size_bytes()
                    )
                    yield self.endpoint.request(
                        buddy, ctx_msg,
                        timeout_ns=self.config.rpc_timeout_ns,
                        retry=self.rpc_retry, stats=bundle.ckpt_retry_stats,
                    )
                    yield self.endpoint.request(
                        self.master_id, flush,
                        timeout_ns=self.config.rpc_timeout_ns,
                        retry=self.rpc_retry, stats=bundle.ckpt_retry_stats,
                    )
                else:
                    # Master mode (or a degenerate single-slave peer ring):
                    # context and pages travel in one frame.
                    msg = Checkpoint(
                        tid=tid, taken_ns=taken_ns, context=context,
                        pages=pages, tenant=bundle.tenant,
                    )
                    proto.checkpoint_bytes += msg.size_bytes()
                    yield self.endpoint.request(
                        self.master_id, msg,
                        timeout_ns=self.config.rpc_timeout_ns,
                        retry=self.rpc_retry, stats=bundle.ckpt_retry_stats,
                    )
        except RpcTimeout:
            # The holder stopped answering (a dead buddy, or the master is
            # drowning) — a checkpoint is best-effort by design: drop this
            # snapshot and carry on; the next interval tries again.
            proto.checkpoints_discarded += 1
            self.trace.emit(
                "thread", self.node_id, "checkpoint lost (holder timeout)",
                tid=tid,
            )

    # -- core scheduling ------------------------------------------------------

    def _core(self, core_id: int):
        while True:
            th = yield self.runqueue.get()
            if th is None:  # shutdown sentinel
                return
            if th.state is not GuestThreadState.READY:
                continue
            if self.draining:
                # Queued before the drain order arrived: evacuate instead of
                # running another quantum here.
                self._evacuate(th)
                continue
            if th.evac_requested:
                # The rebalancer picked this thread while it sat queued:
                # ship it to an underloaded node instead of running it.
                th.evac_requested = False
                self._evacuate(th, reason="rebalance")
                continue
            waited = self.sim.now - th.enqueued_at
            th.stats.runnable_wait_ns += waited
            if self._should_rebalance(waited):
                victim = self._rebalance_victim(th)
                self._last_rebalance_ns = self.sim.now
                self.tenants[victim.tenant].run_stats.protocol \
                    .rebalance_evacuations += 1
                if victim is th:
                    self._evacuate(th, reason="rebalance")
                    continue
                victim.evac_requested = True
            th.state = GuestThreadState.RUNNING
            yield from self._run_turn(th)

    def _should_rebalance(self, waited_ns: int) -> bool:
        """A queue-wait stint crossed the threshold on a healthy slave, and
        the per-node cooldown (one shed per threshold window) has passed."""
        threshold = self.config.rebalance_threshold_ns
        return (
            threshold is not None
            and self.node_id != self.master_id
            and not self.draining
            and not self.shutdown
            and waited_ns >= threshold
            and self.sim.now - self._last_rebalance_ns >= threshold
        )

    def _rebalance_victim(self, current: GuestThread) -> GuestThread:
        """The hottest runnable thread on this node: shedding the biggest
        compute consumer moves the most queue pressure per evacuation."""
        candidates = [current] + [
            t for t in self.runqueue.peek_all()
            if t is not None and t.state is GuestThreadState.READY
            and not t.evac_requested
        ]
        return max(candidates, key=lambda t: (t.stats.execute_ns, -t.tid))

    def _run_turn(self, th: GuestThread):
        cfg = self.config
        cpu = th.cpu
        bundle = self.tenants[th.tenant]
        while not self.shutdown and not bundle.finished:
            stop = bundle.engine.run_quantum(cpu, cfg.quantum_cycles)
            ns = self._cycles_to_ns(stop.cycles)
            if ns:
                yield self.sim.timeout(ns)
            # Split the quantum's wall time into translation vs execution
            # mode for the Fig. 8 breakdown; the sum stays exactly ns.
            tr_ns = min(ns, self._cycles_to_ns(stop.translate_cycles))
            th.stats.translate_ns += tr_ns
            th.stats.execute_ns += ns - tr_ns
            th.stats.quanta += 1
            kind = stop.kind
            if kind is StopKind.QUANTUM:
                if self.draining or len(self.runqueue):
                    self._requeue(th)  # other threads are waiting: yield the core
                    return
                if self._checkpoint_due(th):
                    # A solo thread keeps the core without requeueing, so
                    # its quantum boundary is the capture point (the requeue
                    # path handles every other scheduling boundary).
                    self._take_checkpoint(th, bundle)
                continue
            if kind is StopKind.PAGE_STALL:
                self.sim.spawn(
                    self._guarded(self._fault_handler(th, stop.info)),
                    name=f"fault@{self.node_id}",
                )
                return
            if kind is StopKind.SYSCALL:
                self.sim.spawn(
                    self._guarded(self._syscall_handler(th)),
                    name=f"sys@{self.node_id}",
                )
                return
            if kind is StopKind.BREAK:
                raise GuestFault(f"ebreak at pc={cpu.pc - 4:#x}", pc=cpu.pc - 4)
            raise stop.info  # StopKind.FAULT

    # -- page faults ------------------------------------------------------------

    def _fault_handler(self, th: GuestThread, stall: PageStall):
        cfg = self.config
        t0 = self.sim.now
        yield self.sim.timeout(self._cycles_to_ns(cfg.page_fault_trap_cycles))
        if isinstance(stall, MergeStall):
            yield from self._request_merge(stall.orig_page, th.tenant)
        else:
            yield from self.acquire_page(
                stall.page, stall.write, stall.offset, stall.size, tenant=th.tenant
            )
        th.stats.pagefault_ns += self.sim.now - t0
        th.stats.page_faults += 1
        self._requeue(th)

    def acquire_page(
        self, page: int, write: bool, offset: int = 0, size: int = 8, tenant: int = 0
    ):
        """Bring ``page`` in at (at least) the needed state, deduplicating
        concurrent requests from the tenant's threads on this node."""
        with attribute_timeouts(NodeCoherenceService.name):
            yield from self._acquire_page(self.tenants[tenant], page, write, offset, size)

    def _acquire_page(
        self, bundle: NodeTenant, page: int, write: bool, offset: int, size: int
    ):
        store = bundle.pagestore
        while True:
            if write and store.silently_upgrade(page):
                # MESI: an Exclusive-clean copy becomes Modified right here
                # — the fault costs the local trap, never a master round
                # trip (docs/PROTOCOL.md "Coherence protocols").
                bundle.run_stats.protocol.silent_upgrades += 1
                bundle.run_stats.service(NodeCoherenceService.name).silent_upgrades += 1
                return
            if store.has_write(page) or (not write and store.has_read(page)):
                return
            inflight = bundle.inflight.get(page)
            if inflight is not None:
                ev, in_write = inflight
                yield ev
                continue  # re-check: the finished request may not suffice
            ev = self.sim.event()
            bundle.inflight[page] = (ev, write)
            try:
                req = self.endpoint.request(
                    self.master_id,
                    PageRequest(
                        page=page, write=write, offset=offset, size=size,
                        tenant=bundle.tenant,
                    ),
                    timeout_ns=self.config.rpc_timeout_ns,
                    retry=self.rpc_retry, stats=bundle.page_retry_stats,
                )
                if write:
                    reply = yield req
                else:
                    # A forwarded page may land while the demand request is in
                    # flight; whichever arrives first completes the fault.
                    gate = bundle.push_gates.get(page)
                    if gate is None:
                        gate = bundle.push_gates[page] = self.sim.event()
                    which, value = yield self.sim.any_of([req, gate])
                    reply = value if which == 0 else None
            finally:
                del bundle.inflight[page]
                bundle.push_gates.pop(page, None)
                ev.succeed()
            if reply is None or reply.ack_only:
                # A push installed the page (or will momentarily); if it was
                # somehow dropped meanwhile, the access simply faults again.
                return
            if reply.retry:
                # Page was split/merged concurrently: the access re-translates
                # against the updated table and faults again if needed.
                return
            if reply.upgrade:
                # Payload-free S→M upgrade ack: the local Shared copy is
                # current, only its state flips.  If the copy was somehow
                # dropped meanwhile, the access simply faults again.
                if store.has_read(page):
                    store.set_state(page, MSIState.MODIFIED)
                return
            if reply.write:
                state = MSIState.MODIFIED
            elif reply.exclusive:
                state = MSIState.EXCLUSIVE
            else:
                state = MSIState.SHARED
            store.install(page, reply.data, state)
            return

    def _request_merge(self, orig_page: int, tenant: int = 0):
        bundle = self.tenants[tenant]
        with attribute_timeouts(NodeSplitTableService.name):
            yield self.endpoint.request(
                self.master_id, MergeRequest(page=orig_page, tenant=tenant),
                timeout_ns=self.config.rpc_timeout_ns,
                retry=self.rpc_retry, stats=bundle.merge_retry_stats,
            )

    # -- syscalls ----------------------------------------------------------------

    def _syscall_handler(self, th: GuestThread):
        cfg = self.config
        cpu = th.cpu
        bundle = self.tenants[th.tenant]
        t0 = self.sim.now
        yield self.sim.timeout(self._cycles_to_ns(cfg.syscall_trap_cycles))
        sysno = cpu.regs[A7]
        args = tuple(cpu.regs[A0: A0 + 6])
        th.stats.syscalls += 1

        if not is_global(sysno):
            yield from self._local_syscall(th, sysno, args)
            th.stats.syscall_ns += self.sim.now - t0
            bundle.run_stats.protocol.local_syscalls += 1
            self._requeue(th)
            return

        if self.local_kernel is not None:
            yield from self.local_kernel.handle(self, th, sysno, args)
            th.stats.syscall_ns += self.sim.now - t0
            return

        bundle.run_stats.protocol.delegated_syscalls += 1
        with attribute_timeouts("node.syscall"):
            reply = yield self.endpoint.request(
                self.master_id,
                SyscallRequest(
                    tid=cpu.tid, sysno=sysno, args=args, context=cpu.snapshot(),
                    tenant=th.tenant,
                ),
                timeout_ns=self.config.rpc_timeout_ns,
                retry=self.rpc_retry, stats=bundle.syscall_retry_stats,
            )
        th.stats.syscall_ns += self.sim.now - t0
        if reply.exited:
            th.state = GuestThreadState.EXITED
            th.stats.finished_ns = self.sim.now
            cpu.halted = True
            bundle.threads.pop(cpu.tid, None)
            self.trace.emit("thread", self.node_id, "exit", tid=cpu.tid)
            self._check_drain_complete()
            return
        if reply.parked:
            th.state = GuestThreadState.BLOCKED
            th.blocked_at = self.sim.now
            self.trace.emit("thread", self.node_id, "park", tid=cpu.tid)
            return
        if reply.migrated:
            # The thread now runs on another node (live migration); just
            # forget the local incarnation — no exit bookkeeping.
            th.state = GuestThreadState.EXITED
            cpu.halted = True
            bundle.threads.pop(cpu.tid, None)
            self.trace.emit("thread", self.node_id, "migrated away", tid=cpu.tid)
            self._check_drain_complete()
            return
        cpu.regs[A0] = reply.retval & M64
        self._requeue(th)

    def _local_syscall(self, th: GuestThread, sysno: int, args: tuple[int, ...]):
        """Paper §4.3: local syscalls are served without a master round trip."""
        cpu = th.cpu
        now = self.sim.now
        tenant = th.tenant
        if sysno == SYS.NANOSLEEP:
            sec = yield from self._load_guest_local(args[0], 8, tenant)
            nsec = yield from self._load_guest_local(args[0] + 8, 8, tenant)
            yield self.sim.timeout(sec * 1_000_000_000 + nsec)
            cpu.regs[A0] = 0
        elif sysno == SYS.GETTID:
            cpu.regs[A0] = cpu.tid
        elif sysno == SYS.GETPID:
            cpu.regs[A0] = 1
        elif sysno in (SYS.SCHED_YIELD, SYS.MPROTECT, SYS.MADVISE):
            cpu.regs[A0] = 0
        elif sysno == SYS.CLOCK_GETTIME:
            data = (now // 1_000_000_000).to_bytes(8, "little") + (
                now % 1_000_000_000
            ).to_bytes(8, "little")
            yield from self._store_guest_local(args[1], data, tenant)
            cpu.regs[A0] = 0
        elif sysno == SYS.GETTIMEOFDAY:
            data = (now // 1_000_000_000).to_bytes(8, "little") + (
                (now % 1_000_000_000) // 1000
            ).to_bytes(8, "little")
            yield from self._store_guest_local(args[0], data, tenant)
            cpu.regs[A0] = 0
        else:  # pragma: no cover - classify() keeps this unreachable
            raise ProtocolError(f"syscall {sysno} not handled locally")
        return
        yield  # pragma: no cover - generator protocol

    def _load_guest_local(self, addr: int, size: int, tenant: int = 0):
        """Guest-memory read through the tenant's memory (acquiring pages)."""
        memory = self.tenants[tenant].memory
        while True:
            try:
                return memory.load(addr, size, False)
            except PageStall as stall:
                yield from self.acquire_page(
                    stall.page, stall.write, stall.offset, tenant=tenant
                )

    def _store_guest_local(self, addr: int, data: bytes, tenant: int = 0):
        """8-byte-chunk store through the tenant's memory (acquiring pages)."""
        memory = self.tenants[tenant].memory
        for k in range(0, len(data), 8):
            chunk = data[k : k + 8]
            value = int.from_bytes(chunk, "little")
            while True:
                try:
                    memory.store(addr + k, len(chunk), value)
                    break
                except PageStall as stall:
                    yield from self.acquire_page(
                        stall.page, stall.write, stall.offset, tenant=tenant
                    )

    # -- communicator ------------------------------------------------------------

    def _communicator(self):
        q = self.endpoint.subscribe("comm")
        cfg = self.config
        while True:
            msg = yield q.get()
            # The per-command handling cost is spent before dispatch; passing
            # its start as started_at bills it as the handling service's busy
            # time (not mailbox queue wait) without changing any timing.
            started_at = self.sim.now
            yield self.sim.timeout(cfg.slave_coherence_service_ns)
            yield from self.dispatcher.dispatch(msg, started_at=started_at)
            if self.shutdown:
                return
