"""Thread placement across nodes (paper §4.1, §5.3).

Two policies:

* ``round_robin`` — spread new threads equally over the candidate nodes
  (the paper's default "schedule the threads equally among the nodes");
* ``hint`` — threads whose parent announced a group via the ``hint``
  instruction land on the group's node, so threads that share data share a
  node (hint-based locality-aware scheduling).  Threads without a hint fall
  back to round-robin.

Worker threads go to slave nodes; the master runs the main thread (Fig. 2),
unless ``schedule_on_master`` or there are no slaves.

With ``DQEMUConfig.health_aware_placement`` the placer also consults the
cluster health view (:class:`repro.net.health.ClusterHealthView`): ``down``,
failed and draining candidates are skipped outright and ``suspect`` ones are
deprioritized (used only when every candidate is degraded).  The choice is
deterministic — the pool is filtered, never shuffled, and the same
round-robin cursor walks whatever pool is left — and every skip is recorded
with its reason so the breakdown tables can attribute placement decisions.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import TYPE_CHECKING, Any, Deque, Optional, Sequence

from repro.errors import ConfigError
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.health import ClusterHealthView

__all__ = ["ThreadPlacer", "FairRunQueue"]


class ThreadPlacer:
    def __init__(
        self,
        policy: str,
        candidates: Sequence[int],
        *,
        health: Optional["ClusterHealthView"] = None,
        fallback: Optional[int] = None,
        rr_offset: int = 0,
    ):
        if not candidates:
            raise ConfigError("scheduler needs at least one candidate node")
        if policy not in ("round_robin", "hint"):
            raise ConfigError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self.candidates = list(candidates)
        self.health = health
        self.fallback = fallback
        # Each concurrent job gets its own placer; staggering the cursors
        # (job k starts at k) interleaves tenants across the fleet instead
        # of piling every job's first worker onto the same node.
        self._rr = rr_offset
        self.placements: list[tuple[Optional[int], int]] = []  # (group, node)
        #: (node, reason) -> times that node was skipped for that reason
        #: ("down" / "draining" / "suspect") plus ("fallback" entries when
        #: every candidate was unusable and the fallback node absorbed the
        #: placement).
        self.skips: Counter = Counter()

    # -- health filtering --------------------------------------------------

    def _usable_pool(self) -> list[int]:
        """Candidates eligible for the next placement, health permitting.

        Healthy (``up``, not failed, not draining) candidates win; if none
        are left, ``suspect`` ones are pressed back into service rather
        than refusing to place at all.  Skips are recorded per (node,
        reason) each time a placement actually bypasses a candidate.
        """
        if self.health is None:
            return self.candidates
        healthy: list[int] = []
        suspect: list[int] = []
        skipped: list[tuple[int, str]] = []
        for n in self.candidates:
            reason = self.health.unusable_reason(n)
            if reason is not None:
                skipped.append((n, reason))
            elif self.health.is_suspect(n):
                suspect.append(n)
            else:
                healthy.append(n)
        if healthy:
            for n in suspect:
                skipped.append((n, "suspect"))
            pool = healthy
        else:
            pool = suspect
        for key in skipped:
            self.skips[key] += 1
        return pool

    # -- placement ---------------------------------------------------------

    def place(self, hint_group: Optional[int] = None) -> int:
        pool = self._usable_pool()
        if not pool:
            # Every candidate is down or draining: the master (fallback)
            # absorbs the thread rather than placing it on a dead node.
            if self.fallback is None:
                raise ConfigError("no healthy candidate nodes left to place on")
            node = self.fallback
            self.skips[(node, "fallback")] += 1
        elif self.policy == "hint" and hint_group is not None:
            node = pool[hint_group % len(pool)]
        else:
            node = pool[self._rr % len(pool)]
            self._rr += 1
        self.placements.append((hint_group, node))
        return node

    # -- reporting ---------------------------------------------------------

    def distribution(self) -> dict[int, int]:
        # Placements can land outside `candidates` (master fallback,
        # post-failure re-placement), so count whatever was observed
        # instead of assuming the candidate set covers everything.
        out: dict[int, int] = {n: 0 for n in self.candidates}
        for _, node in self.placements:
            out[node] = out.get(node, 0) + 1
        return out

    def skip_counts(self) -> dict[str, int]:
        """Aggregate skip reasons as ``"n<node>:<reason>" -> count``."""
        return {
            f"n{node}:{reason}": count
            for (node, reason), count in sorted(self.skips.items())
        }


class FairRunQueue:
    """A node's core feed with tenant-fair arbitration.

    Drop-in for the plain :class:`~repro.sim.sync.SimQueue` the cores used
    to block on: FIFO within a tenant, round-robin *across* tenants whenever
    threads of more than one tenant are waiting, so one job's thread storm
    cannot starve another job's runnable threads on a shared node.

    With at most one tenant class queued — every single-job run, and any
    sentinel (``None``) shutdown marker — each pick is the FIFO head, which
    makes the queue event-for-event identical to the SimQueue it replaces.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._last_tenant = -1

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._pick())
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> list[Any]:
        return list(self._items)

    def _pick(self) -> Any:
        items = self._items
        tenants = {th.tenant for th in items if th is not None}
        if len(tenants) <= 1 or items[0] is None:
            # Single tenant class (or a shutdown sentinel at the head):
            # plain FIFO, bit-identical to the pre-tenancy queue.
            return items.popleft()
        eligible = sorted(t for t in tenants if t > self._last_tenant)
        tenant = eligible[0] if eligible else min(tenants)
        self._last_tenant = tenant
        for i, th in enumerate(items):
            if th is not None and th.tenant == tenant:
                del items[i]
                return th
        raise AssertionError("unreachable: chosen tenant vanished from queue")
