"""Thread placement across nodes (paper §4.1, §5.3).

Two policies:

* ``round_robin`` — spread new threads equally over the candidate nodes
  (the paper's default "schedule the threads equally among the nodes");
* ``hint`` — threads whose parent announced a group via the ``hint``
  instruction land on the group's node, so threads that share data share a
  node (hint-based locality-aware scheduling).  Threads without a hint fall
  back to round-robin.

Worker threads go to slave nodes; the master runs the main thread (Fig. 2),
unless ``schedule_on_master`` or there are no slaves.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigError

__all__ = ["ThreadPlacer"]


class ThreadPlacer:
    def __init__(self, policy: str, candidates: Sequence[int]):
        if not candidates:
            raise ConfigError("scheduler needs at least one candidate node")
        if policy not in ("round_robin", "hint"):
            raise ConfigError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self.candidates = list(candidates)
        self._rr = 0
        self.placements: list[tuple[Optional[int], int]] = []  # (group, node)

    def place(self, hint_group: Optional[int] = None) -> int:
        if self.policy == "hint" and hint_group is not None:
            node = self.candidates[hint_group % len(self.candidates)]
        else:
            node = self.candidates[self._rr % len(self.candidates)]
            self._rr += 1
        self.placements.append((hint_group, node))
        return node

    def distribution(self) -> dict[int, int]:
        out: dict[int, int] = {n: 0 for n in self.candidates}
        for _, node in self.placements:
            out[node] += 1
        return out
