"""Runtime service layer: message-dispatched protocol subsystems.

The master and node runtimes are thin composition roots over these
services; see :mod:`repro.core.services.base` for the :class:`Service`
protocol and the :class:`Dispatcher` that routes frames by message kind.
"""

from repro.core.services.base import (
    Dispatcher,
    Service,
    ServiceTimeout,
    attribute_timeouts,
)
from repro.core.services.coherence import CoherenceService, CoherentGuestMemory
from repro.core.services.forwarding import ForwardingService
from repro.core.services.futexes import FutexService
from repro.core.services.nodeside import (
    NodeCoherenceService,
    NodeControlService,
    NodeSplitTableService,
)
from repro.core.services.splitting import SplittingService
from repro.core.services.syscalls import SyscallService

__all__ = [
    "CoherenceService",
    "CoherentGuestMemory",
    "Dispatcher",
    "ForwardingService",
    "FutexService",
    "NodeCoherenceService",
    "NodeControlService",
    "NodeSplitTableService",
    "Service",
    "ServiceTimeout",
    "SplittingService",
    "SyscallService",
    "attribute_timeouts",
]
