"""Service protocol and message dispatcher for the runtime service layer.

The master and node runtimes are composition roots over a set of
*services*: each service owns one protocol subsystem (coherence, syscall
delegation, futexes, splitting, forwarding, ...), declares the message
kinds it handles, and exposes a generator ``handle(msg)`` run inside the
owning runtime's manager/communicator process.  The :class:`Dispatcher`
routes inbound frames by kind and keeps uniform per-service counters
(requests served, virtual-ns busy time) in
:class:`~repro.core.stats.RunStats` so experiments can attribute
master-link load per subsystem.

Two protocol-robustness concerns live at this seam as well:

* **Timeout attribution** — when ``DQEMUConfig.rpc_timeout_ns`` arms the RPC
  layer and a peer never answers, the bare
  :class:`~repro.net.rpc.RpcTimeout` is re-raised as a
  :class:`ServiceTimeout` naming the service whose handler was waiting, so
  a dead or partitioned node fails the run loudly and attributably instead
  of deadlocking it.  Processes issuing RPCs outside a dispatch (pushers,
  merge reverts, node-side fault handlers) get the same attribution via
  :func:`attribute_timeouts`.
* **Replay tolerance** — a duplicated request frame (fault injection, or a
  retransmitting fabric) must not be served twice: side effects like
  delegated syscalls or futex wakes are not idempotent.  The dispatcher
  remembers recently served correlation ids (bounded FIFO) and silently
  skips replays, billing them to the service's ``duplicates`` counter.
  When the owning runtime's endpoint is known and the RPC reply cache is
  armed (retries configured), a skipped replay of an already-*answered*
  request is answered again from the cache — the half of at-most-once that
  makes a lost reply recoverable (docs/PROTOCOL.md "Reliable delivery").
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Generator, Optional, Protocol, runtime_checkable

from repro.core.stats import RunStats, ServiceStats
from repro.errors import NetworkError, ProtocolError
from repro.net.rpc import RpcTimeout
from repro.sim.engine import Simulator

__all__ = ["Service", "Dispatcher", "ServiceTimeout", "attribute_timeouts"]


class ServiceTimeout(RpcTimeout):
    """An RPC issued on behalf of a named runtime service timed out.

    Carries the service name next to the request's message kind and peer, so
    slave death surfaces as e.g. ``service 'coherence': no reply to
    'invalidate' ... from node 3`` rather than a bare :class:`RpcTimeout`.
    """

    def __init__(self, service: str, inner: RpcTimeout):
        retries = getattr(inner, "retries", 0)
        detail = f" after {retries} retransmits" if retries else ""
        NetworkError.__init__(
            self,
            f"service {service!r}: no reply to {inner.request.kind!r} "
            f"(req {inner.request.req_id}) from node {inner.request.dst} "
            f"within {inner.timeout_ns} ns{detail}",
        )
        self.service = service
        self.request = inner.request
        self.timeout_ns = inner.timeout_ns
        self.retries = retries


@contextmanager
def attribute_timeouts(service: str):
    """Re-raise any bare :class:`RpcTimeout` escaping the block as a
    :class:`ServiceTimeout` attributed to ``service``.

    Safe inside generator-based simulation processes (the block may span
    ``yield`` suspension points), and idempotent: an already-attributed
    timeout passes through unchanged.
    """
    try:
        yield
    except ServiceTimeout:
        raise
    except RpcTimeout as exc:
        raise ServiceTimeout(service, exc) from exc


@runtime_checkable
class Service(Protocol):
    """One protocol subsystem of a runtime.

    ``name`` keys the service's :class:`~repro.core.stats.ServiceStats`
    entry; ``handled_kinds`` is the set of message kinds routed to it (may
    be empty for internal services driven by their peers, e.g. the master's
    futex service, which is invoked by the syscall service rather than by a
    wire frame).
    """

    name: str
    handled_kinds: frozenset[str]

    def handle(self, msg: Any) -> Generator[Any, Any, Any]:
        ...


class Dispatcher:
    """Routes inbound messages to the service registered for their kind."""

    #: Bound on remembered correlation ids for replay detection; old entries
    #: are evicted FIFO (ids are globally unique, so collisions cannot
    #: resurrect an evicted one).
    DEDUP_LIMIT = 4096

    def __init__(
        self,
        sim: Simulator,
        run_stats: RunStats,
        shard: Optional[int] = None,
        endpoint=None,
        stats_resolver=None,
    ):
        self.sim = sim
        self.run_stats = run_stats
        #: Optional ``msg -> RunStats`` hook for dispatchers whose services
        #: serve several tenants (the node-side ones): billing follows the
        #: frame's tenant instead of the dispatcher's default RunStats.
        self.stats_resolver = stats_resolver
        #: Master shard this dispatcher serves (``None`` for node-side
        #: dispatchers): served work is additionally billed to the service's
        #: per-shard breakdown so shard imbalance is visible.
        self.shard = shard
        #: The owning runtime's endpoint, when known: lets a deduplicated
        #: replay be answered from the RPC channel's reply cache (a
        #: retransmitted request whose original was served *and* answered
        #: must get its reply again, or a lost reply would be unrecoverable).
        #: Optional so bare dispatchers in tests keep working.
        self.endpoint = endpoint
        self.services: list[Service] = []
        self._routes: dict[str, Service] = {}
        self._served: OrderedDict[int, None] = OrderedDict()

    def register(self, service: Service) -> Service:
        """Add a service, claiming its ``handled_kinds``; returns it."""
        for kind in service.handled_kinds:
            other = self._routes.get(kind)
            if other is not None:
                raise ProtocolError(
                    f"kind {kind!r} claimed by both {other.name!r} and {service.name!r}"
                )
            self._routes[kind] = service
        self.services.append(service)
        # Eager stats entry: every registered service shows up in RunStats,
        # including ones that served zero requests this run.
        self.run_stats.service(service.name)
        return service

    @property
    def kinds(self) -> frozenset[str]:
        """Every message kind some registered service handles."""
        return frozenset(self._routes)

    def service_for(self, kind: str) -> Service:
        try:
            return self._routes[kind]
        except KeyError:
            raise ProtocolError(f"no service registered for kind {kind!r}") from None

    def stats_of(self, service: Service) -> ServiceStats:
        return self.run_stats.service(service.name)

    # -- replay detection -------------------------------------------------------

    def _first_delivery(self, req_id: int) -> bool:
        served = self._served
        if req_id in served:
            return False
        served[req_id] = None
        if len(served) > self.DEDUP_LIMIT:
            served.popitem(last=False)
        return True

    # -- dispatch ----------------------------------------------------------------

    def dispatch(
        self, msg: Any, started_at: Optional[int] = None
    ) -> Generator[Any, Any, Any]:
        """Route ``msg`` to its service, billing requests, busy time, and
        mailbox queue wait (endpoint arrival stamp → dispatch start).

        ``started_at`` lets a pump that spends modeled service time *before*
        dispatching (the node communicator's per-command cost) bill that
        span as the service's busy time rather than as queue wait.

        A replayed frame (same correlation id as one already served) is
        dropped without reaching the handler: serving it twice would repeat
        side effects, and its reply would be a duplicate anyway.
        """
        service = self._routes.get(msg.kind)
        if service is None:
            raise ProtocolError(
                f"no service registered for kind {msg.kind!r} (from node {msg.src})"
            )
        run_stats = (
            self.run_stats if self.stats_resolver is None else self.stats_resolver(msg)
        )
        stats = run_stats.service(service.name)
        if msg.req_id and not self._first_delivery(msg.req_id):
            stats.duplicates += 1
            if self.endpoint is not None:
                # A retransmit of an already-answered request: replay the
                # cached reply (no-op when the cache is off, evicted, or the
                # original dispatch is still running — its eventual reply or
                # the client's next retransmit covers those).
                self.endpoint.rpc.resend_reply(msg)
            return None
        t0 = self.sim.now if started_at is None else started_at
        arrived = getattr(msg, "_arrived_ns", None)
        waited = t0 - arrived if arrived is not None else 0
        stats.requests += 1
        stats.queue_wait_ns += waited
        shard_stats = None if self.shard is None else stats.shard(self.shard)
        if shard_stats is not None:
            shard_stats.requests += 1
            shard_stats.queue_wait_ns += waited
        try:
            result = yield from service.handle(msg)
        except ServiceTimeout:
            raise
        except RpcTimeout as exc:
            raise ServiceTimeout(service.name, exc) from exc
        finally:
            busy = self.sim.now - t0
            stats.busy_ns += busy
            if shard_stats is not None:
                shard_stats.busy_ns += busy
        return result
