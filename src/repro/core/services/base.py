"""Service protocol and message dispatcher for the runtime service layer.

The master and node runtimes are composition roots over a set of
*services*: each service owns one protocol subsystem (coherence, syscall
delegation, futexes, splitting, forwarding, ...), declares the message
kinds it handles, and exposes a generator ``handle(msg)`` run inside the
owning runtime's manager/communicator process.  The :class:`Dispatcher`
routes inbound frames by kind and keeps uniform per-service counters
(requests served, virtual-ns busy time) in
:class:`~repro.core.stats.RunStats` so experiments can attribute
master-link load per subsystem.
"""

from __future__ import annotations

from typing import Any, Generator, Protocol, runtime_checkable

from repro.core.stats import RunStats, ServiceStats
from repro.errors import ProtocolError
from repro.sim.engine import Simulator

__all__ = ["Service", "Dispatcher"]


@runtime_checkable
class Service(Protocol):
    """One protocol subsystem of a runtime.

    ``name`` keys the service's :class:`~repro.core.stats.ServiceStats`
    entry; ``handled_kinds`` is the set of message kinds routed to it (may
    be empty for internal services driven by their peers, e.g. the master's
    futex service, which is invoked by the syscall service rather than by a
    wire frame).
    """

    name: str
    handled_kinds: frozenset[str]

    def handle(self, msg: Any) -> Generator[Any, Any, Any]:
        ...


class Dispatcher:
    """Routes inbound messages to the service registered for their kind."""

    def __init__(self, sim: Simulator, run_stats: RunStats):
        self.sim = sim
        self.run_stats = run_stats
        self.services: list[Service] = []
        self._routes: dict[str, Service] = {}

    def register(self, service: Service) -> Service:
        """Add a service, claiming its ``handled_kinds``; returns it."""
        for kind in service.handled_kinds:
            other = self._routes.get(kind)
            if other is not None:
                raise ProtocolError(
                    f"kind {kind!r} claimed by both {other.name!r} and {service.name!r}"
                )
            self._routes[kind] = service
        self.services.append(service)
        # Eager stats entry: every registered service shows up in RunStats,
        # including ones that served zero requests this run.
        self.run_stats.service(service.name)
        return service

    @property
    def kinds(self) -> frozenset[str]:
        """Every message kind some registered service handles."""
        return frozenset(self._routes)

    def service_for(self, kind: str) -> Service:
        try:
            return self._routes[kind]
        except KeyError:
            raise ProtocolError(f"no service registered for kind {kind!r}") from None

    def stats_of(self, service: Service) -> ServiceStats:
        return self.run_stats.service(service.name)

    def dispatch(self, msg: Any) -> Generator[Any, Any, Any]:
        """Route ``msg`` to its service, billing requests and busy time."""
        service = self._routes.get(msg.kind)
        if service is None:
            raise ProtocolError(
                f"no service registered for kind {msg.kind!r} (from node {msg.src})"
            )
        stats = self.run_stats.service(service.name)
        stats.requests += 1
        t0 = self.sim.now
        try:
            result = yield from service.handle(msg)
        finally:
            stats.busy_ns += self.sim.now - t0
        return result
