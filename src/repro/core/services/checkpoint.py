"""Master checkpoint service (docs/PROTOCOL.md "Checkpoint/restore").

Every ``checkpoint_interval_ns`` of virtual time a slave snapshots a running
thread at a scheduling boundary (a quantum stop or a requeue after a resolved
fault/syscall — points where the context has no pending kernel interaction to
replay) — its register context plus byte-copies of every page the tenant
holds **Modified** on that node (the write-back barrier that makes the
snapshot a consistent cut; see ``NodeRuntime._take_checkpoint`` in
:mod:`repro.core.node` for the capture side).  This service is the master
half: it lands :class:`~repro.net.messages.Checkpoint` frames (context +
pages, ``checkpoint_target="master"``) and :class:`CheckpointFlush` frames
(pages only — the context went to a buddy peer, ``checkpoint_target="peer"``),
keeps the newest snapshot per tid, and folds the flushed pages into each
page's home copy.

Consistent-cut rule for page installs: a flushed page is applied to the home
store only while the directory still records the *sender* as the page's
owner, under the page's shard coherence lock.  If ownership moved between
snapshot and arrival (an invalidate, a downgrade, a split, a migration), the
home already holds bytes at least as fresh as the snapshot — the stale flush
is skipped, never applied.  Ownership itself is never touched: the node keeps
writing its M copy, and post-snapshot writes flow through normal coherence.

Restore rides :class:`~repro.core.services.failure.FailureDomainService`:
on a crash, threads whose tid has a live snapshot are rolled back to it and
re-placed instead of reaped.  In peer mode the failure domain first calls
:meth:`collect_for` to pull the dead node's contexts from its buddy — if the
buddy died too, those checkpoints died with it and the threads stay lost.

Registered on shard 0's dispatcher only when ``checkpoint_interval_ns`` is
set, so default runs create no stats row and stay bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from repro.core.config import DQEMUConfig
from repro.core.services.base import attribute_timeouts
from repro.core.stats import RunStats
from repro.mem.sharding import shard_of
from repro.net.endpoint import Endpoint
from repro.net.messages import Ack, FetchCheckpoints
from repro.net.rpc import RpcTimeout
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.services.coherence import CoherenceService
    from repro.net.health import ClusterHealthView

__all__ = ["CheckpointService", "checkpoint_buddy"]


def checkpoint_buddy(node: int, node_ids: list[int], master_id: int) -> int:
    """The peer that holds ``node``'s register snapshots in peer mode.

    Slaves form a ring (buddy of slave *n* is the next slave); with a single
    slave there is no peer to lean on and the master holds the snapshots —
    peer mode degenerates to master mode.
    """
    slaves = [n for n in node_ids if n != master_id]
    if node not in slaves or len(slaves) < 2:
        return master_id
    return slaves[(slaves.index(node) + 1) % len(slaves)]


class CheckpointService:
    name = "checkpoint"
    handled_kinds = frozenset({"checkpoint", "checkpoint_flush"})

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        trace,
        run_stats: RunStats,
        view: "ClusterHealthView",
        node_ids: list[int],
        node_id: int,
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.trace = trace
        self.run_stats = run_stats
        self.view = view
        self.node_ids = list(node_ids)
        self.node_id = node_id
        # Newest snapshot per tid: tid -> (taken_ns, context).  Checkpointing
        # requires evacuation_enabled, which forces a single-job fleet, so
        # the store needs no tenant key.
        self.store: dict[int, tuple[int, Any]] = {}
        self.retry = config.nested_retry_policy()
        self.retry_stats = run_stats.service(self.name) if self.retry else None
        # Bound by the composition root once the shard pools exist.
        self.coherences: List["CoherenceService"] = []

    def bind(self, coherences: List["CoherenceService"]) -> None:
        self.coherences = list(coherences)

    # -- snapshot store ---------------------------------------------------------

    def latest(self, tid: int) -> Optional[tuple[int, Any]]:
        return self.store.get(tid)

    def take(self, tid: int) -> Optional[tuple[int, Any]]:
        """Consume the stored snapshot for ``tid`` (restore is one-shot)."""
        return self.store.pop(tid, None)

    def _remember(self, tid: int, taken_ns: int, context: Any) -> None:
        prev = self.store.get(tid)
        if prev is None or prev[0] <= taken_ns:
            self.store[tid] = (taken_ns, context)

    # -- peer-mode recovery fetch ----------------------------------------------

    def collect_for(self, node: int):
        """Pull the dead ``node``'s register snapshots from its buddy.

        Master mode: no-op, the contexts are already here.  Peer mode: one
        ``FetchCheckpoints`` round trip to the buddy; if the buddy is dead
        too (or dies while we ask), the snapshots died with it — the caller
        proceeds and the uncovered threads stay lost.
        """
        if self.config.checkpoint_target != "peer":
            return
        buddy = checkpoint_buddy(node, self.node_ids, self.node_id)
        if buddy == self.node_id:
            return  # degenerate single-slave ring: contexts came here anyway
        if self.view.is_failed(buddy):
            self.trace.emit(
                "node", buddy,
                f"checkpoint holder for n{node} is dead: snapshots lost",
            )
            return
        try:
            with attribute_timeouts(self.name):
                reply = yield self.endpoint.request(
                    buddy, FetchCheckpoints(node=node),
                    timeout_ns=self.config.rpc_timeout_ns,
                    retry=self.retry, stats=self.retry_stats,
                )
        except RpcTimeout:
            # The buddy stopped answering mid-recovery; treat its snapshots
            # as gone rather than wedging the whole recovery on it.
            self.trace.emit(
                "node", buddy,
                f"checkpoint fetch for n{node} timed out: snapshots lost",
            )
            return
        for tid, taken_ns, context in reply.entries:
            self._remember(tid, taken_ns, context)

    # -- inbound frames ---------------------------------------------------------

    def handle(self, msg):
        yield from getattr(self, "_on_" + msg.kind)(msg)

    def _install_pages(self, src: int, pages):
        """Fold flushed page bytes into the home copies (consistent-cut rule:
        only while the sender still owns the page, under the page lock)."""
        proto = self.run_stats.protocol
        nshards = max(1, len(self.coherences))
        for page, data in pages:
            coherence = self.coherences[shard_of(page, nshards)]
            lock = coherence.lock(page)
            yield lock.acquire()
            try:
                if coherence.directory.owner(page) == src:
                    coherence.home_install(page, data)
                    proto.checkpoint_pages_flushed += 1
                else:
                    proto.checkpoint_stale_pages += 1
            finally:
                lock.release()

    def _on_checkpoint(self, msg):
        proto = self.run_stats.protocol
        if self.view.is_failed(msg.src):
            # The sender was declared dead while this frame was in flight;
            # recovery for it already ran (or is running) against the store
            # as it was.  A posthumous snapshot must not resurrect state.
            proto.checkpoints_discarded += 1
            return
        yield self.sim.timeout(self.config.checkpoint_service_ns)
        yield from self._install_pages(msg.src, msg.pages)
        self._remember(msg.tid, msg.taken_ns, msg.context)
        proto.checkpoints_stored += 1
        self.endpoint.reply(msg, Ack())

    def _on_checkpoint_flush(self, msg):
        proto = self.run_stats.protocol
        if self.view.is_failed(msg.src):
            proto.checkpoints_discarded += 1
            return
        yield self.sim.timeout(self.config.checkpoint_service_ns)
        yield from self._install_pages(msg.src, msg.pages)
        self.endpoint.reply(msg, Ack())
