"""Master coherence service: page directory + MSI transactions (paper §4.2).

Owns the authoritative *home* copies, the page directory, and the per-page
locks every MSI transaction serializes on.  Handles ``page_request`` frames
and exposes the kernel-facing page-ownership helpers (§4.3 pointer-argument
migration) used by the syscall service's guest-memory accessor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.core.config import DQEMUConfig
from repro.core.stats import RunStats
from repro.mem.directory import Directory
from repro.mem.layout import PAGE_SIZE, page_of, page_offset
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.net.endpoint import Endpoint
from repro.net.messages import Invalidate, PageData, WriteBack
from repro.sim.engine import Simulator
from repro.sim.sync import SimLock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.services.coordinator import CrossShardCoordinator
    from repro.core.services.forwarding import ForwardingService
    from repro.core.services.splitting import SplittingService

__all__ = ["CoherenceService", "CoherentGuestMemory"]


class CoherentGuestMemory:
    """Kernel access to guest memory through the coherence protocol.

    Pointer-argument pages are migrated to the master before the syscall
    reads or writes them (§4.3): reads pull the freshest copy home (owner
    downgraded), writes invalidate every copy so slaves re-fetch.

    A global syscall's buffer may span pages owned by different master
    shards; each page is resolved to its shard's coherence service through
    the coordinator and owned one page at a time (never holding page locks
    on two shards at once — see docs/PROTOCOL.md "Sharded master").
    """

    def __init__(self, coordinator: "CrossShardCoordinator"):
        self.coordinator = coordinator

    def _spans(self, addr: int, size: int):
        """Split [addr, addr+size) into translated (taddr, length) chunks that
        stay within one page and one split region."""
        pos = addr
        end = addr + size
        while pos < end:
            page = page_of(pos)
            off = page_offset(pos)
            entry = self.coordinator.split_entry(page)
            if entry is not None:
                step = min(end - pos, entry.region_bytes - off % entry.region_bytes)
                taddr = entry.shadow_pages[off // entry.region_bytes] * PAGE_SIZE + off
            else:
                step = min(end - pos, PAGE_SIZE - off)
                taddr = pos
            yield taddr, step
            pos += step

    def read_guest(self, addr: int, size: int) -> Generator:
        out = bytearray()
        for taddr, step in list(self._spans(addr, size)):
            co = self.coordinator.coherence_of(page_of(taddr))
            yield from co.own_page_for_read(page_of(taddr))
            out += co.home_bytes(taddr, step)
        return bytes(out)

    def write_guest(self, addr: int, data: bytes) -> Generator:
        pos = 0
        for taddr, step in list(self._spans(addr, len(data))):
            co = self.coordinator.coherence_of(page_of(taddr))
            yield from co.own_page_for_write(page_of(taddr))
            co.home_write(taddr, data[pos : pos + step])
            pos += step
        return None


class CoherenceService:
    name = "coherence"
    handled_kinds = frozenset({"page_request"})

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        trace,
        run_stats: RunStats,
        home: PageStore,
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.trace = trace
        self.run_stats = run_stats
        self.home = home
        self.directory = Directory()
        # Loss recovery for the requests this service issues (invalidates,
        # write-backs).  Resolved once; stats binding only when armed, so
        # default runs create no extra RunStats entries.
        self.retry = config.retry_policy()
        self.retry_stats = run_stats.service(self.name) if self.retry else None
        self._page_locks: dict[int, SimLock] = {}
        # Bound by the composition root (MasterRuntime.__init__).
        self.splitting: "SplittingService" = None  # type: ignore[assignment]
        self.forwarding: "ForwardingService" = None  # type: ignore[assignment]

    def bind(self, splitting: "SplittingService", forwarding: "ForwardingService") -> None:
        self.splitting = splitting
        self.forwarding = forwarding

    # -- per-page serialization ---------------------------------------------

    def lock(self, page: int) -> SimLock:
        lock = self._page_locks.get(page)
        if lock is None:
            lock = SimLock(self.sim)
            self._page_locks[page] = lock
        return lock

    # -- home-copy helpers ------------------------------------------------------

    def _home_page(self, page: int) -> bytearray:
        if page not in self.home:
            return self.home.ensure(page, MSIState.SHARED)
        return self.home.raw(page)

    def home_bytes(self, addr: int, size: int) -> bytes:
        self._home_page(page_of(addr))
        return self.home.read_bytes(addr, size)

    def home_write(self, addr: int, data: bytes) -> None:
        self._home_page(page_of(addr))
        self.home.write_bytes(addr, data)

    def home_install(self, page: int, data: bytes) -> None:
        self.home.install(page, data, MSIState.SHARED)

    def home_snapshot(self, page: int) -> bytes:
        self._home_page(page)
        return self.home.snapshot(page)

    # -- kernel page ownership (syscall pointer arguments, §4.3) -----------------

    def own_page_for_read(self, page: int):
        lock = self.lock(page)
        yield lock.acquire()
        try:
            owner = self.directory.owner(page)
            if owner is not None:
                ack = yield self.endpoint.request(
                    owner, WriteBack(page=page),
                    timeout_ns=self.config.rpc_timeout_ns,
                    retry=self.retry, stats=self.retry_stats,
                )
                self.home_install(page, ack.data)
                self.directory.downgrade_owner(page)
                self.run_stats.protocol.downgrades += 1
        finally:
            lock.release()

    def own_page_for_write(self, page: int):
        lock = self.lock(page)
        yield lock.acquire()
        try:
            yield from self.pull_home_and_invalidate(page)
        finally:
            lock.release()

    def pull_home_and_invalidate(self, page: int):
        """Invalidate every copy, pulling the owner's data home first.

        Caller holds the page's lock."""
        owner = self.directory.owner(page)
        holders = self.directory.holders(page)
        if holders:
            acks = yield self.sim.all_of(
                [
                    self.endpoint.request(
                        n, Invalidate(page=page, want_data=(n == owner)),
                        timeout_ns=self.config.rpc_timeout_ns,
                        retry=self.retry, stats=self.retry_stats,
                    )
                    for n in holders
                ]
            )
            for ack in acks:
                if ack.data is not None:
                    self.home_install(page, ack.data)
            for n in holders:
                self.trace.emit("page", n, "invalidate", page=page)
            self.run_stats.protocol.invalidations += len(holders)
        self.directory.invalidate_all(page)

    # -- page requests (§4.2) ------------------------------------------------------

    def handle(self, msg):
        cfg = self.config
        page, node, write = msg.page, msg.src, msg.write
        proto = self.run_stats.protocol
        lock = self.lock(page)
        yield lock.acquire()
        try:
            proto.page_requests += 1
            if write:
                proto.write_requests += 1
            else:
                proto.read_requests += 1

            # Fast path: a read fault that raced a forwarded page — the
            # directory already lists the node as sharer, so this is a cheap
            # directory-lookup ack (home is fresh for any shared page).
            if (
                not write
                and self.splitting.entry(page) is None
                and self.directory.plan(node, page, write=False).already_granted
            ):
                yield self.sim.timeout(cfg.dsm_fast_service_ns)
                # No payload: the node's copy arrived via PagePush already.
                self.trace.emit("page", node, "fast-ack (already sharer)", page=page)
                self.endpoint.reply(msg, PageData(page=page, write=False, ack_only=True))
                return

            yield self.sim.timeout(cfg.dsm_service_ns)

            # Requests racing a split/merge retry against the new table.
            if self.splitting.entry(page) is not None or self.splitting.is_retired(page):
                proto.split_retry_replies += 1
                self.endpoint.reply(msg, PageData(page=page, retry=True))
                return

            # False-sharing detection on write traffic (§5.1) lives in the
            # splitting service; a performed split answers with a retry.
            if cfg.splitting_enabled and write:
                did_split = yield from self.splitting.observe_write(
                    page, node, msg.offset, msg.size
                )
                if did_split:
                    proto.split_retry_replies += 1
                    self.endpoint.reply(msg, PageData(page=page, retry=True))
                    return

            plan = self.directory.plan(node, page, write)
            if plan.fetch_from is not None:
                if write:
                    ack = yield self.endpoint.request(
                        plan.fetch_from, Invalidate(page=page, want_data=True),
                        timeout_ns=cfg.rpc_timeout_ns,
                        retry=self.retry, stats=self.retry_stats,
                    )
                    proto.invalidations += 1
                else:
                    ack = yield self.endpoint.request(
                        plan.fetch_from, WriteBack(page=page),
                        timeout_ns=cfg.rpc_timeout_ns,
                        retry=self.retry, stats=self.retry_stats,
                    )
                    proto.downgrades += 1
                if ack.data is not None:
                    self.home_install(page, ack.data)
            others = [n for n in plan.invalidate if n != plan.fetch_from]
            if others:
                yield self.sim.all_of(
                    [
                        self.endpoint.request(
                            n, Invalidate(page=page, want_data=False),
                            timeout_ns=cfg.rpc_timeout_ns,
                            retry=self.retry, stats=self.retry_stats,
                        )
                        for n in others
                    ]
                )
                proto.invalidations += len(others)

            data = self.home_snapshot(page)
            self.directory.commit(node, page, write)
            self.trace.emit(
                "page", node, "grant M" if write else "grant S", page=page
            )
            self.endpoint.reply(msg, PageData(page=page, write=write, data=data))
        finally:
            lock.release()

        if cfg.forwarding_enabled and not write:
            self.forwarding.note_read(node, page)
