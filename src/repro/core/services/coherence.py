"""Master coherence service: page directory + coherence transactions (§4.2).

Owns the authoritative *home* copies, the page directory, and the per-page
locks every coherence transaction serializes on.  Handles ``page_request``
frames and exposes the kernel-facing page-ownership helpers (§4.3
pointer-argument migration) used by the syscall service's guest-memory
accessor.

The transaction *mechanics* (locks, invalidations, write-backs, grants)
live here and are protocol-independent; the per-page protocol *decisions*
— Exclusive-clean grants, payload-free upgrade acks, home migration, the
adaptive classifier — sit behind the
:class:`~repro.mem.protocols.CoherencePolicy` seam selected by
``DQEMUConfig.coherence_protocol`` (docs/PROTOCOL.md "Coherence
protocols").  The default MSI policy is all no-ops, keeping every default
run's event schedule and wire traffic bit-identical to the pre-seam
protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.core.config import DQEMUConfig
from repro.core.stats import RunStats
from repro.mem.directory import Directory
from repro.mem.layout import PAGE_SIZE, page_of, page_offset
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.mem.protocols import make_policy
from repro.net.endpoint import Endpoint
from repro.net.messages import Invalidate, PageData, WriteBack
from repro.net.rpc import RpcTimeout
from repro.sim.engine import Simulator
from repro.sim.sync import SimLock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.services.coordinator import CrossShardCoordinator
    from repro.core.services.forwarding import ForwardingService
    from repro.core.services.splitting import SplittingService
    from repro.net.health import ClusterHealthView

__all__ = ["CoherenceService", "CoherentGuestMemory"]


def _absorb(_event) -> None:
    """No-op event callback: parks a possible failure until it is awaited.

    The engine raises a failed event's exception out of ``step()`` when the
    event has no callbacks (a failure nobody could see); the tolerant gather
    below issues several requests before awaiting any, so each needs a
    callback from the moment it is issued.  Awaiting later still delivers
    the failure to the awaiting process (late subscription re-fires)."""


class CoherentGuestMemory:
    """Kernel access to guest memory through the coherence protocol.

    Pointer-argument pages are migrated to the master before the syscall
    reads or writes them (§4.3): reads pull the freshest copy home (owner
    downgraded), writes invalidate every copy so slaves re-fetch.

    A global syscall's buffer may span pages owned by different master
    shards; each page is resolved to its shard's coherence service through
    the coordinator and owned one page at a time (never holding page locks
    on two shards at once — see docs/PROTOCOL.md "Sharded master").
    """

    def __init__(self, coordinator: "CrossShardCoordinator"):
        self.coordinator = coordinator

    def _spans(self, addr: int, size: int):
        """Split [addr, addr+size) into translated (taddr, length) chunks that
        stay within one page and one split region."""
        pos = addr
        end = addr + size
        while pos < end:
            page = page_of(pos)
            off = page_offset(pos)
            entry = self.coordinator.split_entry(page)
            if entry is not None:
                step = min(end - pos, entry.region_bytes - off % entry.region_bytes)
                taddr = entry.shadow_pages[off // entry.region_bytes] * PAGE_SIZE + off
            else:
                step = min(end - pos, PAGE_SIZE - off)
                taddr = pos
            yield taddr, step
            pos += step

    def read_guest(self, addr: int, size: int) -> Generator:
        out = bytearray()
        for taddr, step in list(self._spans(addr, size)):
            co = self.coordinator.coherence_of(page_of(taddr))
            yield from co.own_page_for_read(page_of(taddr))
            out += co.home_bytes(taddr, step)
        return bytes(out)

    def write_guest(self, addr: int, data: bytes) -> Generator:
        pos = 0
        for taddr, step in list(self._spans(addr, len(data))):
            co = self.coordinator.coherence_of(page_of(taddr))
            yield from co.own_page_for_write(page_of(taddr))
            co.home_write(taddr, data[pos : pos + step])
            pos += step
        return None


class CoherenceService:
    name = "coherence"
    handled_kinds = frozenset({"page_request"})

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        trace,
        run_stats: RunStats,
        home: PageStore,
        view: Optional["ClusterHealthView"] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.trace = trace
        self.run_stats = run_stats
        self.home = home
        # Cluster failure view: when set, transactions touching a
        # confirmed-dead peer degrade (skip it, count it) instead of
        # aborting the run.  None keeps every code path and event schedule
        # bit-identical to the failure-blind protocol.
        self.view = view
        self.directory = Directory()
        # Per-page protocol decisions (docs/PROTOCOL.md "Coherence
        # protocols").  One policy per shard: its state is page-keyed and
        # pages are shard-disjoint.  The default MSI policy is stateless
        # no-ops — bit-identical behavior.
        self.policy = make_policy(config)
        # Loss recovery for the requests this service issues (invalidates,
        # write-backs).  Resolved once; stats binding only when armed, so
        # default runs create no extra RunStats entries.
        self.retry = config.nested_retry_policy()
        self.retry_stats = run_stats.service(self.name) if self.retry else None
        self._page_locks: dict[int, SimLock] = {}
        # Bound by the composition root (MasterRuntime.__init__).
        self.splitting: "SplittingService" = None  # type: ignore[assignment]
        self.forwarding: "ForwardingService" = None  # type: ignore[assignment]

    def bind(self, splitting: "SplittingService", forwarding: "ForwardingService") -> None:
        self.splitting = splitting
        self.forwarding = forwarding

    # -- failure-domain degradation (docs/PROTOCOL.md "Failure domains") -------

    def evict_node(self, node: int) -> tuple[list[int], list[int]]:
        """Drop a dead node from this shard's directory (re-homing).

        Policy state goes first: pages whose migrated home lived on the
        dead node revert to the master's home copy (the directory pass
        below accounts any data loss — a dead home held its page Modified,
        so it lands in *lost*), and access-pattern stats naming the dead
        node are reset so it can never be chosen as a migration target
        again.  Exclusive-clean copies on the dead node are owner-tracked
        and counted lost conservatively (see ``Directory.evict_node``).
        """
        for page in self.policy.evict_node(node):
            self.trace.emit("page", node, "home reverted to master", page=page)
        return self.directory.evict_node(node)

    def _dead(self, node: int) -> bool:
        return self.view is not None and self.view.is_failed(node)

    def _ask(self, peer: int, msg):
        """Request/await tolerating the peer dying mid-call.

        Returns the ack, or ``None`` when the call timed out against a peer
        the failure detector has confirmed dead (the caller proceeds with
        the home copy).  Timeouts against live peers still raise — a slow
        peer is not a dead one."""
        try:
            ack = yield self.endpoint.request(
                peer, msg,
                timeout_ns=self.config.rpc_timeout_ns,
                retry=self.retry, stats=self.retry_stats,
            )
        except RpcTimeout:
            if not self._dead(peer):
                raise
            self.run_stats.protocol.dead_peer_skips += 1
            return None
        return ack

    def _gather_tolerant(self, targets: list[int], make_msg):
        """Issue one request per target, await all, skip confirmed-dead peers.

        All requests go out before any is awaited (same concurrency as the
        ``all_of`` fast path); each gets an ``_absorb`` callback immediately
        so a failure arriving while an earlier request is being awaited
        cannot escape the simulator loop unobserved."""
        pairs = []
        for n in targets:
            ev = self.endpoint.request(
                n, make_msg(n),
                timeout_ns=self.config.rpc_timeout_ns,
                retry=self.retry, stats=self.retry_stats,
            )
            ev.add_callback(_absorb)
            pairs.append((n, ev))
        acks = []
        for n, ev in pairs:
            try:
                acks.append((yield ev))
            except RpcTimeout:
                if not self._dead(n):
                    raise
                self.run_stats.protocol.dead_peer_skips += 1
        return acks

    # -- per-page serialization ---------------------------------------------

    def lock(self, page: int) -> SimLock:
        lock = self._page_locks.get(page)
        if lock is None:
            lock = SimLock(self.sim)
            self._page_locks[page] = lock
        return lock

    # -- home-copy helpers ------------------------------------------------------

    def _home_page(self, page: int) -> bytearray:
        if page not in self.home:
            return self.home.ensure(page, MSIState.SHARED)
        return self.home.raw(page)

    def home_bytes(self, addr: int, size: int) -> bytes:
        self._home_page(page_of(addr))
        return self.home.read_bytes(addr, size)

    def home_write(self, addr: int, data: bytes) -> None:
        self._home_page(page_of(addr))
        self.home.write_bytes(addr, data)

    def home_install(self, page: int, data: bytes) -> None:
        self.home.install(page, data, MSIState.SHARED)

    def home_snapshot(self, page: int) -> bytes:
        self._home_page(page)
        return self.home.snapshot(page)

    # -- kernel page ownership (syscall pointer arguments, §4.3) -----------------

    def own_page_for_read(self, page: int):
        lock = self.lock(page)
        yield lock.acquire()
        try:
            owner = self.directory.owner(page)
            if owner is not None and self._dead(owner):
                # The Modified copy died with its node; the stale home copy
                # is all that is left (counted as a lost page at eviction).
                self.run_stats.protocol.dead_peer_skips += 1
                self.directory.downgrade_owner(page)
                owner = None
            if owner is not None:
                ack = yield from self._ask(owner, WriteBack(page=page))
                # A clean Exclusive holder acks without payload (the home
                # copy is still current); only dirty data is installed.
                if ack is not None and ack.data is not None:
                    self.home_install(page, ack.data)
                self.directory.downgrade_owner(page)
                self.run_stats.protocol.downgrades += 1
        finally:
            lock.release()

    def own_page_for_write(self, page: int):
        lock = self.lock(page)
        yield lock.acquire()
        try:
            yield from self.pull_home_and_invalidate(page)
        finally:
            lock.release()

    def pull_home_and_invalidate(self, page: int):
        """Invalidate every copy, pulling the owner's data home first.

        Caller holds the page's lock."""
        owner = self.directory.owner(page)
        holders = self.directory.holders(page)
        if self.view is not None:
            dead = [n for n in holders if self.view.is_failed(n)]
            if dead:
                self.run_stats.protocol.dead_peer_skips += len(dead)
                holders = tuple(n for n in holders if n not in dead)
        if holders:
            if self.view is None:
                acks = yield self.sim.all_of(
                    [
                        self.endpoint.request(
                            n, Invalidate(page=page, want_data=(n == owner)),
                            timeout_ns=self.config.rpc_timeout_ns,
                            retry=self.retry, stats=self.retry_stats,
                        )
                        for n in holders
                    ]
                )
            else:
                acks = yield from self._gather_tolerant(
                    list(holders),
                    lambda n: Invalidate(page=page, want_data=(n == owner)),
                )
            for ack in acks:
                if ack.data is not None:
                    self.home_install(page, ack.data)
            for n in holders:
                self.trace.emit("page", n, "invalidate", page=page)
            self.run_stats.protocol.invalidations += len(holders)
        self.directory.invalidate_all(page)

    # -- page requests (§4.2) ------------------------------------------------------

    def handle(self, msg):
        cfg = self.config
        page, node, write = msg.page, msg.src, msg.write
        proto = self.run_stats.protocol
        if self._dead(node):
            # A dead node's request was still in the mailbox when it died.
            # Serving it would re-admit the node to the directory after
            # eviction; the reply is unroutable anyway.
            proto.dead_peer_skips += 1
            return
        lock = self.lock(page)
        yield lock.acquire()
        try:
            proto.page_requests += 1
            if write:
                proto.write_requests += 1
            else:
                proto.read_requests += 1

            # Fast path: a read fault that raced a forwarded page — the
            # directory already lists the node as sharer, so this is a cheap
            # directory-lookup ack (home is fresh for any shared page).
            if (
                not write
                and self.splitting.entry(page) is None
                and self.directory.plan(node, page, write=False).already_granted
            ):
                yield self.sim.timeout(cfg.dsm_fast_service_ns)
                # No payload: the node's copy arrived via PagePush already.
                self.trace.emit("page", node, "fast-ack (already sharer)", page=page)
                self.endpoint.reply(msg, PageData(page=page, write=False, ack_only=True))
                return

            home = self.policy.home_of(page)
            if home == node:
                # The page's home migrated to the requester: the
                # authoritative copy already lives with the node, so the
                # master's part is a metadata-only directory transaction
                # billed at the fast-path service time.
                proto.home_local_hits += 1
                yield self.sim.timeout(cfg.dsm_fast_service_ns)
            elif home is not None:
                # Home migrated to SOME OTHER node: the master must reach
                # the remote home for the authoritative copy — an extra hop
                # on top of the normal service.  Migration only pays while
                # the new home stays the dominant requester.
                proto.home_remote_misses += 1
                yield self.sim.timeout(cfg.dsm_service_ns + cfg.migration_penalty_ns)
            else:
                yield self.sim.timeout(cfg.dsm_service_ns)

            # Requests racing a split/merge retry against the new table.
            if self.splitting.entry(page) is not None or self.splitting.is_retired(page):
                proto.split_retry_replies += 1
                self.endpoint.reply(msg, PageData(page=page, retry=True))
                return

            # False-sharing detection on write traffic (§5.1) lives in the
            # splitting service; a performed split answers with a retry.
            if cfg.splitting_enabled and write:
                did_split = yield from self.splitting.observe_write(
                    page, node, msg.offset, msg.size
                )
                if did_split:
                    proto.split_retry_replies += 1
                    self.endpoint.reply(msg, PageData(page=page, retry=True))
                    return

            # Feed the access-pattern stats behind the policy seam; a write
            # streak may migrate the page's home, the adaptive classifier
            # may switch the page's per-page protocol.  No-ops under MSI.
            was_sharer = node in self.directory.sharers(page)
            new_home, reclassified = self.policy.observe(node, page, write)
            if new_home is not None:
                proto.home_migrations += 1
                self.run_stats.service(self.name).home_migrations += 1
                self.trace.emit("page", new_home, "home migrated", page=page)
            if reclassified:
                proto.adaptive_reclassifications += 1
                self.run_stats.service(self.name).reclassifications += 1

            plan = self.directory.plan(node, page, write)
            fetch_from = plan.fetch_from
            if fetch_from is not None and self._dead(fetch_from):
                # The current copy died with its owner; fall back to the
                # stale home copy (the loss is accounted at eviction time).
                proto.dead_peer_skips += 1
                self.directory.drop_node(fetch_from, page)
                fetch_from = None
            if fetch_from is not None:
                if write:
                    ack = yield from self._ask(
                        fetch_from, Invalidate(page=page, want_data=True)
                    )
                    proto.invalidations += 1
                else:
                    ack = yield from self._ask(fetch_from, WriteBack(page=page))
                    proto.downgrades += 1
                if ack is not None and ack.data is not None:
                    self.home_install(page, ack.data)
            others = [n for n in plan.invalidate if n != plan.fetch_from]
            if self.view is not None:
                live = [n for n in others if not self.view.is_failed(n)]
                proto.dead_peer_skips += len(others) - len(live)
                others = live
            if others:
                if self.view is None:
                    yield self.sim.all_of(
                        [
                            self.endpoint.request(
                                n, Invalidate(page=page, want_data=False),
                                timeout_ns=cfg.rpc_timeout_ns,
                                retry=self.retry, stats=self.retry_stats,
                            )
                            for n in others
                        ]
                    )
                else:
                    yield from self._gather_tolerant(
                        others, lambda n: Invalidate(page=page, want_data=False)
                    )
                proto.invalidations += len(others)

            if self._dead(node):
                # The requester died while we were serving it: do not commit
                # a grant to a dead node (the eviction already scrubbed it).
                proto.dead_peer_skips += 1
                return
            if write:
                if was_sharer:
                    proto.write_upgrades += 1
                self.directory.commit(node, page, write=True)
                if was_sharer and self.policy.upgrade_without_payload(node, page):
                    # The requester's Shared copy is current by protocol
                    # invariant (no invalidate can be in flight to it while
                    # the directory lists it as sharer under this page's
                    # lock) — so the grant is a payload-free upgrade ack.
                    proto.upgrade_acks += 1
                    self.trace.emit("page", node, "grant M (upgrade ack)", page=page)
                    self.endpoint.reply(msg, PageData(page=page, write=True, upgrade=True))
                    return
                self.trace.emit("page", node, "grant M", page=page)
                self.endpoint.reply(
                    msg, PageData(page=page, write=True, data=self.home_snapshot(page))
                )
                return
            # Read grant: an idle entry (no owner, no sharers — including
            # the just-scrubbed dead-owner case) may be granted
            # Exclusive-clean under MESI-family policies.
            exclusive = self.directory.peek(page).is_idle() and self.policy.grant_exclusive(
                node, page
            )
            data = self.home_snapshot(page)
            self.directory.commit(node, page, write=False, exclusive=exclusive)
            if exclusive:
                proto.exclusive_grants += 1
                self.run_stats.service(self.name).exclusive_grants += 1
            self.trace.emit(
                "page", node, "grant E" if exclusive else "grant S", page=page
            )
            self.endpoint.reply(
                msg, PageData(page=page, write=False, data=data, exclusive=exclusive)
            )
        finally:
            lock.release()

        if cfg.forwarding_enabled and not write:
            self.forwarding.note_read(node, page)
