"""Cross-shard coordinator for the sharded master (ROADMAP "Async / sharded
master"; see docs/PROTOCOL.md "Sharded master").

With ``DQEMUConfig.master_shards == K`` the master runs K independent shard
pools, each owning the pages with ``page % K == shard`` (see
:func:`repro.mem.sharding.shard_of`): its own directory partition,
split-table partition, per-page locks, and per-node manager processes.
Almost all protocol work is shard-local by construction — a page request,
its invalidations, and a split/merge's whole lock set (shadow pages are
shard-affine) touch exactly one shard.

The operations that are *not* shard-local funnel through this coordinator:

* **Split-table broadcasts.**  Every node holds one full copy of the split
  table and ``SplitTableUpdate`` replaces it wholesale, so a broadcast must
  carry the union of all shards' entries and two shards must not interleave
  broadcasts (a stale union could resurrect a just-merged page on the
  nodes).  The coordinator serializes broadcasts behind one lock and
  snapshots the union while holding it.
* **Cross-shard page lookups.**  Shared services that span the page space —
  the read-ahead forwarder, the kernel's guest-memory accessor, global
  syscalls touching multi-page buffers, futex wakes triggered by pages on
  any shard — resolve each page to its owning shard's coherence/splitting
  service here, one page at a time.  No path ever holds page locks on two
  shards at once, which is what keeps the single-shard deadlock-freedom
  argument valid cluster-wide.

With ``K == 1`` every helper degenerates to direct calls on the single
shard, and the broadcast path runs exactly the unsharded code (no lock
acquisition — even an uncontended SimLock schedules an extra simulator
event, which would perturb event ordering and break the bit-identical
reproduction of existing runs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.config import DQEMUConfig
from repro.mem.sharding import shard_of
from repro.net.endpoint import Endpoint
from repro.net.messages import SplitTableUpdate
from repro.net.rpc import RpcTimeout
from repro.sim.engine import Simulator
from repro.sim.sync import SimLock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.services.coherence import CoherenceService
    from repro.core.services.splitting import SplittingService
    from repro.mem.splitmap import SplitEntry
    from repro.net.health import ClusterHealthView

__all__ = ["CrossShardCoordinator"]


def _absorb(_event) -> None:
    """No-op callback: keeps an unawaited failed request from killing the sim
    (the engine raises a failed event's error if nothing observed it)."""


class CrossShardCoordinator:
    """Routes per-page operations to their shard and orders cross-shard ones."""

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        node_ids: list[int],
        view: Optional["ClusterHealthView"] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.node_ids = list(node_ids)
        # Cluster failure view (None = failure-blind, bit-identical paths).
        self.view = view
        self.nshards = config.master_shards
        # Bound by the composition root once the shard pools exist.
        self.coherences: list["CoherenceService"] = []
        self.splittings: list["SplittingService"] = []
        # Broadcast serialization: only needed (and only constructed) for
        # K > 1 — see the module docstring on why K == 1 must not lock.
        self._broadcast_lock: Optional[SimLock] = (
            SimLock(sim) if self.nshards > 1 else None
        )

    def bind(
        self,
        coherences: list["CoherenceService"],
        splittings: list["SplittingService"],
    ) -> None:
        if len(coherences) != self.nshards or len(splittings) != self.nshards:
            raise ValueError(
                f"coordinator for {self.nshards} shards bound to "
                f"{len(coherences)} coherence / {len(splittings)} splitting services"
            )
        self.coherences = list(coherences)
        self.splittings = list(splittings)

    # -- per-page shard resolution -------------------------------------------

    def shard_of(self, page: int) -> int:
        return shard_of(page, self.nshards)

    def coherence_of(self, page: int) -> "CoherenceService":
        return self.coherences[shard_of(page, self.nshards)]

    def splitting_of(self, page: int) -> "SplittingService":
        return self.splittings[shard_of(page, self.nshards)]

    def split_entry(self, page: int) -> Optional["SplitEntry"]:
        return self.splitting_of(page).entry(page)

    def split_retired(self, page: int) -> bool:
        return self.splitting_of(page).is_retired(page)

    # -- cross-shard split-table broadcast -------------------------------------

    def split_table_snapshot(self) -> tuple["SplitEntry", ...]:
        """Union of every shard's split-table entries (deterministic order)."""
        if self.nshards == 1:
            return self.splittings[0].split.clone_state()
        entries: list["SplitEntry"] = []
        for splitting in self.splittings:
            entries.extend(splitting.split.clone_state())
        entries.sort(key=lambda e: e.orig_page)
        return tuple(entries)

    def broadcast_split_table(self, retry=None, stats=None):
        """Push the full (union) split table to every node, serialized.

        Nodes replace their whole table on each ``SplitTableUpdate``, so
        concurrent broadcasts from two shards must not interleave: the later
        frame would clobber the earlier shard's change with a stale union.
        The caller still holds its shard's page locks for the split/merge
        being published — broadcast order is therefore also the publication
        order of table changes.  ``retry``/``stats`` are the *calling*
        splitting service's loss-recovery policy and counter sink — the
        coordinator issues the frames, the shard's service owns the traffic.
        """
        if self._broadcast_lock is None:
            # Single shard: the unsharded fast path, bit-identical to the
            # pre-sharding master (no lock event is ever scheduled).
            acks = yield from self._send_update(
                self.split_table_snapshot(), retry, stats
            )
            return acks
        yield self._broadcast_lock.acquire()
        try:
            acks = yield from self._send_update(
                self.split_table_snapshot(), retry, stats
            )
            return acks
        finally:
            self._broadcast_lock.release()

    def _send_update(self, entries: tuple["SplitEntry", ...], retry=None, stats=None):
        view = self.view
        targets = (
            self.node_ids if view is None
            else [n for n in self.node_ids if not view.is_failed(n)]
        )
        reqs = [
            self.endpoint.request(
                nid, SplitTableUpdate(entries=entries),
                timeout_ns=self.config.rpc_timeout_ns,
                retry=retry, stats=stats,
            )
            for nid in targets
        ]
        if view is None:
            acks = yield self.sim.all_of(reqs)
            return acks
        # Failure-tolerant gather: a node that dies with the broadcast in
        # flight must not abort the split/merge — its table copy dies with
        # it.  Requests are all issued above; absorbing each event keeps a
        # late timeout from raising out of the engine unobserved.
        for ev in reqs:
            ev.add_callback(_absorb)
        acks = []
        for nid, ev in zip(targets, reqs):
            try:
                acks.append((yield ev))
            except RpcTimeout:
                if not view.is_failed(nid):
                    raise
        return acks
