"""Master failure-domain service (docs/PROTOCOL.md "Failure domains").

Owns the cluster's reaction to a node leaving — by force (the health
tracker's detector confirms a crash) or by order (a scheduled drain):

* **Crash recovery** (``node_failed``, wired as a ``HealthTracker.on_down``
  callback): latch the node as failed in the :class:`ClusterHealthView`,
  evict its directory footprint (Shared copies re-homed, Modified pages
  written off), then re-home its threads.  A thread parked in ``futex_wait``
  left its CPU context with the master (the syscall service attaches it to
  the waiter record when the failure domain is armed), so it is *evacuable*:
  re-spawned on a healthy node as a spurious wake.  A thread that was
  running has no recoverable context — it is reaped through the kernel's
  exit path so joiners unblock, and reported lost with per-thread
  attribution instead of hanging the run.
* **Cooperative drain** (``start_drain``): order the node to stop running
  guest threads; it hands each one back via ``EvacuateThread`` (handled
  here: re-placed on a usable node) and announces ``DrainComplete`` when
  empty.  Nothing is lost — a drain is the zero-casualty rehearsal of the
  crash path.

Registered on shard 0's dispatcher only when armed
(``DQEMUConfig.evacuation_enabled`` or a drain schedule), so default runs
create no stats row and stay bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.config import DQEMUConfig
from repro.core.services.base import attribute_timeouts
from repro.core.stats import FailureStats, NodeFailure, RunStats
from repro.kernel.syscalls import SystemState
from repro.kernel.threads import ThreadState
from repro.net.endpoint import Endpoint
from repro.net.messages import Ack, SpawnThread, StartDrain
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.services.checkpoint import CheckpointService
    from repro.core.services.coherence import CoherenceService
    from repro.core.services.futexes import FutexService
    from repro.kernel.syscalls import SyscallExecutor
    from repro.net.health import ClusterHealthView

__all__ = ["FailureDomainService"]

A0 = 10


class FailureDomainService:
    name = "failure"
    handled_kinds = frozenset({"evacuate_thread", "drain_complete"})

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        trace,
        run_stats: RunStats,
        state: SystemState,
        view: "ClusterHealthView",
        candidates: list[int],
        node_id: int,
        spawn_guarded: Callable,
        finished: Callable[[], bool],
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.trace = trace
        self.run_stats = run_stats
        self.state = state
        self.view = view
        self.candidates = list(candidates)
        self.node_id = node_id
        self.spawn_guarded = spawn_guarded
        self.finished = finished
        self.failures = FailureStats()
        self.retry = config.nested_retry_policy()
        self.retry_stats = run_stats.service(self.name) if self.retry else None
        self._evac_rr = 0  # round-robin cursor over evacuation targets
        # Bound by the composition root once the shard pools exist.
        self.coherences: List["CoherenceService"] = []
        self.executor: Optional["SyscallExecutor"] = None
        self.futex_service: Optional["FutexService"] = None
        # Checkpoint store (docs/PROTOCOL.md "Checkpoint/restore"); None
        # unless checkpoint_interval_ns is armed — recovery then reaps
        # running threads exactly as before.
        self.checkpoints: Optional["CheckpointService"] = None

    def bind(
        self,
        coherences: List["CoherenceService"],
        executor: "SyscallExecutor",
        futexes: "FutexService",
        checkpoints: Optional["CheckpointService"] = None,
    ) -> None:
        self.coherences = list(coherences)
        self.executor = executor
        self.futex_service = futexes
        self.checkpoints = checkpoints

    # -- crash recovery ---------------------------------------------------------

    def node_failed(self, node: int) -> None:
        """Detector callback: ``node`` is confirmed dead (budget exhausted).

        Runs synchronously inside the RPC layer's timeout handling, *before*
        the triggering call's :class:`RpcTimeout` is raised — so by the time
        a tolerant service catches that timeout, the view is latched and the
        directory already evicted.  Thread recovery needs the clock (guest
        memory writes, spawn round trips) and runs as a spawned process.
        """
        if node == self.node_id or node in self.failures.nodes or self.finished():
            return
        self.view.mark_failed(node)
        # Calls still waiting out retry budgets against the corpse cannot
        # succeed; failing them now un-blocks their handlers before the
        # handlers' own clients time out in cascade.
        self.endpoint.rpc.abort_peer(node)
        rec = NodeFailure(
            node=node, kind="crash", detected_ns=self.sim.now,
            # Which evidence fired first — an exhausted RPC budget or the
            # heartbeat monitor's lease expiry (docs/PROTOCOL.md "Failure
            # detection").
            evidence=self.view.tracker.down_evidence(node),
        )
        self.failures.nodes[node] = rec
        stats = self.run_stats.service(self.name)
        stats.requests += 1
        for coherence in self.coherences:
            rehomed, lost = coherence.evict_node(node)
            rec.rehomed_pages += len(rehomed)
            rec.lost_pages += len(lost)
        stats.rehomed_pages += rec.rehomed_pages
        stats.lost_pages += rec.lost_pages
        self.trace.emit(
            "node", node,
            f"declared dead: {rec.rehomed_pages} pages re-homed, "
            f"{rec.lost_pages} lost",
        )
        self.spawn_guarded(self._recover(node, rec), f"recover-n{node}@master")

    def _recover(self, node: int, rec: NodeFailure):
        """Re-home every thread the dead node was running or parking."""
        t0 = self.sim.now
        stats = self.run_stats.service(self.name)
        if self.checkpoints is not None:
            # Peer mode parks register snapshots on a buddy node; pull the
            # dead node's before deciding any thread's fate (a dead buddy
            # means those snapshots are gone and the threads stay lost).
            yield from self.checkpoints.collect_for(node)
        for trec in list(self.state.threads.on_node(node)):
            tid = trec.tid
            waiter = self.state.futexes.find(tid)
            if waiter is not None and waiter.context is not None:
                # Parked in futex_wait with its context on the master:
                # evacuate as a spurious wake (retval 0) — the guest's futex
                # loop re-checks the word and goes back to sleep if needed.
                self.state.futexes.remove(tid)
                target = self._pick_target(exclude=node)
                self.state.threads.move(tid, target)
                self.state.threads.set_state(tid, ThreadState.RUNNING)
                context = dict(waiter.context)
                regs = list(context["regs"])
                regs[A0] = 0
                context["regs"] = regs
                self.trace.emit(
                    "thread", target, f"evacuated from dead n{node}", tid=tid
                )
                with attribute_timeouts(self.name):
                    yield self.endpoint.request(
                        target, SpawnThread(tid=tid, context=context),
                        timeout_ns=self.config.rpc_timeout_ns,
                        retry=self.retry, stats=self.retry_stats,
                    )
                rec.evacuated.append((tid, target))
                stats.evacuations += 1
                continue
            snap = (
                self.checkpoints.take(tid)
                if self.checkpoints is not None else None
            )
            if snap is not None:
                # A live checkpoint: roll the thread back to its last
                # consistent cut and re-place it — the re-executed span
                # (snapshot to detection) is the rollback distance.
                taken_ns, context = snap
                if waiter is not None:
                    self.state.futexes.remove(tid)
                target = self._pick_target(exclude=node)
                self.state.threads.move(tid, target)
                self.state.threads.set_state(tid, ThreadState.RUNNING)
                rollback_ns = rec.detected_ns - taken_ns
                self.trace.emit(
                    "thread", target,
                    f"restored from checkpoint (rollback "
                    f"{rollback_ns / 1000:.1f}us)", tid=tid,
                )
                with attribute_timeouts(self.name):
                    yield self.endpoint.request(
                        target, SpawnThread(tid=tid, context=context),
                        timeout_ns=self.config.rpc_timeout_ns,
                        retry=self.retry, stats=self.retry_stats,
                    )
                rec.restored.append((tid, target, rollback_ns))
                stats.restores += 1
            else:
                # Context died with the node.  Run the kernel exit path
                # (zero clear_child_tid, wake joiners) so threads joining on
                # it unblock with the loss reported instead of hanging.
                if waiter is not None:
                    self.state.futexes.remove(tid)
                result = yield from self.executor.reap_thread(tid, 137)
                self.futex_service.wake(result.woken)
                rec.lost.append((tid, "context lost in crash"))
                stats.lost_threads += 1
                self.trace.emit(
                    "thread", node, "lost in crash (reaped)", tid=tid
                )
        rec.recovered_ns = self.sim.now
        stats.busy_ns += self.sim.now - t0

    def _usable_pool(self, exclude: int = -1) -> list[int]:
        """Candidates a thread may land on, healthy before suspect.

        ``view.usable`` already rules out failed/draining/down nodes, but a
        *suspect* node (missed timeout windows, not yet confirmed dead) is
        a bad bet for a thread we are trying to save: placing there risks a
        second evacuation moments later.  Mirror the ThreadPlacer's policy
        — suspect nodes are pressed into service only when no healthy
        candidate is left.
        """
        healthy: list[int] = []
        suspect: list[int] = []
        for n in self.candidates:
            if n == exclude or not self.view.usable(n):
                continue
            (suspect if self.view.is_suspect(n) else healthy).append(n)
        return healthy or suspect

    def _pick_target(self, exclude: int = -1) -> int:
        pool = self._usable_pool(exclude)
        if not pool:
            return self.node_id  # last resort: everything runs on the master
        target = pool[self._evac_rr % len(pool)]
        self._evac_rr += 1
        return target

    def _pick_rebalance_target(self, exclude: int = -1) -> int:
        """Least-loaded usable node (thread count): a rebalanced thread must
        land where the queue pressure is lowest, not at a blind cursor."""
        pool = self._usable_pool(exclude)
        if not pool:
            return self.node_id
        return min(pool, key=lambda n: (len(self.state.threads.on_node(n)), n))

    # -- cooperative drain ------------------------------------------------------

    def start_drain(self, node: int) -> None:
        """Order ``node`` to evacuate itself (FaultPlan.drain schedules)."""
        if node in self.failures.nodes or self.finished():
            return
        self.view.mark_draining(node)
        rec = NodeFailure(node=node, kind="drain", detected_ns=self.sim.now)
        self.failures.nodes[node] = rec
        self.run_stats.service(self.name).requests += 1
        self.trace.emit("node", node, "drain ordered")
        self.spawn_guarded(self._order_drain(node), f"drain-n{node}@master")

    def _order_drain(self, node: int):
        with attribute_timeouts(self.name):
            yield self.endpoint.request(
                node, StartDrain(),
                timeout_ns=self.config.rpc_timeout_ns,
                retry=self.retry, stats=self.retry_stats,
            )

    # -- inbound frames ---------------------------------------------------------

    def handle(self, msg):
        yield from getattr(self, "_on_" + msg.kind)(msg)

    def _on_evacuate_thread(self, msg):
        if msg.reason == "rebalance":
            # Load shedding, not a failure: aim at the coldest node and
            # leave the failure record alone (nothing failed).
            target = self._pick_rebalance_target(exclude=msg.src)
            self.trace.emit(
                "thread", target, f"rebalanced from n{msg.src}", tid=msg.tid
            )
        else:
            target = self._pick_target(exclude=msg.src)
            rec = self.failures.nodes.get(msg.src)
            if rec is not None:
                rec.evacuated.append((msg.tid, target))
            self.trace.emit(
                "thread", target, f"evacuated from n{msg.src}", tid=msg.tid
            )
        self.state.threads.move(msg.tid, target)
        self.run_stats.service(self.name).evacuations += 1
        with attribute_timeouts(self.name):
            yield self.endpoint.request(
                target, SpawnThread(tid=msg.tid, context=msg.context),
                timeout_ns=self.config.rpc_timeout_ns,
                retry=self.retry, stats=self.retry_stats,
            )
        self.endpoint.reply(msg, Ack())

    def _on_drain_complete(self, msg):
        rec = self.failures.nodes.get(msg.src)
        if rec is not None and rec.recovered_ns is None:
            rec.recovered_ns = self.sim.now
        self.trace.emit("node", msg.src, "drain complete")
        # The node sends this as an acked request exactly when timeouts are
        # armed (mirroring the futex-wake ack gate); replying to a
        # fire-and-forget frame would be a protocol error.
        if self.config.rpc_timeout_ns is not None:
            self.endpoint.reply(msg, Ack())
        return
        yield  # pragma: no cover - generator protocol
