"""Master read-ahead service: sequential-stream data forwarding (paper §5.2).

Owns the per-(node, stream) read-ahead state; the coherence service feeds
it every served read fault.  Detected streams spawn a dedicated *pusher*
process per batch so the manager keeps serving demand requests; pushes are
paced against the target's downlink backlog.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.core.config import DQEMUConfig
from repro.core.forwarding import ReadAheadEngine
from repro.core.stats import RunStats
from repro.net.endpoint import Endpoint
from repro.net.messages import PagePush
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.services.coordinator import CrossShardCoordinator

__all__ = ["ForwardingService"]


class ForwardingService:
    name = "forwarding"
    handled_kinds = frozenset()  # internal: driven by the coherence service

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        trace,
        run_stats: RunStats,
        spawn_guarded: Callable[[Generator, str], object],
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.trace = trace
        self.run_stats = run_stats
        self.spawn_guarded = spawn_guarded
        self.readahead = ReadAheadEngine(
            trigger=config.forwarding_trigger,
            initial_window=config.forwarding_initial_window,
            max_window=config.forwarding_max_window,
        )
        self.coordinator: "CrossShardCoordinator" = None  # type: ignore[assignment]

    def bind(self, coordinator: "CrossShardCoordinator") -> None:
        self.coordinator = coordinator

    def handle(self, msg):  # pragma: no cover - no wire-facing kinds
        raise NotImplementedError("forwarding service handles no inbound kinds")
        yield

    # -- stream detection (fed by the coherence service on read grants) ---------

    def note_read(self, node: int, page: int) -> None:
        """Record a served read fault; spawn a pusher if a stream triggers."""
        pushes = self.readahead.record(node, page)
        if pushes:
            # Pushes run in their own process so the manager can keep
            # serving this node's demand requests.
            stats = self.run_stats.service(self.name)
            stats.requests += 1
            self.spawn_guarded(self._pusher(node, pushes), f"pusher->{node}")

    def _pusher(self, node: int, pages: list[int]):
        """Forward pages ahead of a detected sequential stream (§5.2).

        Pushes are paced against the target's downlink backlog so a demand
        reply never queues behind a long push burst, and each page's
        directory commit + send is atomic under the page lock (an Invalidate
        racing a push must be ordered after it on the wire).

        The forwarder is shared across master shards (a stream's consecutive
        pages interleave over every shard, so per-shard detectors would never
        trigger); each pushed page resolves to its owning shard's coherence
        service and is handled entirely under that one shard's page lock.
        """
        coord = self.coordinator
        proto = self.run_stats.protocol
        stats = self.run_stats.service(self.name)
        fabric = self.endpoint.fabric
        t0 = self.sim.now
        # Let the push frontier run well ahead of consumption (the paper's
        # 1 GB walk approaches wire speed), while still bounding how long a
        # demand reply can sit behind queued pushes.
        pace_cap = 12 * fabric.serialization_ns(4096)
        try:
            for p in pages:
                backlog = fabric.downlink_backlog_ns(node)
                if backlog > pace_cap:
                    yield self.sim.timeout(backlog - pace_cap)
                co = coord.coherence_of(p)
                lock = co.lock(p)
                yield lock.acquire()
                try:
                    if co.directory.owner(p) is not None:
                        continue  # modified elsewhere: a push would need invalidations
                    if node in co.directory.holders(p):
                        continue
                    if coord.split_entry(p) is not None or coord.split_retired(p):
                        continue
                    yield self.sim.timeout(self.config.forwarding_push_ns)
                    co.directory.commit(node, p, write=False)
                    self.trace.emit("push", node, "forwarded", page=p)
                    self.endpoint.send(node, PagePush(page=p, data=co.home_snapshot(p)))
                    proto.pages_forwarded += 1
                finally:
                    lock.release()
        finally:
            stats.busy_ns += self.sim.now - t0
