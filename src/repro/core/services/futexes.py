"""Master futex service: distributed wait/wake delivery (paper §4.4).

The distributed futex *table* lives in the kernel layer
(:class:`~repro.kernel.futex.FutexTable`, part of the centralized system
state); this service is the runtime half — parking a waiter's delegated
request and delivering ``FutexWake`` frames to each woken waiter's node.
The syscall service drives it from futex syscall results; no wire frame
routes here directly on the master.

Delivery mode follows ``DQEMUConfig.rpc_timeout_ns``: by default wakes are
fire-and-forget sends (the paper's lossless-fabric assumption, and the
cheapest thing that works).  With a timeout armed, each wake becomes an
acked request watched by a guarded process, so a wake swallowed by the
fabric fails the run loudly as a futex-attributed :class:`ServiceTimeout`
instead of leaving the waiter parked forever.  The node side mirrors the
same gate (:class:`~repro.core.services.nodeside.NodeControlService` only
acks wakes when timeouts are armed), keeping the default wire traffic —
and therefore every timing — bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.core.config import DQEMUConfig
from repro.core.services.base import ServiceTimeout, attribute_timeouts
from repro.core.stats import RunStats
from repro.kernel.futex import Waiter
from repro.net.endpoint import Endpoint
from repro.net.messages import FutexWake, Message, SyscallReply

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.health import ClusterHealthView

__all__ = ["FutexService"]


class FutexService:
    name = "futex"
    handled_kinds = frozenset()  # internal: driven by the syscall service

    def __init__(
        self,
        endpoint: Endpoint,
        run_stats: RunStats,
        config: DQEMUConfig,
        spawn_guarded: Callable[[Generator, str], object],
        view: Optional["ClusterHealthView"] = None,
    ) -> None:
        self.endpoint = endpoint
        self.run_stats = run_stats
        self.config = config
        self.spawn_guarded = spawn_guarded
        # Cluster failure view (None = failure-blind, bit-identical paths).
        self.view = view
        # Loss recovery for acked wake delivery (only meaningful when wakes
        # are requests at all, i.e. rpc_timeout_ns armed).
        self.retry = config.nested_retry_policy()
        self.retry_stats = run_stats.service(self.name) if self.retry else None

    def handle(self, msg):  # pragma: no cover - no wire-facing kinds
        raise NotImplementedError("futex service handles no inbound kinds")
        yield

    def _bill_frame(self, msg: Message) -> None:
        """Attribute a delivered frame's wire-serialization time as busy time.

        Wake delivery and park replies have no handler span of their own
        (they run inside the syscall service's dispatch), so their master-link
        consumption is billed as the frame's serialization cost on the shared
        uplink — without advancing the clock, which keeps every existing run
        bit-identical while making futex-heavy load visible in the service
        breakdown instead of reporting busy_ns = 0.
        """
        stats = self.run_stats.service(self.name)
        stats.busy_ns += self.endpoint.fabric.serialization_ns(msg.size_bytes())

    def wake(self, waiters: list[Waiter]) -> None:
        """Deliver a ``FutexWake`` to each waiter's node."""
        proto = self.run_stats.protocol
        stats = self.run_stats.service(self.name)
        timeout_ns = self.config.rpc_timeout_ns
        for waiter in waiters:
            proto.futex_wakes += 1
            stats.requests += 1
            wake = FutexWake(tid=waiter.tid, retval=0)
            self._bill_frame(wake)
            if timeout_ns is None:
                self.endpoint.send(waiter.node, wake)
            else:
                ack = self.endpoint.request(
                    waiter.node, wake, timeout_ns=timeout_ns,
                    retry=self.retry, stats=self.retry_stats,
                )
                self.spawn_guarded(
                    self._await_ack(ack, waiter.node),
                    f"futex-wake-ack@tid{waiter.tid}",
                )

    def _await_ack(self, ack, peer: Optional[int] = None):
        try:
            with attribute_timeouts(self.name):
                yield ack
        except ServiceTimeout:
            if (
                peer is None
                or self.view is None
                or not self.view.is_failed(peer)
            ):
                raise
            # The sleeper's node died before the wake landed; the recovery
            # pass owns that thread's fate now (evacuated or reaped), so a
            # lost wake is accounting, not an abort.
            self.run_stats.protocol.lost_wakes += 1

    def park(self, msg: Message) -> None:
        """Answer a delegated ``futex_wait`` with a parked reply."""
        self.run_stats.protocol.futex_waits += 1
        self.run_stats.service(self.name).requests += 1
        reply = SyscallReply(parked=True)
        self._bill_frame(reply)
        self.endpoint.reply(msg, reply)
