"""Master futex service: distributed wait/wake delivery (paper §4.4).

The distributed futex *table* lives in the kernel layer
(:class:`~repro.kernel.futex.FutexTable`, part of the centralized system
state); this service is the runtime half — parking a waiter's delegated
request and delivering ``FutexWake`` frames to each woken waiter's node.
The syscall service drives it from futex syscall results; no wire frame
routes here directly on the master.
"""

from __future__ import annotations

from repro.core.stats import RunStats
from repro.kernel.futex import Waiter
from repro.net.endpoint import Endpoint
from repro.net.messages import FutexWake, Message, SyscallReply

__all__ = ["FutexService"]


class FutexService:
    name = "futex"
    handled_kinds = frozenset()  # internal: driven by the syscall service

    def __init__(self, endpoint: Endpoint, run_stats: RunStats) -> None:
        self.endpoint = endpoint
        self.run_stats = run_stats

    def handle(self, msg):  # pragma: no cover - no wire-facing kinds
        raise NotImplementedError("futex service handles no inbound kinds")
        yield

    def wake(self, waiters: list[Waiter]) -> None:
        """Send a ``FutexWake`` to each waiter's node."""
        proto = self.run_stats.protocol
        stats = self.run_stats.service(self.name)
        for waiter in waiters:
            proto.futex_wakes += 1
            stats.requests += 1
            self.endpoint.send(waiter.node, FutexWake(tid=waiter.tid, retval=0))

    def park(self, msg: Message) -> None:
        """Answer a delegated ``futex_wait`` with a parked reply."""
        self.run_stats.protocol.futex_waits += 1
        self.run_stats.service(self.name).requests += 1
        self.endpoint.reply(msg, SyscallReply(parked=True))
