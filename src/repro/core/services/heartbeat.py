"""Active liveness: lease-based heartbeat failure detection
(docs/PROTOCOL.md "Failure detection").

The failure detector that shipped with the failure domain is *passive*: it
only learns a peer died when some RPC aimed at it times out.  A crash on a
quiet victim — a node nobody happens to call — therefore goes undetected
and the join hangs forever (ROADMAP, pre-existing since PR 5).  This module
adds the active half:

* :class:`NodeHeartbeatService` (node side) — every slave sends a
  fire-and-forget :class:`~repro.net.messages.Heartbeat` frame to the
  master every ``heartbeat_interval_ns`` of virtual time.  No reply, no
  retransmit state: nothing ever accumulates against a corpse, and the
  frames ride the fabric's fault seam so drop/delay/duplicate/partition
  plans exercise the detector directly.

* :class:`HeartbeatService` (master side) — each renewal re-arms a
  per-peer lease (``effective_heartbeat_lease_ns`` of tolerated silence)
  and feeds the shared :class:`~repro.net.health.HealthTracker` as
  positive evidence.  A monitor process checks every interval; a peer
  whose lease has expired accrues one *missed-lease* count per check,
  escalated through the same ``suspect_after`` / ``down_after``
  thresholds as missed RPC timeout windows — heartbeat and RPC evidence
  merge in one health view instead of forking a second one.  The DOWN
  transition fires the tracker's ``on_down`` callbacks, driving
  :meth:`FailureDomainService.node_failed` exactly as an RPC-detected
  death does: checkpoint restore, directory re-homing, waiter evacuation
  and reaping all run without any tenant traffic touching the corpse.

Detection latency is bounded by
:meth:`DQEMUConfig.heartbeat_detection_bound_ns`: one in-flight renewal's
wire latency, plus a full lease, plus ``health_down_after`` (+1 tick of
phase) monitor intervals.  Because the lease must cover at least two
intervals and misses escalate through ``suspect`` first, a single delayed,
dropped or duplicated renewal can never false-positive a healthy node, and
a renewal that lands before the DOWN threshold demotes suspicion back to
``up``.

Both halves are built only when ``heartbeat_interval_ns`` is set, so
default runs create no service rows, send no frames, and stay
bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.config import DQEMUConfig
from repro.core.stats import RunStats
from repro.net.endpoint import Endpoint
from repro.net.messages import Heartbeat
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import NodeRuntime
    from repro.net.health import ClusterHealthView, HealthTracker

__all__ = ["HeartbeatService", "NodeHeartbeatService"]


class HeartbeatService:
    """Master half: per-peer lease tracking on the simulated clock."""

    name = "heartbeat"
    handled_kinds = frozenset({"heartbeat"})

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        trace,
        run_stats: RunStats,
        health: "HealthTracker",
        view: "ClusterHealthView",
        node_ids: list[int],
        node_id: int,
        spawn_guarded,
        finished: Callable[[], bool],
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.trace = trace
        self.run_stats = run_stats
        self.health = health
        self.view = view
        self.node_ids = list(node_ids)
        self.node_id = node_id
        self.spawn_guarded = spawn_guarded
        self.finished = finished
        self.interval_ns = config.heartbeat_interval_ns
        self.lease_ns = config.effective_heartbeat_lease_ns
        #: Per-peer lease expiry on the simulated clock: the instant after
        #: which silence becomes failure evidence.
        self.deadlines: dict[int, int] = {}

    def start(self) -> None:
        """Arm every slave's initial lease and spawn the monitor.

        The first renewal arrives one interval (plus wire latency) after
        boot; the lease invariant (>= 2 intervals) guarantees the initial
        grant outlives it, so a healthy slave never starts suspected.
        """
        for nid in self.node_ids:
            if nid != self.node_id:
                self.deadlines[nid] = self.sim.now + self.lease_ns
        self.spawn_guarded(self._monitor(), f"heartbeat-monitor@{self.node_id}")

    def _monitor(self):
        """Check every peer's lease once per renewal interval.

        Each check of an expired lease is one unit of failure evidence —
        the analogue of one missed RPC timeout window — so a peer goes
        ``up -> suspect -> down`` over ``health_down_after`` silent
        intervals rather than being shot on first expiry.
        """
        proto = self.run_stats.protocol
        while True:
            yield self.sim.timeout(self.interval_ns)
            if self.finished():
                return
            for nid in sorted(self.deadlines):
                if self.view.is_failed(nid):
                    continue  # already latched; recovery ran
                if self.sim.now < self.deadlines[nid]:
                    continue
                proto.heartbeat_lease_expiries += 1
                was = self.health.state_of(nid)
                # May fire on_down synchronously -> FailureDomainService
                # .node_failed, exactly as an exhausted RPC budget does.
                self.health.lease_missed(nid)
                now_state = self.health.state_of(nid)
                if now_state is not was:
                    overdue = self.sim.now - self.deadlines[nid]
                    self.trace.emit(
                        "node", nid,
                        f"lease overdue {overdue}ns: "
                        f"{was.value} -> {now_state.value}",
                    )

    # -- inbound frames ---------------------------------------------------------

    def handle(self, msg):
        yield from self._on_heartbeat(msg)

    def _on_heartbeat(self, msg):
        proto = self.run_stats.protocol
        if self.view.is_failed(msg.src):
            # A posthumous renewal (delayed in the fabric, or racing the
            # detector) must not resurrect a latched-failed peer: recovery
            # already re-homed its state.
            proto.heartbeats_ignored += 1
            return
        self.deadlines[msg.src] = self.sim.now + self.lease_ns
        proto.heartbeats_received += 1
        # Positive liveness evidence: demotes suspect back to up, exactly
        # as an answered RPC would.
        self.health.record_success(msg.src)
        return
        yield  # pragma: no cover - generator protocol


class NodeHeartbeatService:
    """Node half: the periodic lease-renewal sender.

    Not a frame handler — the master never messages the sender — but
    shaped like every other node service so its conditional stats row and
    lifecycle follow the same rules.  Master node 0 never sends: its
    liveness is axiomatic (the cluster has no run without it).
    """

    name = "node.heartbeat"
    handled_kinds = frozenset()

    def __init__(self, node: "NodeRuntime") -> None:
        self.node = node
        self.seq = 0

    def start(self) -> None:
        node = self.node
        node.sim.spawn(
            node._guarded(self._sender()), name=f"heartbeat@{node.node_id}"
        )

    def _sender(self):
        node = self.node
        interval = node.config.heartbeat_interval_ns
        stats = node.run_stats.service(self.name)
        proto = node.run_stats.protocol
        while not node.crashed and not node.shutdown:
            yield node.sim.timeout(interval)
            if node.crashed or node.shutdown:
                return
            self.seq += 1
            msg = Heartbeat(seq=self.seq)
            stats.requests += 1
            proto.heartbeats_sent += 1
            proto.heartbeat_bytes += msg.size_bytes()
            node.endpoint.send(node.master_id, msg)

    def handle(self, msg):  # pragma: no cover - no inbound kinds
        raise AssertionError(f"{self.name} handles no inbound frames")
