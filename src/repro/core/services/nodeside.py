"""Slave-side services: the node communicator's protocol subsystems.

Every node's communicator process is a dispatcher over three services
mirroring the master-side decomposition: the coherence client (invalidate /
write-back / forwarded pages), the split-table client, and thread control
(remote spawn, futex wake, shutdown).  Services keep a reference to their
:class:`~repro.core.node.NodeRuntime` because the state they act on (page
store, run queue, guest threads) is shared with the execution engine.

Every handler resolves the frame's tenant bundle first: page stores, split
tables and thread tables are per-job namespaces on a multi-tenant node, and
a master command only ever touches the slice of the job that sent it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.gthread import GuestThreadState
from repro.dbt.cpu import CPUState
from repro.mem.msi import MSIState
from repro.mem.splitmap import SplitEntry
from repro.net.messages import Ack, CheckpointBatch, InvalidateAck, SpawnAck

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import NodeRuntime, NodeTenant

__all__ = [
    "NodeCoherenceService",
    "NodeSplitTableService",
    "NodeControlService",
    "NodeCheckpointService",
]


class _NodeService:
    """Shared plumbing: a per-kind method table over the owning node."""

    name = "node"
    handled_kinds: frozenset[str] = frozenset()

    def __init__(self, node: "NodeRuntime") -> None:
        self.node = node
        self.endpoint = node.endpoint

    def _bundle(self, msg) -> "NodeTenant":
        return self.node.bundle(msg.tenant)

    def handle(self, msg):
        yield from getattr(self, "_on_" + msg.kind)(msg)


class NodeCoherenceService(_NodeService):
    """Coherence commands from the master against the local page store."""

    name = "node.coherence"
    handled_kinds = frozenset({"invalidate", "write_back", "page_push"})

    def _on_invalidate(self, msg):
        bundle = self._bundle(msg)
        data = None
        if msg.page in bundle.pagestore:
            # Only a Modified copy carries content the home lacks; Shared
            # and Exclusive-clean copies drop without payload (the home is
            # still current for both).
            if bundle.pagestore.state(msg.page) is MSIState.MODIFIED:
                data = bundle.pagestore.snapshot(msg.page)
            bundle.pagestore.drop(msg.page)
        bundle.llsc.kill_page(msg.page)
        bundle.engine.cache.invalidate_page(msg.page)
        self.endpoint.reply(msg, InvalidateAck(page=msg.page, data=data))
        return
        yield  # pragma: no cover - generator protocol

    def _on_write_back(self, msg):
        bundle = self._bundle(msg)
        # An Exclusive copy that was never written is clean by definition —
        # the master's home copy is still current, so the downgrade acks
        # without the 4 KiB payload (MESI's cheap E→S).  A silently
        # upgraded copy is Modified by then and writes back as usual.
        if bundle.pagestore.state(msg.page) is MSIState.EXCLUSIVE:
            data = None
        else:
            data = bundle.pagestore.snapshot(msg.page)
        bundle.pagestore.set_state(msg.page, MSIState.SHARED)
        self.endpoint.reply(msg, InvalidateAck(page=msg.page, data=data))
        return
        yield  # pragma: no cover - generator protocol

    def _on_page_push(self, msg):
        bundle = self._bundle(msg)
        if bundle.pagestore.state(msg.page) is MSIState.INVALID:
            bundle.pagestore.install(msg.page, msg.data, MSIState.SHARED)
            gate = bundle.push_gates.pop(msg.page, None)
            if gate is not None and not gate.triggered:
                gate.succeed()
        return
        yield  # pragma: no cover - generator protocol


class NodeSplitTableService(_NodeService):
    """Split-table broadcasts: keep the local shadow-page table current."""

    name = "node.split_table"
    handled_kinds = frozenset({"split_table_update"})

    def _on_split_table_update(self, msg):
        self._apply_split_table(self._bundle(msg), msg.entries)
        self.endpoint.reply(msg, Ack())
        return
        yield  # pragma: no cover - generator protocol

    @staticmethod
    def _apply_split_table(
        bundle: "NodeTenant", entries: tuple[SplitEntry, ...]
    ) -> None:
        """Install the master's full split table, dropping stale copies."""
        new = {e.orig_page: e for e in entries}
        old = {e.orig_page: e for e in bundle.splitmap.entries()}
        for orig, entry in old.items():
            if orig not in new:
                # merged back: local shadow copies are stale
                bundle.splitmap.remove(orig)
                for shadow in entry.shadow_pages:
                    bundle.pagestore.drop(shadow)
                    bundle.llsc.kill_page(shadow)
        for orig, entry in new.items():
            if orig not in old:
                bundle.splitmap.install(entry)
                bundle.pagestore.drop(orig)
                bundle.llsc.kill_page(orig)


class NodeCheckpointService(_NodeService):
    """Buddy-peer checkpoint depot (docs/PROTOCOL.md "Checkpoint/restore").

    With ``checkpoint_target="peer"`` each slave ships its threads' register
    snapshots to the next slave in the ring instead of the master (the
    Modified-page flush still goes home).  This service is the receiving
    side: it keeps the newest snapshot per (source node, tenant, tid) and
    surrenders a dead node's snapshots when the master's recovery asks
    (``FetchCheckpoints`` → :class:`~repro.net.messages.CheckpointBatch`).

    Registered — and its stats row created — only when checkpointing is
    armed, so default runs stay bit-identical.
    """

    name = "node.checkpoint"
    handled_kinds = frozenset({"peer_checkpoint", "fetch_checkpoints"})

    def _on_peer_checkpoint(self, msg):
        store = self.node.peer_checkpoints
        key = (msg.src, msg.tenant, msg.tid)
        prev = store.get(key)
        if prev is None or prev[0] <= msg.taken_ns:
            store[key] = (msg.taken_ns, msg.context)
        self.endpoint.reply(msg, Ack())
        return
        yield  # pragma: no cover - generator protocol

    def _on_fetch_checkpoints(self, msg):
        entries = tuple(
            (tid, taken_ns, context)
            for (src, tenant, tid), (taken_ns, context)
            in sorted(self.node.peer_checkpoints.items())
            if src == msg.node and tenant == msg.tenant
        )
        self.endpoint.reply(msg, CheckpointBatch(entries=entries))
        return
        yield  # pragma: no cover - generator protocol


class NodeControlService(_NodeService):
    """Thread control: remote spawns, futex wakeups, drain, and shutdown."""

    name = "node.control"
    handled_kinds = frozenset(
        {"spawn_thread", "futex_wake", "start_drain", "shutdown"}
    )

    def _on_spawn_thread(self, msg):
        cpu = CPUState.from_snapshot(msg.context)
        self.node.add_thread(cpu, tenant=msg.tenant)
        self.endpoint.reply(msg, SpawnAck(tid=msg.tid))
        return
        yield  # pragma: no cover - generator protocol

    def _on_futex_wake(self, msg):
        self.node._wake_thread(msg.tid, msg.retval, tenant=msg.tenant)
        # Wakes are fire-and-forget by default; with RPC timeouts armed the
        # master sends them as acked requests (see FutexService.wake) and
        # expects an answer.  Gating on the same config keeps default-mode
        # wire traffic bit-identical.
        if self.node.config.rpc_timeout_ns is not None:
            self.endpoint.reply(msg, Ack())
        return
        yield  # pragma: no cover - generator protocol

    def _on_start_drain(self, msg):
        # Cooperative drain (docs/PROTOCOL.md "Failure domains"): from now
        # on every thread reaching a scheduling point is evacuated back to
        # the master instead of being run or requeued.  Coherence service
        # stays up — the node's pages migrate away lazily.
        node = self.node
        node.draining = True
        self.endpoint.reply(msg, Ack())
        node._check_drain_complete()
        return
        yield  # pragma: no cover - generator protocol

    def _on_shutdown(self, msg):
        # Tenant-scoped: the sending job is over, but the node — and any
        # other job running on it — lives on.  Threads of the finished
        # tenant are marked exited here and dropped by the cores at their
        # next scheduling point (via the bundle's finished flag); no
        # sentinel goes into the run queue, so the cores survive to serve
        # the remaining tenants.  (In a single-job run the master's
        # ``done`` fires before this frame is even delivered, so the old
        # whole-node shutdown was already dead code on that path.)
        bundle = self._bundle(msg)
        bundle.finished = True
        for th in list(bundle.threads.values()):
            th.state = GuestThreadState.EXITED
            th.cpu.halted = True
        bundle.threads.clear()
        self.endpoint.reply(msg, Ack())
        return
        yield  # pragma: no cover - generator protocol
