"""Master false-sharing service: page splitting and merge-back (paper §5.1).

Owns its shard's slice of the canonical split table, the false-sharing
detector, the shard-affine shadow-page allocator, and the adaptive-revert
state.  Write traffic is fed in by the shard's coherence service
(:meth:`SplittingService.observe_write`); region-crossing accesses arrive as
``merge_request`` frames routed to the original page's shard.

Shadow pages are allocated shard-affine (a split page's shadows live on the
original's shard — :class:`~repro.mem.sharding.ShadowPageAllocator`), so the
entire split/merge lock set stays inside one shard; split-table broadcasts,
the one genuinely cross-shard operation, go through the
:class:`~repro.core.services.coordinator.CrossShardCoordinator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.core.config import DQEMUConfig
from repro.core.services.base import attribute_timeouts
from repro.core.splitting import FalseSharingDetector, SplitDecision
from repro.core.stats import RunStats
from repro.errors import ProtocolError
from repro.mem.layout import PAGE_SIZE
from repro.mem.sharding import ShadowPageAllocator, shard_of
from repro.mem.splitmap import SplitEntry, SplitMap
from repro.net.endpoint import Endpoint
from repro.net.messages import Ack
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.services.coherence import CoherenceService
    from repro.core.services.coordinator import CrossShardCoordinator

__all__ = ["SplittingService"]


class SplittingService:
    name = "splitting"
    handled_kinds = frozenset({"merge_request"})

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        trace,
        run_stats: RunStats,
        node_ids: list[int],
        node_id: int,
        spawn_guarded: Callable[[Generator, str], object],
        coordinator: "CrossShardCoordinator",
        shard: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.trace = trace
        self.run_stats = run_stats
        self.node_ids = list(node_ids)
        self.node_id = node_id
        self.spawn_guarded = spawn_guarded
        self.coordinator = coordinator
        self.shard = shard
        # Loss recovery for the split-table broadcasts this service triggers
        # (issued through the coordinator, attributed here).
        self.retry = config.nested_retry_policy()
        self.retry_stats = run_stats.service(self.name) if self.retry else None
        self.split = SplitMap()  # this shard's slice of the canonical table
        self.detector = FalseSharingDetector(
            trigger=config.splitting_trigger,
            history=config.splitting_history,
            max_regions=config.splitting_max_regions,
        )
        self._shadows = ShadowPageAllocator(shard, coordinator.nshards)
        self._retired_shadows: set[int] = set()
        # Adaptive revert (§5.1 "adaptive scheme"): a split whose shadow pages
        # keep ping-ponging was mis-inferred; merge it back and never re-split.
        self._shadow_conflicts: dict[int, tuple[int, int, int]] = {}  # shadow -> (node, off, n)
        self._split_blacklist: set[int] = set()
        self._merging: set[int] = set()
        self.coherence: "CoherenceService" = None  # type: ignore[assignment]

    def bind(self, coherence: "CoherenceService") -> None:
        self.coherence = coherence

    # -- split-table queries (coherence fast paths, guest-memory spans) ---------

    def entry(self, page: int):
        return self.split.entry(page)

    def is_retired(self, page: int) -> bool:
        return page in self._retired_shadows

    # -- detection (fed by the coherence service on write faults) ---------------

    def observe_write(self, page: int, node: int, offset: int, size: int):
        """Feed one write fault to the detector; returns True if the page was
        split (the triggering request must then be answered with a retry)."""
        shadow_of = self.split.shadow_to_orig(page)
        if shadow_of is not None:
            self._track_shadow_conflict(page, shadow_of[0], node, offset)
        elif page not in self._split_blacklist:
            decision = self.detector.record(page, node, offset, size)
            if decision is not None:
                yield from self._do_split(decision)
                return True
        return False

    # -- page splitting (§5.1) ------------------------------------------------------

    def _alloc_shadow(self) -> int:
        """Next shadow page on *this shard* (shard-affine by construction)."""
        return self._shadows.alloc()

    def _do_split(self, decision: SplitDecision):
        """Caller holds the original page's lock."""
        cfg = self.config
        co = self.coherence
        page = decision.page
        if shard_of(page, self.coordinator.nshards) != self.shard:
            raise ProtocolError(
                f"split of page {page:#x} routed to shard {self.shard} "
                f"(owner is shard {shard_of(page, self.coordinator.nshards)})"
            )
        yield self.sim.timeout(cfg.split_service_ns)
        yield from co.pull_home_and_invalidate(page)
        content = co.home_snapshot(page)
        shadows = tuple(self._alloc_shadow() for _ in range(decision.regions))
        for s in shadows:
            # Each shadow page carries the region at its original offset; we
            # copy the whole page so offsets line up (Fig. 4) — only the
            # region's bytes are ever authoritative.
            co.home_install(s, content)
        self.split.install(
            SplitEntry(orig_page=page, shadow_pages=shadows, region_bytes=decision.region_bytes)
        )
        yield from self._broadcast_split_table()
        self.detector.forget(page)
        self.trace.emit(
            "split", self.node_id,
            f"split into {decision.regions} x {decision.region_bytes}B shadows",
            page=page,
        )
        self.run_stats.protocol.splits += 1

    def _broadcast_split_table(self):
        # Cross-shard: nodes replace their whole table per update, so the
        # coordinator unions every shard's entries and serializes broadcasts.
        acks = yield from self.coordinator.broadcast_split_table(
            retry=self.retry, stats=self.retry_stats
        )
        return acks

    # -- merging (correctness escape hatch for region-crossing accesses) ----------

    def _track_shadow_conflict(self, shadow: int, orig: int, node: int, offset: int) -> None:
        """Count cross-node write ping-pong on a shadow page; past the
        trigger, schedule a merge + blacklist (the split was mis-inferred)."""
        last_node, last_off, n = self._shadow_conflicts.get(shadow, (-1, -1, 0))
        if last_node >= 0 and node != last_node and offset != last_off:
            n += 1
        self._shadow_conflicts[shadow] = (node, offset, n)
        if n >= self.config.splitting_trigger and orig not in self._merging:
            self._merging.add(orig)
            self._split_blacklist.add(orig)
            self.trace.emit(
                "split", self.node_id,
                "shadow still ping-ponging: revert + blacklist", page=orig,
            )
            self.spawn_guarded(
                self._merge_and_release(orig), f"revert-split@{orig:#x}"
            )

    def _merge_and_release(self, orig: int):
        # Runs as its own spawned process, outside any dispatch — attribute
        # timeouts here or a peer death during the revert surfaces bare.
        with attribute_timeouts(self.name):
            try:
                yield from self._do_merge(orig)
            finally:
                self._merging.discard(orig)

    def _do_merge(self, orig: int):
        """Merge a split page's shadows back into the original (locks the
        original and every shadow in sorted order; single-lock managers and
        disjoint merge lock-sets cannot deadlock against this)."""
        co = self.coherence
        entry = self.split.entry(orig)
        if entry is None:
            return
        pages = sorted([orig, *entry.shadow_pages])
        locks = [co.lock(p) for p in pages]
        for lock in locks:
            yield lock.acquire()
        try:
            if self.split.entry(orig) is None:
                return  # merged concurrently
            yield self.sim.timeout(self.config.merge_service_ns)
            rb = entry.region_bytes
            for k, shadow in enumerate(entry.shadow_pages):
                yield from co.pull_home_and_invalidate(shadow)
                region = co.home_bytes(shadow * PAGE_SIZE + k * rb, rb)
                co.home_write(orig * PAGE_SIZE + k * rb, region)
                self._retired_shadows.add(shadow)
                self._shadow_conflicts.pop(shadow, None)
            self.split.remove(orig)
            yield from self._broadcast_split_table()
            self.trace.emit("split", self.node_id, "merged back", page=orig)
            self.run_stats.protocol.merges += 1
        finally:
            for lock in reversed(locks):
                lock.release()

    # -- merge requests (wire-facing) -----------------------------------------

    def handle(self, msg):
        yield from self._do_merge(msg.page)
        # A guest access straddled the regions: this page must stay whole.
        self._split_blacklist.add(msg.page)
        self.endpoint.reply(msg, Ack())
