"""Master syscall service: delegated syscall execution (paper §4.3).

Executes each ``syscall_request`` against the centralized system state,
migrating pointer-argument pages home through the coherence layer's
guest-memory accessor.  Thread-lifecycle results (clone placement, live
migration, exit_group) are resolved here; futex park/wake delivery is
delegated to the futex service.

On a sharded master this is a *shared control service*, registered on shard
0's dispatcher (``syscall_request`` carries no page key, so it routes to
``("mgr", src, 0)``); a global syscall touching a multi-page buffer reaches
each page's owning shard through the guest-memory accessor's coordinator,
one page at a time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.config import DQEMUConfig
from repro.core.migration import build_child_context
from repro.core.scheduler import ThreadPlacer
from repro.core.services.coherence import CoherentGuestMemory
from repro.core.services.futexes import FutexService
from repro.core.stats import RunStats
from repro.kernel.syscalls import SyscallExecutor, SyscallResult, SystemState
from repro.kernel.sysnums import (
    CLONE_CHILD_CLEARTID,
    CLONE_CHILD_SETTID,
    CLONE_PARENT_SETTID,
    ERRNO,
    sys_name,
)
from repro.kernel.threads import ThreadState
from repro.net.endpoint import Endpoint
from repro.net.messages import SpawnThread, SyscallReply
from repro.net.rpc import RpcTimeout
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.health import ClusterHealthView

__all__ = ["SyscallService"]


class SyscallService:
    name = "syscall"
    handled_kinds = frozenset({"syscall_request"})

    def __init__(
        self,
        sim: Simulator,
        config: DQEMUConfig,
        endpoint: Endpoint,
        trace,
        run_stats: RunStats,
        state: SystemState,
        placer: ThreadPlacer,
        node_ids: list[int],
        node_id: int,
        guest_mem: CoherentGuestMemory,
        futexes: FutexService,
        finish: Callable[[int], None],
        view: Optional["ClusterHealthView"] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.endpoint = endpoint
        self.trace = trace
        self.run_stats = run_stats
        self.state = state
        self.placer = placer
        self.node_ids = list(node_ids)
        self.node_id = node_id
        self.guest_mem = guest_mem
        self.futexes = futexes
        self.finish = finish
        # Cluster failure view (None = failure-blind, bit-identical paths).
        self.view = view
        self.executor = SyscallExecutor(state, guest_mem)
        # Loss recovery for the spawn/migrate requests this service issues.
        self.retry = config.nested_retry_policy()
        self.retry_stats = run_stats.service(self.name) if self.retry else None

    # -- delegated syscalls (§4.3) ---------------------------------------------------

    def handle(self, msg):
        cfg = self.config
        if self.view is not None and self.view.is_failed(msg.src):
            # The caller's node died with this request still in the mailbox;
            # executing it would mutate kernel state for a dead thread and
            # the reply is unroutable.
            self.run_stats.protocol.dead_peer_skips += 1
            return
        yield self.sim.timeout(cfg.syscall_service_ns)
        self.trace.emit("syscall", msg.src, sys_name(msg.sysno), tid=msg.tid)
        result: SyscallResult = yield from self.executor.execute(
            msg.tid, msg.src, msg.sysno, msg.args
        )

        if result.action == "clone":
            yield from self._handle_clone(msg, result)
            return
        if result.action == "migrate":
            yield from self._handle_migrate(msg, result)
            return

        self.futexes.wake(result.woken)

        if result.action == "blocked":
            if self.view is not None:
                rec = self.state.threads.get(msg.tid)
                if self.view.is_failed(msg.src) and rec.exit_status is not None:
                    # The node died mid-call and the recovery pass already
                    # reaped this thread as lost: un-park it and restore the
                    # exited record instead of resurrecting a dead waiter.
                    self.state.futexes.remove(msg.tid)
                    rec.state = ThreadState.EXITED
                    self.run_stats.protocol.dead_peer_skips += 1
                    return
                # A parked thread's context lives in the master's futex
                # table, which is what makes it evacuable after its node
                # dies (docs/PROTOCOL.md "Failure domains").
                self.state.futexes.attach_context(msg.tid, msg.context)
            self.futexes.park(msg)
        elif result.action == "exit":
            self.endpoint.reply(msg, SyscallReply(exited=True))
        elif result.action == "exit_group":
            self.endpoint.reply(msg, SyscallReply(exited=True))
            self.finish(result.exit_status)
        else:  # "return" / "yield"
            self.endpoint.reply(msg, SyscallReply(retval=result.retval))

    def _handle_clone(self, msg, result: SyscallResult):
        clone = result.clone
        hint = (msg.context or {}).get("hint_group")
        node_id = self.placer.place(hint)
        ctid = clone.ctid if clone.flags & CLONE_CHILD_CLEARTID else 0
        rec = self.state.threads.create(
            node=node_id, parent_tid=clone.parent_tid, ctid=ctid, hint_group=hint
        )
        mem = self.guest_mem
        if clone.flags & CLONE_PARENT_SETTID and clone.ptid:
            yield from mem.write_guest(clone.ptid, rec.tid.to_bytes(8, "little"))
        if clone.flags & CLONE_CHILD_SETTID and clone.ctid:
            yield from mem.write_guest(clone.ctid, rec.tid.to_bytes(8, "little"))
        child = build_child_context(msg.context, clone, rec.tid, hint)
        if node_id != self.node_id:
            self.run_stats.protocol.remote_thread_spawns += 1
        self.trace.emit(
            "thread", node_id,
            f"clone: placed (hint={hint})", tid=rec.tid,
        )
        yield from self._spawn_with_failover(node_id, rec.tid, child)
        self.endpoint.reply(msg, SyscallReply(retval=rec.tid))

    def _spawn_with_failover(self, node_id: int, tid: int, context):
        """Ship a new thread's context, re-placing it if the target dies.

        Without a failure view this is exactly one request (timeouts, if
        armed, escalate as before).  With one, a spawn that times out
        against a peer the detector confirmed dead is retargeted onto the
        next usable candidate — the child was already announced to its
        parent, so failing the clone retroactively is not an option.
        """
        attempts = len(self.node_ids) + 1
        for _ in range(attempts):
            try:
                yield self.endpoint.request(
                    node_id, SpawnThread(tid=tid, context=context),
                    timeout_ns=self.config.rpc_timeout_ns,
                    retry=self.retry, stats=self.retry_stats,
                )
                return
            except RpcTimeout:
                if self.view is None or not self.view.is_failed(node_id):
                    raise
                pool = [
                    n for n in self.placer.candidates
                    if n != node_id and self.view.usable(n)
                ]
                retarget = pool[tid % len(pool)] if pool else self.node_id
                self.trace.emit(
                    "thread", retarget,
                    f"spawn failover: n{node_id} died mid-clone", tid=tid,
                )
                self.run_stats.protocol.spawn_failovers += 1
                self.state.threads.move(tid, retarget)
                node_id = retarget
        raise RuntimeError(f"spawn of tid {tid} failed over more than {attempts} times")

    def _handle_migrate(self, msg, result: SyscallResult):
        """Live thread migration (sched_setaffinity): re-place the calling
        thread.  The syscall request already carries the CPU context, so the
        move reuses the remote-creation path: ship the context to the target
        node and tell the source node to forget the thread.  The thread's
        data follows through the coherence protocol, as at creation (§4.1).
        """
        target = result.migrate_to
        unusable = self.view is not None and not self.view.usable(target)
        if target not in self.node_ids or unusable:
            # Unknown node, or a known-dead/draining one: migrating there
            # would strand the thread, so the guest gets EINVAL either way.
            self.endpoint.reply(
                msg, SyscallReply(retval=(-ERRNO.EINVAL) & 0xFFFF_FFFF_FFFF_FFFF)
            )
            return
        if target == msg.src:
            self.endpoint.reply(msg, SyscallReply(retval=0))
            return
        self.state.threads.move(msg.tid, target)
        context = dict(msg.context)
        regs = list(context["regs"])
        regs[10] = 0  # a0: sched_setaffinity returns 0 on the new node
        context["regs"] = regs
        self.trace.emit(
            "thread", target, f"migrated from n{msg.src}", tid=msg.tid
        )
        self.run_stats.protocol.thread_migrations += 1
        yield from self._spawn_with_failover(target, msg.tid, context)
        self.endpoint.reply(msg, SyscallReply(migrated=True))
