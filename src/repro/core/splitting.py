"""False-sharing detection for page splitting (paper §5.1).

"False data sharing can be detected if a page is written by multiple threads
to different parts of the page" — the master records the (node, offset) of
write page-requests; once a page has ping-ponged between distinct nodes at
distinct offsets ``trigger`` times (10 in §6.1.1), the detector tries to
infer a region geometry that puts each node's working range in its own
region without any recorded access straddling a boundary.  If no geometry
fits, the history is reset (splitting such a page would only add merges).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.mem.layout import PAGE_SIZE

__all__ = ["FalseSharingDetector", "SplitDecision"]


@dataclass(frozen=True)
class SplitDecision:
    page: int
    regions: int
    region_bytes: int


@dataclass
class _PageHistory:
    accesses: Deque[tuple[int, int, int]] = field(default_factory=deque)  # (node, off, size)
    conflicts: int = 0
    last_node: int = -1
    last_off: int = -1


class FalseSharingDetector:
    def __init__(self, *, trigger: int = 10, history: int = 64, max_regions: int = 32):
        self.trigger = trigger
        self.history = history
        self.max_regions = max_regions
        self._pages: dict[int, _PageHistory] = {}
        self.decisions = 0
        self.rejected = 0

    def record(self, page: int, node: int, offset: int, size: int = 8
               ) -> Optional[SplitDecision]:
        """Record a write page-request; returns a decision when a split fires."""
        h = self._pages.setdefault(page, _PageHistory())
        h.accesses.append((node, offset, size))
        while len(h.accesses) > self.history:
            h.accesses.popleft()
        if h.last_node >= 0 and node != h.last_node and offset != h.last_off:
            h.conflicts += 1
        h.last_node = node
        h.last_off = offset

        if h.conflicts < self.trigger:
            return None
        geometry = self._infer_regions(h)
        if geometry is None:
            # Unsplittable pattern (true sharing): restart the count.
            self._pages[page] = _PageHistory()
            self.rejected += 1
            return None
        del self._pages[page]
        self.decisions += 1
        return SplitDecision(page=page, regions=geometry, region_bytes=PAGE_SIZE // geometry)

    def forget(self, page: int) -> None:
        self._pages.pop(page, None)

    # -- geometry inference ------------------------------------------------------

    def _infer_regions(self, h: _PageHistory) -> Optional[int]:
        """Smallest power-of-two region count under which every region is
        touched by at most one node (regions may be interleaved between
        nodes, as in the paper's 32x128-byte Table 1 layout) and no recorded
        access straddles a boundary."""
        nodes = {node for node, _, _ in h.accesses}
        if len(nodes) < 2:
            return None
        regions = 2
        while regions <= self.max_regions:
            rb = PAGE_SIZE // regions
            # (a) no recorded access may straddle a region boundary
            if all(off // rb == (off + size - 1) // rb for _, off, size in h.accesses):
                # (b) each region belongs to a single node
                owner: dict[int, int] = {}
                clash = False
                for node, off, _size in h.accesses:
                    region = off // rb
                    if owner.setdefault(region, node) != node:
                        clash = True
                        break
                if not clash and len(set(owner.values())) >= 2:
                    return regions
            regions *= 2
        return None
