"""Execution statistics.

The paper's Fig. 8 breaks per-thread time into execute / page fault /
syscall; every guest thread carries a :class:`ThreadStats` filled in by its
node's core scheduler, and :class:`RunStats` aggregates them with
protocol-level counters for the experiment harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ThreadStats",
    "ProtocolStats",
    "ShardLoadStats",
    "ServiceStats",
    "DbtStats",
    "NodeFailure",
    "FailureStats",
    "RunStats",
]


@dataclass
class ThreadStats:
    tid: int = 0
    node: int = -1
    execute_ns: int = 0  # translated/interpreted guest execution
    translate_ns: int = 0  # included in execute for Fig. 8, tracked separately
    pagefault_ns: int = 0  # trap + coherence wait
    syscall_ns: int = 0  # trap + delegation round trip
    blocked_ns: int = 0  # parked in futex_wait
    runnable_wait_ns: int = 0  # sitting in the run queue (core contention)
    created_ns: int = 0
    finished_ns: Optional[int] = None
    quanta: int = 0
    page_faults: int = 0
    syscalls: int = 0

    @property
    def busy_ns(self) -> int:
        return self.execute_ns + self.translate_ns + self.pagefault_ns + self.syscall_ns

    @property
    def lifetime_ns(self) -> Optional[int]:
        if self.finished_ns is None:
            return None
        return self.finished_ns - self.created_ns


@dataclass
class ProtocolStats:
    page_requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    invalidations: int = 0
    downgrades: int = 0
    pages_forwarded: int = 0
    forward_hits: int = 0  # page already local (S) thanks to a push
    splits: int = 0
    merges: int = 0
    split_retry_replies: int = 0
    delegated_syscalls: int = 0
    local_syscalls: int = 0
    remote_thread_spawns: int = 0
    thread_migrations: int = 0
    futex_waits: int = 0
    futex_wakes: int = 0
    #: Frames that reached a master manager after exit_group finished the
    #: run.  They are dropped on purpose (the guest is gone), but invisibly
    #: dropping them made post-exit races undiagnosable.
    post_finish_drops: int = 0
    #: Degradation counters (docs/PROTOCOL.md "Failure domains"), all zero
    #: unless a node failed mid-run: RPCs to a confirmed-dead peer that a
    #: tolerant service skipped instead of aborting on, futex wakes whose
    #: sleeper died with its node, and thread spawns re-placed after their
    #: original target failed mid-clone.
    dead_peer_skips: int = 0
    lost_wakes: int = 0
    spawn_failovers: int = 0
    #: Write grants to a node that already held the page Shared — the
    #: S→M "upgrade round trip" MESI exists to eliminate.  Counted under
    #: every protocol (pure telemetry, no timing effect), so experiments
    #: can report how many of them a protocol removed.
    write_upgrades: int = 0
    #: Coherence-protocol telemetry (docs/PROTOCOL.md "Coherence
    #: protocols"); all zero under the default MSI protocol.
    exclusive_grants: int = 0  # read faults granted Exclusive-clean (MESI)
    silent_upgrades: int = 0  # node-local E→M upgrades (round trips saved)
    upgrade_acks: int = 0  # payload-free S→M grants (no 4 KiB payload)
    home_migrations: int = 0  # page homes migrated to a dominant writer
    home_local_hits: int = 0  # requests fast-served at a migrated home
    home_remote_misses: int = 0  # other-node requests paying the extra hop
    adaptive_reclassifications: int = 0  # per-page protocol switches
    #: Checkpoint/restore telemetry (docs/PROTOCOL.md "Checkpoint/restore");
    #: all zero unless DQEMUConfig.checkpoint_interval_ns is set.
    checkpoints_taken: int = 0  # snapshots captured at quantum boundaries
    checkpoints_stored: int = 0  # snapshots the master landed and kept
    checkpoints_discarded: int = 0  # frames from already-dead senders dropped
    checkpoint_pages_flushed: int = 0  # Modified pages folded into home copies
    checkpoint_stale_pages: int = 0  # flushed pages skipped (ownership moved)
    checkpoint_bytes: int = 0  # wire bytes spent shipping snapshots
    #: Drain-driven load rebalancing: hottest-thread evacuations triggered by
    #: a queue-wait stint crossing rebalance_threshold_ns.
    rebalance_evacuations: int = 0
    #: Active-liveness telemetry (docs/PROTOCOL.md "Failure detection");
    #: all zero unless DQEMUConfig.heartbeat_interval_ns is set.
    heartbeats_sent: int = 0  # lease renewals slaves put on the wire
    heartbeats_received: int = 0  # renewals the master's monitor landed
    heartbeats_ignored: int = 0  # posthumous renewals from latched-failed nodes
    heartbeat_lease_expiries: int = 0  # monitor checks that found an expired lease
    heartbeat_bytes: int = 0  # wire bytes spent on renewals


@dataclass
class ShardLoadStats:
    """One master shard's slice of a service's load (see ``ServiceStats``)."""

    shard: int = 0
    requests: int = 0
    busy_ns: int = 0
    queue_wait_ns: int = 0


@dataclass
class ServiceStats:
    """Per-service load attribution (one entry per runtime service).

    ``requests`` counts units of work the service performed (dispatched
    messages for wire-facing services; wakes/parks for the futex service,
    push batches for the forwarder).  ``busy_ns`` is virtual time spent
    inside the service's handlers — for master services this is a direct
    read on how much of the master-link budget each subsystem consumes.
    Fire-and-forget work with no handler span (futex wake delivery) bills
    its frames' wire-serialization time instead, so the attribution stays
    honest without touching the clock.  Slave-side services aggregate
    across nodes under one name.

    ``queue_wait_ns`` is the time served frames sat in the handling
    process's mailbox between arrival and dispatch start — the head-of-line
    blocking the sharded master exists to attack.  ``shards`` breaks
    requests/busy/queue-wait down per master shard for dispatched work
    (empty for node-side services, which are not sharded).

    ``duplicates`` counts replayed frames the dispatcher dropped before
    they reached the handler (nonzero only under duplication faults or a
    retransmitting fabric).

    The reliability counters are filled by the RPC retransmit layer
    (docs/PROTOCOL.md "Reliable delivery") for requests *issued* by this
    service: ``retransmits`` clones re-sent after a missed timeout window,
    ``recoveries`` retried calls that did complete, and
    ``recovery_wait_ns`` the total first-send-to-reply span of those
    recoveries (mean recovery latency = recovery_wait_ns / recoveries).
    All zero unless ``DQEMUConfig.rpc_max_retries`` is armed.

    The failure-domain counters (docs/PROTOCOL.md "Failure domains") are
    filled only when a node crashed or drained mid-run: threads this
    service evacuated to healthy peers, threads it had to declare lost
    (context unrecoverable after a hard crash), and directory pages it
    re-homed / wrote off when their holder died.

    The coherence-protocol counters (docs/PROTOCOL.md "Coherence
    protocols") follow the same conditional-column rule: the master
    coherence service fills ``exclusive_grants`` / ``home_migrations`` /
    ``reclassifications``, the node-side mirror fills ``silent_upgrades``
    (E→M flips that cost no master round trip).  All zero — and absent
    from rendered tables — under the default MSI protocol.
    """

    name: str = ""
    requests: int = 0
    busy_ns: int = 0
    queue_wait_ns: int = 0
    duplicates: int = 0
    retransmits: int = 0
    recoveries: int = 0
    recovery_wait_ns: int = 0
    evacuations: int = 0
    restores: int = 0
    lost_threads: int = 0
    rehomed_pages: int = 0
    lost_pages: int = 0
    exclusive_grants: int = 0
    silent_upgrades: int = 0
    home_migrations: int = 0
    reclassifications: int = 0
    shards: dict[int, ShardLoadStats] = field(default_factory=dict)

    def shard(self, k: int) -> ShardLoadStats:
        if k not in self.shards:
            self.shards[k] = ShardLoadStats(shard=k)
        return self.shards[k]


@dataclass
class DbtStats:
    """Hot-path telemetry aggregated across every node's DBT engine
    (docs/PROTOCOL.md "DBT hot path").

    ``lookups``/``misses`` count slow-path code-cache dispatches;
    ``chain_follows`` dispatches that rode a direct block-to-block
    reference instead.  Lookups per executed instruction (divide by
    ``RunStats.insns_executed``) is the dispatch-overhead figure the hot
    path exists to shrink.  The ``*_saved_cycles`` counters are the
    virtual cycles the cheaper superblock CPI and fused idioms avoided
    relative to plain per-block execution.
    """

    lookups: int = 0
    misses: int = 0
    chain_follows: int = 0
    translations: int = 0
    invalidations: int = 0
    unchains: int = 0
    superblocks_formed: int = 0
    execute_cycles: float = 0.0
    translate_cycles: float = 0.0
    superblock_saved_cycles: float = 0.0
    fusion_saved_cycles: float = 0.0
    fusion_hits: dict[str, int] = field(default_factory=dict)

    @property
    def dispatches(self) -> int:
        return self.lookups + self.chain_follows

    @property
    def lookup_hit_rate(self) -> float:
        return 1.0 - self.misses / self.lookups if self.lookups else 0.0

    @property
    def total_fusion_hits(self) -> int:
        return sum(self.fusion_hits.values())


@dataclass
class NodeFailure:
    """One failed (crashed or drained) node's recovery record."""

    node: int
    kind: str  # "crash" | "drain"
    detected_ns: int
    recovered_ns: Optional[int] = None
    #: (tid, target node) for each live thread re-homed to a healthy peer.
    evacuated: list[tuple[int, int]] = field(default_factory=list)
    #: (tid, target node, rollback_ns) for each running thread rolled back
    #: to a live checkpoint and re-placed; rollback_ns is the virtual time
    #: between the snapshot and the crash being detected — re-executed work.
    restored: list[tuple[int, int, int]] = field(default_factory=list)
    #: (tid, reason) for each thread whose context died with the node.
    lost: list[tuple[int, str]] = field(default_factory=list)
    rehomed_pages: int = 0  # Shared copies the directory promoted elsewhere
    lost_pages: int = 0  # Modified pages that existed only on the dead node
    #: Which failure evidence fired first for a crash: "rpc-timeout" (a
    #: retry budget ran out against the node) or "lease-expiry" (the
    #: heartbeat monitor saw a whole lease of silence).  Empty for drains,
    #: which are ordered rather than detected.
    evidence: str = ""

    @property
    def recovery_ns(self) -> Optional[int]:
        """Detection-to-recovered latency, None while recovery is pending."""
        if self.recovered_ns is None:
            return None
        return self.recovered_ns - self.detected_ns


@dataclass
class FailureStats:
    """Structured failure accounting for a run (``RunResult.failures``).

    One :class:`NodeFailure` per failed node, plus aggregates the
    experiment tables read directly.  Only constructed when the failure
    domain is armed (``DQEMUConfig.evacuation_enabled`` or a drain plan);
    ``None`` on every other run.
    """

    nodes: dict[int, NodeFailure] = field(default_factory=dict)

    @property
    def evacuated_threads(self) -> int:
        return sum(len(f.evacuated) for f in self.nodes.values())

    @property
    def restored_threads(self) -> int:
        return sum(len(f.restored) for f in self.nodes.values())

    @property
    def lost_threads(self) -> int:
        return sum(len(f.lost) for f in self.nodes.values())

    @property
    def mean_rollback_ns(self) -> Optional[float]:
        """Mean re-executed span across restored threads (None if none)."""
        rollbacks = [
            rb for f in self.nodes.values() for _, _, rb in f.restored
        ]
        if not rollbacks:
            return None
        return sum(rollbacks) / len(rollbacks)

    @property
    def rehomed_pages(self) -> int:
        return sum(f.rehomed_pages for f in self.nodes.values())

    @property
    def lost_pages(self) -> int:
        return sum(f.lost_pages for f in self.nodes.values())

    def detected_by(self, evidence: str) -> int:
        """Crashes whose first-firing failure evidence was ``evidence``
        ("rpc-timeout" or "lease-expiry")."""
        return sum(
            1 for f in self.nodes.values()
            if f.kind == "crash" and f.evidence == evidence
        )

    @property
    def lease_detections(self) -> int:
        """Crashes the heartbeat monitor detected before any RPC did."""
        return self.detected_by("lease-expiry")

    @property
    def rpc_detections(self) -> int:
        """Crashes an exhausted RPC retry budget detected first."""
        return self.detected_by("rpc-timeout")

    def describe(self) -> str:
        if not self.nodes:
            return "no node failures"
        return "; ".join(
            f"n{node} {f.kind}"
            + (f" ({f.evidence})" if f.evidence else "")
            + f": {len(f.evacuated)} evacuated, "
            + (f"{len(f.restored)} restored, " if f.restored else "")
            + f"{len(f.lost)} lost, {f.rehomed_pages} pages re-homed, "
            f"{f.lost_pages} pages lost"
            for node, f in sorted(self.nodes.items())
        )


@dataclass
class RunStats:
    threads: dict[int, ThreadStats] = field(default_factory=dict)
    protocol: ProtocolStats = field(default_factory=ProtocolStats)
    services: dict[str, ServiceStats] = field(default_factory=dict)
    wall_ns: int = 0  # virtual time from program start to exit
    insns_executed: int = 0
    insns_translated: int = 0
    dbt: DbtStats = field(default_factory=DbtStats)
    #: Job the counters belong to; 0 for single-job runs.  Every admitted
    #: job gets its own RunStats, so per-tenant attribution is structural
    #: (separate objects), not post-hoc filtering.
    tenant: int = 0

    def thread(self, tid: int) -> ThreadStats:
        if tid not in self.threads:
            self.threads[tid] = ThreadStats(tid=tid)
        return self.threads[tid]

    def service(self, name: str) -> ServiceStats:
        if name not in self.services:
            self.services[name] = ServiceStats(name=name)
        return self.services[name]

    # -- aggregations used by the Fig. 8 harness --------------------------------

    def totals(self) -> dict[str, int]:
        keys = ("execute_ns", "translate_ns", "pagefault_ns", "syscall_ns", "blocked_ns")
        out = {k: 0 for k in keys}
        for ts in self.threads.values():
            for k in keys:
                out[k] += getattr(ts, k)
        return out

    def mean_breakdown(self, tids: Optional[list[int]] = None) -> dict[str, float]:
        """Average per-thread breakdown (Fig. 8 bars), in ns."""
        stats = [
            ts for ts in self.threads.values() if tids is None or ts.tid in tids
        ]
        if not stats:
            return {"execute_ns": 0.0, "pagefault_ns": 0.0, "syscall_ns": 0.0}
        n = len(stats)
        return {
            "execute_ns": sum(t.execute_ns + t.translate_ns for t in stats) / n,
            "pagefault_ns": sum(t.pagefault_ns for t in stats) / n,
            "syscall_ns": sum(t.syscall_ns for t in stats) / n,
        }
