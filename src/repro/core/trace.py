"""Protocol tracing.

Enable with ``Cluster(..., trace=True)`` (or pass a :class:`Tracer`): every
coherence transaction, delegated syscall, thread lifecycle event and
optimization action is recorded with its virtual timestamp.  The trace is
what you want when a DSM protocol misbehaves — `result.trace.render()`
gives a readable timeline, and the query helpers slice it by page, node or
category.

Categories:

======== =====================================================
page     page requests/grants/invalidations/write-backs
push     data forwarding (§5.2)
split    page splitting / merging / blacklisting (§5.1)
syscall  delegated and local syscalls
thread   create/park/wake/exit
run      program-level events (start, shutdown)
======== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceEvent:
    ts_ns: int
    category: str
    node: int
    what: str
    page: Optional[int] = None
    tid: Optional[int] = None

    def render(self) -> str:
        parts = [f"{self.ts_ns / 1e6:12.6f}ms", f"[{self.category:<7}]", f"n{self.node}"]
        if self.page is not None:
            parts.append(f"page={self.page:#x}")
        if self.tid is not None:
            parts.append(f"tid={self.tid}")
        parts.append(self.what)
        return " ".join(parts)


class Tracer:
    """Bounded in-memory event log with query helpers."""

    def __init__(self, *, enabled: bool = True, capacity: int = 200_000):
        self.enabled = enabled
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._clock: Callable[[], int] = lambda: 0

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    # -- recording ----------------------------------------------------------

    def emit(self, category: str, node: int, what: str, *, page: Optional[int] = None,
             tid: Optional[int] = None) -> None:
        if not self.enabled:
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(self._clock(), category, node, what, page=page, tid=tid)
        )

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def filter(self, *, category: Optional[str] = None, page: Optional[int] = None,
               node: Optional[int] = None, tid: Optional[int] = None) -> list[TraceEvent]:
        out = []
        for ev in self.events:
            if category is not None and ev.category != category:
                continue
            if page is not None and ev.page != page:
                continue
            if node is not None and ev.node != node:
                continue
            if tid is not None and ev.tid != tid:
                continue
            out.append(ev)
        return out

    def pages_touched(self) -> set[int]:
        return {ev.page for ev in self.events if ev.page is not None}

    def counts_by_category(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.category] = out.get(ev.category, 0) + 1
        return out

    def render(self, events: Optional[Iterable[TraceEvent]] = None,
               limit: int = 200) -> str:
        rows = list(self.events if events is None else events)[:limit]
        body = "\n".join(ev.render() for ev in rows)
        footer = ""
        total = len(self.events if events is None else list(events))
        if total > limit:
            footer = f"\n... ({total - limit} more events)"
        if self.dropped:
            footer += f"\n... ({self.dropped} events dropped at capacity)"
        return body + footer


class _NullTracer(Tracer):
    """Zero-overhead tracer used when tracing is off."""

    def __init__(self) -> None:
        super().__init__(enabled=False, capacity=0)

    def emit(self, *args, **kwargs) -> None:  # pragma: no cover - trivial
        return


NULL_TRACER = _NullTracer()
