"""QEMU-like DBT engine: frontend → TCG IR → generated host code + code cache."""

from repro.dbt.backend import Backend, TranslationBlock
from repro.dbt.codecache import CacheStats, CodeCache
from repro.dbt.cpu import CPUState
from repro.dbt.engine import EngineTiming, ExecutionEngine
from repro.dbt.frontend import BlockIR, Frontend
from repro.dbt.interp import Interpreter
from repro.dbt.stop import RC_BREAK, RC_NEXT, RC_SYSCALL, StopEvent, StopKind

__all__ = [
    "Backend",
    "BlockIR",
    "CPUState",
    "CacheStats",
    "CodeCache",
    "EngineTiming",
    "ExecutionEngine",
    "Frontend",
    "Interpreter",
    "RC_BREAK",
    "RC_NEXT",
    "RC_SYSCALL",
    "StopEvent",
    "StopKind",
    "TranslationBlock",
]
