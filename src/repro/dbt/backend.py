"""DBT backend: compile TCG micro-ops into host code.

The "host" here is the CPython VM: each translation block becomes one
generated Python function, built as source text and compiled with
``compile()`` — the same generate-once/execute-many structure as a JIT
emitting machine code, with the translation cost paid once per block.

Precise guest state: guest registers are committed as each guest instruction
completes, and before any instruction that can fault the generated code
records its pc and the count of completed instructions (``cpu.block_ic``).
A :class:`~repro.mem.api.PageStall` raised by the memory system therefore
propagates with the CPU stopped exactly at the faulting instruction, which
DQEMU's coherence machinery requires (§4.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.dbt import fpu
from repro.dbt import runtime as rt
from repro.dbt.frontend import BlockIR
from repro.dbt.tcg import InstrIR, TCGOp

__all__ = ["TranslationBlock", "Backend"]

M64 = rt.M64

#: Globals visible to generated code.
_CODEGEN_GLOBALS = {
    "M": M64,
    "s64": rt.s64,
    "sdiv64": rt.sdiv64,
    "udiv64": rt.udiv64,
    "srem64": rt.srem64,
    "urem64": rt.urem64,
    "mulh64": rt.mulh64,
    "mulhu64": rt.mulhu64,
    "b2f": fpu.b2f,
    "f2b": fpu.f2b,
    "fdiv_h": fpu.fdiv,
    "fsqrt_h": fpu.fsqrt,
    "fmin_h": fpu.fmin,
    "fmax_h": fpu.fmax,
    "fcvt_l_d": fpu.fcvt_l_d,
    "fcvt_d_l": fpu.fcvt_d_l,
}

_COND_EXPR = {
    "eq": "{a} == {b}",
    "ne": "{a} != {b}",
    "lt": "s64({a}) < s64({b})",
    "ge": "s64({a}) >= s64({b})",
    "ltu": "{a} < {b}",
    "geu": "{a} >= {b}",
}

_FBIN_EXPR = {
    "fadd": "f2b(b2f({a}) + b2f({b}))",
    "fsub": "f2b(b2f({a}) - b2f({b}))",
    "fmul": "f2b(b2f({a}) * b2f({b}))",
    "fdiv": "f2b(fdiv_h(b2f({a}), b2f({b})))",
    "fmin": "f2b(fmin_h(b2f({a}), b2f({b})))",
    "fmax": "f2b(fmax_h(b2f({a}), b2f({b})))",
}

_FSET_EXPR = {
    "feq": "1 if b2f({a}) == b2f({b}) else 0",
    "flt": "1 if b2f({a}) < b2f({b}) else 0",
    "fle": "1 if b2f({a}) <= b2f({b}) else 0",
}

_BIN_EXPR = {
    "add": "({a} + {b}) & M",
    "sub": "({a} - {b}) & M",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "shl": "({a} << ({b} & 63)) & M",
    "shr": "{a} >> ({b} & 63)",
    "sar": "(s64({a}) >> ({b} & 63)) & M",
    "mul": "({a} * {b}) & M",
    "mulh": "mulh64({a}, {b})",
    "mulhu": "mulhu64({a}, {b})",
    "div": "sdiv64({a}, {b})",
    "divu": "udiv64({a}, {b})",
    "rem": "srem64({a}, {b})",
    "remu": "urem64({a}, {b})",
}


@dataclass
class TranslationBlock:
    """A compiled block: guest extent, host function, and the source kept for
    diagnostics (``/proc``-style introspection and tests)."""

    pc: int
    n_insns: int
    end_pc: int  # first byte past the last guest instruction
    fn: Callable
    source: str
    exec_count: int = 0


class Backend:
    """TCG-to-Python compiler."""

    _ids = itertools.count()

    def compile(self, block: BlockIR) -> TranslationBlock:
        lines = self._emit(block)
        name = f"tb_{block.pc:x}_{next(self._ids)}"
        src = f"def {name}(cpu, mem):\n" + "\n".join("    " + ln for ln in lines) + "\n"
        ns: dict = {}
        exec(compile(src, f"<tb@{block.pc:#x}>", "exec"), dict(_CODEGEN_GLOBALS), ns)
        return TranslationBlock(
            pc=block.pc,
            n_insns=len(block.instrs),
            end_pc=block.next_pc,
            fn=ns[name],
            source=src,
        )

    # -- emission -------------------------------------------------------------

    def _emit(self, block: BlockIR) -> list[str]:
        lines = ["R = cpu.regs"]
        n = len(block.instrs)
        terminated = False
        for k, ir in enumerate(block.instrs):
            lines.append(f"# {ir.pc:#x}: {ir.mnemonic}")
            if ir.can_fault:
                # Precise exception point: pc + completed-instruction count.
                lines.append(f"cpu.pc = {ir.pc}")
                lines.append(f"cpu.block_ic = {k}")
            for op in ir.ops:
                stmt = self._emit_op(op, ir, k, n)
                lines.extend(stmt)
                if op.name in ("brcond", "jmp", "jmp_ind", "exit"):
                    terminated = True
        if not terminated:
            lines.append(f"cpu.block_ic = {n}")
            lines.append(f"cpu.pc = {block.next_pc}")
            lines.append("return 0")
        return lines

    def _ref(self, operand) -> str:
        kind, v = operand
        if kind == "g":
            return "0" if v == 0 else f"R[{v}]"
        if kind == "t":
            return f"t{v}"
        return repr(v & M64)

    def _dst(self, operand) -> str:
        kind, v = operand
        if kind == "g":
            return "_" if v == 0 else f"R[{v}]"
        return f"t{v}"

    def _emit_op(self, op: TCGOp, ir: InstrIR, k: int, n: int) -> list[str]:
        name = op.name
        if name in _BIN_EXPR:
            d, a, b = op.args
            return [f"{self._dst(d)} = " + _BIN_EXPR[name].format(a=self._ref(a), b=self._ref(b))]
        if name == "mov":
            d, s = op.args
            return [f"{self._dst(d)} = {self._ref(s)}"]
        if name == "setcond":
            d, a, b, cond = op.args
            expr = _COND_EXPR[cond].format(a=self._ref(a), b=self._ref(b))
            return [f"{self._dst(d)} = 1 if {expr} else 0"]
        if name == "fbin":
            d, a, b, f = op.args
            return [f"{self._dst(d)} = " + _FBIN_EXPR[f].format(a=self._ref(a), b=self._ref(b))]
        if name == "fun":
            d, a, f = op.args
            if f == "fsqrt":
                return [f"{self._dst(d)} = f2b(fsqrt_h(b2f({self._ref(a)})))"]
            return [f"{self._dst(d)} = {f}({self._ref(a)})"]
        if name == "fsetcond":
            d, a, b, cond = op.args
            return [f"{self._dst(d)} = " + _FSET_EXPR[cond].format(a=self._ref(a), b=self._ref(b))]
        if name == "ld":
            d, addr, size, signed = op.args
            return [f"{self._dst(d)} = mem.load({self._ref(addr)}, {size}, {signed})"]
        if name == "st":
            val, addr, size = op.args
            return [f"mem.store({self._ref(addr)}, {size}, {self._ref(val)})"]
        if name == "lr":
            d, addr = op.args
            return [f"{self._dst(d)} = mem.load_reserved(cpu, {self._ref(addr)})"]
        if name == "sc":
            d, val, addr = op.args
            return [
                f"{self._dst(d)} = 0 if mem.store_conditional(cpu, {self._ref(addr)}, {self._ref(val)}) else 1"
            ]
        if name == "cas":
            d, exp, val, addr = op.args
            return [
                f"{self._dst(d)} = mem.atomic_cas(cpu, {self._ref(addr)}, {self._ref(exp)}, {self._ref(val)})"
            ]
        if name in ("amoadd", "amoswap"):
            d, val, addr = op.args
            fn = "atomic_add" if name == "amoadd" else "atomic_swap"
            return [f"{self._dst(d)} = mem.{fn}(cpu, {self._ref(addr)}, {self._ref(val)})"]
        if name == "hint":
            (value,) = op.args
            return [f"cpu.hint_group = {value}"]
        if name == "hint_reg":
            (src,) = op.args
            return [f"cpu.hint_group = {self._ref(src)}"]
        if name == "fence":
            return ["pass  # fence: sequential across nodes by construction"]
        if name == "brcond":
            a, b, cond, tgt, fall = op.args
            expr = _COND_EXPR[cond].format(a=self._ref(a), b=self._ref(b))
            return [
                f"cpu.block_ic = {n}",
                f"cpu.pc = {tgt} if {expr} else {fall}",
                "return 0",
            ]
        if name == "jmp":
            (tgt,) = op.args
            return [f"cpu.block_ic = {n}", f"cpu.pc = {tgt}", "return 0"]
        if name == "jmp_ind":
            (addr,) = op.args
            return [f"cpu.block_ic = {n}", f"cpu.pc = {self._ref(addr)}", "return 0"]
        if name == "exit":
            (rc,) = op.args
            next_pc = ir.pc + 4
            return [f"cpu.block_ic = {k + 1}", f"cpu.pc = {next_pc}", f"return {rc}"]
        raise NotImplementedError(f"backend cannot emit {name}")  # pragma: no cover
