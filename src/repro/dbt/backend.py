"""DBT backend: compile TCG micro-ops into host code.

The "host" here is the CPython VM: each translation block becomes one
generated Python function, built as source text and compiled with
``compile()`` — the same generate-once/execute-many structure as a JIT
emitting machine code, with the translation cost paid once per block.

Precise guest state: guest registers are committed as each guest instruction
completes, and before any instruction that can fault the generated code
records its pc and the count of completed instructions (``cpu.block_ic``).
A :class:`~repro.mem.api.PageStall` raised by the memory system therefore
propagates with the CPU stopped exactly at the faulting instruction, which
DQEMU's coherence machinery requires (§4.2).

Hot-path tier.  Beyond plain per-block compilation the backend supports:

* **successor metadata** — every block records its statically-known
  successor pcs (``succ_pcs``) so the engine can chain blocks and skip the
  cache lookup on the fall-through/branch fast path;
* **trace superblocks** (:meth:`Backend.compile_superblock`) — a hot chain
  of blocks stitched into one generated function with a single entry and
  interior side exits, so hot loops pay one dispatch per trace instead of
  one per block;
* **idiom fusion** (:func:`find_fusions`) — a peephole over adjacent guest
  instructions that collapses recurring GA64 idioms (compare+branch,
  load+op, the guest-libc atomic spin idiom) into single host operations,
  each fused pair billed as one instruction by the engine.

Fusion never changes architectural state: every guest register write still
happens, and fused pairs are only formed when no precise-exception point
can observe the intermediate value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dbt import fpu
from repro.dbt import runtime as rt
from repro.dbt.frontend import BlockIR
from repro.dbt.tcg import InstrIR, TCGOp
from repro.mem.layout import PAGE_SIZE

__all__ = ["TranslationBlock", "Backend", "find_fusions"]

M64 = rt.M64

#: Globals visible to generated code.
_CODEGEN_GLOBALS = {
    "M": M64,
    "s64": rt.s64,
    "sdiv64": rt.sdiv64,
    "udiv64": rt.udiv64,
    "srem64": rt.srem64,
    "urem64": rt.urem64,
    "mulh64": rt.mulh64,
    "mulhu64": rt.mulhu64,
    "b2f": fpu.b2f,
    "f2b": fpu.f2b,
    "fdiv_h": fpu.fdiv,
    "fsqrt_h": fpu.fsqrt,
    "fmin_h": fpu.fmin,
    "fmax_h": fpu.fmax,
    "fcvt_l_d": fpu.fcvt_l_d,
    "fcvt_d_l": fpu.fcvt_d_l,
}

_COND_EXPR = {
    "eq": "{a} == {b}",
    "ne": "{a} != {b}",
    "lt": "s64({a}) < s64({b})",
    "ge": "s64({a}) >= s64({b})",
    "ltu": "{a} < {b}",
    "geu": "{a} >= {b}",
}

_FBIN_EXPR = {
    "fadd": "f2b(b2f({a}) + b2f({b}))",
    "fsub": "f2b(b2f({a}) - b2f({b}))",
    "fmul": "f2b(b2f({a}) * b2f({b}))",
    "fdiv": "f2b(fdiv_h(b2f({a}), b2f({b})))",
    "fmin": "f2b(fmin_h(b2f({a}), b2f({b})))",
    "fmax": "f2b(fmax_h(b2f({a}), b2f({b})))",
}

_FSET_EXPR = {
    "feq": "1 if b2f({a}) == b2f({b}) else 0",
    "flt": "1 if b2f({a}) < b2f({b}) else 0",
    "fle": "1 if b2f({a}) <= b2f({b}) else 0",
}

_BIN_EXPR = {
    "add": "({a} + {b}) & M",
    "sub": "({a} - {b}) & M",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "shl": "({a} << ({b} & 63)) & M",
    "shr": "{a} >> ({b} & 63)",
    "sar": "(s64({a}) >> ({b} & 63)) & M",
    "mul": "({a} * {b}) & M",
    "mulh": "mulh64({a}, {b})",
    "mulhu": "mulhu64({a}, {b})",
    "div": "sdiv64({a}, {b})",
    "divu": "udiv64({a}, {b})",
    "rem": "srem64({a}, {b})",
    "remu": "urem64({a}, {b})",
}

_TERMINALS = ("brcond", "jmp", "jmp_ind", "exit")


@dataclass(eq=False)
class TranslationBlock:
    """A compiled block: guest extent, host function, and the source kept for
    diagnostics (``/proc``-style introspection and tests).

    ``eq=False`` keeps object-identity hashing so blocks can sit in the
    chain-backlink sets the code cache maintains for unchaining.
    """

    pc: int
    n_insns: int
    end_pc: int  # first byte past the last guest instruction
    fn: Callable
    source: str
    exec_count: int = 0
    #: Statically-known successor entry pcs (empty for indirect jumps).
    succ_pcs: tuple[int, ...] = ()
    #: Guest pages this block's code spans (union over members for
    #: superblocks) — the invalidation index key set.
    pages: tuple[int, ...] = ()
    #: Fused idiom groups: ``(end_index, pattern)`` where ``end_index`` is
    #: the cumulative index of the pair's second instruction.  A group whose
    #: second instruction completed is billed as one host operation.
    fused: tuple[tuple[int, str], ...] = ()
    #: Unfused block IR, kept so superblock formation can re-stitch it.
    ir: Optional[BlockIR] = None
    is_superblock: bool = False
    member_pcs: tuple[int, ...] = ()
    #: Latched when trace formation from this head failed; stops retrying.
    no_promote: bool = False
    #: Direct successor references (pc → block), filled by the code cache.
    chain: dict[int, "TranslationBlock"] = field(default_factory=dict)
    #: Blocks holding a chain reference to this one (for unchaining).
    chained_from: "set[TranslationBlock]" = field(default_factory=set)
    #: Dynamic successor execution counts, recorded by the engine and used
    #: to pick the hottest path when growing a trace.
    edges: dict[int, int] = field(default_factory=dict)


def _page_span(pc: int, end_pc: int) -> tuple[int, ...]:
    return tuple(range(pc // PAGE_SIZE, max(end_pc - 1, pc) // PAGE_SIZE + 1))


def _successors(instrs: list[InstrIR], next_pc: int) -> tuple[int, ...]:
    """Static successor entry pcs of a block ending in ``instrs[-1]``."""
    last = instrs[-1].ops[-1] if instrs and instrs[-1].ops else None
    if last is None or last.name not in _TERMINALS:
        return (next_pc,)
    if last.name == "brcond":
        _a, _b, _cond, tgt, fall = last.args
        return (tgt,) if tgt == fall else (tgt, fall)
    if last.name == "jmp":
        return (last.args[0],)
    return ()  # jmp_ind / exit: target unknown or engine takes over


# -- idiom fusion -------------------------------------------------------------

_NEGATE_COND = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "ltu": "geu", "geu": "ltu"}
_ATOMIC_OPS = ("lr", "sc", "cas", "amoadd", "amoswap")


def _branch_on_zero(instr: InstrIR):
    """``(reg, taken_when_nonzero)`` if ``instr`` is beq/bne of a guest
    register against x0, else ``None``."""
    if not instr.ops or instr.ops[-1].name != "brcond":
        return None
    a, b, cond, _tgt, _fall = instr.ops[-1].args
    if cond not in ("eq", "ne"):
        return None
    for reg, zero in ((a, b), (b, a)):
        if zero == ("g", 0) and reg[0] == "g" and reg[1] != 0:
            return reg[1], cond == "ne"
    return None


def _try_fuse_cmp_branch(a: InstrIR, b: InstrIR) -> Optional[InstrIR]:
    """slt/sltu/slti/sltiu + beqz/bnez on its result → one direct brcond.

    The setcond still commits its register (architectural state preserved);
    the branch is rewritten to test the original operands, negating the
    condition for the beqz form.  Not applied when the setcond destination
    is also one of its sources — the rewritten branch would re-read a
    clobbered value.
    """
    if len(a.ops) != 1 or a.ops[0].name != "setcond":
        return None
    d, x, y, cond = a.ops[0].args
    if d[0] != "g" or d[1] == 0 or d in (x, y):
        return None
    bz = _branch_on_zero(b)
    if bz is None or bz[0] != d[1]:
        return None
    _a, _b, _c, tgt, fall = b.ops[-1].args
    newcond = cond if bz[1] else _NEGATE_COND[cond]
    return InstrIR(
        pc=b.pc,
        mnemonic=b.mnemonic,
        ops=[TCGOp("brcond", (x, y, newcond, tgt, fall))],
        can_fault=False,
    )


def _is_atomic_branch(a: InstrIR, b: InstrIR) -> bool:
    """lr/sc/cas/amo + beqz/bnez on its result — the guest-libc spin idiom
    (``rt_spin_lock``/``rt_mutex_lock`` retry loops)."""
    if len(a.ops) != 1 or a.ops[0].name not in _ATOMIC_OPS:
        return False
    d = a.ops[0].args[0]
    if d[0] != "g" or d[1] == 0:
        return False
    bz = _branch_on_zero(b)
    return bz is not None and bz[0] == d[1]


def _is_load_op(a: InstrIR, b: InstrIR) -> bool:
    """Plain load + integer op consuming the loaded register."""
    if len(a.ops) != 2 or a.ops[0].name != "add" or a.ops[1].name != "ld":
        return False
    d = a.ops[1].args[0]
    if d[0] != "g" or d[1] == 0:
        return False
    if len(b.ops) != 1 or b.can_fault:
        return False
    op2 = b.ops[0]
    if op2.name not in _BIN_EXPR and op2.name != "setcond":
        return False
    return d in op2.args[1:3]


def find_fusions(instrs: list[InstrIR]) -> tuple[list[InstrIR], list[tuple[int, str]]]:
    """Peephole over adjacent instruction pairs.

    Returns the (possibly rewritten) instruction list plus the fused
    ``(end_index, pattern)`` groups, non-overlapping and scanned left to
    right.  The instruction count is unchanged — fusion collapses host
    work, not architectural instructions.
    """
    out = list(instrs)
    groups: list[tuple[int, str]] = []
    k = 0
    while k < len(out) - 1:
        a, b = out[k], out[k + 1]
        fused_branch = _try_fuse_cmp_branch(a, b)
        if fused_branch is not None:
            out[k + 1] = fused_branch
            groups.append((k + 1, "cmp_branch"))
            k += 2
            continue
        if _is_atomic_branch(a, b):
            groups.append((k + 1, "atomic_branch"))
            k += 2
            continue
        if _is_load_op(a, b):
            groups.append((k + 1, "load_op"))
            k += 2
            continue
        k += 1
    return out, groups


class Backend:
    """TCG-to-Python compiler."""

    _ids = itertools.count()

    def compile(self, block: BlockIR, *, fusion: bool = False) -> TranslationBlock:
        instrs = block.instrs
        groups: list[tuple[int, str]] = []
        if fusion:
            instrs, groups = find_fusions(instrs)
        body, _terminated = self._emit_body(instrs, groups, 0, None, block.next_pc, set())
        lines = ["R = cpu.regs"] + body
        name = f"tb_{block.pc:x}_{next(self._ids)}"
        src = f"def {name}(cpu, mem):\n" + "\n".join("    " + ln for ln in lines) + "\n"
        ns: dict = {}
        exec(compile(src, f"<tb@{block.pc:#x}>", "exec"), dict(_CODEGEN_GLOBALS), ns)
        return TranslationBlock(
            pc=block.pc,
            n_insns=len(instrs),
            end_pc=block.next_pc,
            fn=ns[name],
            source=src,
            succ_pcs=_successors(instrs, block.next_pc),
            pages=_page_span(block.pc, block.next_pc),
            fused=tuple(groups),
            ir=block,
        )

    def compile_superblock(
        self, members: list[BlockIR], *, fusion: bool = False
    ) -> TranslationBlock:
        """Stitch a hot trace of blocks into one generated function.

        One entry (the head's pc); interior terminators that reach the next
        member fall through inside the function, every other outcome is a
        side exit that returns with guest state fully committed.  The same
        block may appear more than once (loop traces unroll themselves up
        to the trace-length cap).
        """
        lines = ["R = cpu.regs"]
        groups_all: list[tuple[int, str]] = []
        side_exits: set[int] = set()
        pages: set[int] = set()
        base = 0
        last = len(members) - 1
        tail_succs: tuple[int, ...] = ()
        for mi, block in enumerate(members):
            instrs = block.instrs
            groups: list[tuple[int, str]] = []
            if fusion:
                instrs, groups = find_fusions(instrs)
            groups_all.extend((base + end, pat) for end, pat in groups)
            pages.update(_page_span(block.pc, block.next_pc))
            next_entry = members[mi + 1].pc if mi < last else None
            lines.append(f"# member {mi}: block {block.pc:#x}")
            body, _terminated = self._emit_body(
                instrs, groups, base, next_entry, block.next_pc, side_exits
            )
            lines.extend(body)
            base += len(instrs)
            if mi == last:
                tail_succs = _successors(instrs, block.next_pc)
        head = members[0]
        name = f"sb_{head.pc:x}_{next(self._ids)}"
        src = f"def {name}(cpu, mem):\n" + "\n".join("    " + ln for ln in lines) + "\n"
        ns: dict = {}
        exec(compile(src, f"<sb@{head.pc:#x}>", "exec"), dict(_CODEGEN_GLOBALS), ns)
        return TranslationBlock(
            pc=head.pc,
            n_insns=base,
            end_pc=head.next_pc,
            fn=ns[name],
            source=src,
            succ_pcs=tuple(sorted(set(tail_succs) | side_exits)),
            pages=tuple(sorted(pages)),
            fused=tuple(groups_all),
            ir=None,
            is_superblock=True,
            member_pcs=tuple(b.pc for b in members),
        )

    # -- emission -------------------------------------------------------------

    def _emit_body(
        self,
        instrs: list[InstrIR],
        groups: list[tuple[int, str]],
        base: int,
        next_entry: Optional[int],
        next_pc: int,
        side_exits: set[int],
    ) -> tuple[list[str], bool]:
        """Emit ``instrs`` with cumulative instruction indices from ``base``.

        ``next_entry`` is the pc the enclosing superblock continues into
        (``None`` for a standalone block or the trace tail): terminators
        that reach it fall through to the member emitted next, anything
        else returns.  Off-trace targets are collected into ``side_exits``.
        """
        lines: list[str] = []
        end_ic = base + len(instrs)
        load_starts = {end - 1 for end, pat in groups if pat == "load_op"}
        skip: set[int] = set()
        terminated = False
        for j, ir in enumerate(instrs):
            if j in skip:
                continue
            k = base + j
            lines.append(f"# {ir.pc:#x}: {ir.mnemonic}")
            if ir.can_fault:
                # Precise exception point: pc + completed-instruction count.
                lines.append(f"cpu.pc = {ir.pc}")
                lines.append(f"cpu.block_ic = {k}")
            if j in load_starts:
                lines.extend(self._emit_load_op(ir, instrs[j + 1]))
                skip.add(j + 1)
                continue
            for op in ir.ops:
                if op.name in _TERMINALS:
                    lines.extend(
                        self._emit_terminal(op, ir, k, end_ic, next_entry, side_exits)
                    )
                    terminated = True
                else:
                    lines.extend(self._emit_simple(op))
        if not terminated and (next_entry is None or next_pc != next_entry):
            lines.append(f"cpu.block_ic = {end_ic}")
            lines.append(f"cpu.pc = {next_pc}")
            lines.append("return 0")
        return lines, terminated

    def _emit_load_op(self, ld_ir: InstrIR, op_ir: InstrIR) -> list[str]:
        """Fused load+op: one combined sequence, the consumer reading the
        loaded value from a host local instead of re-reading the register
        file.  The load still commits its register first, so a later fault
        observes precise state."""
        add_op, ld_op = ld_ir.ops
        d, addr, size, signed = ld_op.args
        lines = self._emit_simple(add_op)
        lines.append(f"_v = mem.load({self._ref(addr)}, {size}, {signed})")
        lines.append(f"{self._dst(d)} = _v")
        lines.append(f"# {op_ir.pc:#x}: {op_ir.mnemonic} (fused)")
        lines.extend(self._emit_simple(op_ir.ops[0], sub={d: "_v"}))
        return lines

    def _emit_terminal(
        self,
        op: TCGOp,
        ir: InstrIR,
        k: int,
        end_ic: int,
        next_entry: Optional[int],
        side_exits: set[int],
    ) -> list[str]:
        name = op.name
        if name == "brcond":
            a, b, cond, tgt, fall = op.args
            expr = _COND_EXPR[cond].format(a=self._ref(a), b=self._ref(b))
            lines = [
                f"cpu.block_ic = {end_ic}",
                f"cpu.pc = {tgt} if {expr} else {fall}",
            ]
            if next_entry is None:
                lines.append("return 0")
            else:
                side_exits.update(x for x in (tgt, fall) if x != next_entry)
                lines.append(f"if cpu.pc != {next_entry}:")
                lines.append("    return 0")
            return lines
        if name == "jmp":
            (tgt,) = op.args
            lines = [f"cpu.block_ic = {end_ic}", f"cpu.pc = {tgt}"]
            if next_entry is None or tgt != next_entry:
                if next_entry is not None:
                    side_exits.add(tgt)
                lines.append("return 0")
            return lines
        if name == "jmp_ind":
            (addr,) = op.args
            lines = [f"cpu.block_ic = {end_ic}", f"cpu.pc = {self._ref(addr)}"]
            if next_entry is None:
                lines.append("return 0")
            else:
                lines.append(f"if cpu.pc != {next_entry}:")
                lines.append("    return 0")
            return lines
        # exit: ecall/ebreak hand control to the engine unconditionally.
        (rc,) = op.args
        return [f"cpu.block_ic = {k + 1}", f"cpu.pc = {ir.pc + 4}", f"return {rc}"]

    def _ref(self, operand, sub: Optional[dict] = None) -> str:
        if sub is not None and operand in sub:
            return sub[operand]
        kind, v = operand
        if kind == "g":
            return "0" if v == 0 else f"R[{v}]"
        if kind == "t":
            return f"t{v}"
        return repr(v & M64)

    def _dst(self, operand) -> str:
        kind, v = operand
        if kind == "g":
            return "_" if v == 0 else f"R[{v}]"
        return f"t{v}"

    def _emit_simple(self, op: TCGOp, sub: Optional[dict] = None) -> list[str]:
        name = op.name
        if name in _BIN_EXPR:
            d, a, b = op.args
            return [
                f"{self._dst(d)} = "
                + _BIN_EXPR[name].format(a=self._ref(a, sub), b=self._ref(b, sub))
            ]
        if name == "mov":
            d, s = op.args
            return [f"{self._dst(d)} = {self._ref(s, sub)}"]
        if name == "setcond":
            d, a, b, cond = op.args
            expr = _COND_EXPR[cond].format(a=self._ref(a, sub), b=self._ref(b, sub))
            return [f"{self._dst(d)} = 1 if {expr} else 0"]
        if name == "fbin":
            d, a, b, f = op.args
            return [f"{self._dst(d)} = " + _FBIN_EXPR[f].format(a=self._ref(a), b=self._ref(b))]
        if name == "fun":
            d, a, f = op.args
            if f == "fsqrt":
                return [f"{self._dst(d)} = f2b(fsqrt_h(b2f({self._ref(a)})))"]
            return [f"{self._dst(d)} = {f}({self._ref(a)})"]
        if name == "fsetcond":
            d, a, b, cond = op.args
            return [f"{self._dst(d)} = " + _FSET_EXPR[cond].format(a=self._ref(a), b=self._ref(b))]
        if name == "ld":
            d, addr, size, signed = op.args
            return [f"{self._dst(d)} = mem.load({self._ref(addr)}, {size}, {signed})"]
        if name == "st":
            val, addr, size = op.args
            return [f"mem.store({self._ref(addr)}, {size}, {self._ref(val)})"]
        if name == "lr":
            d, addr = op.args
            return [f"{self._dst(d)} = mem.load_reserved(cpu, {self._ref(addr)})"]
        if name == "sc":
            d, val, addr = op.args
            return [
                f"{self._dst(d)} = 0 if mem.store_conditional(cpu, {self._ref(addr)}, {self._ref(val)}) else 1"
            ]
        if name == "cas":
            d, exp, val, addr = op.args
            return [
                f"{self._dst(d)} = mem.atomic_cas(cpu, {self._ref(addr)}, {self._ref(exp)}, {self._ref(val)})"
            ]
        if name in ("amoadd", "amoswap"):
            d, val, addr = op.args
            fn = "atomic_add" if name == "amoadd" else "atomic_swap"
            return [f"{self._dst(d)} = mem.{fn}(cpu, {self._ref(addr)}, {self._ref(val)})"]
        if name == "hint":
            (value,) = op.args
            return [f"cpu.hint_group = {value}"]
        if name == "hint_reg":
            (src,) = op.args
            return [f"cpu.hint_group = {self._ref(src)}"]
        if name == "fence":
            return ["pass  # fence: sequential across nodes by construction"]
        raise NotImplementedError(f"backend cannot emit {name}")  # pragma: no cover
