"""Translation-block cache with block chaining and page-wise invalidation.

QEMU keeps translated code in a code cache keyed by guest pc and chains
blocks whose successor is static so the dispatch loop is skipped.  We keep
the same structure: ``lookup`` is the slow path, each block records direct
references to its statically-known successors once resolved
(:meth:`CodeCache.chain`), and invalidation drops every block overlapping a
guest page (needed if guest code pages are ever written, and used by
tests).  Dropping a block also severs every chain reference pointing at it
— a chained predecessor must fall back to ``lookup`` and re-translate
rather than run stale code.

Hot blocks can be *promoted*: :meth:`CodeCache.promote` replaces the cached
entry at a trace head's pc with the superblock compiled from the trace.
The superblock is indexed under the union of its members' pages, so
invalidating any member's page demotes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dbt.backend import TranslationBlock

__all__ = ["CodeCache", "CacheStats"]


@dataclass
class CacheStats:
    translations: int = 0
    lookups: int = 0
    misses: int = 0
    invalidations: int = 0
    #: Dispatches that followed a direct chain reference (no lookup).
    chain_follows: int = 0
    #: Chain references severed by invalidation or promotion.
    unchains: int = 0
    #: Superblocks promoted into the cache.
    superblocks: int = 0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.misses / self.lookups if self.lookups else 0.0

    @property
    def dispatches(self) -> int:
        """Total block dispatches: slow-path lookups plus chain follows."""
        return self.lookups + self.chain_follows


class CodeCache:
    """pc → :class:`TranslationBlock` map with page index."""

    def __init__(self) -> None:
        self._blocks: dict[int, TranslationBlock] = {}
        self._by_page: dict[int, set[int]] = {}
        self.stats = CacheStats()

    def lookup(self, pc: int) -> Optional[TranslationBlock]:
        self.stats.lookups += 1
        tb = self._blocks.get(pc)
        if tb is None:
            self.stats.misses += 1
        return tb

    def peek(self, pc: int) -> Optional[TranslationBlock]:
        """Uncounted lookup (trace formation, tests)."""
        return self._blocks.get(pc)

    def insert(self, tb: TranslationBlock) -> None:
        self._blocks[tb.pc] = tb
        self.stats.translations += 1
        for page in tb.pages:
            self._by_page.setdefault(page, set()).add(tb.pc)

    # -- chaining ----------------------------------------------------------

    def chain(self, prev: TranslationBlock, pc: int, tb: TranslationBlock) -> None:
        """Record a direct successor reference ``prev --pc--> tb``."""
        prev.chain[pc] = tb
        tb.chained_from.add(prev)

    def _unchain(self, tb: TranslationBlock) -> None:
        """Sever every chain reference into and out of ``tb``."""
        for pred in tuple(tb.chained_from):
            stale = [pc for pc, target in pred.chain.items() if target is tb]
            for pc in stale:
                del pred.chain[pc]
                self.stats.unchains += 1
        tb.chained_from.clear()
        for succ in tb.chain.values():
            succ.chained_from.discard(tb)
        tb.chain.clear()

    # -- promotion ---------------------------------------------------------

    def promote(self, sb: TranslationBlock) -> None:
        """Replace the entry at ``sb.pc`` with a superblock.

        The old head is unchained so predecessors re-dispatch through
        ``lookup`` and find the superblock; non-head members stay cached
        for mid-trace entries.
        """
        old = self._blocks.get(sb.pc)
        if old is not None:
            self._unchain(old)
            self._drop_page_index(old)
        self._blocks[sb.pc] = sb
        self.stats.translations += 1
        self.stats.superblocks += 1
        for page in sb.pages:
            self._by_page.setdefault(page, set()).add(sb.pc)

    # -- invalidation ------------------------------------------------------

    def _drop_page_index(self, tb: TranslationBlock, skip_page: Optional[int] = None) -> None:
        for page in tb.pages:
            if page == skip_page:
                continue
            pcs = self._by_page.get(page)
            if pcs is not None:
                pcs.discard(tb.pc)
                if not pcs:
                    del self._by_page[page]

    def invalidate_page(self, page: int) -> int:
        """Drop all blocks overlapping ``page``; returns how many.

        A block indexed under several pages (a superblock whose members
        span pages, or any block crossing a boundary) is removed from
        *every* page set it was indexed under — otherwise a later
        re-translation at the same pc would be wrongly dropped (and
        ``invalidations`` miscounted) when a neighboring page is
        invalidated.
        """
        pcs = self._by_page.pop(page, set())
        count = 0
        for pc in pcs:
            tb = self._blocks.get(pc)
            if tb is None:
                continue
            if page not in tb.pages:
                # Stale index entry from an older block at this pc; the
                # current block does not overlap the invalidated page.
                continue
            del self._blocks[pc]
            count += 1
            self._unchain(tb)
            self._drop_page_index(tb, skip_page=page)
        self.stats.invalidations += count
        return count

    def flush(self) -> None:
        for tb in self._blocks.values():
            tb.chain.clear()
            tb.chained_from.clear()
        self._blocks.clear()
        self._by_page.clear()

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, pc: int) -> bool:
        return pc in self._blocks
