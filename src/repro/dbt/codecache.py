"""Translation-block cache with block chaining and page-wise invalidation.

QEMU keeps translated code in a code cache keyed by guest pc and chains
blocks whose successor is static so the dispatch loop is skipped.  We keep
the same structure: ``lookup`` is the slow path, each block records a
direct reference to its statically-known successor once resolved, and
invalidation drops every block overlapping a guest page (needed if guest
code pages are ever written, and used by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dbt.backend import TranslationBlock
from repro.mem.layout import PAGE_SIZE

__all__ = ["CodeCache", "CacheStats"]


@dataclass
class CacheStats:
    translations: int = 0
    lookups: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.misses / self.lookups if self.lookups else 0.0


class CodeCache:
    """pc → :class:`TranslationBlock` map with page index."""

    def __init__(self) -> None:
        self._blocks: dict[int, TranslationBlock] = {}
        self._by_page: dict[int, set[int]] = {}
        self.stats = CacheStats()

    def lookup(self, pc: int) -> Optional[TranslationBlock]:
        self.stats.lookups += 1
        tb = self._blocks.get(pc)
        if tb is None:
            self.stats.misses += 1
        return tb

    def insert(self, tb: TranslationBlock) -> None:
        self._blocks[tb.pc] = tb
        self.stats.translations += 1
        for page in range(tb.pc // PAGE_SIZE, (max(tb.end_pc - 1, tb.pc)) // PAGE_SIZE + 1):
            self._by_page.setdefault(page, set()).add(tb.pc)

    def invalidate_page(self, page: int) -> int:
        """Drop all blocks overlapping ``page``; returns how many."""
        pcs = self._by_page.pop(page, set())
        count = 0
        for pc in pcs:
            if self._blocks.pop(pc, None) is not None:
                count += 1
        self.stats.invalidations += count
        return count

    def flush(self) -> None:
        self._blocks.clear()
        self._by_page.clear()

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, pc: int) -> bool:
        return pc in self._blocks
