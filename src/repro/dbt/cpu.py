"""Guest CPU (vCPU) state.

Each guest thread is encapsulated in an emulated CPU context (paper §2): 32
integer registers, a program counter, the thread id, and the scheduling-hint
group set by the most recent ``hint`` instruction (§5.3).  Contexts are
cheap to snapshot/restore — exactly what DQEMU ships over the network when
it creates a thread on a remote node (§4.1).
"""

from __future__ import annotations

from typing import Optional

from repro.isa.registers import NUM_REGS, SP

__all__ = ["CPUState"]

M64 = 0xFFFF_FFFF_FFFF_FFFF


class CPUState:
    """Mutable per-thread guest CPU context."""

    __slots__ = (
        "regs",
        "pc",
        "tid",
        "hint_group",
        "block_ic",
        "cycle_frac",
        "halted",
        "exit_status",
    )

    def __init__(self, *, pc: int = 0, tid: int = 0, sp: Optional[int] = None):
        self.regs: list[int] = [0] * NUM_REGS
        self.pc = pc
        self.tid = tid
        #: Group id announced by the last `hint` instruction; consumed by the
        #: locality-aware scheduler when this thread clones a child.
        self.hint_group: Optional[int] = None
        #: Scratch used by translated blocks to report executed-instruction
        #: counts to the engine (precise even across page stalls).
        self.block_ic = 0
        #: Fractional virtual-cycle remainder carried between quanta so the
        #: engine's long-run totals match the per-instruction model exactly.
        self.cycle_frac = 0.0
        self.halted = False
        self.exit_status: Optional[int] = None
        if sp is not None:
            self.regs[SP] = sp & M64

    # -- register helpers ---------------------------------------------------

    def read_reg(self, idx: int) -> int:
        return self.regs[idx]

    def write_reg(self, idx: int, value: int) -> None:
        if idx != 0:
            self.regs[idx] = value & M64

    @property
    def sp(self) -> int:
        return self.regs[SP]

    # -- migration support ----------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable context for remote thread creation (§4.1)."""
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "tid": self.tid,
            "hint_group": self.hint_group,
            "cycle_frac": self.cycle_frac,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "CPUState":
        cpu = cls(pc=snap["pc"], tid=snap["tid"])
        cpu.regs = list(snap["regs"])
        cpu.hint_group = snap.get("hint_group")
        cpu.cycle_frac = snap.get("cycle_frac", 0.0)
        return cpu

    def __repr__(self) -> str:
        return f"CPUState(tid={self.tid}, pc={self.pc:#x}, halted={self.halted})"
