"""Execution engine: the translate/execute mode switch of a DBT thread.

Each guest thread's host thread alternates between *translation mode* and
*execution mode* (paper §2).  ``run_quantum`` runs one vCPU until its cycle
budget is spent or an event needs outside help: a syscall, a page the DSM
must fetch, or a guest fault.  Cycle accounting is virtual: translated code
is billed ``cpi_dbt`` cycles per guest instruction, interpretation
``cpi_interp``, and translation ``translate_per_insn`` once per block —
constants calibrated in :mod:`repro.core.config`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbt.backend import Backend
from repro.dbt.codecache import CodeCache
from repro.dbt.cpu import CPUState
from repro.dbt.frontend import Frontend
from repro.dbt.interp import Interpreter
from repro.dbt.stop import RC_BREAK, RC_SYSCALL, StopEvent, StopKind
from repro.errors import ConfigError, GuestFault
from repro.mem.api import MemoryAPI, PageStall

__all__ = ["EngineTiming", "ExecutionEngine"]


@dataclass(frozen=True)
class EngineTiming:
    """Virtual-cycle costs of the DBT pipeline."""

    cpi_dbt: float = 3.0  # cycles per translated guest instruction
    cpi_interp: float = 30.0  # cycles per interpreted instruction
    translate_per_insn: float = 800.0  # one-time per-block translation cost


class ExecutionEngine:
    """Runs vCPUs against a memory system in DBT or interpreter mode."""

    def __init__(
        self,
        mem: MemoryAPI,
        *,
        timing: EngineTiming | None = None,
        mode: str = "dbt",
        max_block_insns: int = 64,
        cache: CodeCache | None = None,
    ) -> None:
        if mode not in ("dbt", "interp"):
            raise ConfigError(f"unknown engine mode {mode!r}")
        self.mem = mem
        self.mode = mode
        self.timing = timing or EngineTiming()
        self.cache = cache or CodeCache()
        self.frontend = Frontend(mem, max_block_insns=max_block_insns)
        self.backend = Backend()
        self.interp = Interpreter(mem)
        # Counters for profiling/experiments.
        self.insns_executed = 0
        self.insns_translated = 0

    # -- main entry ----------------------------------------------------------

    def run_quantum(self, cpu: CPUState, cycle_budget: int) -> StopEvent:
        """Run ``cpu`` for at most ``cycle_budget`` virtual cycles."""
        if self.mode == "interp":
            return self._run_interp(cpu, cycle_budget)
        return self._run_dbt(cpu, cycle_budget)

    # -- DBT mode ----------------------------------------------------------

    def _run_dbt(self, cpu: CPUState, cycle_budget: int) -> StopEvent:
        t = self.timing
        cycles = 0.0
        mem = self.mem
        cache = self.cache
        while cycles < cycle_budget:
            tb = cache.lookup(cpu.pc)
            if tb is None:
                try:
                    block_ir = self.frontend.build_block(cpu.pc)
                    tb = self.backend.compile(block_ir)
                except PageStall as stall:
                    return StopEvent(StopKind.PAGE_STALL, int(cycles), stall)
                except GuestFault as fault:
                    return StopEvent(StopKind.FAULT, int(cycles), fault)
                cache.insert(tb)
                self.insns_translated += tb.n_insns
                cycles += tb.n_insns * t.translate_per_insn
            try:
                rc = tb.fn(cpu, mem)
            except PageStall as stall:
                done = cpu.block_ic
                cycles += done * t.cpi_dbt
                self.insns_executed += done
                return StopEvent(StopKind.PAGE_STALL, int(cycles), stall)
            except GuestFault as fault:
                done = cpu.block_ic
                cycles += done * t.cpi_dbt
                self.insns_executed += done
                return StopEvent(StopKind.FAULT, int(cycles), fault)
            tb.exec_count += 1
            done = cpu.block_ic
            cycles += done * t.cpi_dbt
            self.insns_executed += done
            if rc == RC_SYSCALL:
                return StopEvent(StopKind.SYSCALL, int(cycles))
            if rc == RC_BREAK:
                return StopEvent(StopKind.BREAK, int(cycles))
        return StopEvent(StopKind.QUANTUM, int(cycles))

    # -- interpreter mode ------------------------------------------------------

    def _run_interp(self, cpu: CPUState, cycle_budget: int) -> StopEvent:
        t = self.timing
        cycles = 0.0
        while cycles < cycle_budget:
            try:
                rc = self.interp.step(cpu)
            except PageStall as stall:
                return StopEvent(StopKind.PAGE_STALL, int(cycles), stall)
            except GuestFault as fault:
                return StopEvent(StopKind.FAULT, int(cycles), fault)
            cycles += t.cpi_interp
            self.insns_executed += 1
            if rc == RC_SYSCALL:
                return StopEvent(StopKind.SYSCALL, int(cycles))
            if rc == RC_BREAK:
                return StopEvent(StopKind.BREAK, int(cycles))
        return StopEvent(StopKind.QUANTUM, int(cycles))
