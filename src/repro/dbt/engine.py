"""Execution engine: the translate/execute mode switch of a DBT thread.

Each guest thread's host thread alternates between *translation mode* and
*execution mode* (paper §2).  ``run_quantum`` runs one vCPU until its cycle
budget is spent or an event needs outside help: a syscall, a page the DSM
must fetch, or a guest fault.  Cycle accounting is virtual: translated code
is billed ``cpi_dbt`` cycles per guest instruction, interpretation
``cpi_interp``, superblock code ``cpi_superblock``, and translation
``translate_per_insn`` once per block — constants calibrated in
:mod:`repro.core.config`.

Hot-path tier (all off by default except chaining, which is
timing-neutral):

* **block chaining** — after a block runs, its successor is dispatched
  through a direct reference recorded on the block instead of a cache
  lookup; invalidation severs the references.
* **trace superblocks** — once a block's ``exec_count`` crosses
  ``superblock_threshold``, the engine grows a trace along the hottest
  recorded successor edges and compiles it into one superblock (single
  dispatch, interior side exits) billed at the cheaper ``cpi_superblock``.
* **idiom fusion** — blocks are compiled with the peephole pass from
  :mod:`repro.dbt.backend`; each fused pair whose second instruction
  completed is billed as one host operation, with per-pattern hit counters.

Cycle accounting is exact: the fractional cycle remainder at each stop is
carried on the vCPU (``cpu.cycle_frac``) into its next quantum instead of
being truncated, so long-run totals match the per-instruction model to the
cycle even for fractional CPIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dbt.backend import Backend, TranslationBlock
from repro.dbt.codecache import CodeCache
from repro.dbt.cpu import CPUState
from repro.dbt.frontend import Frontend
from repro.dbt.interp import Interpreter
from repro.dbt.stop import RC_BREAK, RC_SYSCALL, StopEvent, StopKind
from repro.errors import ConfigError, GuestFault
from repro.mem.api import MemoryAPI, PageStall

__all__ = ["EngineTiming", "ExecutionEngine"]


@dataclass(frozen=True)
class EngineTiming:
    """Virtual-cycle costs of the DBT pipeline."""

    cpi_dbt: float = 3.0  # cycles per translated guest instruction
    cpi_interp: float = 30.0  # cycles per interpreted instruction
    cpi_superblock: float = 1.0  # cycles per instruction inside a superblock
    translate_per_insn: float = 800.0  # one-time per-block translation cost


class ExecutionEngine:
    """Runs vCPUs against a memory system in DBT or interpreter mode."""

    def __init__(
        self,
        mem: MemoryAPI,
        *,
        timing: EngineTiming | None = None,
        mode: str = "dbt",
        max_block_insns: int = 64,
        cache: CodeCache | None = None,
        chaining: bool = True,
        superblock_threshold: int = 0,
        superblock_max_blocks: int = 8,
        fusion: bool = False,
    ) -> None:
        if mode not in ("dbt", "interp"):
            raise ConfigError(f"unknown engine mode {mode!r}")
        if superblock_threshold and not chaining:
            raise ConfigError(
                "superblocks require block chaining: traces grow along recorded chain edges"
            )
        self.mem = mem
        self.mode = mode
        self.timing = timing or EngineTiming()
        self.cache = cache or CodeCache()
        self.frontend = Frontend(mem, max_block_insns=max_block_insns)
        self.backend = Backend()
        self.interp = Interpreter(mem)
        self.chaining = chaining
        self.superblock_threshold = superblock_threshold
        self.superblock_max_blocks = superblock_max_blocks
        self.fusion = fusion
        # Counters for profiling/experiments.
        self.insns_executed = 0
        self.insns_translated = 0
        self.superblocks_formed = 0
        self.fusion_hits: dict[str, int] = {}
        self.fusion_saved_cycles = 0.0
        self.superblock_saved_cycles = 0.0
        self.execute_cycles = 0.0
        self.translate_cycles = 0.0

    # -- main entry ----------------------------------------------------------

    def run_quantum(self, cpu: CPUState, cycle_budget: int) -> StopEvent:
        """Run ``cpu`` for at most ``cycle_budget`` virtual cycles."""
        if self.mode == "interp":
            return self._run_interp(cpu, cycle_budget)
        return self._run_dbt(cpu, cycle_budget)

    # -- DBT mode ----------------------------------------------------------

    def _run_dbt(self, cpu: CPUState, cycle_budget: int) -> StopEvent:
        t = self.timing
        cycles = cpu.cycle_frac  # remainder carried from the last quantum
        cpu.cycle_frac = 0.0
        tcycles = 0.0
        mem = self.mem
        cache = self.cache
        chaining = self.chaining
        threshold = self.superblock_threshold
        prev: Optional[TranslationBlock] = None
        while cycles < cycle_budget:
            pc = cpu.pc
            tb = prev.chain.get(pc) if prev is not None else None
            if tb is not None:
                cache.stats.chain_follows += 1
            else:
                tb = cache.lookup(pc)
                if tb is None:
                    try:
                        block_ir = self.frontend.build_block(pc)
                        tb = self.backend.compile(block_ir, fusion=self.fusion)
                    except PageStall as stall:
                        return self._stop(StopKind.PAGE_STALL, cycles, tcycles, cpu, stall)
                    except GuestFault as fault:
                        return self._stop(StopKind.FAULT, cycles, tcycles, cpu, fault)
                    cache.insert(tb)
                    self.insns_translated += tb.n_insns
                    cost = tb.n_insns * t.translate_per_insn
                    cycles += cost
                    tcycles += cost
                if chaining and prev is not None and pc in prev.succ_pcs:
                    cache.chain(prev, pc, tb)
            if chaining and prev is not None and pc in prev.succ_pcs:
                prev.edges[pc] = prev.edges.get(pc, 0) + 1
            # A stall/fault raised before the block's first checkpoint must
            # bill zero completed instructions, not the previous block's.
            cpu.block_ic = 0
            try:
                rc = tb.fn(cpu, mem)
            except PageStall as stall:
                cycles += self._bill(tb, cpu.block_ic, t)
                return self._stop(StopKind.PAGE_STALL, cycles, tcycles, cpu, stall)
            except GuestFault as fault:
                cycles += self._bill(tb, cpu.block_ic, t)
                return self._stop(StopKind.FAULT, cycles, tcycles, cpu, fault)
            tb.exec_count += 1
            cycles += self._bill(tb, cpu.block_ic, t)
            if (
                threshold
                and not tb.is_superblock
                and not tb.no_promote
                and tb.exec_count >= threshold
                and cache.peek(pc) is tb
            ):
                cost = self._try_promote(tb)
                cycles += cost
                tcycles += cost
            if rc == RC_SYSCALL:
                return self._stop(StopKind.SYSCALL, cycles, tcycles, cpu)
            if rc == RC_BREAK:
                return self._stop(StopKind.BREAK, cycles, tcycles, cpu)
            prev = tb
        return self._stop(StopKind.QUANTUM, cycles, tcycles, cpu)

    # -- hot-path accounting -----------------------------------------------

    def _bill(self, tb: TranslationBlock, done: int, t: EngineTiming) -> float:
        """Execution cycles for ``done`` completed guest instructions."""
        self.insns_executed += done
        cpi = t.cpi_superblock if tb.is_superblock else t.cpi_dbt
        billed = done
        if tb.fused:
            saved = 0
            for end, pattern in tb.fused:
                if end < done:  # the pair's second instruction completed
                    saved += 1
                    self.fusion_hits[pattern] = self.fusion_hits.get(pattern, 0) + 1
            if saved:
                billed -= saved
                self.fusion_saved_cycles += saved * cpi
        if tb.is_superblock:
            self.superblock_saved_cycles += done * (t.cpi_dbt - t.cpi_superblock)
        cost = billed * cpi
        self.execute_cycles += cost
        return cost

    def _try_promote(self, head: TranslationBlock) -> float:
        """Grow a trace from ``head`` along its hottest recorded edges and
        promote the compiled superblock; returns translation cycles billed.

        The walk may revisit blocks — loop traces unroll themselves up to
        ``superblock_max_blocks`` members, so a one-block hot loop becomes
        an unrolled superblock re-entered once per trace rather than once
        per iteration.
        """
        trace = [head]
        cur = head
        while len(trace) < self.superblock_max_blocks:
            if not cur.edges:
                break
            # Hottest successor; ties break to the lowest pc (deterministic).
            pc = min(cur.edges, key=lambda p: (-cur.edges[p], p))
            nxt = self.cache.peek(pc)
            if nxt is None or nxt.is_superblock or nxt.ir is None:
                break
            trace.append(nxt)
            cur = nxt
        if len(trace) < 2:
            head.no_promote = True
            return 0.0
        sb = self.backend.compile_superblock(
            [tb.ir for tb in trace], fusion=self.fusion
        )
        self.cache.promote(sb)
        self.superblocks_formed += 1
        self.insns_translated += sb.n_insns
        return sb.n_insns * self.timing.translate_per_insn

    def _stop(
        self,
        kind: StopKind,
        cycles: float,
        tcycles: float,
        cpu: CPUState,
        info=None,
    ) -> StopEvent:
        whole = int(cycles)
        cpu.cycle_frac = cycles - whole  # carried into the next quantum
        self.translate_cycles += tcycles
        return StopEvent(kind, whole, info, translate_cycles=int(tcycles))

    # -- interpreter mode ------------------------------------------------------

    def _run_interp(self, cpu: CPUState, cycle_budget: int) -> StopEvent:
        t = self.timing
        cycles = cpu.cycle_frac
        cpu.cycle_frac = 0.0
        while cycles < cycle_budget:
            try:
                rc = self.interp.step(cpu)
            except PageStall as stall:
                return self._stop(StopKind.PAGE_STALL, cycles, 0.0, cpu, stall)
            except GuestFault as fault:
                return self._stop(StopKind.FAULT, cycles, 0.0, cpu, fault)
            cycles += t.cpi_interp
            self.execute_cycles += t.cpi_interp
            self.insns_executed += 1
            if rc == RC_SYSCALL:
                return self._stop(StopKind.SYSCALL, cycles, 0.0, cpu)
            if rc == RC_BREAK:
                return self._stop(StopKind.BREAK, cycles, 0.0, cpu)
        return self._stop(StopKind.QUANTUM, cycles, 0.0, cpu)
