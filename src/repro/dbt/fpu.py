"""Double-precision helpers for GA64's FP instructions.

GA64 stores IEEE-754 doubles as bit patterns in the integer registers, so
every FP op is bits → float → op → bits.  Helpers here define the edge-case
behaviour (division by zero, NaN propagation, conversion saturation) in one
place for both the interpreter and the translated code.
"""

from __future__ import annotations

import math
import struct

__all__ = [
    "b2f",
    "f2b",
    "fdiv",
    "fsqrt",
    "fmin",
    "fmax",
    "fcvt_l_d",
    "fcvt_d_l",
]

M64 = 0xFFFF_FFFF_FFFF_FFFF
_I64_MAX = (1 << 63) - 1
_I64_MIN = -(1 << 63)

_pack = struct.Struct("<d").pack
_unpack = struct.Struct("<d").unpack
_qpack = struct.Struct("<q").pack
_qunpack = struct.Struct("<q").unpack

#: Canonical quiet NaN bit pattern (matches RISC-V's canonical NaN).
CANONICAL_NAN = 0x7FF8_0000_0000_0000


def b2f(bits: int) -> float:
    """Reinterpret 64 register bits as a double."""
    return _unpack(_qpack(bits - (1 << 64) if bits > _I64_MAX else bits))[0]


def f2b(value: float) -> int:
    """Reinterpret a double as 64 register bits (unsigned)."""
    return _qunpack(_pack(value))[0] & M64


def fdiv(a: float, b: float) -> float:
    """IEEE division: x/0 is ±inf, 0/0 is NaN (Python raises instead)."""
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf if sign > 0 else -math.inf
    return a / b


def fsqrt(a: float) -> float:
    if a < 0.0:
        return math.nan
    return math.sqrt(a)


def fmin(a: float, b: float) -> float:
    """RISC-V fmin: returns the non-NaN operand if exactly one is NaN."""
    if math.isnan(a):
        return b if not math.isnan(b) else math.nan
    if math.isnan(b):
        return a
    # -0.0 < +0.0 for fmin purposes
    if a == b == 0.0:
        return -0.0 if math.copysign(1.0, a) < 0 or math.copysign(1.0, b) < 0 else 0.0
    return a if a < b else b


def fmax(a: float, b: float) -> float:
    if math.isnan(a):
        return b if not math.isnan(b) else math.nan
    if math.isnan(b):
        return a
    if a == b == 0.0:
        return 0.0 if math.copysign(1.0, a) > 0 or math.copysign(1.0, b) > 0 else -0.0
    return a if a > b else b


def fcvt_l_d(bits: int) -> int:
    """Double → int64, truncating toward zero, saturating (NaN → 0)."""
    x = b2f(bits)
    if math.isnan(x):
        return 0
    if x >= _I64_MAX:
        return _I64_MAX & M64
    if x <= _I64_MIN:
        return _I64_MIN & M64
    return int(x) & M64


def fcvt_d_l(bits: int) -> int:
    """Int64 (register bits, signed) → double bits."""
    signed = bits - (1 << 64) if bits > _I64_MAX else bits
    return f2b(float(signed))
