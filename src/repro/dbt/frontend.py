"""DBT frontend: decode GA64 guest code into TCG micro-ops.

A translation block extends from its entry pc to the first control-flow or
trap instruction (branch, jal, jalr, ecall, ebreak), up to
``max_block_insns``, never crossing a guest page (translated code is
invalidated page-wise, as in QEMU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbt.stop import RC_BREAK, RC_SYSCALL
from repro.dbt.tcg import InstrIR, TCGOp, guest, imm, temp
from repro.isa.encoding import INSTR_BYTES, decode
from repro.isa.instructions import Instruction
from repro.mem.api import MemoryAPI
from repro.mem.layout import PAGE_SIZE

__all__ = ["BlockIR", "Frontend"]

M64 = 0xFFFF_FFFF_FFFF_FFFF

_BRANCH_COND = {
    "beq": "eq", "bne": "ne", "blt": "lt", "bge": "ge", "bltu": "ltu", "bgeu": "geu",
}
_INT_BINOPS = {
    "add": "add", "sub": "sub", "and": "and", "or": "or", "xor": "xor",
    "sll": "shl", "srl": "shr", "sra": "sar",
    "mul": "mul", "mulh": "mulh", "mulhu": "mulhu",
    "div": "div", "divu": "divu", "rem": "rem", "remu": "remu",
    "slt": None, "sltu": None,  # handled via setcond
}
_IMM_BINOPS = {
    "addi": "add", "andi": "and", "ori": "or", "xori": "xor",
    "slli": "shl", "srli": "shr", "srai": "sar",
}


@dataclass
class BlockIR:
    """IR for a whole translation block."""

    pc: int
    instrs: list[InstrIR]
    next_pc: int  # static fallthrough if the block has no terminal


class Frontend:
    """Guest-instruction decoder/lowerer."""

    def __init__(self, mem: MemoryAPI, *, max_block_insns: int = 64):
        self.mem = mem
        self.max_block_insns = max_block_insns

    def build_block(self, pc: int) -> BlockIR:
        instrs: list[InstrIR] = []
        cur = pc
        page = pc // PAGE_SIZE
        while len(instrs) < self.max_block_insns and cur // PAGE_SIZE == page:
            word = int.from_bytes(self.mem.fetch_code(cur, INSTR_BYTES), "little")
            decoded = decode(word, pc=cur)
            ir = self.lower(decoded, cur)
            instrs.append(ir)
            cur += INSTR_BYTES
            if ir.ops and ir.ops[-1].name in ("brcond", "jmp", "jmp_ind", "exit"):
                break
        return BlockIR(pc=pc, instrs=instrs, next_pc=cur)

    # -- lowering ----------------------------------------------------------------

    def lower(self, instr: Instruction, pc: int) -> InstrIR:
        """Lower one guest instruction to micro-ops."""
        ops: list[TCGOp] = []
        m = instr.spec.mnemonic
        rd, rs1, rs2 = guest(instr.rd), guest(instr.rs1), guest(instr.rs2)
        iv = instr.imm
        next_pc = pc + INSTR_BYTES
        can_fault = False

        def op(name, *args):
            ops.append(TCGOp(name, args))

        if m in _INT_BINOPS:
            if m == "slt":
                op("setcond", rd, rs1, rs2, "lt")
            elif m == "sltu":
                op("setcond", rd, rs1, rs2, "ltu")
            else:
                op(_INT_BINOPS[m], rd, rs1, rs2)
        elif m in _IMM_BINOPS:
            shift_ops = ("slli", "srli", "srai")
            value = iv & 63 if m in shift_ops else iv
            op(_IMM_BINOPS[m], rd, rs1, imm(value))
        elif m == "slti":
            op("setcond", rd, rs1, imm(iv), "lt")
        elif m == "sltiu":
            op("setcond", rd, rs1, imm(iv), "ltu")
        elif instr.spec.is_load and not instr.spec.is_atomic:
            addr = temp(0)
            op("add", addr, rs1, imm(iv))
            op("ld", rd, addr, instr.spec.access_bytes, instr.spec.signed)
            can_fault = True
        elif instr.spec.is_store and not instr.spec.is_atomic:
            addr = temp(0)
            op("add", addr, rs1, imm(iv))
            op("st", rs2, addr, instr.spec.access_bytes)
            can_fault = True
        elif m == "movz":
            op("mov", rd, imm(iv << (16 * instr.hw)))
        elif m == "movn":
            op("mov", rd, imm((~(iv << (16 * instr.hw))) & M64))
        elif m == "movk":
            mask = 0xFFFF << (16 * instr.hw)
            t0 = temp(0)
            op("and", t0, rd, imm((~mask) & M64))
            op("or", rd, t0, imm(iv << (16 * instr.hw)))
        elif m == "jal":
            op("mov", rd, imm(next_pc))
            op("jmp", (pc + iv) & M64)
        elif m == "jalr":
            target = temp(0)
            op("add", target, rs1, imm(iv))
            op("and", target, target, imm(M64 & ~1))
            op("mov", rd, imm(next_pc))  # link after target: rd may equal rs1
            op("jmp_ind", target)
        elif m in _BRANCH_COND:
            op("brcond", rs1, rs2, _BRANCH_COND[m], (pc + iv) & M64, next_pc)
        elif m in ("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"):
            op("fbin", rd, rs1, rs2, m)
        elif m == "fsqrt":
            op("fun", rd, rs1, "fsqrt")
        elif m == "fcvt.d.l":
            op("fun", rd, rs1, "fcvt_d_l")
        elif m == "fcvt.l.d":
            op("fun", rd, rs1, "fcvt_l_d")
        elif m in ("feq", "flt", "fle"):
            op("fsetcond", rd, rs1, rs2, m)
        elif m == "lr":
            op("lr", rd, rs1)
            can_fault = True
        elif m == "sc":
            op("sc", rd, rs2, rs1)
            can_fault = True
        elif m == "cas":
            op("cas", rd, rd, rs2, rs1)
            can_fault = True
        elif m == "amoadd":
            op("amoadd", rd, rs2, rs1)
            can_fault = True
        elif m == "amoswap":
            op("amoswap", rd, rs2, rs1)
            can_fault = True
        elif m == "hint":
            # hint <imm> sets a literal group; hint <reg> (rs1 != x0) takes the
            # group id from a register so creation loops can vary it.
            if instr.rs1 != 0:
                op("hint_reg", rs1)
            else:
                op("hint", iv)
        elif m == "fence":
            op("fence")
        elif m == "ecall":
            op("exit", RC_SYSCALL)
        elif m == "ebreak":
            op("exit", RC_BREAK)
        else:  # pragma: no cover - table kept in sync with SPECS
            raise NotImplementedError(f"frontend cannot lower {m}")

        return InstrIR(pc=pc, mnemonic=m, ops=ops, can_fault=can_fault)
