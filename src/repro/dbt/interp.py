"""Reference interpreter for GA64.

This is the "translation mode" semantics oracle: it decodes and executes one
guest instruction at a time.  The DBT backend is differentially tested
against it, and the engine can run whole threads in interpreter mode
(``mode="interp"``) to model the pre-translation cost of a DBT.
"""

from __future__ import annotations

from repro.dbt.cpu import CPUState
from repro.dbt.fpu import b2f, f2b, fcvt_d_l, fcvt_l_d, fdiv, fmax, fmin, fsqrt
from repro.dbt.runtime import M64, mulh64, mulhu64, s64, sdiv64, srem64, udiv64, urem64
from repro.dbt.stop import RC_BREAK, RC_NEXT, RC_SYSCALL
from repro.errors import InvalidInstruction
from repro.isa.encoding import INSTR_BYTES, decode
from repro.isa.instructions import Instruction
from repro.mem.api import MemoryAPI

__all__ = ["Interpreter"]


class Interpreter:
    """Decode-and-execute stepper over a :class:`MemoryAPI`."""

    def __init__(self, mem: MemoryAPI):
        self.mem = mem

    def step(self, cpu: CPUState) -> int:
        """Execute the instruction at ``cpu.pc``; returns an RC_* code."""
        raw = self.mem.fetch_code(cpu.pc, INSTR_BYTES)
        word = int.from_bytes(raw, "little")
        instr = decode(word, pc=cpu.pc)
        return self.execute(cpu, instr)

    def run(self, cpu: CPUState, max_insns: int = 1_000_000) -> int:
        """Run until a syscall/break or the instruction budget; returns RC."""
        for _ in range(max_insns):
            rc = self.step(cpu)
            if rc != RC_NEXT:
                return rc
        return RC_NEXT

    # -- single-instruction semantics ----------------------------------------

    def execute(self, cpu: CPUState, instr: Instruction) -> int:
        R = cpu.regs
        mem = self.mem
        m = instr.spec.mnemonic
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        a, b = R[rs1], R[rs2]
        next_pc = cpu.pc + INSTR_BYTES

        def w(value: int) -> None:
            if rd != 0:
                R[rd] = value & M64

        if m == "add":
            w(a + b)
        elif m == "sub":
            w(a - b)
        elif m == "and":
            w(a & b)
        elif m == "or":
            w(a | b)
        elif m == "xor":
            w(a ^ b)
        elif m == "sll":
            w(a << (b & 63))
        elif m == "srl":
            w(a >> (b & 63))
        elif m == "sra":
            w(s64(a) >> (b & 63))
        elif m == "mul":
            w(a * b)
        elif m == "mulh":
            w(mulh64(a, b))
        elif m == "mulhu":
            w(mulhu64(a, b))
        elif m == "div":
            w(sdiv64(a, b))
        elif m == "divu":
            w(udiv64(a, b))
        elif m == "rem":
            w(srem64(a, b))
        elif m == "remu":
            w(urem64(a, b))
        elif m == "slt":
            w(1 if s64(a) < s64(b) else 0)
        elif m == "sltu":
            w(1 if a < b else 0)
        elif m == "addi":
            w(a + imm)
        elif m == "andi":
            w(a & (imm & M64))
        elif m == "ori":
            w(a | (imm & M64))
        elif m == "xori":
            w(a ^ (imm & M64))
        elif m == "slli":
            w(a << (imm & 63))
        elif m == "srli":
            w(a >> (imm & 63))
        elif m == "srai":
            w(s64(a) >> (imm & 63))
        elif m == "slti":
            w(1 if s64(a) < imm else 0)
        elif m == "sltiu":
            w(1 if a < (imm & M64) else 0)
        elif m in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"):
            spec = instr.spec
            w(mem.load((a + imm) & M64, spec.access_bytes, spec.signed))
        elif m in ("sb", "sh", "sw", "sd"):
            mem.store((a + imm) & M64, instr.spec.access_bytes, b)
        elif m == "movz":
            w(imm << (16 * instr.hw))
        elif m == "movk":
            mask = 0xFFFF << (16 * instr.hw)
            w((R[rd] & ~mask) | (imm << (16 * instr.hw)))
        elif m == "movn":
            w(~(imm << (16 * instr.hw)))
        elif m == "jal":
            w(next_pc)
            cpu.pc = (cpu.pc + imm) & M64
            return RC_NEXT
        elif m == "jalr":
            target = (a + imm) & M64 & ~1
            w(next_pc)
            cpu.pc = target
            return RC_NEXT
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = {
                "beq": a == b,
                "bne": a != b,
                "blt": s64(a) < s64(b),
                "bge": s64(a) >= s64(b),
                "bltu": a < b,
                "bgeu": a >= b,
            }[m]
            cpu.pc = (cpu.pc + imm) & M64 if taken else next_pc
            return RC_NEXT
        elif m == "fadd":
            w(f2b(b2f(a) + b2f(b)))
        elif m == "fsub":
            w(f2b(b2f(a) - b2f(b)))
        elif m == "fmul":
            w(f2b(b2f(a) * b2f(b)))
        elif m == "fdiv":
            w(f2b(fdiv(b2f(a), b2f(b))))
        elif m == "fmin":
            w(f2b(fmin(b2f(a), b2f(b))))
        elif m == "fmax":
            w(f2b(fmax(b2f(a), b2f(b))))
        elif m == "fsqrt":
            w(f2b(fsqrt(b2f(a))))
        elif m == "fcvt.d.l":
            w(fcvt_d_l(a))
        elif m == "fcvt.l.d":
            w(fcvt_l_d(a))
        elif m == "feq":
            w(1 if b2f(a) == b2f(b) else 0)
        elif m == "flt":
            w(1 if b2f(a) < b2f(b) else 0)
        elif m == "fle":
            w(1 if b2f(a) <= b2f(b) else 0)
        elif m == "lr":
            w(mem.load_reserved(cpu, a))
        elif m == "sc":
            ok = mem.store_conditional(cpu, a, b)
            w(0 if ok else 1)
        elif m == "cas":
            w(mem.atomic_cas(cpu, a, R[rd], b))
        elif m == "amoadd":
            w(mem.atomic_add(cpu, a, b))
        elif m == "amoswap":
            w(mem.atomic_swap(cpu, a, b))
        elif m == "fence":
            pass  # inter-node ordering is sequential by construction (§3.3)
        elif m == "hint":
            cpu.hint_group = a if rs1 != 0 else imm
        elif m == "ecall":
            cpu.pc = next_pc
            return RC_SYSCALL
        elif m == "ebreak":
            cpu.pc = next_pc
            return RC_BREAK
        else:  # pragma: no cover - spec table and interpreter kept in sync
            raise InvalidInstruction(f"interpreter cannot execute {m}", pc=cpu.pc)

        cpu.pc = next_pc
        return RC_NEXT
