"""Runtime helpers shared by the interpreter and generated host code.

Integer semantics follow RISC-V: 64-bit two's complement, division truncates
toward zero, division by zero yields all-ones (unsigned) / -1 (signed), and
``INT64_MIN / -1`` overflows to ``INT64_MIN``.
"""

from __future__ import annotations

__all__ = [
    "M64",
    "s64",
    "sdiv64",
    "udiv64",
    "srem64",
    "urem64",
    "mulh64",
    "mulhu64",
]

M64 = 0xFFFF_FFFF_FFFF_FFFF
_I64_MIN = -(1 << 63)


def s64(value: int) -> int:
    """Unsigned 64-bit register value → signed Python int."""
    return value - (1 << 64) if value & (1 << 63) else value


def sdiv64(a: int, b: int) -> int:
    sa, sb = s64(a), s64(b)
    if sb == 0:
        return M64  # -1
    if sa == _I64_MIN and sb == -1:
        return a  # overflow: result is INT64_MIN
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & M64


def udiv64(a: int, b: int) -> int:
    if b == 0:
        return M64
    return (a // b) & M64


def srem64(a: int, b: int) -> int:
    sa, sb = s64(a), s64(b)
    if sb == 0:
        return a
    if sa == _I64_MIN and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & M64


def urem64(a: int, b: int) -> int:
    if b == 0:
        return a
    return (a % b) & M64


def mulh64(a: int, b: int) -> int:
    return ((s64(a) * s64(b)) >> 64) & M64


def mulhu64(a: int, b: int) -> int:
    return ((a * b) >> 64) & M64
