"""Stop conditions shared by translated blocks, the interpreter and engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["RC_NEXT", "RC_SYSCALL", "RC_BREAK", "StopKind", "StopEvent"]

# Return codes from translated-block functions / interpreter steps.
RC_NEXT = 0  # keep executing at cpu.pc
RC_SYSCALL = 1  # ecall hit; cpu.pc already points past it
RC_BREAK = 2  # ebreak hit


class StopKind(enum.Enum):
    """Why the engine returned control to its caller."""

    QUANTUM = "quantum"  # cycle budget exhausted
    SYSCALL = "syscall"
    BREAK = "break"
    PAGE_STALL = "page_stall"  # DSM must fetch a page; re-run afterwards
    FAULT = "fault"  # guest crashed (segfault, illegal instruction...)


@dataclass
class StopEvent:
    """Engine exit record: what stopped the vCPU and the cycles it used."""

    kind: StopKind
    cycles: int
    info: Optional[Any] = None  # PageStall, GuestFault, ... depending on kind
    #: Portion of ``cycles`` spent in translation mode (block/superblock
    #: compilation) this quantum; the rest is execution.
    translate_cycles: int = 0
