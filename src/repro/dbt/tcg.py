"""TCG-style intermediate representation.

The DBT frontend lowers each guest instruction to a short sequence of
micro-ops over an infinite temp register file plus the guest register file;
the backend then emits host code from the micro-ops.  This mirrors QEMU's
guest → TCG IR → host pipeline and is what makes the translator retargetable:
adding a guest ISA means writing a new frontend; adding a host means a new
backend.

Operands are tagged pairs: ``("g", i)`` guest register, ``("t", i)`` temp,
``("i", v)`` immediate constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "Operand",
    "TCGOp",
    "InstrIR",
    "guest",
    "temp",
    "imm",
    "BINOPS",
    "SETCONDS",
    "FBINOPS",
    "FUNOPS",
    "FSETCONDS",
    "TERMINALS",
]

Operand = Tuple[str, int]


def guest(i: int) -> Operand:
    return ("g", i)


def temp(i: int) -> Operand:
    return ("t", i)


def imm(v: int) -> Operand:
    return ("i", v)


#: Integer binary micro-ops (dst, a, b).
BINOPS = frozenset(
    {
        "add", "sub", "and", "or", "xor",
        "shl", "shr", "sar",
        "mul", "mulh", "mulhu", "div", "divu", "rem", "remu",
    }
)

#: Conditions for setcond/brcond.
SETCONDS = frozenset({"eq", "ne", "lt", "ge", "ltu", "geu"})

#: FP binary ops (dst, a, b, op).
FBINOPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"})

#: FP unary ops (dst, a, op).
FUNOPS = frozenset({"fsqrt", "fcvt_l_d", "fcvt_d_l"})

FSETCONDS = frozenset({"feq", "flt", "fle"})

#: Ops that end a translation block.
TERMINALS = frozenset({"brcond", "jmp", "jmp_ind", "exit"})


@dataclass(frozen=True)
class TCGOp:
    """One micro-op.  ``args`` layout depends on ``name``:

    ====================  ============================================
    name                  args
    ====================  ============================================
    mov                   (dst, src)
    <binop>               (dst, a, b)
    setcond               (dst, a, b, cond)
    fbin                  (dst, a, b, op)
    fun                   (dst, a, op)
    fsetcond              (dst, a, b, cond)
    ld                    (dst, addr, size, signed)
    st                    (val, addr, size)
    lr                    (dst, addr)
    sc                    (dst, val, addr)
    cas                   (dst, expected, val, addr)
    amoadd / amoswap      (dst, val, addr)
    hint                  (imm_value,)
    fence                 ()
    brcond                (a, b, cond, target_pc, fallthrough_pc)
    jmp                   (target_pc,)
    jmp_ind               (addr,)
    exit                  (rc,)
    ====================  ============================================
    """

    name: str
    args: tuple

    def __repr__(self) -> str:
        return f"TCGOp({self.name}, {', '.join(map(repr, self.args))})"


@dataclass
class InstrIR:
    """IR for one guest instruction (the precise-exception unit)."""

    pc: int
    mnemonic: str
    ops: list[TCGOp]
    can_fault: bool  # touches memory → backend records pc/ic before it
