"""Exception hierarchy for the repro package.

Every layer raises a subclass of :class:`ReproError` so callers can catch
package failures without masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly (e.g. double-trigger)."""


class NetworkError(ReproError):
    """Malformed protocol traffic or unknown destination."""


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class AssemblerError(ReproError):
    """Assembly source was rejected (bad mnemonic, operand, or label)."""


class GuestFault(ReproError):
    """The guest program performed an illegal operation.

    Attributes mirror a hardware fault record so the emulation engine can
    report precisely where the guest went wrong.
    """

    def __init__(self, message: str, *, pc: int | None = None, addr: int | None = None):
        super().__init__(message)
        self.pc = pc
        self.addr = addr


class InvalidInstruction(GuestFault):
    """Undefined opcode or malformed instruction word."""


class UnalignedAccess(GuestFault):
    """A memory access violated GA64 alignment rules (page-crossing or atomic)."""


class SegmentationFault(GuestFault):
    """Access to an unmapped guest address."""


class KernelError(ReproError):
    """The emulated kernel layer hit an unsupported request."""


class ProtocolError(ReproError):
    """The DSM coherence protocol reached an inconsistent state."""


class ConfigError(ReproError):
    """Invalid DQEMU configuration."""


class AdmissionError(ReproError):
    """The cluster's job admission queue refused a submission."""
