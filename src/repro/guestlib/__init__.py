"""Guest runtime library emitted in GA64 assembly (threads, locks, malloc, IO)."""

from repro.guestlib.runtime import (
    CLONE_FLAGS,
    MUTEX_SPINS,
    THREAD_STACK_BYTES,
    emit_runtime,
    runtime_builder,
)

__all__ = [
    "CLONE_FLAGS",
    "MUTEX_SPINS",
    "THREAD_STACK_BYTES",
    "emit_runtime",
    "runtime_builder",
]
