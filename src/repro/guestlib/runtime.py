"""Guest runtime library ("libc") emitted in GA64 assembly.

The PARSEC-like workloads are statically linked against this runtime, just
as the paper's benchmarks statically link pthreads.  It provides:

* ``_start``            — calls ``main``, then ``exit_group(main())``;
* ``rt_thread_create``  — pthread_create: mmap a stack, ``clone()`` with
  CHILD_SETTID | CHILD_CLEARTID, run ``fn(arg)`` in the child, exit;
* ``rt_join``           — pthread_join via futex on the clear_child_tid word;
* ``rt_mutex_lock/unlock`` — Drepper-style 0/1/2 futex mutex built on CAS,
  with a bounded spin before sleeping (the paper's "certain period of time"
  before falling back to futex_wait, §4.4 / Fig. 3);
* ``rt_spin_lock/unlock``  — pure LL/SC spinlock (exercises the global
  LL/SC hash table and its cross-node false-positive failures);
* ``rt_barrier_init/wait`` — generation-counting futex barrier;
* ``rt_malloc``            — mutex-protected bump allocator over mmap;
* ``rt_print_str`` / ``rt_print_u64`` / ``rt_print_u64_ln`` — stdout helpers
  the tests assert against;
* ``rt_time_ns``            — monotonic virtual-clock read (clock_gettime),
  used by the microbenchmarks to time their measured region in-guest.

Register discipline: all routines follow the GA64 call ABI (args/results in
``a0..``, ``ra`` link, ``s*`` callee-saved); only ``t*``/``a*`` are
clobbered unless a frame is pushed.
"""

from __future__ import annotations

from repro.isa.builder import AsmBuilder
from repro.kernel.sysnums import (
    CLONE_CHILD_CLEARTID,
    CLONE_CHILD_SETTID,
    CLONE_THREAD,
    CLONE_VM,
    SYS,
)

__all__ = ["emit_runtime", "runtime_builder", "THREAD_STACK_BYTES", "CLONE_FLAGS"]

THREAD_STACK_BYTES = 64 * 1024
CLONE_FLAGS = CLONE_VM | CLONE_THREAD | CLONE_CHILD_SETTID | CLONE_CHILD_CLEARTID

#: Bounded spin counts before falling back to futex (paper §4.4).
MUTEX_SPINS = 96


def emit_runtime(b: AsmBuilder) -> AsmBuilder:
    """Append the runtime's text and data to a builder (call once)."""
    _emit_start(b)
    _emit_thread_create(b)
    _emit_join(b)
    _emit_mutex(b)
    _emit_spinlock(b)
    _emit_barrier(b)
    _emit_malloc(b)
    _emit_print(b)
    _emit_time(b)
    _emit_data(b)
    return b


def runtime_builder() -> AsmBuilder:
    """Fresh builder pre-loaded with the runtime; caller adds ``main``."""
    b = AsmBuilder()
    return emit_runtime(b)


# -- pieces ----------------------------------------------------------------------


def _emit_start(b: AsmBuilder) -> None:
    b.comment("program entry: run main, then exit_group(main's return)")
    b.label("_start")
    b.call("main")
    b.li("a7", SYS.EXIT_GROUP)
    b.ecall()


def _emit_thread_create(b: AsmBuilder) -> None:
    b.comment("rt_thread_create(fn, arg) -> handle (ctid word @handle)")
    b.label("rt_thread_create")
    b.addi("sp", "sp", -32)
    b.sd("ra", 24, "sp")
    b.sd("s0", 16, "sp")
    b.sd("s1", 8, "sp")
    b.sd("s2", 0, "sp")
    b.mv("s0", "a0")  # fn
    b.mv("s1", "a1")  # arg
    # stack = mmap(THREAD_STACK_BYTES)
    b.li("a0", 0)
    b.li("a1", THREAD_STACK_BYTES)
    b.li("a2", 3)
    b.li("a3", 0x22)
    b.li("a4", -1)
    b.li("a5", 0)
    b.li("a7", SYS.MMAP)
    b.ecall()
    b.mv("s2", "a0")  # handle = stack base; word 0 is the ctid cell
    # park fn/arg at the top of the child stack
    b.li("t0", THREAD_STACK_BYTES - 16)
    b.add("t1", "s2", "t0")
    b.sd("s0", 0, "t1")
    b.sd("s1", 8, "t1")
    # clone(flags, child_sp, ptid=0, tls=0, ctid=handle)
    b.li("a0", CLONE_FLAGS)
    b.mv("a1", "t1")
    b.li("a2", 0)
    b.li("a3", 0)
    b.mv("a4", "s2")
    b.li("a7", SYS.CLONE)
    b.ecall()
    b.bnez("a0", ".rt_tc_parent")
    b.comment("child: pop fn/arg from its stack and run")
    b.ld("t0", 0, "sp")
    b.ld("a0", 8, "sp")
    b.addi("sp", "sp", 16)
    b.jalr("ra", "t0", 0)
    b.li("a7", SYS.EXIT)  # thread fn returned: exit(retval) in a0
    b.ecall()
    b.label(".rt_tc_parent")
    b.sd("a0", 8, "s2")  # remember the tid at handle+8 (diagnostics)
    b.mv("a0", "s2")
    b.ld("ra", 24, "sp")
    b.ld("s0", 16, "sp")
    b.ld("s1", 8, "sp")
    b.ld("s2", 0, "sp")
    b.addi("sp", "sp", 32)
    b.ret()


def _emit_join(b: AsmBuilder) -> None:
    b.comment("rt_join(handle): futex-wait until the kernel clears the ctid word")
    b.label("rt_join")
    b.addi("sp", "sp", -16)
    b.sd("ra", 8, "sp")
    b.sd("s0", 0, "sp")
    b.mv("s0", "a0")
    b.label(".rt_join_loop")
    b.ld("t0", 0, "s0")
    b.beqz("t0", ".rt_join_done")
    b.mv("a0", "s0")
    b.li("a1", 0)  # FUTEX_WAIT
    b.mv("a2", "t0")
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.j(".rt_join_loop")
    b.label(".rt_join_done")
    b.ld("ra", 8, "sp")
    b.ld("s0", 0, "sp")
    b.addi("sp", "sp", 16)
    b.ret()


def _emit_mutex(b: AsmBuilder) -> None:
    b.comment("rt_mutex_lock(addr): CAS 0->1 with bounded spin, then 2 + futex")
    b.label("rt_mutex_lock")
    b.mv("t4", "a0")
    b.li("t5", MUTEX_SPINS)
    b.label(".rt_ml_spin")
    b.mv("t2", "zero")
    b.li("t1", 1)
    b.cas("t2", "t1", "t4")  # expected 0, desired 1; old -> t2
    b.beqz("t2", ".rt_ml_done")
    b.addi("t5", "t5", -1)
    b.bnez("t5", ".rt_ml_spin")
    b.comment("contended: mark 2 and sleep (Fig. 3's futex_wait fallback)")
    b.label(".rt_ml_slow")
    b.li("t3", 2)
    b.amoswap("t2", "t3", "t4")  # old = xchg(val, 2)
    b.beqz("t2", ".rt_ml_done")
    b.mv("a0", "t4")
    b.li("a1", 0)  # FUTEX_WAIT
    b.li("a2", 2)
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.j(".rt_ml_slow")
    b.label(".rt_ml_done")
    b.ret()

    b.comment("rt_mutex_unlock(addr)")
    b.label("rt_mutex_unlock")
    b.mv("t4", "a0")
    b.amoswap("t2", "zero", "t4")  # old = xchg(val, 0)
    b.li("t3", 2)
    b.bne("t2", "t3", ".rt_mu_out")
    b.mv("a0", "t4")
    b.li("a1", 1)  # FUTEX_WAKE
    b.li("a2", 1)
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.label(".rt_mu_out")
    b.ret()


def _emit_spinlock(b: AsmBuilder) -> None:
    b.comment("rt_spin_lock(addr): pure LL/SC loop (global LL/SC table, §4.4)")
    b.label("rt_spin_lock")
    b.label(".rt_sl_try")
    b.lr("t0", "a0")
    b.bnez("t0", ".rt_sl_try")
    b.li("t1", 1)
    b.sc("t2", "t1", "a0")
    b.bnez("t2", ".rt_sl_try")
    b.ret()

    b.label("rt_spin_unlock")
    b.sd("zero", 0, "a0")
    b.ret()


def _emit_barrier(b: AsmBuilder) -> None:
    b.comment("barrier cell layout: [count @0, generation @8, total @16]")
    b.label("rt_barrier_init")
    b.sd("zero", 0, "a0")
    b.sd("zero", 8, "a0")
    b.sd("a1", 16, "a0")
    b.ret()

    b.label("rt_barrier_wait")
    b.addi("sp", "sp", -24)
    b.sd("ra", 16, "sp")
    b.sd("s0", 8, "sp")
    b.sd("s1", 0, "sp")
    b.mv("s0", "a0")
    b.ld("s1", 8, "s0")  # my generation (read before arriving)
    b.li("t1", 1)
    b.amoadd("t0", "t1", "s0")  # old count
    b.addi("t0", "t0", 1)
    b.ld("t2", 16, "s0")  # total
    b.bne("t0", "t2", ".rt_bw_wait")
    b.comment("last arriver: reset, bump generation, wake everyone")
    b.sd("zero", 0, "s0")
    b.addi("t3", "s1", 1)
    b.sd("t3", 8, "s0")
    b.addi("a0", "s0", 8)
    b.li("a1", 1)  # FUTEX_WAKE
    b.li("a2", 0x1FFF)  # wake-all
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.j(".rt_bw_done")
    b.label(".rt_bw_wait")
    b.ld("t0", 8, "s0")
    b.bne("t0", "s1", ".rt_bw_done")
    b.addi("a0", "s0", 8)
    b.li("a1", 0)  # FUTEX_WAIT
    b.mv("a2", "s1")
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.j(".rt_bw_wait")
    b.label(".rt_bw_done")
    b.ld("ra", 16, "sp")
    b.ld("s0", 8, "sp")
    b.ld("s1", 0, "sp")
    b.addi("sp", "sp", 24)
    b.ret()


def _emit_malloc(b: AsmBuilder) -> None:
    b.comment("rt_malloc(size): mutex-protected bump allocator over mmap arenas")
    b.label("rt_malloc")
    b.addi("sp", "sp", -32)
    b.sd("ra", 24, "sp")
    b.sd("s0", 16, "sp")
    b.sd("s1", 8, "sp")
    b.sd("s2", 0, "sp")
    b.addi("s0", "a0", 15)  # round size up to 16
    b.li("t0", -16)
    b.and_("s0", "s0", "t0")
    b.la("a0", "rt_malloc_lock")
    b.call("rt_mutex_lock")
    b.la("s2", "rt_malloc_cur")
    b.ld("t1", 0, "s2")  # cur
    b.ld("t3", 8, "s2")  # end (rt_malloc_end directly follows)
    b.add("t4", "t1", "s0")
    b.bleu("t4", "t3", ".rt_ma_fit")
    b.comment("arena exhausted: mmap max(1 MiB, size)")
    b.li("t5", 0x100000)
    b.bgeu("t5", "s0", ".rt_ma_sz")
    b.mv("t5", "s0")
    b.label(".rt_ma_sz")
    b.mv("s1", "t5")
    b.li("a0", 0)
    b.mv("a1", "t5")
    b.li("a2", 3)
    b.li("a3", 0x22)
    b.li("a4", -1)
    b.li("a5", 0)
    b.li("a7", SYS.MMAP)
    b.ecall()
    b.mv("t1", "a0")
    b.add("t3", "t1", "s1")
    b.sd("t3", 8, "s2")
    b.add("t4", "t1", "s0")
    b.label(".rt_ma_fit")
    b.sd("t4", 0, "s2")  # cur = ptr + size
    b.mv("s1", "t1")  # result
    b.la("a0", "rt_malloc_lock")
    b.call("rt_mutex_unlock")
    b.mv("a0", "s1")
    b.ld("ra", 24, "sp")
    b.ld("s0", 16, "sp")
    b.ld("s1", 8, "sp")
    b.ld("s2", 0, "sp")
    b.addi("sp", "sp", 32)
    b.ret()


def _emit_print(b: AsmBuilder) -> None:
    b.comment("rt_print_str(addr, len)")
    b.label("rt_print_str")
    b.mv("a2", "a1")
    b.mv("a1", "a0")
    b.li("a0", 1)
    b.li("a7", SYS.WRITE)
    b.ecall()
    b.ret()

    b.comment("rt_print_u64(value): unsigned decimal to stdout")
    b.label("rt_print_u64")
    b.addi("sp", "sp", -48)
    b.sd("ra", 40, "sp")
    b.mv("t0", "a0")
    b.addi("t3", "sp", 31)  # write digits backwards from sp+31
    b.li("t2", 10)
    b.label(".rt_pu_loop")
    b.remu("t4", "t0", "t2")
    b.addi("t4", "t4", 48)  # '0'
    b.sb("t4", 0, "t3")
    b.addi("t3", "t3", -1)
    b.divu("t0", "t0", "t2")
    b.bnez("t0", ".rt_pu_loop")
    b.addi("a1", "t3", 1)
    b.addi("t5", "sp", 32)
    b.sub("a2", "t5", "a1")
    b.li("a0", 1)
    b.li("a7", SYS.WRITE)
    b.ecall()
    b.ld("ra", 40, "sp")
    b.addi("sp", "sp", 48)
    b.ret()

    b.comment("rt_print_u64_ln(value)")
    b.label("rt_print_u64_ln")
    b.addi("sp", "sp", -16)
    b.sd("ra", 8, "sp")
    b.call("rt_print_u64")
    b.la("a0", "rt_nl")
    b.li("a1", 1)
    b.call("rt_print_str")
    b.ld("ra", 8, "sp")
    b.addi("sp", "sp", 16)
    b.ret()


def _emit_time(b: AsmBuilder) -> None:
    b.comment("rt_time_ns() -> a0: virtual monotonic clock via clock_gettime")
    b.label("rt_time_ns")
    b.addi("sp", "sp", -32)
    b.sd("ra", 24, "sp")
    b.li("a0", 1)  # CLOCK_MONOTONIC (clockid ignored by the kernel layer)
    b.mv("a1", "sp")
    b.li("a7", SYS.CLOCK_GETTIME)
    b.ecall()
    b.ld("t0", 0, "sp")  # seconds
    b.ld("t1", 8, "sp")  # nanoseconds
    b.li("t2", 1_000_000_000)
    b.mul("t0", "t0", "t2")
    b.add("a0", "t0", "t1")
    b.ld("ra", 24, "sp")
    b.addi("sp", "sp", 32)
    b.ret()


def _emit_data(b: AsmBuilder) -> None:
    b.data()
    b.align(8)
    b.label("rt_malloc_lock").quad(0)
    b.label("rt_malloc_cur").quad(0)
    b.label("rt_malloc_end").quad(0)
    b.label("rt_nl").asciz("\n")
    b.text()
