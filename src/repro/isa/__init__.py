"""GA64 guest instruction set: spec, codec, assembler, disassembler, builder."""

from repro.isa.assembler import Assembler, assemble
from repro.isa.builder import AsmBuilder
from repro.isa.disassembler import disassemble_block, disassemble_word, format_instruction
from repro.isa.encoding import INSTR_BYTES, decode, encode
from repro.isa.instructions import BY_OPCODE, SPECS, Flag, Fmt, Instruction, InstrSpec
from repro.isa.program import DEFAULT_TEXT_BASE, Program, Section
from repro.isa.registers import ABI_NAMES, NUM_REGS, reg_name, reg_num

__all__ = [
    "ABI_NAMES",
    "Assembler",
    "AsmBuilder",
    "BY_OPCODE",
    "DEFAULT_TEXT_BASE",
    "Flag",
    "Fmt",
    "INSTR_BYTES",
    "Instruction",
    "InstrSpec",
    "NUM_REGS",
    "Program",
    "SPECS",
    "Section",
    "assemble",
    "decode",
    "disassemble_block",
    "disassemble_word",
    "encode",
    "format_instruction",
    "reg_name",
    "reg_num",
]
