"""Two-pass GA64 assembler.

Turns assembly source into a :class:`~repro.isa.program.Program`.  Supports
sections (``.text``/``.data``/``.bss``), data directives, labels with simple
``label+offset`` arithmetic, and the usual RISC pseudo-instructions (``li``,
``la``, ``mv``, ``call``, ``ret``, ``beqz``…).

Operand syntax by format::

    add   rd, rs1, rs2          # R
    addi  rd, rs1, imm          # I
    ld    rd, imm(rs1)          # I loads
    sd    rs2, imm(rs1)         # S stores
    beq   rs1, rs2, label       # B
    jal   rd, label             # J
    movz  rd, imm16, hw         # M
    lr    rd, (rs1)             # atomics
    sc    rd, rs2, (rs1)
    cas   rd, rs2, (rs1)
    hint  imm                   # scheduling hint (paper §5.3)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import AssemblerError
from repro.isa.encoding import IMM14_MAX, IMM14_MIN, INSTR_BYTES, encode
from repro.isa.instructions import SPECS, Fmt, Instruction
from repro.isa.program import DEFAULT_TEXT_BASE, Program, Section
from repro.isa.registers import reg_num

__all__ = ["Assembler", "assemble"]

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_MEM_RE = re.compile(r"^(?P<off>[^()]*)\((?P<reg>[^()]+)\)$")

PAGE = 4096


def _parse_int(tok: str) -> int:
    tok = tok.strip()
    try:
        if tok.startswith("'") and tok.endswith("'") and len(tok) >= 3:
            body = tok[1:-1].encode().decode("unicode_escape")
            if len(body) != 1:
                raise ValueError
            return ord(body)
        return int(tok, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {tok!r}") from None


@dataclass
class _PendingInstr:
    addr: int  # offset within .text
    lineno: int
    mnemonic: str
    ops: list[str]


@dataclass
class _PendingData:
    section: str
    offset: int
    size: int
    expr: str
    lineno: int


class Assembler:
    """Two-pass assembler producing a loadable :class:`Program`."""

    def __init__(
        self,
        *,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: Optional[int] = None,
        entry_symbol: str = "_start",
    ) -> None:
        self.text_base = text_base
        self.data_base = data_base  # None: first page boundary after .text
        self.entry_symbol = entry_symbol

    # -- public API ----------------------------------------------------------

    def assemble(self, source: str) -> Program:
        lines = source.splitlines()
        symbols: dict[str, int] = {}
        sections = {
            ".text": Section(".text", self.text_base),
            ".data": Section(".data", 0),  # base fixed after pass 1
            ".bss": Section(".bss", 0),
        }
        pending_instrs: list[_PendingInstr] = []
        pending_data: list[_PendingData] = []

        # ---- pass 1: layout .text, record label positions ----
        cursor = {".text": 0, ".data": 0, ".bss": 0}
        current = ".text"
        label_positions: dict[str, tuple[str, int]] = {}

        def here() -> int:
            return cursor[current]

        for lineno, raw in enumerate(lines, start=1):
            line = raw.split("#", 1)[0].split("//", 1)[0].strip()
            if not line:
                continue
            # Labels (possibly several on one line).
            while True:
                m = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*", line)
                if not m:
                    break
                name = m.group(1)
                if name in label_positions:
                    raise AssemblerError(f"line {lineno}: duplicate label {name!r}")
                label_positions[name] = (current, here())
                line = line[m.end():]
            if not line:
                continue
            if line.startswith("."):
                current, size = self._directive_pass1(
                    line, lineno, current, cursor, sections, pending_data
                )
                continue
            # Instruction (or pseudo): compute expansion size.
            mnemonic, ops = self._split_instr(line, lineno)
            n_words = self._expansion_words(mnemonic, ops, lineno)
            if current != ".text":
                raise AssemblerError(f"line {lineno}: instruction outside .text")
            pending_instrs.append(
                _PendingInstr(addr=here(), lineno=lineno, mnemonic=mnemonic, ops=ops)
            )
            cursor[".text"] += n_words * INSTR_BYTES

        # ---- fix section bases ----
        sections[".text"].data = bytearray(cursor[".text"])
        text_end = self.text_base + cursor[".text"]
        data_base = (
            self.data_base
            if self.data_base is not None
            else (text_end + PAGE - 1) // PAGE * PAGE
        )
        sections[".data"].base = data_base
        data_end = data_base + cursor[".data"]
        bss_base = (data_end + PAGE - 1) // PAGE * PAGE
        sections[".bss"].base = bss_base
        sections[".bss"].data = bytearray(cursor[".bss"])
        # .data content gets filled during pass 1 directives; pad to cursor.
        if len(sections[".data"].data) < cursor[".data"]:
            sections[".data"].data.extend(
                bytes(cursor[".data"] - len(sections[".data"].data))
            )

        # ---- resolve labels to absolute addresses ----
        for name, (sec, off) in label_positions.items():
            symbols[name] = sections[sec].base + off

        # ---- pass 2: encode instructions ----
        text = sections[".text"]
        for pi in pending_instrs:
            pc = self.text_base + pi.addr
            instrs = self._expand(pi.mnemonic, pi.ops, pc, symbols, pi.lineno)
            for k, instr in enumerate(instrs):
                word = encode(instr)
                off = pi.addr + k * INSTR_BYTES
                text.data[off : off + 4] = word.to_bytes(4, "little")

        # ---- pass 2: data fixups ----
        for pd in pending_data:
            value = self._eval(pd.expr, symbols, pd.lineno)
            sec = sections[pd.section]
            sec.data[pd.offset : pd.offset + pd.size] = (value & ((1 << (8 * pd.size)) - 1)).to_bytes(pd.size, "little")

        if self.entry_symbol not in symbols:
            raise AssemblerError(f"entry symbol {self.entry_symbol!r} not defined")
        return Program(sections=sections, symbols=symbols, entry=symbols[self.entry_symbol])

    # -- pass-1 helpers -------------------------------------------------------

    def _directive_pass1(self, line, lineno, current, cursor, sections, pending_data):
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name in (".text", ".data", ".bss"):
            return name, 0
        if name == ".global" or name == ".globl":
            return current, 0
        if name == ".align":
            n = _parse_int(rest)
            if n <= 0:
                raise AssemblerError(f"line {lineno}: bad alignment {n}")
            pad = (-cursor[current]) % n
            cursor[current] += pad
            if current == ".data":
                sections[".data"].data.extend(bytes(pad))
            elif current == ".text":
                # pad with nops? simpler: zero words are invalid opcodes; pad
                # must be instruction-sized anyway.
                if pad % INSTR_BYTES:
                    raise AssemblerError(f"line {lineno}: .align in .text must be 4-aligned")
            return current, 0
        if name == ".space" or name == ".zero":
            n = _parse_int(rest)
            if n < 0:
                raise AssemblerError(f"line {lineno}: negative .space")
            if current == ".text":
                raise AssemblerError(f"line {lineno}: .space not allowed in .text")
            cursor[current] += n
            if current == ".data":
                sections[".data"].data.extend(bytes(n))
            return current, 0
        if name in (".quad", ".word", ".half", ".byte"):
            size = {".quad": 8, ".word": 4, ".half": 2, ".byte": 1}[name]
            if current == ".bss":
                raise AssemblerError(f"line {lineno}: initialized data in .bss")
            if current == ".text":
                raise AssemblerError(f"line {lineno}: data directive in .text")
            for item in self._split_operands(rest):
                pending_data.append(
                    _PendingData(current, cursor[current], size, item, lineno)
                )
                cursor[current] += size
                sections[".data"].data.extend(bytes(size))
            return current, 0
        if name in (".asciz", ".ascii", ".string"):
            if current != ".data":
                raise AssemblerError(f"line {lineno}: strings only allowed in .data")
            m = re.match(r'^"(.*)"$', rest.strip())
            if not m:
                raise AssemblerError(f"line {lineno}: bad string literal")
            payload = m.group(1).encode().decode("unicode_escape").encode("latin-1")
            if name in (".asciz", ".string"):
                payload += b"\x00"
            sections[".data"].data.extend(payload)
            cursor[".data"] += len(payload)
            return current, 0
        raise AssemblerError(f"line {lineno}: unknown directive {name}")

    @staticmethod
    def _split_instr(line: str, lineno: int) -> tuple[str, list[str]]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        ops = Assembler._split_operands(parts[1]) if len(parts) > 1 else []
        return mnemonic, ops

    @staticmethod
    def _split_operands(text: str) -> list[str]:
        """Split on commas not inside parentheses or quotes."""
        out, depth, cur, quote = [], 0, "", False
        for ch in text:
            if ch == "'" and not quote:
                quote = True
                cur += ch
            elif ch == "'" and quote:
                quote = False
                cur += ch
            elif ch == "(" and not quote:
                depth += 1
                cur += ch
            elif ch == ")" and not quote:
                depth -= 1
                cur += ch
            elif ch == "," and depth == 0 and not quote:
                out.append(cur.strip())
                cur = ""
            else:
                cur += ch
        if cur.strip():
            out.append(cur.strip())
        return out

    # -- pseudo-instruction expansion -----------------------------------------

    _PSEUDO_FIXED = {
        "nop": 1, "mv": 1, "neg": 1, "not": 1, "j": 1, "jr": 1,
        "call": 1, "ret": 1, "beqz": 1, "bnez": 1, "bgt": 1, "ble": 1,
        "bgtu": 1, "bleu": 1, "seqz": 1, "snez": 1, "la": 4,
    }

    def _expansion_words(self, mnemonic: str, ops: list[str], lineno: int) -> int:
        if mnemonic in SPECS:
            return 1
        if mnemonic in self._PSEUDO_FIXED:
            return self._PSEUDO_FIXED[mnemonic]
        if mnemonic == "li":
            if len(ops) != 2:
                raise AssemblerError(f"line {lineno}: li needs 2 operands")
            value = _parse_int(ops[1])
            return len(_li_sequence(0, value))
        raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")

    def _expand(
        self,
        mnemonic: str,
        ops: list[str],
        pc: int,
        symbols: dict[str, int],
        lineno: int,
    ) -> list[Instruction]:
        A = lambda m, **kw: Instruction(SPECS[m], **kw)  # noqa: E731
        R = reg_num
        try:
            if mnemonic == "nop":
                return [A("addi", rd=0, rs1=0, imm=0)]
            if mnemonic == "mv":
                return [A("addi", rd=R(ops[0]), rs1=R(ops[1]), imm=0)]
            if mnemonic == "neg":
                return [A("sub", rd=R(ops[0]), rs1=0, rs2=R(ops[1]))]
            if mnemonic == "not":
                return [A("xori", rd=R(ops[0]), rs1=R(ops[1]), imm=-1)]
            if mnemonic == "seqz":
                return [A("sltiu", rd=R(ops[0]), rs1=R(ops[1]), imm=1)]
            if mnemonic == "snez":
                return [A("sltu", rd=R(ops[0]), rs1=0, rs2=R(ops[1]))]
            if mnemonic == "j":
                return [A("jal", rd=0, imm=self._branch_off(ops[0], pc, symbols, lineno))]
            if mnemonic == "jr":
                return [A("jalr", rd=0, rs1=R(ops[0]), imm=0)]
            if mnemonic == "call":
                return [A("jal", rd=1, imm=self._branch_off(ops[0], pc, symbols, lineno))]
            if mnemonic == "ret":
                return [A("jalr", rd=0, rs1=1, imm=0)]
            if mnemonic in ("beqz", "bnez"):
                real = "beq" if mnemonic == "beqz" else "bne"
                return [
                    A(real, rs1=R(ops[0]), rs2=0,
                      imm=self._branch_off(ops[1], pc, symbols, lineno))
                ]
            if mnemonic in ("bgt", "ble", "bgtu", "bleu"):
                real = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}[mnemonic]
                return [
                    A(real, rs1=R(ops[1]), rs2=R(ops[0]),
                      imm=self._branch_off(ops[2], pc, symbols, lineno))
                ]
            if mnemonic == "li":
                return _li_sequence(R(ops[0]), _parse_int(ops[1]))
            if mnemonic == "la":
                addr = self._eval(ops[1], symbols, lineno)
                return _la_sequence(R(ops[0]), addr)
            spec = SPECS.get(mnemonic)
            if spec is None:
                raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
            return [self._parse_real(spec, mnemonic, ops, pc, symbols, lineno)]
        except (KeyError, IndexError) as exc:
            raise AssemblerError(f"line {lineno}: bad operands for {mnemonic}: {exc}") from None

    def _parse_real(self, spec, mnemonic, ops, pc, symbols, lineno) -> Instruction:
        A = lambda **kw: Instruction(spec, **kw)  # noqa: E731
        R = reg_num
        fmt = spec.fmt
        if fmt is Fmt.SYS:
            if ops:
                raise AssemblerError(f"line {lineno}: {mnemonic} takes no operands")
            return A()
        if mnemonic == "hint":
            # `hint 5` (literal group) or `hint t0` (group from register)
            operand = ops[0].strip()
            from repro.isa.registers import REG_BY_NAME

            if operand.lower() in REG_BY_NAME:
                return A(rd=0, rs1=R(operand), imm=0)
            return A(rd=0, rs1=0, imm=self._eval(operand, symbols, lineno))
        if fmt is Fmt.R:
            if spec.is_atomic:
                if mnemonic == "lr":
                    rd, mem = ops
                    return A(rd=R(rd), rs1=self._bare_mem(mem, lineno))
                rd, rs2, mem = ops
                return A(rd=R(rd), rs2=R(rs2), rs1=self._bare_mem(mem, lineno))
            if mnemonic in ("fsqrt", "fcvt.d.l", "fcvt.l.d"):
                return A(rd=R(ops[0]), rs1=R(ops[1]))
            return A(rd=R(ops[0]), rs1=R(ops[1]), rs2=R(ops[2]))
        if fmt is Fmt.I:
            if spec.is_load:
                off, base = self._mem_operand(ops[1], symbols, lineno)
                return A(rd=R(ops[0]), rs1=base, imm=off)
            if mnemonic == "jalr":
                return A(rd=R(ops[0]), rs1=R(ops[1]), imm=self._eval(ops[2], symbols, lineno))
            return A(rd=R(ops[0]), rs1=R(ops[1]), imm=self._eval(ops[2], symbols, lineno))
        if fmt is Fmt.S:
            off, base = self._mem_operand(ops[1], symbols, lineno)
            return A(rs2=R(ops[0]), rs1=base, imm=off)
        if fmt is Fmt.B:
            return A(rs1=R(ops[0]), rs2=R(ops[1]),
                     imm=self._branch_off(ops[2], pc, symbols, lineno))
        if fmt is Fmt.M:
            return A(rd=R(ops[0]), imm=self._eval(ops[1], symbols, lineno) & 0xFFFF,
                     hw=self._eval(ops[2], symbols, lineno) if len(ops) > 2 else 0)
        if fmt is Fmt.J:
            return A(rd=R(ops[0]), imm=self._branch_off(ops[1], pc, symbols, lineno))
        raise AssemblerError(f"line {lineno}: cannot parse {mnemonic}")  # pragma: no cover

    # -- operand helpers ------------------------------------------------------

    def _mem_operand(self, text: str, symbols, lineno) -> tuple[int, int]:
        m = _MEM_RE.match(text.strip())
        if not m:
            raise AssemblerError(f"line {lineno}: bad memory operand {text!r}")
        off_text = m.group("off").strip()
        off = self._eval(off_text, symbols, lineno) if off_text else 0
        return off, reg_num(m.group("reg").strip())

    def _bare_mem(self, text: str, lineno) -> int:
        m = _MEM_RE.match(text.strip())
        if not m or m.group("off").strip():
            raise AssemblerError(f"line {lineno}: atomic operand must be (reg): {text!r}")
        return reg_num(m.group("reg").strip())

    def _branch_off(self, target: str, pc: int, symbols, lineno) -> int:
        target = target.strip()
        if _LABEL_RE.match(target) or "+" in target or "-" in target[1:]:
            return self._eval(target, symbols, lineno) - pc
        return _parse_int(target)

    def _eval(self, expr: str, symbols: dict[str, int], lineno: int) -> int:
        expr = expr.strip()
        m = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-])\s*(.+)$", expr)
        if m:
            base = symbols.get(m.group(1))
            if base is None:
                raise AssemblerError(f"line {lineno}: unknown symbol {m.group(1)!r}")
            off = _parse_int(m.group(3))
            return base + off if m.group(2) == "+" else base - off
        if _LABEL_RE.match(expr) and not re.match(r"^-?\d|^0x", expr):
            if expr not in symbols:
                raise AssemblerError(f"line {lineno}: unknown symbol {expr!r}")
            return symbols[expr]
        return _parse_int(expr)


# -- wide-constant sequences ---------------------------------------------------


def _halfwords(value: int) -> list[int]:
    u = value & 0xFFFF_FFFF_FFFF_FFFF
    return [(u >> (16 * k)) & 0xFFFF for k in range(4)]


def _li_sequence(rd: int, value: int) -> list[Instruction]:
    """Minimal movz/movn/movk (or addi) sequence materializing ``value``."""
    from repro.isa.instructions import SPECS

    if IMM14_MIN <= value <= IMM14_MAX:
        return [Instruction(SPECS["addi"], rd=rd, rs1=0, imm=value)]
    hws = _halfwords(value)
    nonzero = [k for k, h in enumerate(hws) if h != 0]
    nonffff = [k for k, h in enumerate(hws) if h != 0xFFFF]
    out: list[Instruction] = []
    if len(nonffff) < len(nonzero):
        first, *rest = nonffff if nonffff else [0]
        out.append(Instruction(SPECS["movn"], rd=rd, imm=(~hws[first]) & 0xFFFF, hw=first))
        for k in rest:
            out.append(Instruction(SPECS["movk"], rd=rd, imm=hws[k], hw=k))
    else:
        if not nonzero:
            return [Instruction(SPECS["movz"], rd=rd, imm=0, hw=0)]
        first, *rest = nonzero
        out.append(Instruction(SPECS["movz"], rd=rd, imm=hws[first], hw=first))
        for k in rest:
            out.append(Instruction(SPECS["movk"], rd=rd, imm=hws[k], hw=k))
    return out


def _la_sequence(rd: int, addr: int) -> list[Instruction]:
    """Fixed four-instruction absolute-address load (size known in pass 1)."""
    from repro.isa.instructions import SPECS

    hws = _halfwords(addr)
    out = [Instruction(SPECS["movz"], rd=rd, imm=hws[0], hw=0)]
    for k in (1, 2, 3):
        out.append(Instruction(SPECS["movk"], rd=rd, imm=hws[k], hw=k))
    return out


def assemble(source: str, **kwargs) -> Program:
    """Convenience wrapper: assemble ``source`` with default bases."""
    return Assembler(**kwargs).assemble(source)
