"""Programmatic macro-assembler.

The guest runtime library and the PARSEC-like workloads are too large to
write as literal assembly strings, so they are generated with
:class:`AsmBuilder`: a thin fluent layer that accumulates assembly source
(one code path — everything still flows through the real assembler).

Any GA64 mnemonic or pseudo-instruction is available as a method::

    b = AsmBuilder()
    b.label("loop")
    b.addi("t0", "t0", 1)
    b.blt("t0", "t1", "loop")
    b.ld("a0", 8, "sp")          # loads/stores: (rd, offset, base)
    b.sc("t2", "t1", "t0")       # atomics: address register last
    prog = b.assemble()

Label allocation (:meth:`fresh_label`) keeps generated control flow
collision-free across library routines.
"""

from __future__ import annotations

import itertools

from repro.errors import AssemblerError
from repro.isa.assembler import Assembler
from repro.isa.instructions import SPECS
from repro.isa.program import Program

__all__ = ["AsmBuilder"]

_PSEUDOS = {
    "nop", "mv", "neg", "not", "j", "jr", "call", "ret", "beqz", "bnez",
    "bgt", "ble", "bgtu", "bleu", "seqz", "snez", "li", "la",
}

_LOADS = {"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"}
_STORES = {"sb", "sh", "sw", "sd"}
_ATOMIC_RMW = {"sc", "cas", "amoadd", "amoswap"}


class AsmBuilder:
    """Accumulates assembly source; emits through the two-pass assembler."""

    def __init__(self) -> None:
        self._text: list[str] = [".text"]
        self._data: list[str] = [".data"]
        self._bss: list[str] = [".bss"]
        self._section = self._text
        self._labels = itertools.count()

    # -- structure ------------------------------------------------------------

    def text(self) -> "AsmBuilder":
        self._section = self._text
        return self

    def data(self) -> "AsmBuilder":
        self._section = self._data
        return self

    def bss(self) -> "AsmBuilder":
        self._section = self._bss
        return self

    def label(self, name: str) -> "AsmBuilder":
        self._section.append(f"{name}:")
        return self

    def fresh_label(self, prefix: str = "L") -> str:
        return f".{prefix}_{next(self._labels)}"

    def raw(self, line: str) -> "AsmBuilder":
        self._section.append(line)
        return self

    def comment(self, text: str) -> "AsmBuilder":
        self._section.append(f"# {text}")
        return self

    # -- data directives --------------------------------------------------------

    def quad(self, *values) -> "AsmBuilder":
        self._section.append(".quad " + ", ".join(str(v) for v in values))
        return self

    def word(self, *values) -> "AsmBuilder":
        self._section.append(".word " + ", ".join(str(v) for v in values))
        return self

    def space(self, n: int) -> "AsmBuilder":
        self._section.append(f".space {n}")
        return self

    def align(self, n: int) -> "AsmBuilder":
        self._section.append(f".align {n}")
        return self

    def asciz(self, s: str) -> "AsmBuilder":
        escaped = s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        self._section.append(f'.asciz "{escaped}"')
        return self

    # -- instructions ------------------------------------------------------------

    def emit(self, mnemonic: str, *ops) -> "AsmBuilder":
        mnemonic = mnemonic.lower()
        if mnemonic in _LOADS:
            rd, off, base = ops
            self._section.append(f"{mnemonic} {rd}, {off}({base})")
        elif mnemonic in _STORES:
            rs2, off, base = ops
            self._section.append(f"{mnemonic} {rs2}, {off}({base})")
        elif mnemonic == "lr":
            rd, addr = ops
            self._section.append(f"lr {rd}, ({addr})")
        elif mnemonic in _ATOMIC_RMW:
            rd, rs2, addr = ops
            self._section.append(f"{mnemonic} {rd}, {rs2}, ({addr})")
        elif mnemonic in SPECS or mnemonic in _PSEUDOS:
            self._section.append(
                mnemonic + (" " + ", ".join(str(o) for o in ops) if ops else "")
            )
        else:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
        return self

    def __getattr__(self, name: str):
        lowered = name.lower()
        if lowered in SPECS or lowered in _PSEUDOS:
            return lambda *ops: self.emit(lowered, *ops)
        if lowered.endswith("_") and lowered[:-1] in SPECS:  # and_/or_/not_ (keywords)
            return lambda *ops: self.emit(lowered[:-1], *ops)
        dotted = lowered.replace("_", ".")
        if dotted in SPECS:  # fcvt_d_l -> fcvt.d.l
            return lambda *ops: self.emit(dotted, *ops)
        raise AttributeError(name)

    # -- common idioms ------------------------------------------------------------

    def prologue(self, frame: int = 16) -> "AsmBuilder":
        """Standard function entry: push ra/s0."""
        self.addi("sp", "sp", -frame)
        self.sd("ra", frame - 8, "sp")
        self.sd("s0", frame - 16, "sp")
        return self

    def epilogue(self, frame: int = 16) -> "AsmBuilder":
        self.ld("ra", frame - 8, "sp")
        self.ld("s0", frame - 16, "sp")
        self.addi("sp", "sp", frame)
        self.ret()
        return self

    def syscall(self, sysno: int) -> "AsmBuilder":
        """Load the syscall number and trap (args already in a0..a5)."""
        self.li("a7", sysno)
        self.ecall()
        return self

    # -- output ------------------------------------------------------------

    def source(self) -> str:
        return "\n".join(self._text + self._data + self._bss) + "\n"

    def assemble(self, **kwargs) -> Program:
        return Assembler(**kwargs).assemble(self.source())
