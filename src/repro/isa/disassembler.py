"""GA64 disassembler (for debugging, tracing and round-trip tests)."""

from __future__ import annotations

from repro.isa.encoding import decode
from repro.isa.instructions import Fmt, Instruction
from repro.isa.registers import reg_name

__all__ = ["format_instruction", "disassemble_word", "disassemble_block"]


def format_instruction(instr: Instruction) -> str:
    """Render a decoded instruction in assembler-accepted syntax."""
    spec = instr.spec
    m = spec.mnemonic
    r = reg_name
    if spec.fmt is Fmt.SYS:
        return m
    if m == "hint":
        return f"hint {instr.imm}"
    if spec.fmt is Fmt.R:
        if m == "lr":
            return f"lr {r(instr.rd)}, ({r(instr.rs1)})"
        if spec.is_atomic:
            return f"{m} {r(instr.rd)}, {r(instr.rs2)}, ({r(instr.rs1)})"
        if m in ("fsqrt", "fcvt.d.l", "fcvt.l.d"):
            return f"{m} {r(instr.rd)}, {r(instr.rs1)}"
        return f"{m} {r(instr.rd)}, {r(instr.rs1)}, {r(instr.rs2)}"
    if spec.fmt is Fmt.I:
        if spec.is_load:
            return f"{m} {r(instr.rd)}, {instr.imm}({r(instr.rs1)})"
        return f"{m} {r(instr.rd)}, {r(instr.rs1)}, {instr.imm}"
    if spec.fmt is Fmt.S:
        return f"{m} {r(instr.rs2)}, {instr.imm}({r(instr.rs1)})"
    if spec.fmt is Fmt.B:
        return f"{m} {r(instr.rs1)}, {r(instr.rs2)}, {instr.imm}"
    if spec.fmt is Fmt.M:
        return f"{m} {r(instr.rd)}, {instr.imm}, {instr.hw}"
    if spec.fmt is Fmt.J:
        return f"{m} {r(instr.rd)}, {instr.imm}"
    raise AssertionError(f"unhandled format {spec.fmt}")  # pragma: no cover


def disassemble_word(word: int, pc: int | None = None) -> str:
    return format_instruction(decode(word, pc=pc))


def disassemble_block(data: bytes, base: int = 0) -> list[str]:
    """Disassemble a byte blob into ``addr: text`` lines."""
    out = []
    for off in range(0, len(data) - len(data) % 4, 4):
        word = int.from_bytes(data[off : off + 4], "little")
        try:
            text = disassemble_word(word, pc=base + off)
        except Exception:
            text = f".word {word:#010x}"
        out.append(f"{base + off:#010x}: {text}")
    return out
