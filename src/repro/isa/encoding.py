"""Binary encoding/decoding of GA64 instructions.

Word layout (bit 31 = MSB):

====  ==========  ==========  ==========  =================
fmt   [31:24]     [23:19]     [18:14]     [13:0]
====  ==========  ==========  ==========  =================
R     opcode      rd          rs1         rs2 in [13:9]
I     opcode      rd          rs1         imm14 (signed)
S/B   opcode      rs1         rs2         imm14 (signed)
M     opcode      rd          hw [18:17]  imm16 in [16:1]*
J     opcode      rd          imm19 in [18:0] (signed)
SYS   opcode      0           0           0
====  ==========  ==========  ==========  =================

(*) For M-format the 16-bit immediate occupies bits [15:0] and the halfword
selector bits [17:16]; bit 18 is reserved-zero.

Branch/jump immediates are signed *byte* offsets relative to the branch
instruction's own address and must be 4-byte aligned.
"""

from __future__ import annotations

from repro.errors import EncodingError, InvalidInstruction
from repro.isa.instructions import BY_OPCODE, Fmt, Instruction
from repro.isa.registers import NUM_REGS

__all__ = [
    "encode",
    "decode",
    "IMM14_MIN",
    "IMM14_MAX",
    "IMM19_MIN",
    "IMM19_MAX",
    "INSTR_BYTES",
]

INSTR_BYTES = 4

IMM14_MIN, IMM14_MAX = -(1 << 13), (1 << 13) - 1
IMM19_MIN, IMM19_MAX = -(1 << 18), (1 << 18) - 1


def _check_reg(value: int, what: str) -> None:
    if not 0 <= value < NUM_REGS:
        raise EncodingError(f"{what} out of range: {value}")


def _check_imm(value: int, lo: int, hi: int, what: str) -> None:
    if not lo <= value <= hi:
        raise EncodingError(f"{what} out of range [{lo}, {hi}]: {value}")


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit word."""
    spec = instr.spec
    word = spec.opcode << 24
    fmt = spec.fmt
    if fmt is Fmt.R:
        _check_reg(instr.rd, "rd")
        _check_reg(instr.rs1, "rs1")
        _check_reg(instr.rs2, "rs2")
        word |= instr.rd << 19 | instr.rs1 << 14 | instr.rs2 << 9
    elif fmt is Fmt.I:
        _check_reg(instr.rd, "rd")
        _check_reg(instr.rs1, "rs1")
        _check_imm(instr.imm, IMM14_MIN, IMM14_MAX, "imm14")
        word |= instr.rd << 19 | instr.rs1 << 14 | (instr.imm & 0x3FFF)
    elif fmt in (Fmt.S, Fmt.B):
        _check_reg(instr.rs1, "rs1")
        _check_reg(instr.rs2, "rs2")
        _check_imm(instr.imm, IMM14_MIN, IMM14_MAX, "imm14")
        if fmt is Fmt.B and instr.imm % 4 != 0:
            raise EncodingError(f"branch offset not 4-aligned: {instr.imm}")
        word |= instr.rs1 << 19 | instr.rs2 << 14 | (instr.imm & 0x3FFF)
    elif fmt is Fmt.M:
        _check_reg(instr.rd, "rd")
        if not 0 <= instr.hw <= 3:
            raise EncodingError(f"halfword index out of range: {instr.hw}")
        if not 0 <= instr.imm <= 0xFFFF:
            raise EncodingError(f"imm16 out of range: {instr.imm}")
        word |= instr.rd << 19 | instr.hw << 16 | instr.imm
    elif fmt is Fmt.J:
        _check_reg(instr.rd, "rd")
        _check_imm(instr.imm, IMM19_MIN, IMM19_MAX, "imm19")
        if instr.imm % 4 != 0:
            raise EncodingError(f"jump offset not 4-aligned: {instr.imm}")
        word |= instr.rd << 19 | (instr.imm & 0x7FFFF)
    elif fmt is Fmt.SYS:
        pass
    else:  # pragma: no cover - exhaustive
        raise EncodingError(f"unknown format {fmt}")
    return word


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode(word: int, *, pc: int | None = None) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`InvalidInstruction` for undefined opcodes so the engine
    can deliver a guest fault at ``pc``.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opcode = (word >> 24) & 0xFF
    spec = BY_OPCODE.get(opcode)
    if spec is None:
        raise InvalidInstruction(f"undefined opcode {opcode:#x} in word {word:#010x}", pc=pc)
    fmt = spec.fmt
    if fmt is Fmt.R:
        return Instruction(
            spec,
            rd=(word >> 19) & 0x1F,
            rs1=(word >> 14) & 0x1F,
            rs2=(word >> 9) & 0x1F,
        )
    if fmt is Fmt.I:
        return Instruction(
            spec,
            rd=(word >> 19) & 0x1F,
            rs1=(word >> 14) & 0x1F,
            imm=_sext(word & 0x3FFF, 14),
        )
    if fmt in (Fmt.S, Fmt.B):
        return Instruction(
            spec,
            rs1=(word >> 19) & 0x1F,
            rs2=(word >> 14) & 0x1F,
            imm=_sext(word & 0x3FFF, 14),
        )
    if fmt is Fmt.M:
        return Instruction(
            spec,
            rd=(word >> 19) & 0x1F,
            hw=(word >> 16) & 0x3,
            imm=word & 0xFFFF,
        )
    if fmt is Fmt.J:
        return Instruction(
            spec,
            rd=(word >> 19) & 0x1F,
            imm=_sext(word & 0x7FFFF, 19),
        )
    return Instruction(spec)  # SYS
