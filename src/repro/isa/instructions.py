"""GA64 instruction set specification.

Every instruction is described by an :class:`InstrSpec` row; the tables here
are the single source of truth shared by the encoder, decoder, assembler,
disassembler, interpreter and DBT frontend.

Formats (32-bit words, little-endian):

====  =======================================  =========================
fmt   fields                                   examples
====  =======================================  =========================
R     op rd rs1 rs2                            add, fmul, lr, sc, cas
I     op rd rs1 imm14                          addi, ld, jalr, hint
S     op rs1 rs2 imm14                         sd  (mem[rs1+imm] = rs2)
B     op rs1 rs2 imm14 (pc-relative bytes)     beq, blt
M     op rd hw imm16                           movz, movk
J     op rd imm19 (pc-relative bytes)          jal
SYS   op                                       ecall, ebreak, fence
====  =======================================  =========================

Atomic semantics (paper §3.4/§4.4 relies on these):

* ``lr rd, (rs1)``    — load-linked 64-bit, sets a reservation.
* ``sc rd, rs2, (rs1)`` — store-conditional; rd := 0 on success, 1 on failure.
* ``cas rd, rs2, (rs1)`` — compare-and-swap; compares memory with *rd*,
  stores rs2 on match, always returns the old memory value in rd.
* ``amoadd/amoswap rd, rs2, (rs1)`` — fetch-and-op, always succeed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Fmt", "Flag", "InstrSpec", "SPECS", "BY_OPCODE", "Instruction"]


class Fmt(enum.Enum):
    R = "R"
    I = "I"
    S = "S"
    B = "B"
    M = "M"
    J = "J"
    SYS = "SYS"


class Flag(enum.Flag):
    NONE = 0
    LOAD = enum.auto()
    STORE = enum.auto()
    ATOMIC = enum.auto()
    BRANCH = enum.auto()  # may change pc
    FP = enum.auto()
    SYSCALL = enum.auto()
    FENCE = enum.auto()
    HINT = enum.auto()


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one GA64 instruction."""

    mnemonic: str
    opcode: int
    fmt: Fmt
    flags: Flag = Flag.NONE
    access_bytes: int = 0  # memory access width (loads/stores/atomics)
    signed: bool = True  # sign-extend loaded value?

    @property
    def is_load(self) -> bool:
        return bool(self.flags & Flag.LOAD)

    @property
    def is_store(self) -> bool:
        return bool(self.flags & Flag.STORE)

    @property
    def is_atomic(self) -> bool:
        return bool(self.flags & Flag.ATOMIC)

    @property
    def is_branch(self) -> bool:
        return bool(self.flags & Flag.BRANCH)


def _build_specs() -> dict[str, InstrSpec]:
    rows: list[tuple] = []
    # (mnemonic, fmt, flags, access_bytes, signed)
    R, I, S, B, M, J, SYS = Fmt.R, Fmt.I, Fmt.S, Fmt.B, Fmt.M, Fmt.J, Fmt.SYS
    F = Flag

    # Integer register-register.
    for m in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
              "mul", "mulh", "mulhu", "div", "divu", "rem", "remu",
              "slt", "sltu"):
        rows.append((m, R, F.NONE, 0, True))
    # Double-precision float on integer registers (bit patterns).
    for m in ("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax",
              "feq", "flt", "fle"):
        rows.append((m, R, F.FP, 0, True))
    rows.append(("fsqrt", R, F.FP, 0, True))       # unary: rs2 ignored
    rows.append(("fcvt.d.l", R, F.FP, 0, True))    # int -> double bits
    rows.append(("fcvt.l.d", R, F.FP, 0, True))    # double bits -> int
    # Atomics (64-bit, 8-byte aligned).
    rows.append(("lr", R, F.LOAD | F.ATOMIC, 8, True))
    rows.append(("sc", R, F.STORE | F.ATOMIC, 8, True))
    rows.append(("cas", R, F.LOAD | F.STORE | F.ATOMIC, 8, True))
    rows.append(("amoadd", R, F.LOAD | F.STORE | F.ATOMIC, 8, True))
    rows.append(("amoswap", R, F.LOAD | F.STORE | F.ATOMIC, 8, True))
    # Integer immediates.
    for m in ("addi", "andi", "ori", "xori", "slli", "srli", "srai",
              "slti", "sltiu"):
        rows.append((m, I, F.NONE, 0, True))
    # Loads.
    rows.append(("lb", I, F.LOAD, 1, True))
    rows.append(("lh", I, F.LOAD, 2, True))
    rows.append(("lw", I, F.LOAD, 4, True))
    rows.append(("ld", I, F.LOAD, 8, True))
    rows.append(("lbu", I, F.LOAD, 1, False))
    rows.append(("lhu", I, F.LOAD, 2, False))
    rows.append(("lwu", I, F.LOAD, 4, False))
    # Stores.
    rows.append(("sb", S, F.STORE, 1, True))
    rows.append(("sh", S, F.STORE, 2, True))
    rows.append(("sw", S, F.STORE, 4, True))
    rows.append(("sd", S, F.STORE, 8, True))
    # Control flow.
    rows.append(("jalr", I, F.BRANCH, 0, True))
    rows.append(("jal", J, F.BRANCH, 0, True))
    for m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        rows.append((m, B, F.BRANCH, 0, True))
    # Wide immediates.
    rows.append(("movz", M, F.NONE, 0, True))
    rows.append(("movk", M, F.NONE, 0, True))
    rows.append(("movn", M, F.NONE, 0, True))  # rd = ~(imm16 << 16*hw)
    # System.
    rows.append(("ecall", SYS, F.SYSCALL, 0, True))
    rows.append(("ebreak", SYS, F.NONE, 0, True))
    rows.append(("fence", SYS, F.FENCE, 0, True))
    # Scheduling hint: no-op carrying a thread-group id in imm (paper §5.3).
    rows.append(("hint", I, F.HINT, 0, True))

    specs: dict[str, InstrSpec] = {}
    for opcode, (mnemonic, fmt, flags, nbytes, signed) in enumerate(rows, start=1):
        specs[mnemonic] = InstrSpec(
            mnemonic=mnemonic,
            opcode=opcode,
            fmt=fmt,
            flags=flags,
            access_bytes=nbytes,
            signed=signed,
        )
    return specs


#: mnemonic -> spec
SPECS: dict[str, InstrSpec] = _build_specs()
#: opcode -> spec
BY_OPCODE: dict[int, InstrSpec] = {s.opcode: s for s in SPECS.values()}


@dataclass(frozen=True)
class Instruction:
    """A decoded GA64 instruction (operands resolved to numbers)."""

    spec: InstrSpec
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    hw: int = 0  # 16-bit halfword index for movz/movk (0..3)

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def __repr__(self) -> str:  # compact, for assertions/debugging
        return (
            f"Instruction({self.spec.mnemonic}, rd={self.rd}, rs1={self.rs1},"
            f" rs2={self.rs2}, imm={self.imm}, hw={self.hw})"
        )
