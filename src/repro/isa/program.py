"""Guest program image.

A :class:`Program` is the output of the assembler: named sections with base
addresses and contents, a symbol table, and an entry point.  It plays the
role of the statically linked ELF binaries the paper runs — DQEMU's loader
copies the sections into the guest memory region of the master node and the
coherence protocol distributes pages on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import AssemblerError

__all__ = ["Section", "Program", "DEFAULT_TEXT_BASE"]

DEFAULT_TEXT_BASE = 0x0001_0000


@dataclass
class Section:
    name: str
    base: int
    data: bytearray = field(default_factory=bytearray)

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


@dataclass
class Program:
    """An assembled guest binary image."""

    sections: dict[str, Section]
    symbols: dict[str, int]
    entry: int

    @property
    def text(self) -> Section:
        return self.sections[".text"]

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblerError(f"unknown symbol {name!r}") from None

    def iter_load_segments(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(vaddr, bytes)`` pairs in ascending address order."""
        for sec in sorted(self.sections.values(), key=lambda s: s.base):
            if sec.data:
                yield sec.base, bytes(sec.data)

    @property
    def load_end(self) -> int:
        """First address past all loaded sections (start of the heap)."""
        return max((sec.end for sec in self.sections.values()), default=0)

    def overlapping_sections(self) -> list[tuple[str, str]]:
        """Sanity check used by tests: section pairs that overlap."""
        secs = sorted(self.sections.values(), key=lambda s: s.base)
        bad = []
        for a, b in zip(secs, secs[1:]):
            if a.end > b.base and a.data and b.data:
                bad.append((a.name, b.name))
        return bad
