"""GA64 register file definition and ABI names.

GA64 is the guest architecture of this reproduction: a 64-bit RISC ISA in the
RISC-V/ARM mould (the paper's guest is ARM).  There are 32 integer registers;
``x0`` is hardwired to zero.  Floating point (double precision) shares the
integer register file via bit patterns, which keeps the register state a
single 32-element vector — convenient for fast context snapshots during
remote thread migration.
"""

from __future__ import annotations

__all__ = [
    "NUM_REGS",
    "ZERO",
    "RA",
    "SP",
    "GP",
    "TP",
    "ABI_NAMES",
    "REG_BY_NAME",
    "reg_num",
    "reg_name",
]

NUM_REGS = 32

ZERO = 0
RA = 1
SP = 2
GP = 3
TP = 4

#: Canonical ABI name for each register number (RISC-V convention).
ABI_NAMES: tuple[str, ...] = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

assert len(ABI_NAMES) == NUM_REGS

#: Accepts both ABI names, the alias "fp" (= s0), and raw "x<N>" names.
REG_BY_NAME: dict[str, int] = {name: i for i, name in enumerate(ABI_NAMES)}
REG_BY_NAME["fp"] = 8
for _i in range(NUM_REGS):
    REG_BY_NAME[f"x{_i}"] = _i

# Argument/return registers for the syscall and call ABI.
A0 = 10
A7 = 17


def reg_num(name: str | int) -> int:
    """Resolve a register operand (name or number) to its index."""
    if isinstance(name, int):
        if not 0 <= name < NUM_REGS:
            raise KeyError(f"register number out of range: {name}")
        return name
    try:
        return REG_BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(f"unknown register {name!r}") from None


def reg_name(num: int) -> str:
    """ABI name for a register number."""
    return ABI_NAMES[num]
