"""Emulated kernel layer: syscalls, VFS, futex table, thread table, mmap."""

from repro.kernel.classify import GLOBAL_SYSCALLS, LOCAL_SYSCALLS, is_global
from repro.kernel.futex import FutexTable, Waiter
from repro.kernel.mm import MemoryManager
from repro.kernel.syscalls import (
    CloneRequest,
    KernelMemory,
    SyscallExecutor,
    SyscallResult,
    SystemState,
)
from repro.kernel.sysnums import ERRNO, FUTEX_WAIT, FUTEX_WAKE, SYS, sys_name
from repro.kernel.threads import ThreadRecord, ThreadState, ThreadTable
from repro.kernel.vfs import VFS

__all__ = [
    "CloneRequest",
    "ERRNO",
    "FUTEX_WAIT",
    "FUTEX_WAKE",
    "FutexTable",
    "GLOBAL_SYSCALLS",
    "KernelMemory",
    "LOCAL_SYSCALLS",
    "MemoryManager",
    "SYS",
    "SyscallExecutor",
    "SyscallResult",
    "SystemState",
    "ThreadRecord",
    "ThreadState",
    "ThreadTable",
    "VFS",
    "Waiter",
    "is_global",
    "sys_name",
]
