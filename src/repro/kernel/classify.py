"""Local/global syscall classification (paper §4.3).

Global syscalls mutate or read state that must be visible to every guest
thread, so a slave forwards them to the master.  Local syscalls (e.g.
``gettimeofday`` in the paper) can be served on the node without a round
trip.  The paper implements 19 global syscalls — "this list could be updated
as more benchmarks are supported" — and so can this table.
"""

from __future__ import annotations

from repro.kernel.sysnums import SYS

__all__ = ["GLOBAL_SYSCALLS", "LOCAL_SYSCALLS", "is_global"]

#: Syscalls that must execute on the master.
GLOBAL_SYSCALLS = frozenset(
    {
        SYS.OPENAT,
        SYS.CLOSE,
        SYS.LSEEK,
        SYS.READ,
        SYS.WRITE,
        SYS.EXIT,
        SYS.EXIT_GROUP,
        SYS.SET_TID_ADDRESS,
        SYS.FUTEX,
        SYS.BRK,
        SYS.MUNMAP,
        SYS.CLONE,
        SYS.MMAP,
        # live thread migration: the master must re-place the thread (§4.1)
        SYS.SCHED_SETAFFINITY,
    }
)

#: Syscalls a slave may execute locally.
LOCAL_SYSCALLS = frozenset(
    {
        SYS.NANOSLEEP,
        SYS.CLOCK_GETTIME,
        SYS.SCHED_YIELD,
        SYS.GETTIMEOFDAY,
        SYS.GETPID,
        SYS.GETTID,
        SYS.MPROTECT,
        SYS.MADVISE,
    }
)


def is_global(sysno: int) -> bool:
    """Unknown syscalls go to the master too — it owns the ENOSYS answer."""
    return sysno not in LOCAL_SYSCALLS
