"""Distributed futex table (paper §4.4).

Linux keeps a per-address wait queue for futexes; DQEMU emulates that with a
futex table on the master so threads on any node can sleep on and wake guest
addresses.  The table itself is pure bookkeeping: the *value check* of
FUTEX_WAIT (compare the word at uaddr against the expected value) is done by
the syscall executor, which can read guest memory through the coherence
protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Optional

__all__ = ["FutexTable", "Waiter"]


@dataclass(frozen=True)
class Waiter:
    tid: int
    node: int  # where the thread is parked — the wake message goes there
    #: CPU snapshot taken when the thread parked (attached by the master's
    #: syscall service).  A parked thread's context lives *here*, not on its
    #: node, which is what makes it evacuable after the node dies.
    context: Any = None


class FutexTable:
    """uaddr → FIFO of waiting threads.

    ``tenant`` labels which job's futex namespace this table is: every
    admitted job gets its own table (built into its own ``SystemState``),
    so identical uaddrs in different guests can never wake each other —
    isolation is structural, not filtered.
    """

    def __init__(self, tenant: int = 0) -> None:
        self.tenant = tenant
        self._queues: dict[int, Deque[Waiter]] = {}
        self.total_waits = 0
        self.total_wakes = 0

    def enqueue(self, uaddr: int, tid: int, node: int) -> None:
        self._queues.setdefault(uaddr, deque()).append(Waiter(tid, node))
        self.total_waits += 1

    def wake(self, uaddr: int, count: int) -> list[Waiter]:
        """Pop up to ``count`` waiters in FIFO order."""
        queue = self._queues.get(uaddr)
        if not queue:
            return []
        woken: list[Waiter] = []
        while queue and len(woken) < count:
            woken.append(queue.popleft())
        if not queue:
            del self._queues[uaddr]
        self.total_wakes += len(woken)
        return woken

    def attach_context(self, tid: int, context: Any) -> bool:
        """Record a parked thread's CPU snapshot on its waiter entry."""
        for uaddr, queue in self._queues.items():
            for i, w in enumerate(queue):
                if w.tid == tid:
                    queue[i] = replace(w, context=context)
                    return True
        return False

    def find(self, tid: int) -> Optional[Waiter]:
        """The waiter entry for a parked thread, if it is parked."""
        for queue in self._queues.values():
            for w in queue:
                if w.tid == tid:
                    return w
        return None

    def remove(self, tid: int) -> bool:
        """Drop a thread from any queue (thread killed while waiting)."""
        for uaddr, queue in list(self._queues.items()):
            filtered = deque(w for w in queue if w.tid != tid)
            if len(filtered) != len(queue):
                if filtered:
                    self._queues[uaddr] = filtered
                else:
                    del self._queues[uaddr]
                return True
        return False

    def waiters(self, uaddr: int) -> tuple[Waiter, ...]:
        return tuple(self._queues.get(uaddr, ()))

    @property
    def n_sleeping(self) -> int:
        return sum(len(q) for q in self._queues.values())
