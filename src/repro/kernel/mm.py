"""Guest address-space management: brk heap and anonymous mmap.

A bump allocator is enough for the benchmarks (thread stacks and malloc
arenas are allocated once and the workloads run to completion); munmap
tracks the region so double-unmap is caught, but addresses are not recycled
— the 64-bit guest space makes that a non-issue, the same argument the
paper makes for shadow pages (§5.1).
"""

from __future__ import annotations

from repro.kernel.sysnums import ERRNO
from repro.mem.layout import MMAP_BASE, PAGE_SIZE, SHADOW_BASE

__all__ = ["MemoryManager"]


def _page_align_up(n: int) -> int:
    return (n + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


class MemoryManager:
    def __init__(self, *, brk_start: int):
        self._brk_start = _page_align_up(brk_start)
        self._brk = self._brk_start
        self._mmap_cursor = MMAP_BASE
        self._regions: dict[int, int] = {}  # addr -> length

    # -- brk --------------------------------------------------------------

    def brk(self, addr: int) -> int:
        """Linux brk: 0 or bad address returns the current break."""
        if addr >= self._brk_start and addr < MMAP_BASE:
            self._brk = addr
        return self._brk

    @property
    def current_brk(self) -> int:
        return self._brk

    # -- mmap --------------------------------------------------------------

    def mmap(self, length: int) -> int:
        """Anonymous private mapping; returns the address or -errno."""
        if length <= 0:
            return -ERRNO.EINVAL
        length = _page_align_up(length)
        addr = self._mmap_cursor
        if addr + length > SHADOW_BASE:
            return -ERRNO.ENOMEM  # would collide with the shadow-page area
        self._mmap_cursor = addr + length
        self._regions[addr] = length
        return addr

    def munmap(self, addr: int, length: int) -> int:
        known = self._regions.get(addr)
        if known is None or _page_align_up(length) != known:
            return -ERRNO.EINVAL
        del self._regions[addr]
        return 0

    def is_mapped(self, addr: int) -> bool:
        for base, length in self._regions.items():
            if base <= addr < base + length:
                return True
        return False

    @property
    def mapped_bytes(self) -> int:
        return sum(self._regions.values())
