"""Guest syscall execution against the centralized system state (paper §4.3).

The master owns the authoritative system state (files, futexes, threads,
address-space layout); this module implements the syscalls against it.
Because syscalls may touch guest memory through the coherence protocol
(pointer arguments — the paper migrates those pages to the master), every
executor entry point is a *generator* in simulation-process style: it
``yield``s whatever events the guest-memory accessor needs and finally
returns a :class:`SyscallResult`.

Deviations from Linux, by design of the GA64 ISA:

* futex words are 64-bit (GA64 atomics are 64-bit only);
* ``clear_child_tid`` is zeroed as a 64-bit store on exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Protocol

from repro.kernel.futex import FutexTable, Waiter
from repro.kernel.mm import MemoryManager
from repro.kernel.sysnums import ERRNO, FUTEX_OP_MASK, FUTEX_WAIT, FUTEX_WAKE, SYS
from repro.kernel.threads import ThreadState, ThreadTable
from repro.kernel.vfs import VFS

__all__ = ["KernelMemory", "SystemState", "SyscallResult", "SyscallExecutor", "CloneRequest"]


class KernelMemory(Protocol):
    """Guest-memory accessor used by the kernel (generator-based so the
    master can acquire pages through the DSM while executing a syscall)."""

    def read_guest(self, addr: int, size: int) -> Generator[Any, Any, bytes]:
        ...

    def write_guest(self, addr: int, data: bytes) -> Generator[Any, Any, None]:
        ...


@dataclass
class CloneRequest:
    flags: int
    child_stack: int
    ptid: int
    tls: int
    ctid: int
    parent_tid: int


@dataclass
class SyscallResult:
    """Outcome of a syscall.

    ``action`` tells the delegation layer what to do next:

    * ``return``      — resume the thread with ``retval`` in a0;
    * ``blocked``     — park the thread (futex_wait); it is resumed later by
      a wake carrying its retval;
    * ``clone``       — the scheduler must place and start a child thread;
    * ``exit``        — the calling thread is done;
    * ``exit_group``  — the whole guest program is done;
    * ``yield``       — reschedule the thread on its node;
    * ``migrate``     — move the calling thread to ``migrate_to``
      (``sched_setaffinity``: cpuset bit *k* selects node *k*).
    """

    retval: int = 0
    action: str = "return"
    woken: list[Waiter] = field(default_factory=list)
    clone: Optional[CloneRequest] = None
    exit_status: int = 0
    migrate_to: int = -1


class SystemState:
    """Authoritative cluster-wide system state, kept on the master.

    One per admitted job: the VFS, futex namespace, thread table and memory
    map are the job's alone (``tenant`` labels which), which is what makes
    per-tenant isolation structural on a shared fleet.
    """

    def __init__(self, *, brk_start: int, stdin: bytes = b"",
                 clock_ns: Callable[[], int] = lambda: 0, tenant: int = 0):
        self.tenant = tenant
        self.vfs = VFS(stdin=stdin)
        self.futexes = FutexTable(tenant=tenant)
        self.threads = ThreadTable()
        self.mm = MemoryManager(brk_start=brk_start)
        self.clock_ns = clock_ns
        self.pid = 1


def _ret(value: int) -> SyscallResult:
    return SyscallResult(retval=value & 0xFFFF_FFFF_FFFF_FFFF)


def _s(value: int) -> int:
    """Interpret a raw 64-bit argument as signed."""
    return value - (1 << 64) if value >= (1 << 63) else value


class SyscallExecutor:
    """Executes syscalls for any guest thread against a SystemState."""

    def __init__(self, state: SystemState, mem: KernelMemory):
        self.state = state
        self.mem = mem

    # -- helpers ----------------------------------------------------------------

    def _read_cstr(self, addr: int, limit: int = 4096) -> Generator[Any, Any, str]:
        out = bytearray()
        while len(out) < limit:
            chunk = yield from self.mem.read_guest(addr + len(out), 64)
            nul = chunk.find(0)
            if nul >= 0:
                out += chunk[:nul]
                return out.decode("utf-8", errors="replace")
            out += chunk
        return out.decode("utf-8", errors="replace")

    # -- dispatch ----------------------------------------------------------------

    def execute(self, tid: int, node: int, sysno: int, args: tuple[int, ...]
                ) -> Generator[Any, Any, SyscallResult]:
        a = tuple(args) + (0,) * (6 - len(args))
        st = self.state

        if sysno == SYS.WRITE:
            fd, buf, count = a[0], a[1], _s(a[2])
            if count < 0:
                return _ret(-ERRNO.EINVAL)
            if count:
                data = yield from self.mem.read_guest(buf, count)
            else:
                data = b""
            return _ret(st.vfs.write(fd, data))

        if sysno == SYS.READ:
            fd, buf, count = a[0], a[1], _s(a[2])
            if count < 0:
                return _ret(-ERRNO.EINVAL)
            result = st.vfs.read(fd, count)
            if isinstance(result, int):
                return _ret(result)
            if result:
                yield from self.mem.write_guest(buf, result)
            return _ret(len(result))

        if sysno == SYS.OPENAT:
            path = yield from self._read_cstr(a[1])
            return _ret(st.vfs.openat(path, a[2]))

        if sysno == SYS.CLOSE:
            return _ret(st.vfs.close(a[0]))

        if sysno == SYS.LSEEK:
            return _ret(st.vfs.lseek(a[0], _s(a[1]), a[2]))

        if sysno == SYS.FUTEX:
            return (yield from self._futex(tid, node, a))

        if sysno == SYS.SET_TID_ADDRESS:
            st.threads.set_clear_child_tid(tid, a[0])
            return _ret(tid)

        if sysno == SYS.CLONE:
            return SyscallResult(
                action="clone",
                clone=CloneRequest(
                    flags=a[0], child_stack=a[1], ptid=a[2], tls=a[3], ctid=a[4],
                    parent_tid=tid,
                ),
            )

        if sysno == SYS.EXIT:
            return (yield from self._exit_thread(tid, _s(a[0])))

        if sysno == SYS.EXIT_GROUP:
            return SyscallResult(action="exit_group", exit_status=_s(a[0]) & 0xFF)

        if sysno == SYS.BRK:
            return _ret(st.mm.brk(a[0]))

        if sysno == SYS.MMAP:
            # (addr, length, prot, flags, fd, offset) — anonymous only
            return _ret(st.mm.mmap(_s(a[1])))

        if sysno == SYS.MUNMAP:
            return _ret(st.mm.munmap(a[0], _s(a[1])))

        if sysno == SYS.GETPID:
            return _ret(st.pid)

        if sysno == SYS.GETTID:
            return _ret(tid)

        if sysno == SYS.SCHED_YIELD:
            return SyscallResult(action="yield")

        if sysno == SYS.CLOCK_GETTIME:
            now = st.clock_ns()
            ts = (now // 1_000_000_000).to_bytes(8, "little") + (
                now % 1_000_000_000
            ).to_bytes(8, "little")
            yield from self.mem.write_guest(a[1], ts)
            return _ret(0)

        if sysno == SYS.GETTIMEOFDAY:
            now = st.clock_ns()
            tv = (now // 1_000_000_000).to_bytes(8, "little") + (
                (now % 1_000_000_000) // 1000
            ).to_bytes(8, "little")
            yield from self.mem.write_guest(a[0], tv)
            return _ret(0)

        if sysno == SYS.SCHED_SETAFFINITY:
            # (pid, cpusetsize, mask*) — pid 0/self only; in this cluster
            # cpuset bit k selects node k (live thread migration, §4.1).
            if a[0] not in (0, tid):
                return _ret(-ERRNO.EPERM)
            size = min(_s(a[1]) or 8, 8)
            if size <= 0:
                return _ret(-ERRNO.EINVAL)
            raw = yield from self.mem.read_guest(a[2], size)
            mask = int.from_bytes(raw, "little")
            if mask == 0:
                return _ret(-ERRNO.EINVAL)
            target = (mask & -mask).bit_length() - 1  # lowest set bit
            return SyscallResult(action="migrate", migrate_to=target)

        if sysno in (SYS.MPROTECT, SYS.MADVISE):
            return _ret(0)

        return _ret(-ERRNO.ENOSYS)

    # -- futex ------------------------------------------------------------

    def _futex(self, tid: int, node: int, a: tuple[int, ...]
               ) -> Generator[Any, Any, SyscallResult]:
        uaddr, op, val = a[0], a[1] & FUTEX_OP_MASK, a[2]
        st = self.state
        if op == FUTEX_WAIT:
            raw = yield from self.mem.read_guest(uaddr, 8)
            current = int.from_bytes(raw, "little")
            if current != val:
                return _ret(-ERRNO.EAGAIN)
            st.futexes.enqueue(uaddr, tid, node)
            st.threads.set_state(tid, ThreadState.BLOCKED)
            return SyscallResult(action="blocked")
        if op == FUTEX_WAKE:
            woken = st.futexes.wake(uaddr, _s(val))
            for w in woken:
                st.threads.set_state(w.tid, ThreadState.RUNNING)
            return SyscallResult(retval=len(woken), woken=woken)
        return _ret(-ERRNO.ENOSYS)

    # -- thread exit ------------------------------------------------------------

    def _exit_thread(self, tid: int, status: int) -> Generator[Any, Any, SyscallResult]:
        st = self.state
        rec = st.threads.mark_exited(tid, status)
        result = SyscallResult(action="exit", exit_status=status)
        if rec.clear_child_tid:
            # CLONE_CHILD_CLEARTID: zero the word and wake joiners.
            yield from self.mem.write_guest(rec.clear_child_tid, bytes(8))
            woken = st.futexes.wake(rec.clear_child_tid, 2**31)
            for w in woken:
                st.threads.set_state(w.tid, ThreadState.RUNNING)
            result.woken = woken
        return result

    def reap_thread(self, tid: int, status: int) -> Generator[Any, Any, SyscallResult]:
        """Force-exit a thread whose context died with its node.

        The failure domain uses this for threads lost to a hard crash: they
        cannot run again, but running the normal exit path (mark exited,
        zero ``clear_child_tid``, wake joiners) means threads joining on
        them unblock with the loss *reported* instead of the run hanging.
        By convention the status is 137 (128 + SIGKILL), as if the kernel
        had killed the thread.
        """
        return (yield from self._exit_thread(tid, status))
