"""Guest syscall numbers and errno values (Linux riscv64 convention).

DQEMU runs in user mode: guest syscalls are trapped and emulated by
equivalent host syscalls (paper §2).  Our "host kernel" is the emulated
kernel layer in this package; numbering follows Linux on riscv64 so guest
code reads naturally.
"""

from __future__ import annotations

__all__ = ["SYS", "ERRNO", "FUTEX_WAIT", "FUTEX_WAKE", "sys_name"]


class SYS:
    OPENAT = 56
    CLOSE = 57
    LSEEK = 62
    READ = 63
    WRITE = 64
    EXIT = 93
    EXIT_GROUP = 94
    SET_TID_ADDRESS = 96
    FUTEX = 98
    CLOCK_GETTIME = 113
    SCHED_YIELD = 124
    GETTIMEOFDAY = 169
    GETPID = 172
    GETTID = 178
    NANOSLEEP = 101
    SCHED_SETAFFINITY = 122
    BRK = 214
    MUNMAP = 215
    CLONE = 220
    MMAP = 222
    MPROTECT = 226
    MADVISE = 233


_NAMES = {v: k.lower() for k, v in vars(SYS).items() if not k.startswith("_")}


def sys_name(number: int) -> str:
    return _NAMES.get(number, f"sys_{number}")


class ERRNO:
    EPERM = 1
    ENOENT = 2
    EBADF = 9
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EEXIST = 17
    EINVAL = 22
    ENOSYS = 38


# futex operations (PRIVATE flag bit masked off before dispatch)
FUTEX_WAIT = 0
FUTEX_WAKE = 1
FUTEX_OP_MASK = 0x7F

# clone(2) flags used by the guest runtime's thread_create
CLONE_VM = 0x0000_0100
CLONE_THREAD = 0x0001_0000
CLONE_PARENT_SETTID = 0x0010_0000
CLONE_CHILD_CLEARTID = 0x0020_0000
CLONE_CHILD_SETTID = 0x0100_0000

