"""Guest thread table (master-side global state).

Tracks every guest thread in the cluster: which node runs it, its lifecycle
state, and the ``clear_child_tid`` address used for join (the kernel zeroes
it and futex-wakes it on thread exit — CLONE_CHILD_CLEARTID semantics, which
is how pthread_join works on Linux and in our guest runtime).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import KernelError

__all__ = ["ThreadState", "ThreadRecord", "ThreadTable"]

MAIN_TID = 1


class ThreadState(enum.Enum):
    RUNNING = "running"
    BLOCKED = "blocked"  # parked in futex_wait
    EXITED = "exited"


@dataclass
class ThreadRecord:
    tid: int
    node: int
    parent_tid: int
    state: ThreadState = ThreadState.RUNNING
    exit_status: Optional[int] = None
    clear_child_tid: int = 0  # guest address, 0 = unset
    hint_group: Optional[int] = None  # group at creation time (§5.3)


class ThreadTable:
    def __init__(self) -> None:
        self._threads: dict[int, ThreadRecord] = {}
        self._next_tid = MAIN_TID

    def create(self, *, node: int, parent_tid: int, ctid: int = 0,
               hint_group: Optional[int] = None) -> ThreadRecord:
        tid = self._next_tid
        self._next_tid += 1
        rec = ThreadRecord(tid=tid, node=node, parent_tid=parent_tid,
                           clear_child_tid=ctid, hint_group=hint_group)
        self._threads[tid] = rec
        return rec

    def get(self, tid: int) -> ThreadRecord:
        try:
            return self._threads[tid]
        except KeyError:
            raise KernelError(f"unknown tid {tid}") from None

    def set_state(self, tid: int, state: ThreadState) -> None:
        self.get(tid).state = state

    def mark_exited(self, tid: int, status: int) -> ThreadRecord:
        rec = self.get(tid)
        rec.state = ThreadState.EXITED
        rec.exit_status = status
        return rec

    def set_clear_child_tid(self, tid: int, addr: int) -> None:
        self.get(tid).clear_child_tid = addr

    def move(self, tid: int, node: int) -> None:
        self.get(tid).node = node

    # -- queries ----------------------------------------------------------------

    def alive(self) -> list[ThreadRecord]:
        return [t for t in self._threads.values() if t.state is not ThreadState.EXITED]

    def on_node(self, node: int) -> list[ThreadRecord]:
        return [t for t in self.alive() if t.node == node]

    def all_threads(self) -> list[ThreadRecord]:
        return list(self._threads.values())

    def __len__(self) -> int:
        return len(self._threads)

    def __contains__(self, tid: int) -> bool:
        return tid in self._threads
