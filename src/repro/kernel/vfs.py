"""In-memory virtual filesystem.

The paper's global syscalls (read/write/...) act on host files; our host is
the simulation, so files live in memory on the master node — which is also
what makes them naturally "centralized system state" (§4.3).  stdout/stderr
are captured into buffers the experiment harness can inspect; stdin is
pre-seeded input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.sysnums import ERRNO

__all__ = ["VFS", "OpenFile", "O_RDONLY", "O_WRONLY", "O_RDWR", "O_CREAT", "O_TRUNC", "O_APPEND"]

O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_ACCMODE = 0o3
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2


@dataclass
class OpenFile:
    path: str
    flags: int
    offset: int = 0


class VFS:
    """Flat-namespace in-memory filesystem with a shared fd table.

    Guest threads share one process, hence one fd table — matching the
    thread (not process) model the benchmarks use.
    """

    def __init__(self, *, stdin: bytes = b""):
        self._files: dict[str, bytearray] = {}
        self._fds: dict[int, OpenFile] = {}
        self._next_fd = 3
        self.stdin = bytearray(stdin)
        self._stdin_off = 0
        self.stdout = bytearray()
        self.stderr = bytearray()

    # -- setup --------------------------------------------------------------

    def add_file(self, path: str, data: bytes) -> None:
        self._files[path] = bytearray(data)

    def file_bytes(self, path: str) -> bytes:
        return bytes(self._files[path])

    def exists(self, path: str) -> bool:
        return path in self._files

    # -- syscall surface (returns >=0 or -errno) ----------------------------------

    def openat(self, path: str, flags: int) -> int:
        if path not in self._files:
            if not flags & O_CREAT:
                return -ERRNO.ENOENT
            self._files[path] = bytearray()
        elif flags & O_TRUNC and flags & O_ACCMODE != O_RDONLY:
            self._files[path] = bytearray()
        fd = self._next_fd
        self._next_fd += 1
        off = len(self._files[path]) if flags & O_APPEND else 0
        self._fds[fd] = OpenFile(path=path, flags=flags, offset=off)
        return fd

    def close(self, fd: int) -> int:
        if fd in (0, 1, 2):
            return 0
        if self._fds.pop(fd, None) is None:
            return -ERRNO.EBADF
        return 0

    def read(self, fd: int, count: int) -> bytes | int:
        """Returns data bytes, or -errno."""
        if fd == 0:
            data = bytes(self.stdin[self._stdin_off : self._stdin_off + count])
            self._stdin_off += len(data)
            return data
        of = self._fds.get(fd)
        if of is None or of.flags & O_ACCMODE == O_WRONLY:
            return -ERRNO.EBADF
        content = self._files[of.path]
        data = bytes(content[of.offset : of.offset + count])
        of.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        if fd == 1:
            self.stdout += data
            return len(data)
        if fd == 2:
            self.stderr += data
            return len(data)
        of = self._fds.get(fd)
        if of is None or of.flags & O_ACCMODE == O_RDONLY:
            return -ERRNO.EBADF
        content = self._files[of.path]
        end = of.offset + len(data)
        if end > len(content):
            content.extend(bytes(end - len(content)))
        content[of.offset : end] = data
        of.offset = end
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int) -> int:
        of = self._fds.get(fd)
        if of is None:
            return -ERRNO.EBADF
        size = len(self._files[of.path])
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = of.offset + offset
        elif whence == SEEK_END:
            new = size + offset
        else:
            return -ERRNO.EINVAL
        if new < 0:
            return -ERRNO.EINVAL
        of.offset = new
        return new

    # -- diagnostics ----------------------------------------------------------

    def dump_files(self) -> dict[str, bytes]:
        """Snapshot of every regular file (post-run inspection)."""
        return {path: bytes(data) for path, data in self._files.items()}

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    def stderr_text(self) -> str:
        return self.stderr.decode("utf-8", errors="replace")

    @property
    def open_fd_count(self) -> int:
        return len(self._fds)
