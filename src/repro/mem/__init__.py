"""Memory substrate: layout, page stores, MSI states, flat memory, DSM directory."""

from repro.mem.api import M64, MemoryAPI, PageStall, check_span, sign_extend
from repro.mem.flat import FlatMemory
from repro.mem.layout import (
    MMAP_BASE,
    PAGE_SIZE,
    SHADOW_BASE,
    STACK_TOP,
    TEXT_BASE,
    page_base,
    page_of,
    page_offset,
)
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.mem.protocols import (
    PROTOCOL_NAMES,
    AdaptivePolicy,
    CoherencePolicy,
    MESIPolicy,
    MigrationPolicy,
    make_policy,
)
from repro.mem.sharding import (
    ShadowPageAllocator,
    ShardedDirectoryView,
    ShardedSplitView,
    shard_of,
)

__all__ = [
    "AdaptivePolicy",
    "CoherencePolicy",
    "FlatMemory",
    "M64",
    "MESIPolicy",
    "MMAP_BASE",
    "MSIState",
    "MemoryAPI",
    "MigrationPolicy",
    "PAGE_SIZE",
    "PROTOCOL_NAMES",
    "PageStall",
    "PageStore",
    "SHADOW_BASE",
    "STACK_TOP",
    "ShadowPageAllocator",
    "ShardedDirectoryView",
    "ShardedSplitView",
    "TEXT_BASE",
    "check_span",
    "make_policy",
    "page_base",
    "page_of",
    "page_offset",
    "shard_of",
    "sign_extend",
]
