"""Memory interface between the DBT engine and a memory system.

The execution engine is memory-system agnostic: it runs against anything
implementing :class:`MemoryAPI`.  Unit tests and the single-node QEMU
baseline use :class:`~repro.mem.flat.FlatMemory`; DQEMU nodes use the
DSM-backed memory in :mod:`repro.core.node`, whose accesses can raise
:class:`PageStall` when the coherence protocol must fetch a page — the
software equivalent of the page-protection faults DQEMU relies on (§4.2).

GA64 access rules enforced here:

* any alignment within one page is legal; an access crossing a page boundary
  raises :class:`UnalignedAccess` (statically-linked guests keep data aligned);
* atomics must be 8-byte aligned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.errors import UnalignedAccess
from repro.mem.layout import page_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.dbt.cpu import CPUState

__all__ = ["PageStall", "MemoryAPI", "check_span", "sign_extend", "M64"]

M64 = 0xFFFF_FFFF_FFFF_FFFF


class PageStall(Exception):
    """A guest access needs a page the local node does not hold (or holds in
    an insufficient state).  Carries what the DSM client needs to issue the
    page request; the faulting instruction is re-executed afterwards.

    Deliberately *not* a ReproError: it is control flow, not a failure.
    """

    __slots__ = ("page", "write", "offset", "size")

    def __init__(self, page: int, write: bool, offset: int, size: int = 8):
        super().__init__(f"page stall: page={page:#x} write={write}")
        self.page = page
        self.write = write
        self.offset = offset
        self.size = size  # access width — the false-sharing detector needs it


def check_span(addr: int, size: int, *, pc: int | None = None) -> None:
    """Reject accesses that cross a page boundary."""
    if page_of(addr) != page_of(addr + size - 1):
        raise UnalignedAccess(
            f"access of {size} bytes at {addr:#x} crosses a page boundary",
            pc=pc,
            addr=addr,
        )


def sign_extend(value: int, size: int) -> int:
    """Sign-extend a ``size``-byte little-endian value to unsigned 64-bit."""
    sign = 1 << (8 * size - 1)
    return ((value & (sign - 1)) - (value & sign)) & M64


class MemoryAPI(Protocol):
    """What the interpreter and translated code require of memory."""

    def load(self, addr: int, size: int, signed: bool) -> int:
        """Read ``size`` bytes; returns the 64-bit (sign/zero extended) value."""
        ...

    def store(self, addr: int, size: int, value: int) -> None:
        """Write the low ``size`` bytes of ``value``."""
        ...

    def fetch_code(self, addr: int, size: int) -> bytes:
        """Instruction fetch (read-shared); used by the DBT frontend."""
        ...

    def load_reserved(self, cpu: "CPUState", addr: int) -> int:
        """LL: 64-bit load plus reservation registration (§4.4)."""
        ...

    def store_conditional(self, cpu: "CPUState", addr: int, value: int) -> bool:
        """SC: store iff the reservation survives; returns success."""
        ...

    def atomic_cas(self, cpu: "CPUState", addr: int, expected: int, desired: int) -> int:
        """CAS: returns the old value; stores ``desired`` on match."""
        ...

    def atomic_add(self, cpu: "CPUState", addr: int, operand: int) -> int:
        ...

    def atomic_swap(self, cpu: "CPUState", addr: int, operand: int) -> int:
        ...
