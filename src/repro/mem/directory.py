"""Centralized page directory for the MSI protocol (paper §3.2, §4.2).

The master node owns one :class:`Directory`.  For every guest page it tracks
which node holds it Modified (the *owner*) or which nodes hold it Shared.
The directory is a pure data structure: :meth:`plan` computes the coherence
actions a request requires, and :meth:`commit` applies the state change once
the master has performed them.  Keeping planning separate from the network
makes the protocol property-testable in isolation.

Invariants (checked by :meth:`check_invariants`):

* a page has an owner XOR (possibly empty) sharers — never both;
* the owner, if any, is a single node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError

__all__ = ["DirEntry", "CoherencePlan", "Directory"]


@dataclass
class DirEntry:
    owner: Optional[int] = None
    sharers: set[int] = field(default_factory=set)

    def is_idle(self) -> bool:
        return self.owner is None and not self.sharers


@dataclass
class CoherencePlan:
    """Actions the master must take before granting a request.

    ``fetch_from``   — node whose Modified copy must be written back first.
    ``invalidate``   — nodes whose copies must be dropped (write requests).
    ``downgrade``    — owner that keeps the page but drops to Shared (reads).
    ``already_granted`` — requester already holds a sufficient copy.
    """

    fetch_from: Optional[int] = None
    invalidate: tuple[int, ...] = ()
    downgrade: Optional[int] = None
    already_granted: bool = False


class Directory:
    """Per-page owner/sharer bookkeeping."""

    def __init__(self) -> None:
        self._entries: dict[int, DirEntry] = {}

    def entry(self, page: int) -> DirEntry:
        ent = self._entries.get(page)
        if ent is None:
            ent = DirEntry()
            self._entries[page] = ent
        return ent

    def peek(self, page: int) -> DirEntry:
        """Read-only view (does not create an entry)."""
        return self._entries.get(page, DirEntry())

    # -- planning ------------------------------------------------------------

    def plan(self, node: int, page: int, write: bool) -> CoherencePlan:
        ent = self.peek(page)
        if write:
            if ent.owner == node:
                return CoherencePlan(already_granted=True)
            plan = CoherencePlan()
            if ent.owner is not None:
                plan = CoherencePlan(fetch_from=ent.owner, invalidate=(ent.owner,))
            elif ent.sharers:
                others = tuple(sorted(ent.sharers - {node}))
                plan = CoherencePlan(invalidate=others)
            return plan
        # read request
        if ent.owner == node or node in ent.sharers:
            return CoherencePlan(already_granted=True)
        if ent.owner is not None:
            return CoherencePlan(fetch_from=ent.owner, downgrade=ent.owner)
        return CoherencePlan()

    # -- commit ------------------------------------------------------------

    def commit(self, node: int, page: int, write: bool, exclusive: bool = False) -> None:
        """Apply the grant after the plan's actions were carried out.

        ``exclusive`` records a MESI Exclusive-clean read grant: the node
        becomes *owner* even though its copy is clean, because the holder
        may silently upgrade E→M at any time without telling the master —
        so every later transaction must treat the copy as possibly dirty
        (peer reads fetch/write it back, exactly like a Modified owner).
        Only valid when the entry is idle; the caller guarantees it.
        """
        ent = self.entry(page)
        if write or exclusive:
            ent.owner = node
            ent.sharers = set()
        else:
            if ent.owner is not None:
                if ent.owner != node:
                    # former owner was downgraded to sharer by the plan
                    ent.sharers = {ent.owner}
                ent.owner = None
            ent.sharers.add(node)

    def drop_node(self, node: int, page: int) -> None:
        """Remove a node's copy (e.g. after an explicit invalidation)."""
        ent = self.peek(page)
        if ent.owner == node:
            ent.owner = None
        ent.sharers.discard(node)

    def downgrade_owner(self, page: int) -> None:
        """Owner's M copy becomes S (kernel read path: master pulled the data
        home but grants nobody new access)."""
        ent = self.peek(page)
        if ent.owner is not None:
            ent.sharers = {ent.owner}
            ent.owner = None

    def evict_node(self, node: int) -> tuple[list[int], list[int]]:
        """Forget every copy a dead node held (directory re-homing).

        Returns ``(rehomed, lost)`` page lists: *rehomed* pages were Shared
        on the dead node — the home copy (and any surviving sharers) remain
        authoritative, so dropping the dead copy loses nothing.  *Lost*
        pages were owned by the dead node — their only current content
        died with it, and the stale home copy is silently promoted so
        future readers get *a* value instead of a deadlock.  The caller
        surfaces the count; the data loss is real and reported, not hidden.

        An Exclusive-clean grantee (MESI) is tracked as owner too, and is
        *conservatively* counted lost: the holder may have silently
        upgraded E→M without telling the master, so the directory cannot
        know whether the home copy is still current.  That pessimism is
        the failure-domain price of the silent upgrade's saved round trip
        (docs/PROTOCOL.md "Coherence protocols").
        """
        rehomed: list[int] = []
        lost: list[int] = []
        for page, ent in self._entries.items():
            if ent.owner == node:
                ent.owner = None
                lost.append(page)
            elif node in ent.sharers:
                ent.sharers.discard(node)
                rehomed.append(page)
        return sorted(rehomed), sorted(lost)

    def invalidate_all(self, page: int) -> tuple[int, ...]:
        """Forget every copy of a page (page-splitting migration). Returns
        the nodes that held it."""
        ent = self._entries.pop(page, None)
        if ent is None:
            return ()
        holders = set(ent.sharers)
        if ent.owner is not None:
            holders.add(ent.owner)
        return tuple(sorted(holders))

    # -- queries ----------------------------------------------------------------

    def holders(self, page: int) -> tuple[int, ...]:
        ent = self.peek(page)
        out = set(ent.sharers)
        if ent.owner is not None:
            out.add(ent.owner)
        return tuple(sorted(out))

    def owner(self, page: int) -> Optional[int]:
        return self.peek(page).owner

    def sharers(self, page: int) -> frozenset[int]:
        return frozenset(self.peek(page).sharers)

    def check_invariants(self) -> None:
        for page, ent in self._entries.items():
            if ent.owner is not None and ent.sharers:
                raise ProtocolError(
                    f"page {page:#x}: owner {ent.owner} coexists with sharers {ent.sharers}"
                )
