"""Flat (non-distributed) guest memory.

Implements :class:`~repro.mem.api.MemoryAPI` with no coherence protocol:
every page is local and writable.  Used by the DBT unit tests, the
differential interpreter oracle, and the single-node QEMU baseline where the
host hardware keeps memory coherent.

LL/SC semantics follow the paper's intra-node scheme: a reservation table
keyed by address; any store to a reserved address by *another* thread kills
the reservation (conservative, like QEMU's emulation).  The store check is
only performed while the table is non-empty — the paper makes the same
observation that the LL→SC window is short so checks are rare (§4.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SegmentationFault, UnalignedAccess
from repro.mem.api import M64, check_span, sign_extend
from repro.mem.layout import PAGE_SIZE, page_of, page_offset

if TYPE_CHECKING:  # pragma: no cover
    from repro.dbt.cpu import CPUState

__all__ = ["FlatMemory"]


class FlatMemory:
    """Sparse flat memory with auto-allocating pages."""

    def __init__(self, *, auto_alloc: bool = True):
        self._pages: dict[int, bytearray] = {}
        self.auto_alloc = auto_alloc
        # addr -> set of tids holding a valid LL reservation
        self.reservations: dict[int, set[int]] = {}

    # -- setup helpers --------------------------------------------------------

    def load_image(self, segments) -> None:
        """Copy ``(vaddr, bytes)`` segments (e.g. Program sections) in."""
        for vaddr, data in segments:
            self.write_bytes(vaddr, data)

    def _page(self, page: int) -> bytearray:
        buf = self._pages.get(page)
        if buf is None:
            if not self.auto_alloc:
                raise SegmentationFault(f"unmapped page {page:#x}")
            buf = bytearray(PAGE_SIZE)
            self._pages[page] = buf
        return buf

    def write_bytes(self, addr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            page = page_of(addr + pos)
            off = page_offset(addr + pos)
            n = min(PAGE_SIZE - off, len(data) - pos)
            self._page(page)[off : off + n] = data[pos : pos + n]
            pos += n

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        pos = 0
        while pos < size:
            page = page_of(addr + pos)
            off = page_offset(addr + pos)
            n = min(PAGE_SIZE - off, size - pos)
            out += self._page(page)[off : off + n]
            pos += n
        return bytes(out)

    # -- MemoryAPI ------------------------------------------------------------

    def load(self, addr: int, size: int, signed: bool) -> int:
        check_span(addr, size)
        buf = self._page(page_of(addr))
        off = page_offset(addr)
        value = int.from_bytes(buf[off : off + size], "little")
        if signed and size < 8:
            return sign_extend(value, size)
        return value

    def store(self, addr: int, size: int, value: int) -> None:
        check_span(addr, size)
        buf = self._page(page_of(addr))
        off = page_offset(addr)
        buf[off : off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if self.reservations:
            self._kill_reservations(addr, size)

    def fetch_code(self, addr: int, size: int) -> bytes:
        return self.read_bytes(addr, size)

    # -- atomics ----------------------------------------------------------------

    @staticmethod
    def _check_atomic_alignment(addr: int) -> None:
        if addr % 8 != 0:
            raise UnalignedAccess(f"atomic access to unaligned address {addr:#x}", addr=addr)

    def load_reserved(self, cpu: "CPUState", addr: int) -> int:
        self._check_atomic_alignment(addr)
        value = self.load(addr, 8, False)
        self.reservations.setdefault(addr, set()).add(cpu.tid)
        return value

    def store_conditional(self, cpu: "CPUState", addr: int, value: int) -> bool:
        self._check_atomic_alignment(addr)
        holders = self.reservations.get(addr)
        if not holders or cpu.tid not in holders:
            return False
        del self.reservations[addr]
        self.store(addr, 8, value)
        return True

    def atomic_cas(self, cpu: "CPUState", addr: int, expected: int, desired: int) -> int:
        self._check_atomic_alignment(addr)
        old = self.load(addr, 8, False)
        if old == (expected & M64):
            self.store(addr, 8, desired)  # store() also kills reservations
        return old

    def atomic_add(self, cpu: "CPUState", addr: int, operand: int) -> int:
        self._check_atomic_alignment(addr)
        old = self.load(addr, 8, False)
        self.store(addr, 8, (old + operand) & M64)
        return old

    def atomic_swap(self, cpu: "CPUState", addr: int, operand: int) -> int:
        self._check_atomic_alignment(addr)
        old = self.load(addr, 8, False)
        self.store(addr, 8, operand & M64)
        return old

    # -- reservation bookkeeping -------------------------------------------------

    def _kill_reservations(self, addr: int, size: int = 8) -> None:
        """A store touching ``[addr, addr+size)`` conservatively kills every
        reservation on the 8-byte cell(s) it overlaps, whoever stored."""
        lo = addr & ~7
        hi = (addr + size - 1) & ~7
        for a in ((lo,) if lo == hi else (lo, hi)):
            self.reservations.pop(a, None)
