"""Guest virtual address-space layout (paper Fig. 1).

User-mode QEMU maps the whole guest address space into a contiguous host
region; DQEMU unifies the guest regions of all instances into one distributed
shared address space.  We keep the same fixed layout on every node so a guest
virtual address means the same thing cluster-wide.
"""

from __future__ import annotations

__all__ = [
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "TEXT_BASE",
    "MMAP_BASE",
    "SHADOW_BASE",
    "STACK_TOP",
    "MAIN_STACK_BYTES",
    "page_of",
    "page_base",
    "page_offset",
]

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB, as on the paper's testbed

#: Where .text is linked (matches the assembler default).
TEXT_BASE = 0x0001_0000

#: Anonymous mmap region (thread stacks, malloc arenas) grows upward from here.
MMAP_BASE = 0x4000_0000

#: Guest space the master probes for shadow pages during page splitting (§5.1):
#: "address region not used by the guest application".
SHADOW_BASE = 0x6000_0000

#: Main thread stack top (grows down).
STACK_TOP = 0x7FFF_F000
MAIN_STACK_BYTES = 1 << 20


def page_of(addr: int) -> int:
    return addr >> PAGE_SHIFT


def page_base(page: int) -> int:
    return page << PAGE_SHIFT


def page_offset(addr: int) -> int:
    return addr & (PAGE_SIZE - 1)
