"""Page coherence states (paper §3.2, extended with MESI's Exclusive).

DQEMU uses a page-level, directory-based protocol: each node's copy of a
page is Modified, Exclusive, Shared or Invalid; the master's directory
records the owner and sharer set per page.

The paper's protocol is plain MSI.  ``EXCLUSIVE`` is the MESI extension
(docs/PROTOCOL.md "Coherence protocols"): a clean, sole copy granted on a
read fault that found no other holder.  It reads like Shared but can be
*silently* upgraded to Modified by the holding node without a master round
trip — which is the entire point: the Shared→Modified upgrade round trip on
first write disappears.  The state only ever exists when a non-MSI
``DQEMUConfig.coherence_protocol`` grants it; default runs never see it.
"""

from __future__ import annotations

import enum

__all__ = ["MSIState"]


class MSIState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    def readable(self) -> bool:
        return self is not MSIState.INVALID

    def writable(self) -> bool:
        # EXCLUSIVE is deliberately not writable here: the node-side silent
        # E->M upgrade (PageStore.silently_upgrade) is an explicit, counted
        # transition, not an implicit property of the state.
        return self is MSIState.MODIFIED
