"""MSI coherence states (paper §3.2).

DQEMU uses a page-level, directory-based MSI protocol: each node's copy of a
page is Modified, Shared or Invalid; the master's directory records the owner
and sharer set per page.
"""

from __future__ import annotations

import enum

__all__ = ["MSIState"]


class MSIState(enum.Enum):
    MODIFIED = "M"
    SHARED = "S"
    INVALID = "I"

    def readable(self) -> bool:
        return self is not MSIState.INVALID

    def writable(self) -> bool:
        return self is MSIState.MODIFIED
