"""Per-node page storage.

Each DQEMU instance holds copies of the guest pages it currently caches,
tagged with their MSI coherence state.  The store is a dict of 4 KiB
bytearrays — sparse, so a 1 GB guest region costs nothing until touched
(the paper's Table 1 experiment reserves 1 GB on the master).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import SegmentationFault
from repro.mem.layout import PAGE_SIZE, page_of, page_offset
from repro.mem.msi import MSIState

__all__ = ["PageStore"]


class PageStore:
    """Sparse page container with per-page MSI state."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._states: dict[int, MSIState] = {}

    # -- state bookkeeping ----------------------------------------------------

    def state(self, page: int) -> MSIState:
        return self._states.get(page, MSIState.INVALID)

    def set_state(self, page: int, state: MSIState) -> None:
        if state is MSIState.INVALID:
            self._states.pop(page, None)
        else:
            self._states[page] = state

    def has_read(self, page: int) -> bool:
        return self._states.get(page, MSIState.INVALID) is not MSIState.INVALID

    def has_write(self, page: int) -> bool:
        return self._states.get(page) is MSIState.MODIFIED

    def silently_upgrade(self, page: int) -> bool:
        """MESI's silent E→M transition: an Exclusive-clean copy becomes
        Modified with no master round trip (docs/PROTOCOL.md "Coherence
        protocols").  Returns whether the upgrade happened — the caller
        counts it as a saved round trip.  Any other state is untouched."""
        if self._states.get(page) is MSIState.EXCLUSIVE:
            self._states[page] = MSIState.MODIFIED
            return True
        return False

    # -- page installation ------------------------------------------------------

    def install(self, page: int, data: bytes, state: MSIState) -> None:
        if len(data) != PAGE_SIZE:
            raise ValueError(f"page data must be {PAGE_SIZE} bytes, got {len(data)}")
        self._pages[page] = bytearray(data)
        self.set_state(page, state)

    def ensure(self, page: int, state: MSIState) -> bytearray:
        """Get-or-create a zeroed page in ``state`` (master-side allocation)."""
        buf = self._pages.get(page)
        if buf is None:
            buf = bytearray(PAGE_SIZE)
            self._pages[page] = buf
        self.set_state(page, state)
        return buf

    def drop(self, page: int) -> Optional[bytes]:
        """Invalidate: remove the local copy, returning it (for write-back)."""
        self._states.pop(page, None)
        buf = self._pages.pop(page, None)
        return bytes(buf) if buf is not None else None

    def snapshot(self, page: int) -> bytes:
        try:
            return bytes(self._pages[page])
        except KeyError:
            raise SegmentationFault(f"no copy of page {page:#x}") from None

    def raw(self, page: int) -> bytearray:
        """Direct (mutable) access for the access fast path."""
        try:
            return self._pages[page]
        except KeyError:
            raise SegmentationFault(f"no copy of page {page:#x}") from None

    # -- data access (caller has already checked coherence state) ----------------

    def read(self, addr: int, size: int) -> int:
        buf = self.raw(page_of(addr))
        off = page_offset(addr)
        return int.from_bytes(buf[off : off + size], "little")

    def write(self, addr: int, size: int, value: int) -> None:
        buf = self.raw(page_of(addr))
        off = page_offset(addr)
        buf[off : off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")

    def read_bytes(self, addr: int, size: int) -> bytes:
        buf = self.raw(page_of(addr))
        off = page_offset(addr)
        return bytes(buf[off : off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        buf = self.raw(page_of(addr))
        off = page_offset(addr)
        buf[off : off + len(data)] = data

    # -- iteration ------------------------------------------------------------

    def pages(self) -> Iterator[int]:
        return iter(self._pages)

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)
