"""Pluggable page-coherence protocols behind the ``CoherencePolicy`` seam.

The master's :class:`~repro.core.services.coherence.CoherenceService` owns
the mechanics of every directory transaction — locks, invalidations,
write-backs, grants.  What *varies* between protocols is a small set of
per-page decisions, and this module isolates exactly those behind
:class:`CoherencePolicy` (ROADMAP "Adaptive coherence"):

* ``grant_exclusive`` — may a read fault that found the directory entry
  idle be granted Exclusive-clean instead of Shared?  (MESI.  The holder
  can then upgrade E→M locally with no master round trip.)
* ``upgrade_without_payload`` — may a write grant to a node that already
  holds the page Shared omit the 4 KiB payload?  (Any readable copy is
  current by protocol invariant, so the reply is a bare upgrade ack.)
* ``home_of`` — has the page's *home* been migrated to a node?  Requests
  from the home node are metadata-only for the master (the authoritative
  data already lives with the requester's shard-affine store), so the
  service bills its fast-path service time instead of the full one.
* ``observe`` — per-request hook feeding the access-pattern stats that
  drive home migration and the adaptive classifier.

Four policies implement the seam:

``msi``       the paper's protocol; every hook is a no-op.  This is the
              default, and it must stay bit-identical: no policy state, no
              extra events, no wire changes.
``mesi``      Exclusive-clean grants + silent upgrades + payload-free
              S→M upgrade acks.
``migrate``   MESI plus home migration: a page whose last
              ``migration_trigger`` write acquisitions all came from one
              node gets its home migrated there.
``adaptive``  per-page protocol choice among the three, driven by a
              windowed classifier (read-mostly / single-writer /
              migratory / ping-pong) with two-confirmation hysteresis so
              pages don't flap.

Policies are plain bookkeeping objects — no simulator, no network — so the
protocol decisions stay property-testable in isolation, exactly like the
:class:`~repro.mem.directory.Directory` they sit beside.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "PROTOCOL_NAMES",
    "CoherencePolicy",
    "MESIPolicy",
    "MigrationPolicy",
    "AdaptivePolicy",
    "make_policy",
]

PROTOCOL_NAMES = ("msi", "mesi", "migrate", "adaptive")

# The master is node 0 throughout the runtime (see net.faults).  Its store
# IS every page's default home, so "migrating" a home to node 0 is a no-op
# at best — the policies never pick it as a migration target.
MASTER_NODE = 0


class CoherencePolicy:
    """Plain MSI: the paper's protocol.  Every hook is a no-op.

    Subclasses override the decision points; the service owns the
    transaction mechanics either way.
    """

    name = "msi"

    def observe(self, node: int, page: int, write: bool) -> tuple[Optional[int], bool]:
        """Record one page request against the per-page access pattern.

        Returns ``(new_home, reclassified)``: the node the page's home just
        migrated to (or ``None``), and whether the adaptive classifier
        switched the page's per-page protocol on this access.  Called by
        the service under the page's lock, before planning.
        """
        return None, False

    def grant_exclusive(self, node: int, page: int) -> bool:
        """Grant Exclusive instead of Shared on a read fault whose directory
        entry is idle (no owner, no sharers)?"""
        return False

    def upgrade_without_payload(self, node: int, page: int) -> bool:
        """May a write grant to a current sharer omit the page payload?"""
        return False

    def home_of(self, page: int) -> Optional[int]:
        """Node the page's home migrated to, or ``None`` (home = master)."""
        return None

    def evict_node(self, node: int) -> list[int]:
        """Forget a dead node's influence on policy state.

        Returns the pages whose migrated home lived on the dead node —
        their home reverts to the master (whose copy may be stale; the
        directory's eviction accounts the loss).  Write streaks and
        classifier stats naming the dead node are reset so a corpse can
        never become a migration target.
        """
        return []


class MESIPolicy(CoherencePolicy):
    """MESI: Exclusive-clean grants kill the first-write upgrade round trip."""

    name = "mesi"

    def grant_exclusive(self, node: int, page: int) -> bool:
        return True

    def upgrade_without_payload(self, node: int, page: int) -> bool:
        return True


class MigrationPolicy(MESIPolicy):
    """MESI + home migration toward each page's dominant writer.

    A page whose last ``trigger`` write acquisitions were all made by the
    same node is considered write-dominated by it; its home migrates to
    that node's shard-affine store, so the node's subsequent faults on the
    page are metadata-only for the master (billed at the fast-path service
    time).  A different node writing resets the streak — and can later
    steal the home the same way, so dominance shifts follow the workload.
    """

    name = "migrate"

    def __init__(self, trigger: int) -> None:
        self.trigger = trigger
        # page -> (last writer, consecutive write acquisitions by it)
        self._streaks: dict[int, tuple[int, int]] = {}
        self._homes: dict[int, int] = {}

    def observe(self, node: int, page: int, write: bool) -> tuple[Optional[int], bool]:
        if not write:
            return None, False
        last, count = self._streaks.get(page, (node, 0))
        count = count + 1 if last == node else 1
        self._streaks[page] = (node, count)
        if (
            count >= self.trigger
            and node != MASTER_NODE
            and self._homes.get(page) != node
        ):
            self._homes[page] = node
            return node, False
        return None, False

    def home_of(self, page: int) -> Optional[int]:
        return self._homes.get(page)

    def evict_node(self, node: int) -> list[int]:
        reverted = sorted(p for p, h in self._homes.items() if h == node)
        for page in reverted:
            del self._homes[page]
        for page, (last, _) in list(self._streaks.items()):
            if last == node:
                del self._streaks[page]
        return reverted


class _PageClass:
    """One page's windowed access stats + current per-page protocol."""

    __slots__ = ("mode", "pending", "reads", "writes", "writers", "streak_node", "streak")

    def __init__(self) -> None:
        # Pages start as single-writer candidates: the first reader gets an
        # Exclusive grant, so private pages win from their very first fault.
        self.mode = "mesi"
        self.pending: Optional[str] = None
        self.reads = 0
        self.writes = 0
        self.writers: set[int] = set()
        self.streak_node: Optional[int] = None
        self.streak = 0


class AdaptivePolicy(CoherencePolicy):
    """Per-page protocol selection from online access-pattern stats.

    Every ``window`` requests a page is classified:

    * no writes in the window            → read-mostly  → ``msi``
      (Shared grants keep the home serving peer reads directly; an
      Exclusive holder would cost every second reader a write-back
      round trip)
    * one writer, write-dominated window → migratory    → ``migrate``
    * one writer otherwise               → single-writer → ``mesi``
    * several writers                    → ping-pong    → ``msi``
      (plain MSI; migration would flap and Exclusive grants buy nothing
      on a page that is invalidated on every handoff)

    A switch needs the same verdict on two consecutive windows
    (hysteresis); each performed switch counts as one reclassification.
    Pages classified ``migrate`` run the same dominant-writer home
    migration as :class:`MigrationPolicy`; leaving the class reverts the
    page's home to the master.
    """

    name = "adaptive"

    def __init__(self, trigger: int, window: int) -> None:
        self.trigger = trigger
        self.window = window
        self._pages: dict[int, _PageClass] = {}
        self._homes: dict[int, int] = {}

    def _rec(self, page: int) -> _PageClass:
        rec = self._pages.get(page)
        if rec is None:
            rec = self._pages[page] = _PageClass()
        return rec

    def observe(self, node: int, page: int, write: bool) -> tuple[Optional[int], bool]:
        rec = self._rec(page)
        new_home: Optional[int] = None
        if write:
            rec.writes += 1
            rec.writers.add(node)
            rec.streak = rec.streak + 1 if rec.streak_node == node else 1
            rec.streak_node = node
            if (
                rec.mode == "migrate"
                and rec.streak >= self.trigger
                and node != MASTER_NODE
                and self._homes.get(page) != node
            ):
                self._homes[page] = node
                new_home = node
        else:
            rec.reads += 1
        if rec.reads + rec.writes < self.window:
            return new_home, False
        verdict = self._classify(rec)
        rec.reads = rec.writes = 0
        rec.writers.clear()
        reclassified = False
        if verdict == rec.mode:
            rec.pending = None
        elif rec.pending == verdict:
            rec.mode = verdict
            rec.pending = None
            reclassified = True
            if verdict != "migrate":
                # Leaving the migratory class reverts the home to the master.
                self._homes.pop(page, None)
        else:
            rec.pending = verdict
        return new_home, reclassified

    def _classify(self, rec: _PageClass) -> str:
        if rec.writes == 0:
            return "msi"
        if len(rec.writers) == 1:
            # A steady single writer is worth a home migration even when
            # remote reads outnumber its writes: every one of its write
            # faults serializes the home shard for a full service slot,
            # so moving the home off the queue pays for the readers' extra
            # hop.  Only sparsely-written pages stay plain MESI.
            return "migrate" if rec.writes * 4 >= self.window else "mesi"
        return "msi"

    def _mode(self, page: int) -> str:
        rec = self._pages.get(page)
        return rec.mode if rec is not None else "mesi"

    def grant_exclusive(self, node: int, page: int) -> bool:
        return self._mode(page) != "msi"

    def upgrade_without_payload(self, node: int, page: int) -> bool:
        # Safe under every per-page mode: any readable copy is current by
        # protocol invariant, so upgrade acks never need the payload.  Only
        # the fixed "msi" baseline keeps paying it (bit-identity).
        return True

    def home_of(self, page: int) -> Optional[int]:
        return self._homes.get(page)

    def evict_node(self, node: int) -> list[int]:
        reverted = sorted(p for p, h in self._homes.items() if h == node)
        for page in reverted:
            del self._homes[page]
        for rec in self._pages.values():
            rec.writers.discard(node)
            if rec.streak_node == node:
                rec.streak_node = None
                rec.streak = 0
        return reverted


def make_policy(config) -> CoherencePolicy:
    """Policy instance for ``config.coherence_protocol`` (one per shard —
    policy state is page-keyed, and pages are shard-disjoint)."""
    name = config.coherence_protocol
    if name == "msi":
        return CoherencePolicy()
    if name == "mesi":
        return MESIPolicy()
    if name == "migrate":
        return MigrationPolicy(config.migration_trigger)
    if name == "adaptive":
        return AdaptivePolicy(config.migration_trigger, config.adaptive_window)
    raise ValueError(f"unknown coherence protocol {name!r}")
