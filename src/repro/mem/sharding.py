"""Page-range sharding of the master directory (ROADMAP "Async / sharded master").

The master's MSI directory is the serialization point of the whole cluster:
every page request funnels through one manager per node into a single
dispatcher over one global :class:`~repro.mem.directory.Directory`.  This
module provides the partitioning math that lets the master run K independent
*shard pools* instead, each owning a disjoint slice of the page space:

* :func:`shard_of` — the routing key.  Page ranges are interleaved across
  shards (page ``p`` belongs to shard ``p mod K``), so contiguous working
  sets (thread stacks, streamed buffers) spread across pools instead of
  hammering one.
* :class:`ShadowPageAllocator` — shard-affine shadow-page numbering for page
  splitting (§5.1).  A split page's shadows MUST live on the original page's
  shard: the merge path locks the original and all shadows together, and
  keeping that lock set inside one shard preserves the single-shard
  deadlock-freedom argument (see docs/PROTOCOL.md).
* :class:`ShardedDirectoryView` / :class:`ShardedSplitView` — read-only
  merged views over the per-shard partitions, for tests and debugging.

With ``K == 1`` every helper degenerates to the unsharded behavior
bit-for-bit: one shard, the legacy shadow cursor, the underlying directory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConfigError
from repro.mem.layout import PAGE_SIZE, SHADOW_BASE

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.directory import DirEntry, Directory
    from repro.mem.splitmap import SplitEntry, SplitMap

__all__ = [
    "shard_of",
    "ShadowPageAllocator",
    "ShardedDirectoryView",
    "ShardedSplitView",
    "TenantDirectoryView",
]


def shard_of(page: int, nshards: int) -> int:
    """Shard owning ``page``: a total, deterministic partition of page space.

    Interleaved page ranges — page ``p`` maps to shard ``p mod K`` — so every
    page belongs to exactly one shard and contiguous ranges distribute
    round-robin across the pools.
    """
    if nshards < 1:
        raise ConfigError("nshards must be >= 1")
    return page % nshards


class ShadowPageAllocator:
    """Shard-affine shadow-page numbering (splitting §5.1).

    Shard ``s`` allocates shadow pages from the probe region above
    ``SHADOW_BASE``, restricted to page numbers that :func:`shard_of` maps
    back to ``s`` — so a shadow always lands on its original page's shard.
    With one shard this is exactly the legacy cursor (``SHADOW_BASE`` up,
    step 1).
    """

    def __init__(self, shard: int, nshards: int,
                 base_page: int = SHADOW_BASE // PAGE_SIZE):
        if not 0 <= shard < nshards:
            raise ConfigError(f"shard {shard} out of range for {nshards} shards")
        self.shard = shard
        self.nshards = nshards
        self._cursor = base_page + (shard - base_page) % nshards
        assert shard_of(self._cursor, nshards) == shard

    def alloc(self) -> int:
        page = self._cursor
        self._cursor += self.nshards
        return page


class ShardedDirectoryView:
    """Read-only merged view over the per-shard directory partitions.

    Each query routes to the owning shard, so the view is exactly as current
    as the partitions themselves.  Mutations stay shard-local by design —
    this view exposes none.

    ``policies`` optionally carries the per-shard
    :class:`~repro.mem.protocols.CoherencePolicy` objects alongside the
    directories, so tests and debuggers can ask where a page's *home*
    currently lives (:meth:`home_of`) under the migrating protocols.
    """

    def __init__(self, directories: Iterable["Directory"], policies=None):
        self.shards: list["Directory"] = list(directories)
        if not self.shards:
            raise ConfigError("ShardedDirectoryView needs at least one shard")
        self.policies = list(policies) if policies is not None else None
        if self.policies is not None and len(self.policies) != len(self.shards):
            raise ConfigError("one policy per directory shard required")

    def _of(self, page: int) -> "Directory":
        return self.shards[shard_of(page, len(self.shards))]

    def home_of(self, page: int) -> Optional[int]:
        """Node the page's home migrated to, or ``None`` (home = master —
        always the answer when no policies were registered)."""
        if self.policies is None:
            return None
        return self.policies[shard_of(page, len(self.shards))].home_of(page)

    def peek(self, page: int) -> "DirEntry":
        return self._of(page).peek(page)

    def owner(self, page: int) -> Optional[int]:
        return self._of(page).owner(page)

    def holders(self, page: int) -> tuple[int, ...]:
        return self._of(page).holders(page)

    def sharers(self, page: int) -> frozenset[int]:
        return self._of(page).sharers(page)

    def check_invariants(self) -> None:
        for directory in self.shards:
            directory.check_invariants()


class TenantDirectoryView:
    """Tenant-keyed registry of per-job directory views.

    A multi-tenant fleet runs one full shard-pool set *per admitted job* —
    tenants share nodes and wires, never directory state.  This view maps a
    tenant id to that job's merged :class:`ShardedDirectoryView`, giving
    tests and debuggers one handle over the whole fleet's page ownership
    without ever letting one tenant's queries observe another's partitions.
    """

    def __init__(self) -> None:
        self._views: dict[int, ShardedDirectoryView] = {}

    def add_tenant(
        self, tenant: int, directories: Iterable["Directory"], policies=None
    ) -> None:
        if tenant in self._views:
            raise ConfigError(f"tenant {tenant} already registered")
        self._views[tenant] = ShardedDirectoryView(directories, policies)

    def for_tenant(self, tenant: int) -> ShardedDirectoryView:
        try:
            return self._views[tenant]
        except KeyError:
            raise ConfigError(f"unknown tenant {tenant}") from None

    def peek(self, tenant: int, page: int) -> "DirEntry":
        return self.for_tenant(tenant).peek(page)

    def owner(self, tenant: int, page: int) -> Optional[int]:
        return self.for_tenant(tenant).owner(page)

    def home_of(self, tenant: int, page: int) -> Optional[int]:
        return self.for_tenant(tenant).home_of(page)

    def tenants(self) -> tuple[int, ...]:
        return tuple(sorted(self._views))

    def check_invariants(self) -> None:
        for view in self._views.values():
            view.check_invariants()


class ShardedSplitView:
    """Read-only merged view over the per-shard split-table partitions."""

    def __init__(self, splitmaps: Iterable["SplitMap"]):
        self.shards: list["SplitMap"] = list(splitmaps)
        if not self.shards:
            raise ConfigError("ShardedSplitView needs at least one shard")

    def entry(self, page: int) -> Optional["SplitEntry"]:
        return self.shards[shard_of(page, len(self.shards))].entry(page)

    def entries(self) -> tuple["SplitEntry", ...]:
        out: list["SplitEntry"] = []
        for sm in self.shards:
            out.extend(sm.entries())
        return tuple(out)

    def shadow_to_orig(self, page: int):
        # Shadow pages are shard-affine, so the owning shard answers.
        return self.shards[shard_of(page, len(self.shards))].shadow_to_orig(page)
