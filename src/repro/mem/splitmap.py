"""Shadow-page translation table for page splitting (paper §5.1, Fig. 4).

A false-sharing page is split into N shadow pages; shadow page *k* holds the
bytes of region *k* **at the same page offset** as in the original page, so
the translated address is simply ``shadow_base[k] + page_offset``.  Every
node holds a copy of the table (the master broadcasts updates) and applies
the translation during the guest→host address translation step, which is why
the runtime overhead is a single dict lookup.

An access that spans two regions cannot be served by any single shadow page;
:meth:`translate_span` reports it as a :class:`SplitCrossing` so the master
can *merge* the page back (the detector avoids splitting pages where such
accesses were ever observed, so merges are rare).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.mem.layout import PAGE_SIZE, page_base, page_of, page_offset

__all__ = ["SplitEntry", "SplitCrossing", "SplitMap"]


class SplitCrossing(Exception):
    """An access spans a region boundary of a split page (control flow)."""

    def __init__(self, page: int, offset: int, size: int):
        super().__init__(f"access crosses split-region boundary: page={page:#x} off={offset}")
        self.page = page
        self.offset = offset
        self.size = size


@dataclass(frozen=True)
class SplitEntry:
    """One split page: original page number → shadow page per region."""

    orig_page: int
    shadow_pages: tuple[int, ...]  # one per region, in region order
    region_bytes: int

    def __post_init__(self):
        n = len(self.shadow_pages)
        if n < 2 or self.region_bytes * n != PAGE_SIZE:
            raise ProtocolError(
                f"bad split geometry: {n} regions x {self.region_bytes} bytes"
            )

    def region_of(self, offset: int) -> int:
        return offset // self.region_bytes


class SplitMap:
    """Per-node copy of the shadow-page translation table."""

    def __init__(self) -> None:
        self._by_orig: dict[int, SplitEntry] = {}
        self._shadow_owner: dict[int, tuple[int, int]] = {}  # shadow -> (orig, region)

    def __len__(self) -> int:
        return len(self._by_orig)

    def __contains__(self, page: int) -> bool:
        return page in self._by_orig

    def entry(self, page: int) -> SplitEntry | None:
        return self._by_orig.get(page)

    def install(self, entry: SplitEntry) -> None:
        if entry.orig_page in self._by_orig:
            raise ProtocolError(f"page {entry.orig_page:#x} already split")
        for shadow in entry.shadow_pages:
            if shadow in self._shadow_owner:
                raise ProtocolError(f"shadow page {shadow:#x} reused")
        self._by_orig[entry.orig_page] = entry
        for region, shadow in enumerate(entry.shadow_pages):
            self._shadow_owner[shadow] = (entry.orig_page, region)

    def remove(self, orig_page: int) -> SplitEntry:
        entry = self._by_orig.pop(orig_page, None)
        if entry is None:
            raise ProtocolError(f"page {orig_page:#x} is not split")
        for shadow in entry.shadow_pages:
            self._shadow_owner.pop(shadow, None)
        return entry

    # -- translation (the hot path) ------------------------------------------

    def translate_span(self, addr: int, size: int) -> int:
        """Translate ``addr`` if its page is split; raises
        :class:`SplitCrossing` when ``[addr, addr+size)`` spans regions."""
        entry = self._by_orig.get(page_of(addr))
        if entry is None:
            return addr
        off = page_offset(addr)
        region = off // entry.region_bytes
        if (off + size - 1) // entry.region_bytes != region:
            raise SplitCrossing(entry.orig_page, off, size)
        return page_base(entry.shadow_pages[region]) + off

    def shadow_to_orig(self, shadow_page: int) -> tuple[int, int] | None:
        """Reverse lookup: shadow page → (original page, region index)."""
        return self._shadow_owner.get(shadow_page)

    def entries(self) -> tuple[SplitEntry, ...]:
        return tuple(self._by_orig.values())

    def clone_state(self) -> tuple[SplitEntry, ...]:
        """Serializable form for SplitTableUpdate broadcasts."""
        return self.entries()
