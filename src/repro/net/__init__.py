"""Simulated cluster interconnect: star-topology switch, NICs, protocol frames."""

from repro.net.endpoint import Endpoint
from repro.net.fabric import Fabric, FabricStats
from repro.net import messages

__all__ = ["Endpoint", "Fabric", "FabricStats", "messages"]
