"""Simulated cluster interconnect: star-topology switch, NICs, RPC, frames."""

from repro.net import messages
from repro.net.endpoint import Endpoint
from repro.net.fabric import Fabric, FabricStats
from repro.net.faults import FaultInjector, FaultPlan, FaultRule, FaultStats
from repro.net.rpc import RpcChannel, RpcTimeout

__all__ = [
    "Endpoint",
    "Fabric",
    "FabricStats",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "RpcChannel",
    "RpcTimeout",
    "messages",
]
