"""Simulated cluster interconnect: star-topology switch, NICs, RPC, frames."""

from repro.net import messages
from repro.net.endpoint import Endpoint
from repro.net.fabric import Fabric, FabricStats
from repro.net.faults import FaultInjector, FaultPlan, FaultRule, FaultStats
from repro.net.health import HealthTracker, PeerHealth, PeerState
from repro.net.rpc import RetryPolicy, RpcChannel, RpcStats, RpcTimeout

__all__ = [
    "Endpoint",
    "Fabric",
    "FabricStats",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "HealthTracker",
    "PeerHealth",
    "PeerState",
    "RetryPolicy",
    "RpcChannel",
    "RpcStats",
    "RpcTimeout",
    "messages",
]
