"""Per-node network interface with kind-based routing and an RPC channel.

Each DQEMU instance owns one :class:`Endpoint`.  Outbound messages are
stamped with the node id; inbound messages are routed either to the
endpoint's :class:`~repro.net.rpc.RpcChannel` (``in_reply_to`` set) or to
the subscriber queue for a routing key.  The default routing key is the
message *kind*; the master overrides this to route each slave's requests to
that slave's dedicated manager thread, mirroring the paper's
one-manager-per-slave design (§4, Fig. 2).
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.errors import NetworkError
from repro.net.fabric import Fabric
from repro.net.messages import Message
from repro.net.rpc import RpcChannel
from repro.sim.engine import Event, Simulator
from repro.sim.sync import SimQueue

__all__ = ["Endpoint", "TenantEndpoint"]


class Endpoint:
    """A node's NIC: send/request/reply plus subscriber queues."""

    def __init__(self, sim: Simulator, fabric: Fabric, node_id: int):
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.rpc = RpcChannel(sim, self)
        self._queues: dict[Hashable, SimQueue] = {}
        self._route: Callable[[Message], Hashable] = lambda msg: msg.kind
        self._default_queue: Optional[SimQueue] = None
        fabric.attach(self)

    # -- configuration ------------------------------------------------------

    def set_router(self, route: Callable[[Message], Hashable]) -> None:
        """Replace the routing-key function for non-reply inbound messages."""
        self._route = route

    def subscribe(self, key: Hashable) -> SimQueue:
        """Queue receiving every inbound message whose routing key is ``key``."""
        if key not in self._queues:
            self._queues[key] = SimQueue(self.sim)
        return self._queues[key]

    def subscribe_default(self) -> SimQueue:
        """Queue receiving inbound messages with no subscribed key."""
        if self._default_queue is None:
            self._default_queue = SimQueue(self.sim)
        return self._default_queue

    # -- sending ------------------------------------------------------------

    def stamp(self, msg: Message) -> Message:
        """Assign ``msg`` a request id from the fabric's sequence.

        Idempotent: a frame that already carries an id (a retransmit clone,
        a cached-reply resend) keeps it, so deduplication by id still works.
        """
        if not msg.req_id:
            msg.req_id = self.fabric.next_req_id()
        return msg

    def transmit(self, dst: int, msg: Message) -> None:
        """Stamp addressing and put ``msg`` on the wire (no correlation).

        The caller's object is stamped *in place* and owned by the fabric
        from here on — anything re-injecting a frame (the fault injector's
        duplicate action, a hypothetical retransmit layer) must send a copy
        (:func:`repro.net.faults.clone_frame`), never the same instance.
        """
        self.stamp(msg)
        msg.src = self.node_id
        msg.dst = dst
        self.fabric.transmit(msg)

    def send(self, dst: int, msg: Message) -> None:
        """Fire-and-forget transmission."""
        self.transmit(dst, msg)

    def request(
        self,
        dst: int,
        msg: Message,
        *,
        timeout_ns: Optional[int] = None,
        retry=None,
        stats=None,
    ) -> Event:
        """Send ``msg`` and return an event firing with the reply message.

        ``retry`` (a :class:`~repro.net.rpc.RetryPolicy`) arms loss recovery
        on top of the timeout; ``stats`` receives the per-service
        retransmit/recovery counts (see :meth:`RpcChannel.call`).
        """
        return self.rpc.call(dst, msg, timeout_ns=timeout_ns, retry=retry, stats=stats)

    def reply(self, to: Message, msg: Message) -> None:
        """Send ``msg`` as the reply correlated with request ``to``."""
        self.rpc.reply(to, msg)

    # -- receiving (called by the fabric) ------------------------------------

    def deliver(self, msg: Message) -> None:
        """Hand an arrived frame to the RPC channel or a subscriber queue."""
        if msg.in_reply_to:
            self.rpc.complete(msg)
            return
        # Mailbox-arrival stamp: dispatchers subtract this from their dispatch
        # start to attribute queue wait (head-of-line blocking) per service.
        # A dynamic attribute, not a frame field — it never hits the wire
        # model and re-stamps naturally on injected duplicates.
        msg._arrived_ns = self.sim.now
        key = self._route(msg)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._default_queue
        if queue is None:
            raise NetworkError(
                f"node {self.node_id}: no subscriber for key {key!r} (kind={msg.kind})"
            )
        queue.put(msg)

    @property
    def pending_requests(self) -> int:
        return self.rpc.in_flight


class TenantEndpoint:
    """A job-scoped view of an :class:`Endpoint`.

    Per-job master runtimes share node 0's physical endpoint; each wraps it
    in one of these so every frame the job's services *originate* (grants,
    invalidations, spawns, wakes, shutdown) is stamped with the job's tenant
    id without the services knowing about tenancy.  Replies need no stamping
    here — :meth:`repro.net.rpc.RpcChannel.reply` copies the request's
    tenant onto the reply, which also covers node-side services replying
    through the raw endpoint.
    """

    def __init__(self, endpoint: Endpoint, tenant: int):
        self._endpoint = endpoint
        self.tenant = tenant

    @property
    def sim(self) -> Simulator:
        return self._endpoint.sim

    @property
    def fabric(self) -> Fabric:
        return self._endpoint.fabric

    @property
    def node_id(self) -> int:
        return self._endpoint.node_id

    @property
    def rpc(self) -> RpcChannel:
        return self._endpoint.rpc

    @property
    def pending_requests(self) -> int:
        return self._endpoint.pending_requests

    def subscribe(self, key: Hashable) -> SimQueue:
        return self._endpoint.subscribe(key)

    def subscribe_default(self) -> SimQueue:
        return self._endpoint.subscribe_default()

    def transmit(self, dst: int, msg: Message) -> None:
        msg.tenant = self.tenant
        self._endpoint.transmit(dst, msg)

    def send(self, dst: int, msg: Message) -> None:
        self.transmit(dst, msg)

    def request(
        self,
        dst: int,
        msg: Message,
        *,
        timeout_ns: Optional[int] = None,
        retry=None,
        stats=None,
    ) -> Event:
        msg.tenant = self.tenant
        return self._endpoint.request(
            dst, msg, timeout_ns=timeout_ns, retry=retry, stats=stats
        )

    def reply(self, to: Message, msg: Message) -> None:
        self._endpoint.reply(to, msg)
