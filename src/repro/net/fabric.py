"""Simulated cluster interconnect.

Models the paper's testbed: a store-and-forward Gigabit switch in a star
topology.  Each node has a full-duplex link; a frame is serialized onto the
sender's uplink, crosses the switch with a fixed one-way latency, and is
serialized again on the receiver's downlink.  Per-direction link occupancy is
tracked so concurrent traffic queues realistically — this is what produces
the master-link bottleneck visible in the paper's worst-case mutex test.

With the default constants (1 Gb/s, 27.4 µs one-way) a 64-byte control
message has a ~55 µs round trip, matching §6.1.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import TYPE_CHECKING, Optional

from repro.errors import NetworkError
from repro.net.messages import Message
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.endpoint import Endpoint
    from repro.net.faults import FaultStats
    from repro.net.health import HealthTracker

__all__ = ["Fabric", "FabricStats"]


class FabricStats:
    """Aggregate traffic counters, queryable per experiment.

    ``tx_bytes_by_node`` / ``rx_bytes_by_node`` attribute wire load to the
    sending/receiving node — on a star topology the master's rows are the
    bottleneck links the paper's worst-case mutex test saturates.
    """

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.by_kind: Counter[str] = Counter()
        self.bytes_by_kind: Counter[str] = Counter()
        self.tx_bytes_by_node: Counter[int] = Counter()
        self.rx_bytes_by_node: Counter[int] = Counter()

    def record(self, msg: Message) -> None:
        self.messages_sent += 1
        size = msg.size_bytes()
        self.bytes_sent += size
        self.by_kind[msg.kind] += 1
        self.bytes_by_kind[msg.kind] += size
        self.tx_bytes_by_node[msg.src] += size
        self.rx_bytes_by_node[msg.dst] += size


class Fabric:
    """Star-topology switch connecting DQEMU node endpoints."""

    def __init__(
        self,
        sim: Simulator,
        *,
        bandwidth_bps: float = 1e9,
        one_way_latency_ns: int = 27_400,
        loopback_latency_ns: int = 300,
    ) -> None:
        if bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        if one_way_latency_ns < 0 or loopback_latency_ns < 0:
            raise NetworkError("latency must be non-negative")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.one_way_latency_ns = int(one_way_latency_ns)
        self.loopback_latency_ns = int(loopback_latency_ns)
        self._endpoints: dict[int, "Endpoint"] = {}
        self._uplink_free: dict[int, int] = {}
        self._downlink_free: dict[int, int] = {}
        self.stats = FabricStats()
        #: Per-tenant traffic slices: every frame is recorded both in the
        #: aggregate ``stats`` and in its tenant's slice, so each job's
        #: ``RunResult.fabric`` is exact attribution, not an estimate.
        self.tenant_stats: dict[int, FabricStats] = {}
        # Request-id sequence for every endpoint attached to this fabric.
        # Owning the counter here (instead of a module global) makes req ids
        # — and the retry backoff jitter keyed on them — a function of the
        # fleet alone, however many clusters the process builds.
        self._req_seq = itertools.count(1)
        #: Injection counters, set by ``FaultInjector.attach``; ``None`` on a
        #: lossless (un-instrumented) fabric.
        self.fault_stats: Optional["FaultStats"] = None
        #: Per-peer health view fed by the RPC reliability layer
        #: (``repro.net.health.HealthTracker``), attached by the cluster the
        #: same way fault stats are; ``None`` on a bare fabric.
        self.health: Optional["HealthTracker"] = None

    # -- wiring -------------------------------------------------------------

    def attach(self, endpoint: "Endpoint") -> None:
        node_id = endpoint.node_id
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} already attached")
        self._endpoints[node_id] = endpoint
        self._uplink_free[node_id] = 0
        self._downlink_free[node_id] = 0

    def endpoint(self, node_id: int) -> "Endpoint":
        try:
            return self._endpoints[node_id]
        except KeyError:
            raise NetworkError(f"no endpoint attached for node {node_id}") from None

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._endpoints)

    def next_req_id(self) -> int:
        """Allocate the next request id for a frame entering this fabric."""
        return next(self._req_seq)

    def stats_for(self, tenant: int) -> FabricStats:
        """The tenant's traffic slice (created on first use)."""
        try:
            return self.tenant_stats[tenant]
        except KeyError:
            slice_ = self.tenant_stats[tenant] = FabricStats()
            return slice_

    # -- transmission -------------------------------------------------------

    def serialization_ns(self, size_bytes: int) -> int:
        return int(round(size_bytes * 8 / self.bandwidth_bps * 1e9))

    def downlink_backlog_ns(self, node_id: int) -> int:
        """How far ahead of now the node's downlink is already booked.

        Used by the data forwarder to pace pushes so demand replies are not
        stuck behind a burst of forwarded pages.  Asking about a node that
        was never attached is a wiring bug and raises, exactly like
        :meth:`endpoint` — silently answering 0 would let forwarder pacing
        errors hide.
        """
        try:
            free = self._downlink_free[node_id]
        except KeyError:
            raise NetworkError(f"no endpoint attached for node {node_id}") from None
        return max(0, free - self.sim.now)

    def transmit(self, msg: Message) -> int:
        """Schedule delivery of ``msg``; returns the arrival time (ns).

        Loopback traffic (``src == dst``, the master talking to itself)
        bypasses the switch with a small fixed cost.
        """
        if msg.dst not in self._endpoints:
            raise NetworkError(f"message to unknown node {msg.dst}")
        if msg.src not in self._endpoints:
            raise NetworkError(f"message from unknown node {msg.src}")
        self.stats.record(msg)
        self.stats_for(msg.tenant).record(msg)
        now = self.sim.now
        if msg.src == msg.dst:
            arrival = now + self.loopback_latency_ns
        else:
            ser = self.serialization_ns(msg.size_bytes())
            tx_start = max(now, self._uplink_free[msg.src])
            tx_end = tx_start + ser
            self._uplink_free[msg.src] = tx_end
            at_switch = tx_end + self.one_way_latency_ns
            rx_start = max(at_switch, self._downlink_free[msg.dst])
            arrival = rx_start + ser
            self._downlink_free[msg.dst] = arrival
        dest = self._endpoints[msg.dst]
        self.sim.timeout(arrival - now).add_callback(lambda _e: dest.deliver(msg))
        return arrival
