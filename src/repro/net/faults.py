"""Fault injection for the simulated interconnect (drop / delay / duplicate /
reorder).

The paper assumes a lossless cluster fabric (§4); this module makes that
assumption *testable*.  A :class:`FaultPlan` is a declarative, immutable list
of :class:`FaultRule` entries — each a frame predicate (message kind, src/dst
node, every-Nth match, virtual-time window) plus an action.  A
:class:`FaultInjector` binds a plan to one :class:`~repro.net.fabric.Fabric`
by wrapping its ``transmit``; matching frames are dropped, delayed (fixed or
deterministically jittered), duplicated, or held back and reordered behind a
later frame.  Per-rule and per-action counters live in :class:`FaultStats`,
surfaced next to the fabric's traffic counters as ``Fabric.fault_stats``.

Everything is deterministic: jitter comes from a ``random.Random`` seeded by
the plan, so a faulty run is exactly reproducible.  Frames re-injected by the
duplicate action are copied first (:func:`clone_frame`) — the endpoint stamps
``src``/``dst`` on the caller's object in place, so re-sending the same
instance would alias protocol state across deliveries.
"""

from __future__ import annotations

import dataclasses
import random
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConfigError, NetworkError
from repro.net.messages import Message
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "clone_frame",
    "drop",
    "delay",
    "duplicate",
    "reorder",
]

ACTIONS = ("drop", "delay", "duplicate", "reorder")


def clone_frame(msg: Message) -> Message:
    """Field-level copy of a protocol frame for re-injection.

    The endpoint stamps ``src``/``dst`` into the caller's message object, so
    an injected copy must be a distinct instance — mutating one delivery must
    never reach through to another.
    """
    return dataclasses.replace(msg)


@dataclass(frozen=True)
class FaultRule:
    """One fault: a frame predicate plus an action.

    Predicate fields (all optional, AND-ed together):

    * ``kinds`` — match only these message kinds (``None`` = any kind);
    * ``src`` / ``dst`` — match only frames from / to this node id;
    * ``loopback`` — ``True``: only a node talking to itself, ``False``:
      only cross-node frames (``None`` = either).  A partition that cut a
      node's loopback path would wedge the node against *itself*, which no
      physical cable fault can do;
    * ``after_ns`` / ``until_ns`` — virtual-time window ``[after, until)``;
    * ``every_nth`` — fire on every Nth frame satisfying the predicate;
    * ``max_count`` — stop firing after this many injections.

    Action parameters: ``delay_ns``/``jitter_ns`` (delay), ``copies``
    (duplicate: extra deliveries), ``hold_ns`` (reorder: how long a held
    frame waits for a successor before it is flushed anyway).
    """

    action: str
    kinds: Optional[frozenset[str]] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    loopback: Optional[bool] = None
    every_nth: int = 1
    max_count: Optional[int] = None
    after_ns: int = 0
    until_ns: Optional[int] = None
    delay_ns: int = 0
    jitter_ns: int = 0
    copies: int = 1
    hold_ns: int = 200_000
    label: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigError(f"unknown fault action {self.action!r}")
        if self.kinds is not None and not isinstance(self.kinds, frozenset):
            object.__setattr__(self, "kinds", frozenset(self.kinds))
        if self.every_nth < 1:
            raise ConfigError("every_nth must be >= 1")
        if self.max_count is not None and self.max_count < 1:
            raise ConfigError("max_count must be >= 1")
        if self.until_ns is not None and self.until_ns <= self.after_ns:
            raise ConfigError("fault window is empty (until_ns <= after_ns)")
        if self.delay_ns < 0 or self.jitter_ns < 0:
            raise ConfigError("delays must be non-negative")
        if self.action == "delay" and self.delay_ns == 0 and self.jitter_ns == 0:
            raise ConfigError("delay rule needs delay_ns and/or jitter_ns")
        if self.copies < 1:
            raise ConfigError("duplicate rule needs copies >= 1")
        if self.hold_ns < 0:
            raise ConfigError("hold_ns must be non-negative")

    # -- predicate --------------------------------------------------------------

    def matches(self, msg: Message, now: int) -> bool:
        """Static predicate (kind / endpoints / time window); Nth-match and
        max-count bookkeeping lives in the injector, which owns run state."""
        if self.kinds is not None and msg.kind not in self.kinds:
            return False
        if self.src is not None and msg.src != self.src:
            return False
        if self.dst is not None and msg.dst != self.dst:
            return False
        if self.loopback is not None and (msg.src == msg.dst) is not self.loopback:
            return False
        if now < self.after_ns:
            return False
        if self.until_ns is not None and now >= self.until_ns:
            return False
        return True

    def describe(self) -> str:
        match = []
        if self.kinds is not None:
            match.append("kind in {%s}" % ",".join(sorted(self.kinds)))
        if self.src is not None:
            match.append(f"src={self.src}")
        if self.dst is not None:
            match.append(f"dst={self.dst}")
        if self.loopback is not None:
            match.append("loopback" if self.loopback else "no loopback")
        if self.after_ns or self.until_ns is not None:
            match.append(f"t in [{self.after_ns},{self.until_ns})")
        if self.every_nth > 1:
            match.append(f"every {self.every_nth}th")
        if self.max_count is not None:
            match.append(f"at most {self.max_count}x")
        return f"{self.action}({', '.join(match) or 'any frame'})"


# -- rule shorthands (the fault plan "syntax", see docs/PROTOCOL.md) ------------


def drop(**match) -> FaultRule:
    """Drop every matching frame (it never reaches the wire)."""
    return FaultRule(action="drop", **match)


def delay(delay_ns: int, *, jitter_ns: int = 0, **match) -> FaultRule:
    """Delay matching frames by ``delay_ns`` plus seeded jitter in
    ``[0, jitter_ns]`` before they enter the switch."""
    return FaultRule(action="delay", delay_ns=delay_ns, jitter_ns=jitter_ns, **match)


def duplicate(copies: int = 1, **match) -> FaultRule:
    """Deliver matching frames ``1 + copies`` times (copies are cloned)."""
    return FaultRule(action="duplicate", copies=copies, **match)


def reorder(hold_ns: int = 200_000, **match) -> FaultRule:
    """Hold a matching frame back so the next transmitted frame overtakes it;
    flushed after ``hold_ns`` if no successor shows up."""
    return FaultRule(action="reorder", hold_ns=hold_ns, **match)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, reusable fault schedule: ordered rules + a jitter seed.

    The first rule matching a frame wins.  A plan carries no run state, so
    one plan can parameterize many :class:`FaultInjector` instances (e.g. the
    same experiment at several node counts).
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    #: Hard crash schedule: ``(node, at_ns)`` pairs.  The wire rules above
    #: carry the packet-level consequences; this field tells the cluster to
    #: halt the node's runtime at that instant (see ``FaultPlan.crash``).
    crashes: tuple[tuple[int, int], ...] = ()
    #: Cooperative drain schedule: ``(node, at_ns)`` pairs.  No wire rules —
    #: the node stays reachable and evacuates its threads (``FaultPlan.drain``).
    drains: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ConfigError(f"fault plan entries must be FaultRule, got {rule!r}")
        for name in ("crashes", "drains"):
            sched = getattr(self, name)
            if not isinstance(sched, tuple):
                object.__setattr__(self, name, tuple(sched))
                sched = getattr(self, name)
            for entry in sched:
                if (
                    not isinstance(entry, tuple)
                    or len(entry) != 2
                    or not all(isinstance(v, int) for v in entry)
                ):
                    raise ConfigError(
                        f"{name} entries must be (node, at_ns) int pairs, got {entry!r}"
                    )
                node, at_ns = entry
                if node < 0 or at_ns < 0:
                    raise ConfigError(f"{name} entry {entry!r} must be non-negative")

    @staticmethod
    def of(*rules: FaultRule, seed: int = 0) -> "FaultPlan":
        return FaultPlan(rules=tuple(rules), seed=seed)

    @staticmethod
    def partition(
        nodes: Iterable[int],
        start_ns: int,
        end_ns: int,
        *,
        extra: Iterable[FaultRule] = (),
        seed: int = 0,
    ) -> "FaultPlan":
        """A network partition: isolate ``nodes`` for ``[start_ns, end_ns)``.

        Every frame into *or* out of a listed node is dropped for the window
        — both directions, both relative to listed and unlisted peers, so
        listing more than one node cuts them off from each other too.  A
        node's loopback path survives (the master keeps talking to its own
        managers; cutting a cable cannot stop a machine from reaching
        itself).  ``extra`` rules are prepended, letting an experiment stack
        background loss on top of the window (first matching rule wins).
        """
        nodes = sorted(set(nodes))
        if not nodes:
            raise ConfigError("partition needs at least one node to isolate")
        if end_ns <= start_ns:
            raise ConfigError("partition window is empty (end_ns <= start_ns)")
        rules = list(extra)
        for n in nodes:
            common = dict(
                after_ns=start_ns, until_ns=end_ns, loopback=False
            )
            rules.append(drop(src=n, label=f"partition:n{n}:out", **common))
            rules.append(drop(dst=n, label=f"partition:n{n}:in", **common))
        return FaultPlan(rules=tuple(rules), seed=seed)

    @staticmethod
    def crash(
        node: int,
        at_ns: int,
        *,
        extra: Iterable[FaultRule] = (),
        seed: int = 0,
    ) -> "FaultPlan":
        """A permanent node crash at ``at_ns`` — the fail-stop sibling of
        :meth:`partition`.

        Unlike a partition's window, a crash never heals: every cross-node
        frame into or out of the node is dropped from ``at_ns`` on (no
        ``until_ns``), and the ``crashes`` schedule tells the cluster to halt
        the node's runtime at the same instant — cores stop, its RPC channel
        is neutered, in-flight work on the node dies with it.  Loopback is
        left intact purely so the dying node's own teardown cannot wedge;
        node 0 (the master) cannot crash — that is the whole run.
        """
        if node < 1:
            raise ConfigError("only slave nodes (>= 1) can crash; node 0 is the run")
        if at_ns < 0:
            raise ConfigError("crash time must be non-negative")
        rules = list(extra)
        common = dict(after_ns=at_ns, loopback=False)
        rules.append(drop(src=node, label=f"crash:n{node}:out", **common))
        rules.append(drop(dst=node, label=f"crash:n{node}:in", **common))
        return FaultPlan(
            rules=tuple(rules), seed=seed, crashes=((node, at_ns),)
        )

    @staticmethod
    def drain(
        node: int,
        at_ns: int,
        *,
        extra: Iterable[FaultRule] = (),
        seed: int = 0,
    ) -> "FaultPlan":
        """A cooperative drain: at ``at_ns`` the master stops placing work on
        ``node`` and evacuates its live threads to healthy peers.

        No wire rules — the node stays fully reachable (its pages migrate
        away lazily through normal coherence traffic) and reports
        ``DrainComplete`` once its last thread has been evacuated.
        """
        if node < 1:
            raise ConfigError("only slave nodes (>= 1) can drain; node 0 is the run")
        if at_ns < 0:
            raise ConfigError("drain time must be non-negative")
        return FaultPlan(rules=tuple(extra), seed=seed, drains=((node, at_ns),))

    def describe(self) -> str:
        parts = [r.label or r.describe() for r in self.rules]
        parts += [f"crash:n{n}@{t}ns" for n, t in self.crashes]
        parts += [f"drain:n{n}@{t}ns" for n, t in self.drains]
        return "; ".join(parts) or "no faults"


class FaultStats:
    """Injection counters, the fault-side sibling of ``FabricStats``.

    ``by_rule`` keys injections by rule label (``ruleN`` when unlabeled);
    ``by_kind`` attributes them to the affected message kind, mirroring
    ``FabricStats.by_kind`` so the two read side by side.
    """

    def __init__(self) -> None:
        self.matched = 0  # frames some rule fired on
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0  # extra copies injected
        self.reordered = 0
        self.delay_added_ns = 0
        self.by_rule: Counter[str] = Counter()
        self.by_kind: Counter[str] = Counter()

    @property
    def injected(self) -> int:
        return self.dropped + self.delayed + self.duplicated + self.reordered


class FaultInjector:
    """Binds a :class:`FaultPlan` to one fabric, owning all run state.

    ``attach`` wraps ``fabric.transmit``; frames re-injected by a fault
    (delayed originals, duplicate copies, released reorder holds) go straight
    to the fabric without re-matching, so rules never compound on their own
    output.  Dropped frames are counted here and in no ``FabricStats``
    counter — they never reach the wire.
    """

    def __init__(self, sim: Simulator, plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._match_counts = [0] * len(plan.rules)
        self._fired = [0] * len(plan.rules)
        self._held: list[Message] = []
        self.fabric: Optional["Fabric"] = None
        self._inner = None

    # -- wiring -----------------------------------------------------------------

    def attach(self, fabric: "Fabric") -> "FaultInjector":
        if self._inner is not None:
            raise NetworkError("fault injector already attached to a fabric")
        self.fabric = fabric
        self._inner = fabric.transmit
        fabric.transmit = self._transmit  # type: ignore[method-assign]
        fabric.fault_stats = self.stats
        return self

    # -- rule selection ---------------------------------------------------------

    def _select(self, msg: Message) -> tuple[Optional[int], Optional[FaultRule]]:
        now = self.sim.now
        for i, rule in enumerate(self.plan.rules):
            if not rule.matches(msg, now):
                continue
            if rule.max_count is not None and self._fired[i] >= rule.max_count:
                continue
            self._match_counts[i] += 1
            if self._match_counts[i] % rule.every_nth:
                continue
            self._fired[i] += 1
            return i, rule
        return None, None

    # -- the wrapped transmit ---------------------------------------------------

    def _transmit(self, msg: Message) -> int:
        i, rule = self._select(msg)
        if rule is None:
            arrival = self._inner(msg)
            self._release_held()
            return arrival

        st = self.stats
        st.matched += 1
        st.by_rule[rule.label or f"rule{i}"] += 1
        st.by_kind[msg.kind] += 1

        if rule.action == "drop":
            st.dropped += 1
            return self.sim.now  # the frame never reaches the wire

        if rule.action == "delay":
            d = rule.delay_ns
            if rule.jitter_ns:
                d += self._rng.randint(0, rule.jitter_ns)
            st.delayed += 1
            st.delay_added_ns += d
            self.sim.timeout(d).add_callback(lambda _e, m=msg: self._inner(m))
            return self.sim.now + d  # lower bound; link queueing comes later

        if rule.action == "duplicate":
            st.duplicated += rule.copies
            arrival = self._inner(msg)
            for _ in range(rule.copies):
                self._inner(clone_frame(msg))
            self._release_held()
            return arrival

        # reorder: hold until the next transmitted frame overtakes this one,
        # or flush after hold_ns so a quiet link still delivers eventually.
        st.reordered += 1
        self._held.append(msg)
        self.sim.timeout(rule.hold_ns).add_callback(lambda _e, m=msg: self._flush(m))
        return self.sim.now

    def _release_held(self) -> None:
        while self._held:
            self._inner(self._held.pop(0))

    def _flush(self, msg: Message) -> None:
        for k, held in enumerate(self._held):
            if held is msg:
                del self._held[k]
                self._inner(msg)
                return
