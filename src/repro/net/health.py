"""Per-peer health tracking fed by the RPC reliability layer.

The retransmit layer (:mod:`repro.net.rpc`) distinguishes three things about
a peer: it answered (heard from), it missed a timeout window and forced a
retransmit (maybe slow, maybe gone), or it exhausted a call's whole retry
budget (as good as dead for that call).  This module turns those signals
into a cluster-wide per-peer view — :class:`PeerState` ``up`` / ``suspect``
/ ``down`` with consecutive-failure counts and last-heard-from timestamps —
so experiments and services can tell a slow peer from a dead one without
parsing exception strings.

One :class:`HealthTracker` serves the whole cluster: every endpoint's
:class:`~repro.net.rpc.RpcChannel` reports into it through
``Fabric.health`` (mirroring how ``Fabric.fault_stats`` is attached), and
entries are keyed by the *peer being judged*, merging observations from all
of its clients.  The tracker is pure bookkeeping — it never schedules a
simulator event — so attaching it cannot perturb event ordering, and every
run (retries armed or not) can carry one for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from repro.sim.engine import Simulator

__all__ = ["PeerState", "PeerHealth", "HealthTracker", "ClusterHealthView"]


class PeerState(str, Enum):
    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"


@dataclass
class PeerHealth:
    """One peer's record, merged across every endpoint that talks to it."""

    node: int
    state: PeerState = PeerState.UP
    #: Timeout windows missed since the peer last answered anyone.
    consecutive_failures: int = 0
    retransmits: int = 0  # retransmits ever aimed at this peer
    recoveries: int = 0  # calls that recovered after retransmitting to it
    exhausted: int = 0  # calls that ran out their whole retry budget
    #: Whole heartbeat leases that expired with no renewal (0 unless the
    #: heartbeat detector is armed; see repro.core.services.heartbeat).
    lease_misses: int = 0
    last_heard_ns: Optional[int] = None
    last_failure_ns: Optional[int] = None
    #: The failure signal that caused (or would cause) the most recent
    #: demotion: "rpc-timeout" (missed retransmit windows / exhausted
    #: budgets) or "lease-expiry" (the heartbeat monitor).  Read at the
    #: DOWN transition to attribute which evidence fired first.
    last_evidence: str = ""
    #: ``on_down`` already fired for this peer.  Exactly-once latch:
    #: racing rpc-timeout and lease-expiry evidence — or a heal/re-demote
    #: cycle against an already-latched failure — must not re-run the
    #: failure domain's recovery for the same peer.
    down_reported: bool = False


@dataclass
class HealthTracker:
    """Cluster-wide peer states: up until proven slow, down when exhausted.

    ``suspect_after`` consecutive missed timeout windows demote a peer to
    ``suspect``; ``down_after`` (or any call exhausting its retry budget)
    demote it to ``down``.  Any answered call resets the peer to ``up`` —
    a healed partition heals the health view too.
    """

    sim: Simulator
    suspect_after: int = 2
    down_after: int = 5
    peers: dict[int, PeerHealth] = field(default_factory=dict)
    #: Called with the peer's node id each time a peer *transitions* into
    #: DOWN (not on repeat confirmations).  The master's failure detector
    #: subscribes here to promote peer-level DOWN into a cluster-level
    #: NodeFailed event.  Callbacks run synchronously inside the RPC timer
    #: expiry, *before* the failing call's exception is delivered, so by the
    #: time a handler observes the timeout the cluster view already reflects
    #: the failure.
    on_down: list[Callable[[int], None]] = field(default_factory=list)

    def peer(self, node: int) -> PeerHealth:
        if node not in self.peers:
            self.peers[node] = PeerHealth(node=node)
        return self.peers[node]

    def _went_down(self, p: PeerHealth, was: PeerState) -> None:
        if was is PeerState.DOWN or p.state is not PeerState.DOWN:
            return
        if p.down_reported:
            return
        # Latch before notifying: a callback that re-enters the tracker
        # (the failure domain aborts pending calls, which can record more
        # evidence against the same peer) must not re-fire.
        p.down_reported = True
        for cb in list(self.on_down):
            cb(p.node)

    # -- signals from the RPC layer ------------------------------------------

    def heard_from(self, node: int) -> None:
        p = self.peer(node)
        p.last_heard_ns = self.sim.now
        p.consecutive_failures = 0
        p.state = PeerState.UP

    def record_success(self, node: int) -> None:
        """Positive liveness evidence from any source — an answered RPC, a
        heartbeat lease renewal: resets the peer to ``up``.  A
        slow-but-alive node that was ``suspect`` (or even transiently
        ``down``) recovers the moment it proves itself again."""
        self.heard_from(node)

    def retransmitted(self, node: int) -> None:
        p = self.peer(node)
        was = p.state
        p.retransmits += 1
        p.consecutive_failures += 1
        p.last_failure_ns = self.sim.now
        p.last_evidence = "rpc-timeout"
        if p.consecutive_failures >= self.down_after:
            p.state = PeerState.DOWN
        elif p.consecutive_failures >= self.suspect_after:
            p.state = PeerState.SUSPECT
        self._went_down(p, was)

    def recovered(self, node: int) -> None:
        p = self.peer(node)
        p.recoveries += 1
        # heard_from() runs alongside and resets state/failure counts.

    def exhausted_budget(self, node: int) -> None:
        p = self.peer(node)
        was = p.state
        p.exhausted += 1
        p.last_failure_ns = self.sim.now
        p.last_evidence = "rpc-timeout"
        p.state = PeerState.DOWN
        self._went_down(p, was)

    # -- signals from the heartbeat monitor ----------------------------------

    def lease_missed(self, node: int) -> None:
        """A whole heartbeat lease expired with no renewal: failure
        evidence, escalated through the same consecutive-failure
        thresholds as a missed RPC timeout window — heartbeat and RPC
        evidence merge in one view instead of forking a second health
        state (docs/PROTOCOL.md "Failure detection")."""
        p = self.peer(node)
        was = p.state
        p.lease_misses += 1
        p.consecutive_failures += 1
        p.last_failure_ns = self.sim.now
        p.last_evidence = "lease-expiry"
        if p.consecutive_failures >= self.down_after:
            p.state = PeerState.DOWN
        elif p.consecutive_failures >= self.suspect_after:
            p.state = PeerState.SUSPECT
        self._went_down(p, was)

    # -- queries ----------------------------------------------------------------

    def down_evidence(self, node: int) -> str:
        """Which evidence demoted ``node``: "rpc-timeout" or "lease-expiry".

        Defaults to "rpc-timeout" for peers with no recorded evidence —
        the only demotion path that existed before evidence tracking.
        """
        p = self.peers.get(node)
        if p is None or not p.last_evidence:
            return "rpc-timeout"
        return p.last_evidence

    def state_of(self, node: int) -> PeerState:
        p = self.peers.get(node)
        return p.state if p is not None else PeerState.UP

    def states(self) -> dict[int, PeerState]:
        return {node: p.state for node, p in sorted(self.peers.items())}

    def describe(self) -> str:
        if not self.peers:
            return "no peers observed"
        return "; ".join(
            f"n{node}={p.state.value}"
            f"(fails={p.consecutive_failures}, retx={p.retransmits})"
            for node, p in sorted(self.peers.items())
        )


@dataclass
class ClusterHealthView:
    """Cluster-level failure view layered over the per-peer tracker.

    The :class:`HealthTracker` state is transient — an answered call heals a
    ``down`` peer back to ``up`` — which is the right semantics for a
    partition but the wrong one for a crash: a node declared *failed* must
    stay failed even if a stale reply trickles in.  The view therefore keeps
    two latched sets on top of the tracker: ``failed`` (crashed nodes the
    failure detector gave up on) and ``draining`` (nodes being evacuated
    cooperatively; healthy, but closed for new placements).

    Shared by the :class:`~repro.core.scheduler.ThreadPlacer` and the
    master's degradation-aware services; pure bookkeeping, no simulator
    events.
    """

    tracker: HealthTracker
    failed: set[int] = field(default_factory=set)
    draining: set[int] = field(default_factory=set)

    # -- state transitions (master failure detector) -------------------------

    def mark_failed(self, node: int) -> None:
        self.failed.add(node)
        self.draining.discard(node)

    def mark_draining(self, node: int) -> None:
        if node not in self.failed:
            self.draining.add(node)

    # -- queries -------------------------------------------------------------

    def is_failed(self, node: int) -> bool:
        return node in self.failed

    def is_draining(self, node: int) -> bool:
        return node in self.draining

    def is_suspect(self, node: int) -> bool:
        return self.tracker.state_of(node) is PeerState.SUSPECT

    def unusable_reason(self, node: int) -> Optional[str]:
        """Why this node must not receive new work (None = usable)."""
        if node in self.failed:
            return "down"
        if node in self.draining:
            return "draining"
        if self.tracker.state_of(node) is PeerState.DOWN:
            return "down"
        return None

    def usable(self, node: int) -> bool:
        return self.unusable_reason(node) is None

    def state_of(self, node: int) -> PeerState:
        if node in self.failed:
            return PeerState.DOWN
        return self.tracker.state_of(node)
