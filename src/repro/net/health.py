"""Per-peer health tracking fed by the RPC reliability layer.

The retransmit layer (:mod:`repro.net.rpc`) distinguishes three things about
a peer: it answered (heard from), it missed a timeout window and forced a
retransmit (maybe slow, maybe gone), or it exhausted a call's whole retry
budget (as good as dead for that call).  This module turns those signals
into a cluster-wide per-peer view — :class:`PeerState` ``up`` / ``suspect``
/ ``down`` with consecutive-failure counts and last-heard-from timestamps —
so experiments and services can tell a slow peer from a dead one without
parsing exception strings.

One :class:`HealthTracker` serves the whole cluster: every endpoint's
:class:`~repro.net.rpc.RpcChannel` reports into it through
``Fabric.health`` (mirroring how ``Fabric.fault_stats`` is attached), and
entries are keyed by the *peer being judged*, merging observations from all
of its clients.  The tracker is pure bookkeeping — it never schedules a
simulator event — so attaching it cannot perturb event ordering, and every
run (retries armed or not) can carry one for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.sim.engine import Simulator

__all__ = ["PeerState", "PeerHealth", "HealthTracker"]


class PeerState(str, Enum):
    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"


@dataclass
class PeerHealth:
    """One peer's record, merged across every endpoint that talks to it."""

    node: int
    state: PeerState = PeerState.UP
    #: Timeout windows missed since the peer last answered anyone.
    consecutive_failures: int = 0
    retransmits: int = 0  # retransmits ever aimed at this peer
    recoveries: int = 0  # calls that recovered after retransmitting to it
    exhausted: int = 0  # calls that ran out their whole retry budget
    last_heard_ns: Optional[int] = None
    last_failure_ns: Optional[int] = None


@dataclass
class HealthTracker:
    """Cluster-wide peer states: up until proven slow, down when exhausted.

    ``suspect_after`` consecutive missed timeout windows demote a peer to
    ``suspect``; ``down_after`` (or any call exhausting its retry budget)
    demote it to ``down``.  Any answered call resets the peer to ``up`` —
    a healed partition heals the health view too.
    """

    sim: Simulator
    suspect_after: int = 2
    down_after: int = 5
    peers: dict[int, PeerHealth] = field(default_factory=dict)

    def peer(self, node: int) -> PeerHealth:
        if node not in self.peers:
            self.peers[node] = PeerHealth(node=node)
        return self.peers[node]

    # -- signals from the RPC layer ------------------------------------------

    def heard_from(self, node: int) -> None:
        p = self.peer(node)
        p.last_heard_ns = self.sim.now
        p.consecutive_failures = 0
        p.state = PeerState.UP

    def retransmitted(self, node: int) -> None:
        p = self.peer(node)
        p.retransmits += 1
        p.consecutive_failures += 1
        p.last_failure_ns = self.sim.now
        if p.consecutive_failures >= self.down_after:
            p.state = PeerState.DOWN
        elif p.consecutive_failures >= self.suspect_after:
            p.state = PeerState.SUSPECT

    def recovered(self, node: int) -> None:
        p = self.peer(node)
        p.recoveries += 1
        # heard_from() runs alongside and resets state/failure counts.

    def exhausted_budget(self, node: int) -> None:
        p = self.peer(node)
        p.exhausted += 1
        p.last_failure_ns = self.sim.now
        p.state = PeerState.DOWN

    # -- queries ----------------------------------------------------------------

    def state_of(self, node: int) -> PeerState:
        p = self.peers.get(node)
        return p.state if p is not None else PeerState.UP

    def states(self) -> dict[int, PeerState]:
        return {node: p.state for node, p in sorted(self.peers.items())}

    def describe(self) -> str:
        if not self.peers:
            return "no peers observed"
        return "; ".join(
            f"n{node}={p.state.value}"
            f"(fails={p.consecutive_failures}, retx={p.retransmits})"
            for node, p in sorted(self.peers.items())
        )
