"""Protocol frames exchanged between DQEMU instances.

The DQEMU master/slave protocol (paper §4) is message-based: page requests and
contents, invalidations, syscall delegation, remote thread creation, futex
wakeups, split-table broadcasts and forwarded pages.  Each frame knows its
wire size so the fabric can model serialization delay; a 64-byte header
approximates Ethernet + IP + TCP framing for the small control messages the
paper measures (55 µs RTT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional

__all__ = [
    "Message",
    "PageRequest",
    "PageData",
    "Invalidate",
    "InvalidateAck",
    "WriteBack",
    "PagePush",
    "SyscallRequest",
    "SyscallReply",
    "MergeRequest",
    "Ack",
    "SpawnThread",
    "SpawnAck",
    "ThreadExited",
    "FutexWake",
    "SplitTableUpdate",
    "Shutdown",
    "StartDrain",
    "EvacuateThread",
    "DrainComplete",
    "Checkpoint",
    "CheckpointFlush",
    "PeerCheckpoint",
    "FetchCheckpoints",
    "CheckpointBatch",
    "Heartbeat",
    "HEADER_BYTES",
]

HEADER_BYTES = 64


@dataclass(kw_only=True)
class Message:
    """Base protocol frame.

    ``src`` is stamped by the sending endpoint; ``req_id`` / ``in_reply_to``
    implement RPC correlation.  ``req_id`` starts unassigned (0) and is
    stamped from the owning :class:`~repro.net.fabric.Fabric`'s sequence the
    first time the frame is transmitted — frames cloned for retransmission
    keep their id so receivers can deduplicate.  ``tenant`` names the job the
    frame belongs to (0 for single-job runs); it rides inside the fixed
    64-byte header, so tagging adds no wire cost.
    """

    kind: ClassVar[str] = "message"

    src: int = -1
    dst: int = -1
    req_id: int = 0
    in_reply_to: int = 0
    tenant: int = 0

    def payload_bytes(self) -> int:
        return 0

    def size_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes()


@dataclass(kw_only=True)
class PageRequest(Message):
    """Slave → master: bring a guest page to ``src`` in S (read) or M (write).

    ``offset`` is the faulting offset within the page — the master's
    false-sharing detector clusters offsets to decide on page splitting.
    """

    kind: ClassVar[str] = "page_request"
    page: int = 0
    write: bool = False
    offset: int = 0
    size: int = 8  # faulting access width (false-sharing geometry inference)


@dataclass(kw_only=True)
class PageData(Message):
    """Master → slave: page content grant (reply to :class:`PageRequest`).

    ``retry=True`` means the requested page was split (or merged) since the
    request was sent; the node must re-translate the address against its
    freshly broadcast split table and fault again.
    """

    kind: ClassVar[str] = "page_data"
    page: int = 0
    write: bool = False
    data: bytes = b""
    retry: bool = False
    #: The node already holds the page (a demand fault raced a forwarded
    #: page): no payload needed, the frame is a bare directory ack.
    ack_only: bool = False
    #: MESI Exclusive-clean read grant (docs/PROTOCOL.md "Coherence
    #: protocols"): no other node holds the page, so the receiver installs
    #: it E and may later upgrade E→M locally with no master round trip.
    #: Never set under the default MSI protocol.
    exclusive: bool = False
    #: Payload-free Shared→Modified upgrade grant: the requester already
    #: holds a current copy (it was a sharer), so the reply carries no
    #: data — it just flips the local state to M.  Never set under MSI.
    upgrade: bool = False

    def payload_bytes(self) -> int:
        return len(self.data)


@dataclass(kw_only=True)
class Invalidate(Message):
    """Master → sharer/owner: drop the page (I state); owner sends data back."""

    kind: ClassVar[str] = "invalidate"
    page: int = 0
    want_data: bool = False


@dataclass(kw_only=True)
class InvalidateAck(Message):
    """Reply to :class:`Invalidate`; carries the page if it was Modified."""

    kind: ClassVar[str] = "invalidate_ack"
    page: int = 0
    data: Optional[bytes] = None

    def payload_bytes(self) -> int:
        return len(self.data) if self.data else 0


@dataclass(kw_only=True)
class WriteBack(Message):
    """Master → owner: downgrade M → S, returning the current content."""

    kind: ClassVar[str] = "write_back"
    page: int = 0


@dataclass(kw_only=True)
class PagePush(Message):
    """Master → slave: unsolicited forwarded page in Shared state (§5.2)."""

    kind: ClassVar[str] = "page_push"
    page: int = 0
    data: bytes = b""

    def payload_bytes(self) -> int:
        return len(self.data)


@dataclass(kw_only=True)
class SyscallRequest(Message):
    """Slave → master: delegate a global syscall (§4.3).

    Carries the syscall number, raw argument registers and the CPU context
    size the paper mentions (we bill a fixed context payload).
    """

    kind: ClassVar[str] = "syscall_request"
    tid: int = 0
    sysno: int = 0
    args: tuple[int, ...] = ()
    context: Any = None  # guest CPU snapshot (paper: "includes guest CPU context")

    def payload_bytes(self) -> int:
        return 8 * (2 + len(self.args)) + 256  # regs + context snapshot


@dataclass(kw_only=True)
class SyscallReply(Message):
    kind: ClassVar[str] = "syscall_reply"
    retval: int = 0
    parked: bool = False  # futex_wait: thread sleeps until a FutexWake
    exited: bool = False  # exit/exit_group: the calling thread is finished
    migrated: bool = False  # sched_setaffinity: thread now runs on another node

    def payload_bytes(self) -> int:
        return 16


@dataclass(kw_only=True)
class SpawnThread(Message):
    """Master → slave: create a guest thread remotely with a cloned context."""

    kind: ClassVar[str] = "spawn_thread"
    tid: int = 0
    context: Any = None  # CPUState snapshot (billed as fixed-size blob)

    def payload_bytes(self) -> int:
        return 1024  # registers + thread metadata


@dataclass(kw_only=True)
class SpawnAck(Message):
    kind: ClassVar[str] = "spawn_ack"
    tid: int = 0


@dataclass(kw_only=True)
class ThreadExited(Message):
    """Slave → master: a guest thread finished (exit code, for join/wait)."""

    kind: ClassVar[str] = "thread_exited"
    tid: int = 0
    status: int = 0


@dataclass(kw_only=True)
class FutexWake(Message):
    """Master → slave: wake a thread parked in futex_wait on that node."""

    kind: ClassVar[str] = "futex_wake"
    tid: int = 0
    retval: int = 0


@dataclass(kw_only=True)
class SplitTableUpdate(Message):
    """Master → all slaves: new shadow-page mapping entries (§5.1)."""

    kind: ClassVar[str] = "split_table_update"
    entries: tuple = ()  # tuple of SplitEntry

    def payload_bytes(self) -> int:
        return 32 * len(self.entries)


@dataclass(kw_only=True)
class MergeRequest(Message):
    """Slave → master: an access spans split-region boundaries — merge the
    shadow pages back into the original page (§5.1 correctness escape hatch)."""

    kind: ClassVar[str] = "merge_request"
    page: int = 0  # original (pre-split) page


@dataclass(kw_only=True)
class Ack(Message):
    """Generic acknowledgement (split-table installs, shutdown)."""

    kind: ClassVar[str] = "ack"


@dataclass(kw_only=True)
class Shutdown(Message):
    """Master → slave: guest program finished; stop service loops."""

    kind: ClassVar[str] = "shutdown"


@dataclass(kw_only=True)
class StartDrain(Message):
    """Master → slave: stop running guest threads; evacuate them instead.

    The node keeps serving coherence traffic (its pages migrate away lazily)
    but every thread that reaches a scheduling point is shipped back to the
    master as an :class:`EvacuateThread` for re-placement on a healthy peer.
    """

    kind: ClassVar[str] = "start_drain"


@dataclass(kw_only=True)
class EvacuateThread(Message):
    """Slave → master: re-home this live thread; carries its full context."""

    kind: ClassVar[str] = "evacuate_thread"
    tid: int = 0
    context: Any = None  # CPUState snapshot, same blob as SpawnThread
    #: Why the thread is being shipped back: "drain" (the node is emptying
    #: itself, PR 5's cooperative path) or "rebalance" (the node's queue wait
    #: crossed rebalance_threshold_ns and it is shedding its hottest thread).
    reason: str = "drain"

    def payload_bytes(self) -> int:
        return 1024  # registers + thread metadata


@dataclass(kw_only=True)
class DrainComplete(Message):
    """Slave → master: the drained node's last guest thread is gone."""

    kind: ClassVar[str] = "drain_complete"


@dataclass(kw_only=True)
class Checkpoint(Message):
    """Slave → master: periodic snapshot of one running thread.

    Carries the register context plus byte-copies of every page the tenant
    holds Modified on the sending node, taken synchronously at a quantum
    boundary — the write-back barrier that makes the snapshot a consistent
    cut (docs/PROTOCOL.md "Checkpoint/restore").  ``taken_ns`` orders
    checkpoints for the same tid; the master keeps only the newest.
    """

    kind: ClassVar[str] = "checkpoint"
    tid: int = 0
    taken_ns: int = 0
    context: Any = None  # CPUState snapshot, same blob as SpawnThread
    pages: tuple = ()  # tuple of (page_no, bytes)

    def payload_bytes(self) -> int:
        return 1024 + sum(16 + len(data) for _, data in self.pages)


@dataclass(kw_only=True)
class CheckpointFlush(Message):
    """Slave → master: the page half of a peer-mode checkpoint.

    With ``checkpoint_target="peer"`` the register context goes to the buddy
    node (:class:`PeerCheckpoint`) but the Modified-page write-back still
    goes home — the master's store is the page authority under every
    coherence protocol.
    """

    kind: ClassVar[str] = "checkpoint_flush"
    taken_ns: int = 0
    pages: tuple = ()  # tuple of (page_no, bytes)

    def payload_bytes(self) -> int:
        return sum(16 + len(data) for _, data in self.pages)


@dataclass(kw_only=True)
class PeerCheckpoint(Message):
    """Slave → buddy slave: hold this thread's register snapshot for me."""

    kind: ClassVar[str] = "peer_checkpoint"
    tid: int = 0
    taken_ns: int = 0
    context: Any = None  # CPUState snapshot, same blob as SpawnThread

    def payload_bytes(self) -> int:
        return 1024  # registers + thread metadata


@dataclass(kw_only=True)
class FetchCheckpoints(Message):
    """Master → buddy slave: surrender the snapshots you hold for ``node``
    (which just died); reply is a :class:`CheckpointBatch`."""

    kind: ClassVar[str] = "fetch_checkpoints"
    node: int = -1

    def payload_bytes(self) -> int:
        return 8


@dataclass(kw_only=True)
class Heartbeat(Message):
    """Slave → master: lease-renewal liveness frame (docs/PROTOCOL.md
    "Failure detection").

    Fire-and-forget — no reply, no retransmit state — so nothing ever
    accumulates against a corpse, and the frame rides the fabric's fault
    seam like every other: a drop/delay/partition plan exercises the
    detector directly.  ``seq`` orders a sender's renewals for telemetry;
    the master only cares that *a* renewal landed inside the lease.
    """

    kind: ClassVar[str] = "heartbeat"
    seq: int = 0

    def payload_bytes(self) -> int:
        return 16  # sequence number + sender clock sample


@dataclass(kw_only=True)
class CheckpointBatch(Message):
    """Buddy slave → master: every snapshot held for the dead node."""

    kind: ClassVar[str] = "checkpoint_batch"
    entries: tuple = ()  # tuple of (tid, taken_ns, context)

    def payload_bytes(self) -> int:
        return sum(16 + 1024 for _ in self.entries)
