"""Typed request–reply layer over the fabric (RPC correlation + reliability).

Every node's :class:`~repro.net.endpoint.Endpoint` owns one
:class:`RpcChannel`.  A *call* stamps the outbound frame with a correlation
id (``req_id``), registers a per-request completion :class:`Event`, and
transmits; the reply frame carries ``in_reply_to`` and completes the event
with the reply message as its value.  Reply routing therefore never touches
the endpoint's subscriber queues — requests and replies are distinct planes,
mirroring the paper's manager/communicator split (§4, Fig. 2).

An optional per-call timeout hook fails the completion event with
:class:`RpcTimeout` if no reply arrives in time.  The production protocol
never times out on a lossless fabric, but ``DQEMUConfig.rpc_timeout_ns``
arms the hook on every service-issued request so fault-injection
experiments (:mod:`repro.net.faults`) and slave-death detection hang off
it.

On top of the timeout sits the *reliability layer* (docs/PROTOCOL.md
"Reliable delivery"): a per-call :class:`RetryPolicy` turns each timeout
expiry into a retransmission of a **cloned** frame (the endpoint stamps the
caller's object in place, so re-sending the same instance would alias
protocol state across deliveries — see ``endpoint.transmit``) after an
exponential backoff with deterministic jitter, escalating to
:class:`RpcTimeout` only once the whole budget is spent.  Retransmits keep
the original ``req_id``, so the server side can deduplicate replays
(dispatcher dedup) and the client side can deduplicate a late first reply
(tombstones); a retransmit whose original request was already *served* is
answered from the server channel's bounded reply cache instead of being
silently dropped, which is what makes a lost **reply** recoverable too.
Together the three mechanisms give at-most-once execution with
effectively-once delivery under loss.

Settled correlation ids — timed out or completed — are remembered as
*tombstones* so a late reply to a timed-out request, or a replayed copy of
a reply already delivered (duplication faults), is dropped silently instead
of crashing the channel.  The tombstone table is bounded: entries are
swept once they are older than any frame's possible flight time, and the
table is capped outright, so long runs with timeouts cannot grow memory
without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConfigError, NetworkError
from repro.net.faults import clone_frame
from repro.net.messages import Message
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.health import HealthTracker

__all__ = ["RpcChannel", "RpcTimeout", "RetryPolicy", "RpcStats"]


class RpcTimeout(NetworkError):
    """A request's timeout (and retry budget, if any) expired unanswered."""

    def __init__(self, msg: Message, timeout_ns: int, retries: int = 0):
        detail = f" after {retries} retransmits" if retries else ""
        super().__init__(
            f"rpc: no reply to {msg.kind} (req {msg.req_id}) from node "
            f"{msg.dst} within {timeout_ns} ns{detail}"
        )
        self.request = msg
        self.timeout_ns = timeout_ns
        self.retries = retries


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a deterministic integer hash (no wall clock)."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-call retransmission budget with deterministic backoff.

    On the k-th timeout expiry (k = 0 for the original transmission) the
    call waits ``backoff_base_ns << k`` plus a jitter in
    ``[0, backoff_jitter_ns]`` drawn from a splitmix64 hash of
    ``(req_id, k, seed)`` — fully determined by simulation state, never by
    wall-clock randomness — then retransmits a cloned frame and re-arms the
    same ``timeout_ns``.  After ``max_retries`` retransmits the next expiry
    fails the call with :class:`RpcTimeout`.
    """

    max_retries: int
    backoff_base_ns: int = 50_000
    backoff_jitter_ns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_ns < 0 or self.backoff_jitter_ns < 0:
            raise ConfigError("backoff delays must be non-negative")

    def backoff_ns(self, attempt: int, req_id: int) -> int:
        delay = self.backoff_base_ns << attempt
        if self.backoff_jitter_ns:
            h = _mix64((req_id << 20) ^ (attempt << 8) ^ self.seed)
            delay += h % (self.backoff_jitter_ns + 1)
        return delay


@dataclass
class RpcStats:
    """Aggregate reliability counters across a run's RPC channels.

    The per-channel counters live on each endpoint's :class:`RpcChannel`;
    :meth:`collect` sums them for ``RunResult.rpc`` so experiments read one
    place.  ``recovery_wait_ns`` accumulates, for each recovered call, the
    span from its *first* transmission to the reply that finally landed —
    ``mean_recovery_us`` is the recovery-latency column of the partition
    experiment.
    """

    dropped_replies: int = 0
    duplicate_replies: int = 0
    retransmits: int = 0
    recoveries: int = 0
    exhausted: int = 0
    reply_replays: int = 0
    recovery_wait_ns: int = 0

    @property
    def mean_recovery_us(self) -> float:
        if not self.recoveries:
            return 0.0
        return self.recovery_wait_ns / self.recoveries / 1e3

    @classmethod
    def collect(cls, channels: Iterable["RpcChannel"]) -> "RpcStats":
        total = cls()
        for ch in channels:
            total.dropped_replies += ch.dropped_replies
            total.duplicate_replies += ch.duplicate_replies
            total.retransmits += ch.retransmits
            total.recoveries += ch.recoveries
            total.exhausted += ch.exhausted
            total.reply_replays += ch.reply_replays
            total.recovery_wait_ns += ch.recovery_wait_ns
        return total

    def minus(self, base: "RpcStats") -> "RpcStats":
        """Counter delta since ``base`` — a job's share of shared channels.

        Channels are per node, not per tenant, so a job's RPC numbers are
        the fleet totals between its admission and its finish; overlapping
        jobs that retransmit on the same channel show up in each other's
        window (a documented attribution caveat, not a bug).
        """
        return RpcStats(
            dropped_replies=self.dropped_replies - base.dropped_replies,
            duplicate_replies=self.duplicate_replies - base.duplicate_replies,
            retransmits=self.retransmits - base.retransmits,
            recoveries=self.recoveries - base.recoveries,
            exhausted=self.exhausted - base.exhausted,
            reply_replays=self.reply_replays - base.reply_replays,
            recovery_wait_ns=self.recovery_wait_ns - base.recovery_wait_ns,
        )


@dataclass
class _Call:
    """Client-side state of one armed (timeout-carrying) call."""

    dst: int
    msg: Message
    timeout_ns: int
    retry: Optional[RetryPolicy]
    stats: object  # duck-typed ServiceStats (or None)
    first_sent_ns: int
    attempt: int = 0  # retransmits sent so far
    retransmitted: bool = False


class RpcChannel:
    """Correlation table for one endpoint's in-flight requests."""

    #: Hard cap on remembered tombstones; the oldest are evicted first.
    TOMBSTONE_LIMIT = 4096
    #: Tombstones older than this are swept whenever a new one is recorded —
    #: far beyond any frame's flight time through the fabric, so a late or
    #: replayed reply always finds its tombstone while it can still arrive.
    TOMBSTONE_TTL_NS = 1_000_000_000
    #: Bound on cached outbound replies (reply replay for retransmitted
    #: requests whose original was already served); FIFO eviction, same
    #: rationale as the tombstone cap.
    REPLY_CACHE_LIMIT = 1024

    def __init__(self, sim: Simulator, endpoint):
        self.sim = sim
        self.endpoint = endpoint
        self._pending: dict[int, Event] = {}
        #: req_id -> state of an armed call (timeout and/or retries).
        self._calls: dict[int, _Call] = {}
        #: req_id -> the currently armed timer (timeout or backoff).  Exactly
        #: one live timer per armed call; stale ones are cancelled on re-arm
        #: and on completion so long runs don't accumulate dead callbacks.
        self._timers: dict[int, Event] = {}
        #: req_id -> (settled-at ns, "expired" | "completed")
        self._tombstones: OrderedDict[int, tuple[int, str]] = OrderedDict()
        #: req_id -> the reply frame we sent, for replay to retransmits.
        #: Only populated once :meth:`enable_reply_cache` is called (retries
        #: armed somewhere in the cluster) — default runs keep zero extra
        #: state and zero extra wire traffic.
        self._sent_replies: OrderedDict[int, Message] = OrderedDict()
        self._reply_cache_enabled = False
        self._halted = False
        self.dropped_replies = 0  # late replies to timed-out requests
        self.duplicate_replies = 0  # replayed replies to completed requests
        self.retransmits = 0  # cloned frames re-sent after a timeout window
        self.recoveries = 0  # retried calls that did complete
        self.exhausted = 0  # calls that failed after their whole budget
        self.reply_replays = 0  # cached replies re-sent to retransmits
        self.recovery_wait_ns = 0  # first-send -> reply, summed over recoveries

    # -- client side ----------------------------------------------------------

    def call(
        self,
        dst: int,
        msg: Message,
        *,
        timeout_ns: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        stats=None,
    ) -> Event:
        """Send ``msg`` to ``dst``; the returned event fires with the reply.

        With ``timeout_ns`` set, the event instead *fails* with
        :class:`RpcTimeout` if the reply does not arrive in time (a late
        reply to a timed-out request is then dropped silently).  A ``retry``
        policy turns each expiry into a backoff + retransmission of a cloned
        frame until the budget runs out; ``stats`` (a duck-typed
        :class:`~repro.core.stats.ServiceStats`) receives per-service
        ``retransmits`` / ``recoveries`` counts.
        """
        ev = Event(self.sim)
        if self._halted:
            # The owning node crashed: the call goes nowhere and never
            # completes, which is what issuing an RPC from a dead machine
            # looks like.  No timer is armed — dead nodes do not retransmit.
            return ev
        # Stamp before registering: the pending table is keyed by req id.
        self.endpoint.stamp(msg)
        self._pending[msg.req_id] = ev
        self.endpoint.transmit(dst, msg)
        if timeout_ns is not None:
            self._calls[msg.req_id] = _Call(
                dst=dst, msg=msg, timeout_ns=timeout_ns, retry=retry,
                stats=stats, first_sent_ns=self.sim.now,
            )
            self._arm(msg.req_id, timeout_ns, self._expired)
        elif retry is not None:
            raise ConfigError("a retry policy needs timeout_ns to detect loss")
        return ev

    def _arm(self, req_id: int, delay: int, fire) -> None:
        timer = self.sim.timeout(delay)
        self._timers[req_id] = timer
        timer.add_callback(lambda _e: fire(req_id, timer))

    def _disarm(self, req_id: int) -> None:
        timer = self._timers.pop(req_id, None)
        if timer is not None:
            timer.cancel()

    def _expired(self, req_id: int, timer: Event) -> None:
        """One timeout window elapsed: retransmit (after backoff) or fail."""
        if self._timers.get(req_id) is not timer:
            return  # stale timer: the call completed or re-armed meanwhile
        del self._timers[req_id]
        call = self._calls.get(req_id)
        ev = self._pending.get(req_id)
        if call is None or ev is None or ev.triggered:
            return
        if call.retry is not None and call.attempt < call.retry.max_retries:
            self._arm(
                req_id, call.retry.backoff_ns(call.attempt, req_id),
                self._retransmit,
            )
            return
        # Budget exhausted (or no retry policy): fail the call.
        del self._pending[req_id]
        del self._calls[req_id]
        self._remember(req_id, "expired")
        if call.attempt:
            self.exhausted += 1
        health = self._health()
        if health is not None:
            # Retries or not, an unanswered budget means the peer is gone as
            # far as this call is concerned.
            health.exhausted_budget(call.dst)
        ev.fail(RpcTimeout(call.msg, call.timeout_ns, retries=call.attempt))

    def _retransmit(self, req_id: int, timer: Event) -> None:
        """Backoff elapsed: re-send a clone and re-arm the timeout window."""
        if self._timers.get(req_id) is not timer:
            return
        del self._timers[req_id]
        call = self._calls.get(req_id)
        ev = self._pending.get(req_id)
        if call is None or ev is None or ev.triggered:
            return
        call.attempt += 1
        call.retransmitted = True
        self.retransmits += 1
        if call.stats is not None:
            call.stats.retransmits += 1
        health = self._health()
        if health is not None:
            health.retransmitted(call.dst)
        # Clone per the endpoint aliasing contract: the original instance is
        # owned by the fabric from its first transmission.
        self.endpoint.transmit(call.dst, clone_frame(call.msg))
        self._arm(req_id, call.timeout_ns, self._expired)

    def _health(self) -> Optional["HealthTracker"]:
        return getattr(self.endpoint.fabric, "health", None)

    def abort_peer(self, node: int) -> None:
        """Fail every pending armed call aimed at ``node``, right now.

        Invoked by the failure detector once a peer is declared dead: calls
        still waiting out their retry budgets against it cannot succeed, and
        letting each burn its full budget stalls the handler it blocks —
        long enough for *that* handler's clients to exhaust their own
        budgets in turn, cascading one node's death into a cluster-wide
        abort.  Tolerant handlers catch the early :class:`RpcTimeout`, see
        the peer latched as failed, and degrade instead.
        """
        doomed = [rid for rid, call in self._calls.items() if call.dst == node]
        for rid in doomed:
            call = self._calls.pop(rid)
            self._disarm(rid)
            ev = self._pending.pop(rid, None)
            self._remember(rid, "expired")
            if ev is not None and not ev.triggered:
                # Absorb first: a call nobody awaited yet must not raise out
                # of the engine when its failure is processed (a later yield
                # still delivers the error into the awaiting process).
                ev.add_callback(lambda _e: None)
                ev.fail(RpcTimeout(call.msg, call.timeout_ns, retries=call.attempt))

    def halt(self) -> None:
        """Kill the channel in place (the owning node crashed).

        Cancels every armed timer and forgets all in-flight calls so a dead
        node's retransmit machinery cannot keep firing — a crashed machine
        does not report its peers as down, and its abandoned calls must
        suspend forever rather than raise into the node's service loops.
        Subsequent inbound replies are swallowed by :meth:`complete`.
        """
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._calls.clear()
        self._pending.clear()
        self._halted = True

    # -- server side ----------------------------------------------------------

    def enable_reply_cache(self) -> None:
        """Start caching outbound replies for replay to retransmits.

        Armed by the cluster when retries are configured: a retransmitted
        request whose original was served *and answered* is deduplicated by
        the dispatcher before reaching any handler, so without this cache a
        lost reply would never be re-sent and the client would burn its whole
        budget for nothing.
        """
        self._reply_cache_enabled = True

    def reply(self, to: Message, msg: Message) -> None:
        """Send ``msg`` as the reply correlated with request ``to``.

        The reply inherits the request's tenant, so per-tenant traffic
        attribution holds on both halves of every RPC no matter which layer
        built the reply frame.
        """
        msg.in_reply_to = to.req_id
        msg.tenant = to.tenant
        if self._reply_cache_enabled:
            cache = self._sent_replies
            cache[to.req_id] = msg
            cache.move_to_end(to.req_id)
            while len(cache) > self.REPLY_CACHE_LIMIT:
                cache.popitem(last=False)
        self.endpoint.transmit(to.src, msg)

    def resend_reply(self, request: Message) -> bool:
        """Replay the cached reply to a retransmitted, already-served request.

        Returns False when there is nothing cached — either the cache is
        disabled, the entry was evicted, or the original dispatch is still in
        progress (its eventual reply, or the client's next retransmit, covers
        that case).
        """
        cached = self._sent_replies.get(request.req_id)
        if cached is None:
            return False
        self.reply_replays += 1
        self.endpoint.transmit(request.src, clone_frame(cached))
        return True

    # -- delivery (called by the endpoint) -------------------------------------

    def complete(self, msg: Message) -> None:
        """Resolve the pending request that ``msg`` replies to."""
        if self._halted:
            return  # the node is dead; whatever arrives no longer matters
        ev = self._pending.pop(msg.in_reply_to, None)
        if ev is None:
            tomb = self._tombstones.get(msg.in_reply_to)
            if tomb is not None:
                if tomb[1] == "expired":
                    self.dropped_replies += 1  # late reply, dropped
                else:
                    self.duplicate_replies += 1  # replayed frame, dropped
                return
            raise NetworkError(
                f"node {self.endpoint.node_id}: reply to unknown request "
                f"{msg.in_reply_to}"
            )
        self._disarm(msg.in_reply_to)
        call = self._calls.pop(msg.in_reply_to, None)
        health = self._health()
        if health is not None:
            health.heard_from(msg.src)
        if call is not None and call.retransmitted:
            self.recoveries += 1
            waited = self.sim.now - call.first_sent_ns
            self.recovery_wait_ns += waited
            if call.stats is not None:
                call.stats.recoveries += 1
                call.stats.recovery_wait_ns += waited
            if health is not None:
                health.recovered(msg.src)
        self._remember(msg.in_reply_to, "completed")
        ev.succeed(msg)

    # -- tombstones -------------------------------------------------------------

    def _remember(self, req_id: int, why: str) -> None:
        """Record a settled correlation id, sweeping stale tombstones.

        Eviction is two-tier: anything older than the TTL goes (its reply can
        no longer be in flight), and the table never exceeds the hard cap
        even inside the TTL window.
        """
        tombs = self._tombstones
        tombs[req_id] = (self.sim.now, why)
        tombs.move_to_end(req_id)
        horizon = self.sim.now - self.TOMBSTONE_TTL_NS
        while tombs:
            stamp, _why = next(iter(tombs.values()))
            if stamp >= horizon and len(tombs) <= self.TOMBSTONE_LIMIT:
                break
            tombs.popitem(last=False)

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    @property
    def tombstones(self) -> int:
        return len(self._tombstones)

    @property
    def cached_replies(self) -> int:
        return len(self._sent_replies)
