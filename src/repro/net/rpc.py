"""Typed request–reply layer over the fabric (RPC correlation).

Every node's :class:`~repro.net.endpoint.Endpoint` owns one
:class:`RpcChannel`.  A *call* stamps the outbound frame with a correlation
id (``req_id``), registers a per-request completion :class:`Event`, and
transmits; the reply frame carries ``in_reply_to`` and completes the event
with the reply message as its value.  Reply routing therefore never touches
the endpoint's subscriber queues — requests and replies are distinct planes,
mirroring the paper's manager/communicator split (§4, Fig. 2).

An optional per-call timeout hook fails the completion event with
:class:`RpcTimeout` if no reply arrives in time.  The production protocol
never times out (the fabric is lossless), but fault-injection experiments
and the service layer's liveness checks hang off this hook.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NetworkError
from repro.net.messages import Message
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.endpoint import Endpoint

__all__ = ["RpcChannel", "RpcTimeout"]


class RpcTimeout(NetworkError):
    """A request's optional timeout expired before the reply arrived."""

    def __init__(self, msg: Message, timeout_ns: int):
        super().__init__(
            f"rpc: no reply to {msg.kind} (req {msg.req_id}) from node "
            f"{msg.dst} within {timeout_ns} ns"
        )
        self.request = msg
        self.timeout_ns = timeout_ns


class RpcChannel:
    """Correlation table for one endpoint's in-flight requests."""

    def __init__(self, sim: Simulator, endpoint: "Endpoint"):
        self.sim = sim
        self.endpoint = endpoint
        self._pending: dict[int, Event] = {}
        self._expired: set[int] = set()

    # -- client side ----------------------------------------------------------

    def call(self, dst: int, msg: Message, *, timeout_ns: Optional[int] = None) -> Event:
        """Send ``msg`` to ``dst``; the returned event fires with the reply.

        With ``timeout_ns`` set, the event instead *fails* with
        :class:`RpcTimeout` if the reply does not arrive in time (a late
        reply to a timed-out request is then dropped silently).
        """
        ev = Event(self.sim)
        self._pending[msg.req_id] = ev
        self.endpoint.transmit(dst, msg)
        if timeout_ns is not None:
            self.sim.timeout(timeout_ns).add_callback(
                lambda _e: self._expire(msg, timeout_ns)
            )
        return ev

    def _expire(self, msg: Message, timeout_ns: int) -> None:
        ev = self._pending.pop(msg.req_id, None)
        if ev is not None and not ev.triggered:
            self._expired.add(msg.req_id)
            ev.fail(RpcTimeout(msg, timeout_ns))

    # -- server side ----------------------------------------------------------

    def reply(self, to: Message, msg: Message) -> None:
        """Send ``msg`` as the reply correlated with request ``to``."""
        msg.in_reply_to = to.req_id
        self.endpoint.transmit(to.src, msg)

    # -- delivery (called by the endpoint) -------------------------------------

    def complete(self, msg: Message) -> None:
        """Resolve the pending request that ``msg`` replies to."""
        ev = self._pending.pop(msg.in_reply_to, None)
        if ev is None:
            if msg.in_reply_to in self._expired:
                self._expired.discard(msg.in_reply_to)  # late reply, dropped
                return
            raise NetworkError(
                f"node {self.endpoint.node_id}: reply to unknown request "
                f"{msg.in_reply_to}"
            )
        ev.succeed(msg)

    @property
    def in_flight(self) -> int:
        return len(self._pending)
