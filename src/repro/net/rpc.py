"""Typed request–reply layer over the fabric (RPC correlation).

Every node's :class:`~repro.net.endpoint.Endpoint` owns one
:class:`RpcChannel`.  A *call* stamps the outbound frame with a correlation
id (``req_id``), registers a per-request completion :class:`Event`, and
transmits; the reply frame carries ``in_reply_to`` and completes the event
with the reply message as its value.  Reply routing therefore never touches
the endpoint's subscriber queues — requests and replies are distinct planes,
mirroring the paper's manager/communicator split (§4, Fig. 2).

An optional per-call timeout hook fails the completion event with
:class:`RpcTimeout` if no reply arrives in time.  The production protocol
never times out on a lossless fabric, but ``DQEMUConfig.rpc_timeout_ns``
arms the hook on every service-issued request so fault-injection
experiments (:mod:`repro.net.faults`) and slave-death detection hang off
it.

Settled correlation ids — timed out or completed — are remembered as
*tombstones* so a late reply to a timed-out request, or a replayed copy of
a reply already delivered (duplication faults), is dropped silently instead
of crashing the channel.  The tombstone table is bounded: entries are
swept once they are older than any frame's possible flight time, and the
table is capped outright, so long runs with timeouts cannot grow memory
without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.errors import NetworkError
from repro.net.messages import Message
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.endpoint import Endpoint

__all__ = ["RpcChannel", "RpcTimeout"]


class RpcTimeout(NetworkError):
    """A request's optional timeout expired before the reply arrived."""

    def __init__(self, msg: Message, timeout_ns: int):
        super().__init__(
            f"rpc: no reply to {msg.kind} (req {msg.req_id}) from node "
            f"{msg.dst} within {timeout_ns} ns"
        )
        self.request = msg
        self.timeout_ns = timeout_ns


class RpcChannel:
    """Correlation table for one endpoint's in-flight requests."""

    #: Hard cap on remembered tombstones; the oldest are evicted first.
    TOMBSTONE_LIMIT = 4096
    #: Tombstones older than this are swept whenever a new one is recorded —
    #: far beyond any frame's flight time through the fabric, so a late or
    #: replayed reply always finds its tombstone while it can still arrive.
    TOMBSTONE_TTL_NS = 1_000_000_000

    def __init__(self, sim: Simulator, endpoint: "Endpoint"):
        self.sim = sim
        self.endpoint = endpoint
        self._pending: dict[int, Event] = {}
        #: req_id -> (settled-at ns, "expired" | "completed")
        self._tombstones: OrderedDict[int, tuple[int, str]] = OrderedDict()
        self.dropped_replies = 0  # late replies to timed-out requests
        self.duplicate_replies = 0  # replayed replies to completed requests

    # -- client side ----------------------------------------------------------

    def call(self, dst: int, msg: Message, *, timeout_ns: Optional[int] = None) -> Event:
        """Send ``msg`` to ``dst``; the returned event fires with the reply.

        With ``timeout_ns`` set, the event instead *fails* with
        :class:`RpcTimeout` if the reply does not arrive in time (a late
        reply to a timed-out request is then dropped silently).
        """
        ev = Event(self.sim)
        self._pending[msg.req_id] = ev
        self.endpoint.transmit(dst, msg)
        if timeout_ns is not None:
            self.sim.timeout(timeout_ns).add_callback(
                lambda _e: self._expire(msg, timeout_ns)
            )
        return ev

    def _expire(self, msg: Message, timeout_ns: int) -> None:
        ev = self._pending.pop(msg.req_id, None)
        if ev is not None and not ev.triggered:
            self._remember(msg.req_id, "expired")
            ev.fail(RpcTimeout(msg, timeout_ns))

    # -- server side ----------------------------------------------------------

    def reply(self, to: Message, msg: Message) -> None:
        """Send ``msg`` as the reply correlated with request ``to``."""
        msg.in_reply_to = to.req_id
        self.endpoint.transmit(to.src, msg)

    # -- delivery (called by the endpoint) -------------------------------------

    def complete(self, msg: Message) -> None:
        """Resolve the pending request that ``msg`` replies to."""
        ev = self._pending.pop(msg.in_reply_to, None)
        if ev is None:
            tomb = self._tombstones.get(msg.in_reply_to)
            if tomb is not None:
                if tomb[1] == "expired":
                    self.dropped_replies += 1  # late reply, dropped
                else:
                    self.duplicate_replies += 1  # replayed frame, dropped
                return
            raise NetworkError(
                f"node {self.endpoint.node_id}: reply to unknown request "
                f"{msg.in_reply_to}"
            )
        self._remember(msg.in_reply_to, "completed")
        ev.succeed(msg)

    # -- tombstones -------------------------------------------------------------

    def _remember(self, req_id: int, why: str) -> None:
        """Record a settled correlation id, sweeping stale tombstones.

        Eviction is two-tier: anything older than the TTL goes (its reply can
        no longer be in flight), and the table never exceeds the hard cap
        even inside the TTL window.
        """
        tombs = self._tombstones
        tombs[req_id] = (self.sim.now, why)
        tombs.move_to_end(req_id)
        horizon = self.sim.now - self.TOMBSTONE_TTL_NS
        while tombs:
            stamp, _why = next(iter(tombs.values()))
            if stamp >= horizon and len(tombs) <= self.TOMBSTONE_LIMIT:
                break
            tombs.popitem(last=False)

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    @property
    def tombstones(self) -> int:
        return len(self._tombstones)
