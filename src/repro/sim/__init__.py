"""Deterministic discrete-event simulation kernel (virtual nanoseconds)."""

from repro.sim.engine import AllOf, AnyOf, Event, Process, Simulator, Timeout
from repro.sim.sync import Gate, SimLock, SimQueue, SimSemaphore

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "Process",
    "SimLock",
    "SimQueue",
    "SimSemaphore",
    "Simulator",
    "Timeout",
]
