"""Discrete-event simulation kernel.

The whole DQEMU reproduction runs on virtual time: guest execution, network
transfers and protocol handling all advance a single simulated clock measured
in nanoseconds.  The kernel is a small, deterministic event loop in the style
of SimPy: *processes* are Python generators that ``yield`` events; the
:class:`Simulator` owns a binary heap of ``(time, seq, event)`` entries and
fires them in order.  Ties are broken by insertion sequence, which makes every
run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
]


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and then invokes its callbacks when the
    simulator processes it.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_cancelled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Neutralize a scheduled event: when its heap entry is popped, it is
        discarded without running callbacks (and a failed one without raising).

        The heap entry itself stays put — removing from the middle of a binary
        heap is O(n) — so the clock still advances to the entry's time exactly
        as it would have for the live event.  Meant for armed timers whose
        outcome is no longer wanted (an RPC timeout whose reply arrived); a
        long-lived channel that re-arms timers cancels the stale ones instead
        of accumulating dead callbacks.
        """
        self._cancelled = True

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully after ``delay`` ns (default: now)."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self.sim._push(self, delay)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._push(self, delay)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._processed:
            # Late subscription: run on the next scheduling slot so the
            # callback still observes a consistent "after the event" world.
            stub = Event(self.sim)
            stub.callbacks.append(lambda _e: cb(self))
            stub._triggered = True
            stub._value = self._value
            stub._ok = True
            self.sim._push(stub, 0)
        else:
            self.callbacks.append(cb)


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._push(self, delay)


class Process(Event):
    """A generator-driven simulation process.

    The generator yields :class:`Event` instances; the process resumes when
    the yielded event fires (receiving its value via ``send``, or its
    exception via ``throw``).  The process *is itself an event* that triggers
    when the generator returns, carrying the return value, so processes can
    wait on one another.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = "?"):
        super().__init__(sim)
        self._gen = gen
        self.name = name
        # Kick off the generator on the next scheduling slot.
        start = Event(sim)
        start.callbacks.append(self._resume)
        start._triggered = True
        sim._push(start, 0)

    def _resume(self, trigger: Event) -> None:
        try:
            if trigger.ok:
                target = self._gen.send(trigger.value)
            else:
                target = self._gen.throw(trigger.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # propagate crash to waiters
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        target.add_callback(self._resume)

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the next scheduling slot."""
        kick = Event(self.sim)
        kick.callbacks.append(self._resume)
        kick._triggered = True
        kick._ok = False
        kick._value = exc
        self.sim._push(kick, 0)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: list[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            ev.add_callback(lambda e, i=i: self._child(i, e))

    def _child(self, i: int, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._values[i] = ev.value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._values)


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for i, ev in enumerate(events):
            ev.add_callback(lambda e, i=i: self._child(i, e))

    def _child(self, i: int, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed((i, ev.value))


class Simulator:
    """Deterministic discrete-event loop with an integer nanosecond clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0

    # -- scheduling ---------------------------------------------------------

    def _push(self, event: Event, delay: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + int(delay), self._seq, event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def spawn(self, gen: Generator[Event, Any, Any], name: str = "?") -> Process:
        """Register a generator as a new process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- main loop ----------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        if event._cancelled:
            # Same clock advance a live no-op callback would have caused, but
            # neither callbacks nor the failed-event check run.
            event._processed = True
            event.callbacks = []
            return
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)
        if not event.ok and not callbacks and not isinstance(event, Process):
            # A failed event nobody waited on would silently swallow the
            # exception; surface it instead.
            raise event.value

    def run(self, until: Optional[Event | int] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be an :class:`Event` (returns its value; raises if it
        failed) or an integer virtual-time deadline in ns.
        """
        if isinstance(until, Event):
            while not until.processed:
                if not self._heap:
                    raise SimulationError(
                        f"simulation deadlocked at t={self.now} ns waiting for event"
                    )
                self.step()
            if not until.ok:
                raise until.value
            return until.value
        deadline = None if until is None else int(until)
        while self._heap:
            if deadline is not None and self._heap[0][0] > deadline:
                self.now = deadline
                return None
            self.step()
        if deadline is not None:
            self.now = deadline
        return None
