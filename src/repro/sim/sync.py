"""Synchronization primitives for simulation processes.

These are *simulation-level* primitives used by the DQEMU infrastructure
(manager threads, NIC queues, per-page directory locks) — they are distinct
from the *guest-level* futex/LL-SC machinery, which is part of the system
under study.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["SimLock", "SimSemaphore", "SimQueue", "Gate"]


class SimLock:
    """FIFO mutex for simulation processes.

    Usage::

        yield lock.acquire()
        try: ...
        finally: lock.release()
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if not self._locked:
            self._locked = True
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self._locked:
            raise SimulationError("release of unlocked SimLock")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False

    def held(self) -> Generator[Event, Any, "SimLock"]:
        """Convenience coroutine: ``lock = yield from lock.held()``."""
        yield self.acquire()
        return self


class SimSemaphore:
    """Counting semaphore with FIFO wakeup order."""

    def __init__(self, sim: Simulator, value: int = 0):
        if value < 0:
            raise SimulationError("semaphore value must be >= 0")
        self.sim = sim
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self, n: int = 1) -> None:
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._value += 1


class SimQueue:
    """Unbounded FIFO channel between simulation processes.

    ``put`` is immediate; ``get`` returns an event that fires with the next
    item.  Used for NIC receive queues and manager-thread mailboxes.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (diagnostics only)."""
        return list(self._items)


class Gate:
    """A repeatable broadcast condition.

    ``wait()`` returns an event that fires at the next ``open()``; every
    waiter registered before the open is released at once.  Used for
    "thread state changed" notifications.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: list[Event] = []

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._waiters.append(ev)
        return ev

    def open(self, value: Any = None) -> int:
        """Release all current waiters; returns how many were released."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)
