"""Guest workloads: the paper's microbenchmarks and PARSEC-like programs."""

from repro.workloads import (
    blackscholes,
    fluidanimate,
    memaccess,
    mutex_bench,
    pi_taylor,
    swaptions,
    x264,
)
from repro.workloads.common import emit_fanout_main, workload_builder

__all__ = [
    "blackscholes",
    "emit_fanout_main",
    "fluidanimate",
    "memaccess",
    "mutex_bench",
    "pi_taylor",
    "swaptions",
    "workload_builder",
    "x264",
]
