"""PARSEC blackscholes-like workload (paper Fig. 7, left).

Data-parallel option pricing: each thread prices a contiguous slice of the
option portfolio.  Good locality, light sharing, regular sequential reads —
the paper's best-scaling benchmark, and the one data forwarding (§5.2)
accelerates most.

Substitution note (DESIGN.md): GA64 has no ``exp``/``ln``; the cumulative
normal is replaced by the algebraic sigmoid ``N(x) = 0.5 * (1 + x /
sqrt(2 + x*x))`` and ``d1`` uses a log-free moneyness ``S/K - 1``.  The
memory/compute *shape* (stream reads, ~35 FLOPs/option, slice-private
writes) matches; :func:`reference` replicates the arithmetic bit-exactly
for validation.
"""

from __future__ import annotations

import math

from repro.dbt.fpu import f2b
from repro.isa.program import Program
from repro.workloads.common import emit_fanout_main, workload_builder

__all__ = ["build", "make_options", "reference", "reference_output"]


def make_options(n_options: int) -> list[tuple[float, float, float, float]]:
    """Deterministic option portfolio (S, K, T, v)."""
    out = []
    for j in range(n_options):
        s = 80.0 + (j * 13) % 40
        k = 90.0 + (j * 7) % 30
        t = 0.25 + (j % 8) * 0.25
        v = 0.10 + (j % 10) * 0.05
        out.append((s, k, t, v))
    return out


def _price(s: float, k: float, t: float, v: float) -> float:
    """Bit-exact Python replica of the guest kernel (same op order)."""
    sqrt_t = math.sqrt(t)
    vs = v * sqrt_t
    d1 = (s / k - 1.0 + ((v * v) * t) * 0.5) / vs
    d2 = d1 - vs

    def ncdf(x: float) -> float:
        return (x / math.sqrt(2.0 + x * x) + 1.0) * 0.5

    price = s * ncdf(d1) - k * ncdf(d2)
    return price if price > 0.0 else 0.0


def reference(n_options: int) -> float:
    total = 0.0
    for s, k, t, v in make_options(n_options):
        total = total + _price(s, k, t, v)
    return total


def reference_output(n_options: int) -> str:
    return f"{int(reference(n_options) * 100.0)}\n"


def build(n_threads: int = 32, n_options: int = 1024, reps: int = 1) -> Program:
    """``reps`` re-prices every option (same result) — a compute-intensity
    knob that scales FLOPs without growing the dataset, used to match the
    paper's compute:data ratio at scaled-down option counts."""
    if n_options % n_threads:
        raise ValueError("n_options must divide evenly over n_threads")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    chunk = n_options // n_threads
    b = workload_builder()

    def post_join(bb):
        bb.comment("sum all prices; print trunc(sum * 100)")
        bb.la("t0", "results")
        bb.li("t1", 0)
        bb.movz("t2", 0, 0)  # 0.0
        bb.label(".bs_sum")
        bb.slli("t3", "t1", 3)
        bb.add("t3", "t3", "t0")
        bb.ld("t4", 0, "t3")
        bb.fadd("t2", "t2", "t4")
        bb.addi("t1", "t1", 1)
        bb.li("t5", n_options)
        bb.blt("t1", "t5", ".bs_sum")
        bb.li("t5", f2b(100.0))
        bb.fmul("t2", "t2", "t5")
        bb.fcvt_l_d("a0", "t2")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, post_join=post_join)

    b.comment("worker(i): price options [i*chunk, (i+1)*chunk), reps times")
    b.label("worker")
    b.li("t0", chunk)
    b.mul("t1", "a0", "t0")  # j = i*chunk
    b.add("t2", "t1", "t0")  # end
    b.mv("s10", "t1")  # slice start (worker is a leaf: s10/s11 are ours)
    b.mv("a1", "t2")
    b.li("s9", reps)
    b.label(".bs_rep")
    b.mv("a0", "s10")
    # FP constants live in registers across the loop (no calls inside)
    b.li("a6", f2b(1.0))
    b.li("a7", f2b(2.0))
    b.li("s11", f2b(0.5))  # s11 is ours: worker never calls out
    b.label(".bs_loop")
    b.comment("load option j: S,K,T,v")
    b.la("t0", "options")
    b.slli("t1", "a0", 5)  # j * 32
    b.add("t0", "t0", "t1")
    b.ld("a2", 0, "t0")  # S
    b.ld("a3", 8, "t0")  # K
    b.ld("a4", 16, "t0")  # T
    b.ld("a5", 24, "t0")  # v
    b.fsqrt("t1", "a4")  # sqrt(T)
    b.fmul("t1", "a5", "t1")  # vs = v*sqrt(T)
    b.fdiv("t2", "a2", "a3")  # S/K
    b.fsub("t2", "t2", "a6")  # - 1.0
    b.fmul("t3", "a5", "a5")  # v*v
    b.fmul("t3", "t3", "a4")  # * T
    b.fmul("t3", "t3", "s11")  # * 0.5
    b.fadd("t2", "t2", "t3")
    b.fdiv("t2", "t2", "t1")  # d1
    b.fsub("t3", "t2", "t1")  # d2 = d1 - vs
    # N(d1) -> t4
    b.fmul("t4", "t2", "t2")
    b.fadd("t4", "t4", "a7")
    b.fsqrt("t4", "t4")
    b.fdiv("t4", "t2", "t4")
    b.fadd("t4", "t4", "a6")
    b.fmul("t4", "t4", "s11")
    # N(d2) -> t5
    b.fmul("t5", "t3", "t3")
    b.fadd("t5", "t5", "a7")
    b.fsqrt("t5", "t5")
    b.fdiv("t5", "t3", "t5")
    b.fadd("t5", "t5", "a6")
    b.fmul("t5", "t5", "s11")
    # price = max(S*N(d1) - K*N(d2), 0)
    b.fmul("t4", "a2", "t4")
    b.fmul("t5", "a3", "t5")
    b.fsub("t4", "t4", "t5")
    b.movz("t5", 0, 0)  # 0.0
    b.flt("t6", "t5", "t4")  # price > 0 ?
    b.bnez("t6", ".bs_store")
    b.mv("t4", "t5")
    b.label(".bs_store")
    b.la("t0", "results")
    b.slli("t1", "a0", 3)
    b.add("t0", "t0", "t1")
    b.sd("t4", 0, "t0")
    b.addi("a0", "a0", 1)
    b.blt("a0", "a1", ".bs_loop")
    b.addi("s9", "s9", -1)
    b.bnez("s9", ".bs_rep")
    b.li("a0", 0)
    b.ret()

    b.data()
    b.align(4096)
    b.label("options")
    for s, k, t, v in make_options(n_options):
        b.quad(f2b(s), f2b(k), f2b(t), f2b(v))
    b.bss()
    b.align(4096)
    b.label("results")
    b.space(8 * n_options)
    b.text()
    return b.assemble()
