"""Shared guest-program scaffolding for workloads.

Every benchmark in the paper follows the same skeleton: the main thread
spawns N workers, waits for them, and reports a result.  These emitters
generate that skeleton in GA64 assembly against the guest runtime library,
with optional scheduling hints (paper §5.3) announced before each create.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.guestlib.runtime import emit_runtime
from repro.isa.builder import AsmBuilder

__all__ = ["emit_fanout_main", "workload_builder", "HintSpec"]

#: ("mod", G): group = i % G — stripes threads over G groups.
#: ("div", B): group = i // B — B consecutive threads per group (block).
HintSpec = Optional[tuple[str, int]]


def workload_builder() -> AsmBuilder:
    """Builder pre-loaded with the guest runtime."""
    b = AsmBuilder()
    emit_runtime(b)
    return b


def emit_fanout_main(
    b: AsmBuilder,
    n_threads: int,
    *,
    worker: str = "worker",
    hint: HintSpec = None,
    pre_create: Optional[Callable[[AsmBuilder], None]] = None,
    post_join: Optional[Callable[[AsmBuilder], None]] = None,
) -> AsmBuilder:
    """Emit ``main``: spawn ``n_threads`` workers (a0 = thread index), join
    them all, then run ``post_join`` (which may set a0 as the exit status).

    ``hint=("mod", G)`` or ``("div", B)`` emits a ``hint`` instruction before
    each create so the master's locality-aware scheduler can group threads.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    b.comment(f"main: fan out {n_threads} x {worker}, join, finish")
    b.label("main")
    b.addi("sp", "sp", -32)
    b.sd("ra", 24, "sp")
    b.sd("s0", 16, "sp")
    b.sd("s1", 8, "sp")
    if pre_create:
        pre_create(b)
    b.li("s0", 0)
    b.label(".main_create")
    if hint is not None:
        mode, param = hint
        b.li("t0", param)
        if mode == "mod":
            b.remu("t6", "s0", "t0")
        elif mode == "div":
            b.divu("t6", "s0", "t0")
        else:
            raise ValueError(f"unknown hint mode {mode!r}")
        b.hint("t6")
    b.la("a0", worker)
    b.mv("a1", "s0")
    b.call("rt_thread_create")
    b.la("t0", ".main_handles")
    b.slli("t1", "s0", 3)
    b.add("t0", "t0", "t1")
    b.sd("a0", 0, "t0")
    b.addi("s0", "s0", 1)
    b.li("t2", n_threads)
    b.blt("s0", "t2", ".main_create")

    b.li("s0", 0)
    b.label(".main_join")
    b.la("t0", ".main_handles")
    b.slli("t1", "s0", 3)
    b.add("t0", "t0", "t1")
    b.ld("a0", 0, "t0")
    b.call("rt_join")
    b.addi("s0", "s0", 1)
    b.li("t2", n_threads)
    b.blt("s0", "t2", ".main_join")

    if post_join:
        post_join(b)
    else:
        b.li("a0", 0)
    b.ld("ra", 24, "sp")
    b.ld("s0", 16, "sp")
    b.ld("s1", 8, "sp")
    b.addi("sp", "sp", 32)
    b.ret()

    b.bss()
    b.align(8)
    b.label(".main_handles")
    b.space(8 * n_threads)
    b.text()
    return b
