"""PARSEC fluidanimate-like workload (paper Fig. 8, right).

fluidanimate divides a large matrix into a grid of blocks, one per thread;
every iteration the threads exchange boundary data with their neighbours
and synchronize (§6.1.2).  The paper groups threads by their block position
so neighbours land on the same node.

Model: a 1-D chain of ``n_threads`` blocks (one page each).  Per iteration,
each thread reads its left and right neighbours' edge cells, updates its
whole block, and crosses a barrier.  With ``hint=("div", B)`` consecutive
blocks co-locate and only group-edge pairs cross nodes.

:func:`reference` replicates the integer stencil exactly for validation.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.common import HintSpec, emit_fanout_main, workload_builder

__all__ = ["build", "reference", "reference_output"]

M64 = (1 << 64) - 1
QWORDS_PER_BLOCK = 512  # one page


def reference(n_threads: int, iters: int) -> int:
    """Total checksum over all blocks after `iters` stencil rounds."""
    q = QWORDS_PER_BLOCK
    blocks = [[(b * q + k) & M64 for k in range(q)] for b in range(n_threads)]
    for _ in range(iters):
        lefts = [blocks[b - 1][q - 1] if b > 0 else 0 for b in range(n_threads)]
        rights = [blocks[b + 1][0] if b < n_threads - 1 else 0 for b in range(n_threads)]
        for bidx in range(n_threads):
            edge = (lefts[bidx] + rights[bidx]) & M64
            blk = blocks[bidx]
            for k in range(q):
                blk[k] = (blk[k] + edge + k) & M64
    return sum(sum(blk) for blk in blocks) & M64


def reference_output(n_threads: int, iters: int) -> str:
    return f"{reference(n_threads, iters)}\n"


def build(n_threads: int = 128, iters: int = 4, hint: HintSpec = None) -> Program:
    q = QWORDS_PER_BLOCK
    b = workload_builder()

    def pre_create(bb):
        bb.comment("init blocks: blocks[b][k] = b*512 + k; init barrier")
        bb.la("t0", "blocks")
        bb.li("t1", 0)
        bb.li("t2", n_threads * q)
        bb.label(".fl_init")
        bb.slli("t3", "t1", 3)
        bb.add("t3", "t3", "t0")
        bb.sd("t1", 0, "t3")
        bb.addi("t1", "t1", 1)
        bb.blt("t1", "t2", ".fl_init")
        bb.la("a0", "bar")
        bb.li("a1", n_threads)
        bb.call("rt_barrier_init")

    def post_join(bb):
        bb.la("t0", "blocks")
        bb.li("t1", 0)
        bb.li("t2", n_threads * q)
        bb.li("t6", 0)
        bb.label(".fl_sum")
        bb.slli("t3", "t1", 3)
        bb.add("t3", "t3", "t0")
        bb.ld("t4", 0, "t3")
        bb.add("t6", "t6", "t4")
        bb.addi("t1", "t1", 1)
        bb.blt("t1", "t2", ".fl_sum")
        bb.mv("a0", "t6")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, hint=hint, pre_create=pre_create, post_join=post_join)

    b.comment("worker(b): iterate { read neighbour edges, update block, barrier }")
    b.label("worker")
    b.addi("sp", "sp", -40)
    b.sd("ra", 32, "sp")
    b.sd("s0", 24, "sp")
    b.sd("s1", 16, "sp")
    b.sd("s2", 8, "sp")
    b.sd("s3", 0, "sp")
    b.mv("s0", "a0")  # block index
    b.li("t0", 4096)
    b.mul("t0", "s0", "t0")
    b.la("s1", "blocks")
    b.add("s1", "s1", "t0")  # my block base
    b.li("s2", iters)
    b.label(".fl_round")
    b.comment("edge = left neighbour's last qword + right neighbour's first")
    b.li("s3", 0)
    b.beqz("s0", ".fl_no_left")
    b.ld("t1", -8, "s1")  # blocks[b-1][511] is just below my base
    b.add("s3", "s3", "t1")
    b.label(".fl_no_left")
    b.li("t2", n_threads - 1)
    b.bge("s0", "t2", ".fl_no_right")
    b.li("t3", 4096)
    b.add("t3", "s1", "t3")
    b.ld("t1", 0, "t3")  # blocks[b+1][0]
    b.add("s3", "s3", "t1")
    b.label(".fl_no_right")
    b.comment("Jacobi step: everyone reads pre-round edges before any update")
    b.la("a0", "bar")
    b.call("rt_barrier_wait")
    b.comment("update: blk[k] += edge + k")
    b.li("t2", 0)
    b.label(".fl_upd")
    b.slli("t3", "t2", 3)
    b.add("t3", "t3", "s1")
    b.ld("t4", 0, "t3")
    b.add("t4", "t4", "s3")
    b.add("t4", "t4", "t2")
    b.sd("t4", 0, "t3")
    b.addi("t2", "t2", 1)
    b.li("t5", q)
    b.blt("t2", "t5", ".fl_upd")
    b.la("a0", "bar")
    b.call("rt_barrier_wait")
    b.addi("s2", "s2", -1)
    b.bnez("s2", ".fl_round")
    b.li("a0", 0)
    b.ld("ra", 32, "sp")
    b.ld("s0", 24, "sp")
    b.ld("s1", 16, "sp")
    b.ld("s2", 8, "sp")
    b.ld("s3", 0, "sp")
    b.addi("sp", "sp", 40)
    b.ret()

    b.bss()
    b.align(4096)
    b.label("blocks")
    b.space(n_threads * 4096)
    b.align(4096)
    b.label("bar")
    b.space(24)
    b.text()
    return b.assemble()
