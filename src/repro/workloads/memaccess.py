"""Table 1 microbenchmarks: memory throughput and latency probes.

Three programs, mirroring §6.1.1's page-access-latency study:

* :func:`build_seq_walk` — one worker walks a large reserved region
  sequentially, byte by byte (the paper walks 1 GB on the master from a
  slave; size is scaled via ``npages``).  Measures remote sequential
  bandwidth, and with forwarding enabled, the §5.2 gain.
* :func:`build_false_sharing` — 32 threads on 4 nodes each walk their own
  128-byte section of ONE page (read-increment-write), the false-sharing
  pattern that page splitting (§5.1) dissolves.  Sections are assigned so
  threads placed on the same node get adjacent sections (the paper
  schedules threads evenly and sections contiguously) — the Fig. 4 geometry.
* :func:`build_private_rmw` — each thread read-increment-writes its OWN
  multi-page region (first touch is a read, first write follows shortly).
  Under MSI every private page costs two master round trips (read grant,
  then the S→M upgrade); a MESI protocol grants Exclusive on the read and
  the write upgrades silently, halving the round trips.  An optional
  ``shared_beat`` mixes in a page-level ping-pong page (each thread RMWs
  its own byte of one shared page) so a per-page adaptive protocol has
  both classes to tell apart in a single program.

Like the paper's microbenchmarks, the guest programs time the measured
region themselves (``rt_time_ns`` around the walk, after a warm-up phase
that lets the coherence protocol reach steady state / trigger splitting)
and print ``elapsed_ns`` then a data checksum.  The harness derives MB/s
from bytes touched / guest-reported time.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.common import emit_fanout_main, workload_builder

__all__ = [
    "build_seq_walk",
    "build_false_sharing",
    "build_private_rmw",
    "seq_walk_bytes",
    "false_sharing_bytes",
    "false_sharing_checksum",
    "parse_output",
    "private_rmw_pages",
    "SECTION_BYTES",
]

SECTION_BYTES = 128


def seq_walk_bytes(npages: int) -> int:
    return npages * 4096


def false_sharing_bytes(n_threads: int, iters: int) -> int:
    """Bytes touched during the *measured* phase."""
    return n_threads * iters


def false_sharing_checksum(n_threads: int, total_iters: int) -> int:
    """Expected post-run byte sum over all sections (warm-up + measured)."""
    per_section = sum(
        ((total_iters - j + SECTION_BYTES - 1) // SECTION_BYTES) % 256
        for j in range(SECTION_BYTES)
    )
    return n_threads * per_section


def parse_output(stdout: str) -> tuple[int, int]:
    """(elapsed_ns, checksum) from the sequential-walk stdout."""
    lines = stdout.strip().splitlines()
    return int(lines[0]), int(lines[1])


def parse_false_sharing_output(stdout: str) -> tuple[list[int], int]:
    """(per-thread elapsed_ns list, checksum) from the false-sharing stdout."""
    lines = stdout.strip().splitlines()
    return [int(x) for x in lines[:-1]], int(lines[-1])


def aggregate_bandwidth_mbps(elapsed_ns: list[int], iters: int) -> float:
    """Sum of per-thread bandwidths (the paper's 'average bandwidth' metric
    aggregates each thread's section walk)."""
    return sum(iters / (t / 1e9) for t in elapsed_ns) / 1e6


def _emit_timestamp(b, label: str) -> None:
    b.call("rt_time_ns")
    b.la("t0", label)
    b.sd("a0", 0, "t0")


def build_seq_walk(npages: int = 256) -> Program:
    """Worker times a byte-walk over ``npages`` pages; prints elapsed + sum."""
    b = workload_builder()

    def post_join(bb):
        bb.la("t0", "t_end")
        bb.ld("a0", 0, "t0")
        bb.la("t0", "t_start")
        bb.ld("t1", 0, "t0")
        bb.sub("a0", "a0", "t1")
        bb.call("rt_print_u64_ln")
        bb.la("a0", "checksum")
        bb.ld("a0", 0, "a0")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, 1, post_join=post_join)
    b.label("worker")
    b.addi("sp", "sp", -16)
    b.sd("ra", 8, "sp")
    _emit_timestamp(b, "t_start")
    b.la("t0", "region")
    b.li("t1", 0)
    b.li("t2", npages * 4096)
    b.li("t5", 0)
    b.label(".sw_loop")
    b.add("t3", "t0", "t1")
    b.lbu("t4", 0, "t3")
    b.add("t5", "t5", "t4")
    b.addi("t1", "t1", 1)
    b.blt("t1", "t2", ".sw_loop")
    b.la("t0", "checksum")
    b.sd("t5", 0, "t0")
    _emit_timestamp(b, "t_end")
    b.li("a0", 0)
    b.ld("ra", 8, "sp")
    b.addi("sp", "sp", 16)
    b.ret()
    b.bss()
    b.align(4096)
    b.label("region")
    b.space(npages * 4096)
    b.align(8)
    b.label("checksum")
    b.space(8)
    b.label("t_start")
    b.space(8)
    b.label("t_end")
    b.space(8)
    b.text()
    return b.assemble()


def build_false_sharing(
    n_threads: int = 32,
    n_nodes: int = 4,
    iters: int = 20_000,
    warmup_iters: int = 20_000,
) -> Program:
    """Each worker read-modify-writes its 128-byte section of one page.

    Phases: start barrier → warm-up walk (coherence steady state; with
    splitting enabled, enough ping-pong to fire the detector) → timed walk
    of ``iters`` steps → end barrier.  Thread 0 records the timestamps.

    Section assignment groups co-scheduled threads: with round-robin
    placement (thread i → node i % n_nodes), thread i gets section
    ``(i % n_nodes) * (T/n_nodes) + i / n_nodes`` so a node's sections are
    contiguous."""
    if n_threads % n_nodes:
        raise ValueError("n_threads must divide evenly over n_nodes")
    per_node = n_threads // n_nodes
    b = workload_builder()

    def pre_create(bb):
        bb.la("a0", "fs_bar")
        bb.li("a1", n_threads)
        bb.call("rt_barrier_init")

    def post_join(bb):
        bb.comment("print each thread's measured walk time, then the checksum")
        bb.li("s0", 0)
        bb.label(".fs_print")
        bb.la("t0", "elapsed")
        bb.slli("t1", "s0", 3)
        bb.add("t0", "t0", "t1")
        bb.ld("a0", 0, "t0")
        bb.call("rt_print_u64_ln")
        bb.addi("s0", "s0", 1)
        bb.li("t2", n_threads)
        bb.blt("s0", "t2", ".fs_print")
        bb.la("t0", "page")
        bb.li("t1", 0)
        bb.li("t2", 0)
        bb.label(".fsum")
        bb.add("t3", "t0", "t1")
        bb.lbu("t4", 0, "t3")
        bb.add("t2", "t2", "t4")
        bb.addi("t1", "t1", 1)
        bb.li("t5", n_threads * SECTION_BYTES)
        bb.blt("t1", "t5", ".fsum")
        bb.mv("a0", "t2")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, pre_create=pre_create, post_join=post_join)

    def emit_walk(count: int, label: str) -> None:
        b.li("s2", 0)
        b.li("s3", count)
        b.label(label)
        b.andi("t3", "s2", SECTION_BYTES - 1)
        b.add("t4", "s1", "t3")
        b.lbu("t5", 0, "t4")
        b.addi("t5", "t5", 1)
        b.sb("t5", 0, "t4")
        b.addi("s2", "s2", 1)
        b.blt("s2", "s3", label)

    b.comment("worker(i): section = (i % nodes) * per_node + i / nodes")
    b.label("worker")
    b.addi("sp", "sp", -48)
    b.sd("ra", 40, "sp")
    b.sd("s0", 32, "sp")
    b.sd("s1", 24, "sp")
    b.sd("s2", 16, "sp")
    b.sd("s3", 8, "sp")
    b.sd("s4", 0, "sp")
    b.mv("s0", "a0")
    b.li("t0", n_nodes)
    b.remu("t1", "s0", "t0")
    b.li("t2", per_node)
    b.mul("t1", "t1", "t2")
    b.divu("t2", "s0", "t0")
    b.add("t1", "t1", "t2")  # section index
    b.li("t0", SECTION_BYTES)
    b.mul("t1", "t1", "t0")
    b.la("t0", "page")
    b.add("s1", "t1", "t0")  # section base
    b.la("a0", "fs_bar")
    b.call("rt_barrier_wait")
    emit_walk(warmup_iters, ".fs_warm")
    b.la("a0", "fs_bar")
    b.call("rt_barrier_wait")
    b.comment("each thread times its own section walk (per-thread bandwidth)")
    b.call("rt_time_ns")
    b.mv("s4", "a0")
    emit_walk(iters, ".fs_meas")
    b.call("rt_time_ns")
    b.sub("s4", "a0", "s4")
    b.la("t0", "elapsed")
    b.slli("t1", "s0", 3)
    b.add("t0", "t0", "t1")
    b.sd("s4", 0, "t0")
    b.li("a0", 0)
    b.ld("ra", 40, "sp")
    b.ld("s0", 32, "sp")
    b.ld("s1", 24, "sp")
    b.ld("s2", 16, "sp")
    b.ld("s3", 8, "sp")
    b.ld("s4", 0, "sp")
    b.addi("sp", "sp", 48)
    b.ret()

    b.bss()
    b.align(4096)
    b.label("page")
    b.space(4096)
    b.align(4096)  # barrier/results must not share the contended page
    b.label("fs_bar")
    b.space(24)
    b.align(8)
    b.label("elapsed")
    b.space(8 * n_threads)
    b.text()
    return b.assemble()


def private_rmw_pages(n_threads: int, pages_per_thread: int) -> int:
    """Private pages touched by a run of :func:`build_private_rmw`."""
    return n_threads * pages_per_thread


def build_private_rmw(
    n_threads: int = 8,
    n_nodes: int = 4,
    pages_per_thread: int = 8,
    passes: int = 4,
    stride: int = 64,
    shared_beat: int = 0,
    bcast_beat: int = 0,
) -> Program:
    """Each worker read-increment-writes its own ``pages_per_thread`` pages.

    The access is a load-increment-store at ``stride``-byte steps, repeated
    ``passes`` times over the region — so the FIRST touch of every private
    page is a read and the write lands a few instructions later.  That is
    the single-writer pattern the MESI Exclusive state exists for: the read
    grant is Exclusive (no other sharer), and the following write upgrades
    silently with no master round trip.  Under plain MSI the same pages
    each pay a read round trip AND an S→M upgrade round trip.

    ``shared_beat > 0`` additionally makes every worker read-increment-write
    its own byte of ONE shared page every ``shared_beat`` steps.  That page
    ping-pongs between all nodes (multi-writer; Exclusive never helps it),
    giving an adaptive per-page protocol both classes in one program while
    keeping the final memory deterministic (disjoint bytes, no data race).

    ``bcast_beat > 0`` adds a broadcast page: thread 0 read-increment-writes
    it every ``bcast_beat`` steps while every other thread reads it — a
    single-writer page whose faults are READ-dominated.  A naive
    dominant-writer home migration takes the bait (the writer's streak is
    unbroken) and then taxes every consumer read with the remote-home hop;
    a classifier that weighs reads against writes leaves the page alone.
    Consumer reads are folded into a dead register, so printed output stays
    protocol-independent.

    Output: one elapsed-ns line per thread, then the byte checksum over the
    stride-touched positions (plus the shared/broadcast pages when enabled).
    """
    if n_threads % n_nodes:
        raise ValueError("n_threads must divide evenly over n_nodes")
    region_bytes = pages_per_thread * 4096
    b = workload_builder()

    def pre_create(bb):
        bb.la("a0", "pr_bar")
        bb.li("a1", n_threads)
        bb.call("rt_barrier_init")

    def post_join(bb):
        bb.comment("print each thread's measured walk time, then the checksum")
        bb.li("s0", 0)
        bb.label(".pr_print")
        bb.la("t0", "elapsed")
        bb.slli("t1", "s0", 3)
        bb.add("t0", "t0", "t1")
        bb.ld("a0", 0, "t0")
        bb.call("rt_print_u64_ln")
        bb.addi("s0", "s0", 1)
        bb.li("t2", n_threads)
        bb.blt("s0", "t2", ".pr_print")
        bb.comment("checksum: every stride-touched byte of every region")
        bb.la("t0", "region")
        bb.li("t1", 0)
        bb.li("t2", 0)
        bb.li("t5", n_threads * region_bytes)
        bb.label(".pr_sum")
        bb.add("t3", "t0", "t1")
        bb.lbu("t4", 0, "t3")
        bb.add("t2", "t2", "t4")
        bb.li("t6", stride)
        bb.add("t1", "t1", "t6")
        bb.blt("t1", "t5", ".pr_sum")
        if shared_beat:
            bb.la("t0", "shared")
            bb.li("t1", 0)
            bb.li("t5", n_threads)
            bb.label(".pr_ssum")
            bb.add("t3", "t0", "t1")
            bb.lbu("t4", 0, "t3")
            bb.add("t2", "t2", "t4")
            bb.addi("t1", "t1", 1)
            bb.blt("t1", "t5", ".pr_ssum")
        if bcast_beat:
            bb.la("t0", "bcast")
            bb.lbu("t4", 0, "t0")
            bb.add("t2", "t2", "t4")
        bb.mv("a0", "t2")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, pre_create=pre_create, post_join=post_join)

    b.comment("worker(i): RMW-walk the thread's private page run")
    b.label("worker")
    b.addi("sp", "sp", -80)
    b.sd("ra", 72, "sp")
    b.sd("s0", 64, "sp")
    b.sd("s1", 56, "sp")
    b.sd("s2", 48, "sp")
    b.sd("s3", 40, "sp")
    b.sd("s4", 32, "sp")
    b.sd("s5", 24, "sp")
    b.sd("s6", 16, "sp")
    b.mv("s0", "a0")
    b.li("t0", region_bytes)
    b.mul("t1", "s0", "t0")
    b.la("t0", "region")
    b.add("s1", "t1", "t0")  # private region base
    b.la("a0", "pr_bar")
    b.call("rt_barrier_wait")
    b.call("rt_time_ns")
    b.mv("s4", "a0")
    b.li("s3", 0)  # pass counter
    if shared_beat:
        b.li("s5", shared_beat)  # countdown to the next shared-page beat
    if bcast_beat:
        b.li("s6", bcast_beat)  # countdown to the next broadcast beat
    b.label(".pr_pass")
    b.li("s2", 0)  # byte offset into the private region
    b.label(".pr_step")
    b.add("t3", "s1", "s2")
    b.lbu("t4", 0, "t3")
    b.addi("t4", "t4", 1)
    b.sb("t4", 0, "t3")
    if shared_beat:
        b.addi("s5", "s5", -1)
        b.bnez("s5", ".pr_nobeat")
        b.comment("beat: RMW this thread's byte of the shared ping-pong page")
        b.la("t3", "shared")
        b.add("t3", "t3", "s0")
        b.lbu("t4", 0, "t3")
        b.addi("t4", "t4", 1)
        b.sb("t4", 0, "t3")
        b.li("s5", shared_beat)
        b.label(".pr_nobeat")
    if bcast_beat:
        b.addi("s6", "s6", -1)
        b.bnez("s6", ".pr_nobc")
        b.la("t3", "bcast")
        b.bnez("s0", ".pr_bcread")
        b.comment("thread 0 produces: RMW the broadcast byte")
        b.lbu("t4", 0, "t3")
        b.addi("t4", "t4", 1)
        b.sb("t4", 0, "t3")
        b.j(".pr_bcdone")
        b.label(".pr_bcread")
        b.comment("consumers read into a dead register (output-neutral)")
        b.lbu("t4", 0, "t3")
        b.label(".pr_bcdone")
        b.li("s6", bcast_beat)
        b.label(".pr_nobc")
    b.li("t5", stride)
    b.add("s2", "s2", "t5")
    b.li("t5", region_bytes)
    b.blt("s2", "t5", ".pr_step")
    b.addi("s3", "s3", 1)
    b.li("t5", passes)
    b.blt("s3", "t5", ".pr_pass")
    b.call("rt_time_ns")
    b.sub("s4", "a0", "s4")
    b.la("t0", "elapsed")
    b.slli("t1", "s0", 3)
    b.add("t0", "t0", "t1")
    b.sd("s4", 0, "t0")
    b.li("a0", 0)
    b.ld("ra", 72, "sp")
    b.ld("s0", 64, "sp")
    b.ld("s1", 56, "sp")
    b.ld("s2", 48, "sp")
    b.ld("s3", 40, "sp")
    b.ld("s4", 32, "sp")
    b.ld("s5", 24, "sp")
    b.ld("s6", 16, "sp")
    b.addi("sp", "sp", 80)
    b.ret()

    b.bss()
    b.align(4096)
    b.label("region")
    b.space(n_threads * region_bytes)
    b.label("shared")
    b.space(4096)
    b.label("bcast")
    b.space(4096)
    b.align(4096)  # keep barrier/results off the measured pages
    b.label("pr_bar")
    b.space(24)
    b.align(8)
    b.label("elapsed")
    b.space(8 * n_threads)
    b.text()
    return b.assemble()
