"""Fig. 6 microbenchmark: mutex acquire/release under two scenarios.

Paper §6.1.1: 32 threads scheduled evenly among the nodes.

* **worst case** — all threads compete for one global lock, 5 000
  acquire/release pairs each; the lock page ping-pongs between nodes and
  contention falls back to delegated futex syscalls;
* **best case** — each thread operates on a *private* lock 500 000 times;
  we place the private lock on the thread's own stack (a thread-private
  mmap), so its page stays Modified on the local node forever and every
  acquire is an intra-node CAS.

All threads line up on a start barrier, then each thread times its own lock
loop with ``rt_time_ns``; main prints the per-thread elapsed times.  The
experiment metric is the slowest thread (time to complete the mutex
operations), which excludes thread creation/teardown and the barrier's
wake-up ramp — as the paper's in-benchmark timing does.  Iteration counts
are parameters (the experiment harness scales them down).
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.common import emit_fanout_main, workload_builder

__all__ = ["build", "parse_elapsed_ns", "elapsed_ns"]


def parse_elapsed_ns(stdout: str) -> list[int]:
    return [int(x) for x in stdout.strip().splitlines()]


def elapsed_ns(stdout: str) -> int:
    """The experiment metric: the slowest thread's lock-loop time."""
    return max(parse_elapsed_ns(stdout))


def build(n_threads: int = 32, iters: int = 5_000, private: bool = False) -> Program:
    b = workload_builder()

    def pre_create(bb):
        bb.la("a0", "start_bar")
        bb.li("a1", n_threads)
        bb.call("rt_barrier_init")

    def post_join(bb):
        bb.li("s0", 0)
        bb.label(".mx_print")
        bb.la("t0", "elapsed")
        bb.slli("t1", "s0", 3)
        bb.add("t0", "t0", "t1")
        bb.ld("a0", 0, "t0")
        bb.call("rt_print_u64_ln")
        bb.addi("s0", "s0", 1)
        bb.li("t2", n_threads)
        bb.blt("s0", "t2", ".mx_print")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, pre_create=pre_create, post_join=post_join)

    b.comment(f"worker: {'private stack lock' if private else 'global lock'}")
    b.label("worker")
    b.addi("sp", "sp", -48)
    b.sd("ra", 40, "sp")
    b.sd("s0", 32, "sp")
    b.sd("s1", 24, "sp")
    b.sd("s2", 16, "sp")
    b.sd("s3", 8, "sp")
    b.mv("s2", "a0")  # thread index
    if private:
        b.sd("zero", 0, "sp")  # the private lock cell lives on the stack
        b.mv("s1", "sp")
    else:
        b.la("s1", "global_lock")
    # All threads start hammering together (the paper's threads contend for
    # seconds; at scaled-down iteration counts an explicit start line is
    # needed for them to overlap at all).
    b.la("a0", "start_bar")
    b.call("rt_barrier_wait")
    b.call("rt_time_ns")
    b.mv("s3", "a0")
    b.li("s0", iters)
    b.label(".mx_loop")
    b.mv("a0", "s1")
    b.call("rt_mutex_lock")
    b.mv("a0", "s1")
    b.call("rt_mutex_unlock")
    b.addi("s0", "s0", -1)
    b.bnez("s0", ".mx_loop")
    b.call("rt_time_ns")
    b.sub("s3", "a0", "s3")
    b.la("t0", "elapsed")
    b.slli("t1", "s2", 3)
    b.add("t0", "t0", "t1")
    b.sd("s3", 0, "t0")
    b.li("a0", 0)
    b.ld("ra", 40, "sp")
    b.ld("s0", 32, "sp")
    b.ld("s1", 24, "sp")
    b.ld("s2", 16, "sp")
    b.ld("s3", 8, "sp")
    b.addi("sp", "sp", 48)
    b.ret()

    b.data()
    b.align(4096)  # the global lock gets a page to itself, like a real futex hot spot
    b.label("global_lock")
    b.quad(0)
    b.align(4096)  # barrier/results must not false-share the lock page
    b.label("start_bar")
    b.quad(0, 0, 0)
    b.label("elapsed")
    b.space(8 * n_threads)
    b.text()
    return b.assemble()
