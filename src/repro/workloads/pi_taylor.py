"""Fig. 5 microbenchmark: π by Taylor (Leibniz) series, embarrassingly parallel.

The paper's scalability study: the main thread creates N threads (120 in the
paper); each computes π with a Taylor series 64 K times with *no* data
sharing (only a join barrier at the end).  Iteration counts are scaled via
parameters; the computation itself is bit-exact reproducible in Python
(:func:`reference`), which the tests use to validate results end-to-end.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.common import emit_fanout_main, workload_builder

__all__ = ["build", "reference", "reference_output"]


def build(n_threads: int = 120, terms: int = 200, reps: int = 4) -> Program:
    """Each worker computes the ``terms``-term Leibniz series ``reps`` times
    and stores the result (double bits) in ``results[i]``; main prints
    ``trunc(results[0] * 1e9)`` for validation."""
    b = workload_builder()

    def post_join(bb):
        bb.la("t0", "results")
        bb.ld("t1", 0, "t0")  # pi bits from thread 0
        bb.li("t2", 1_000_000_000)
        bb.fcvt_d_l("t2", "t2")
        bb.fmul("t1", "t1", "t2")
        bb.fcvt_l_d("a0", "t1")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, post_join=post_join)

    b.comment("worker(i): acc = sum_k 4*(-1)^k/(2k+1), repeated `reps` times")
    b.label("worker")
    b.mv("a1", "a0")  # index
    b.li("a2", reps)
    b.label(".pi_outer")
    b.movz("t1", 0, 0)  # acc = +0.0
    b.li("t3", 4)
    b.fcvt_d_l("t3", "t3")  # 4.0
    b.li("t2", 0)  # k
    b.li("t4", terms)
    b.label(".pi_inner")
    b.slli("t5", "t2", 1)
    b.addi("t5", "t5", 1)  # 2k+1
    b.fcvt_d_l("t5", "t5")
    b.fdiv("t5", "t3", "t5")  # 4/(2k+1)
    b.andi("t6", "t2", 1)
    b.bnez("t6", ".pi_sub")
    b.fadd("t1", "t1", "t5")
    b.j(".pi_next")
    b.label(".pi_sub")
    b.fsub("t1", "t1", "t5")
    b.label(".pi_next")
    b.addi("t2", "t2", 1)
    b.blt("t2", "t4", ".pi_inner")
    b.addi("a2", "a2", -1)
    b.bnez("a2", ".pi_outer")
    b.comment("results[i] = acc bits")
    b.la("t0", "results")
    b.slli("t2", "a1", 3)
    b.add("t0", "t0", "t2")
    b.sd("t1", 0, "t0")
    b.li("a0", 0)
    b.ret()

    b.bss()
    b.align(4096)  # keep per-thread result slots off other data structures
    b.label("results")
    b.space(8 * n_threads)
    b.text()
    return b.assemble()


def reference(terms: int = 200) -> float:
    """Bit-exact Python replica of the worker's series."""
    acc = 0.0
    for k in range(terms):
        term = 4.0 / float(2 * k + 1)
        acc = acc + term if k % 2 == 0 else acc - term
    return acc


def reference_output(terms: int = 200) -> str:
    """Expected stdout of the program built with the same ``terms``."""
    return f"{int(reference(terms) * 1e9)}\n"
