"""PARSEC swaptions-like workload (paper Fig. 7, right).

Data-parallel Monte-Carlo pricing with *no input file* (like swaptions) and
very little sharing: each thread simulates its own slice of swaptions with a
thread-deterministic LCG stream and writes one result per swaption.  The
only inter-node traffic is false sharing at slice boundaries of the results
array — which is what the paper improves 6.1–14.7 % with page splitting.

Substitution note (DESIGN.md): the HJM framework of real swaptions needs
exp/ln; the simulation here keeps the *shape* (per-item independent Monte
Carlo, FP-heavy, results-array writes) with an algebraic payoff.
:func:`reference` replicates it bit-exactly.
"""

from __future__ import annotations

from repro.dbt.fpu import f2b
from repro.isa.program import Program
from repro.workloads.common import emit_fanout_main, workload_builder

__all__ = ["build", "reference", "reference_output"]

LCG_MUL = 6364136223846793005
LCG_ADD = 1442695040888963407
M64 = (1 << 64) - 1
INV_2_53 = 1.0 / (1 << 53)
STRIKE = 0.55


def _simulate(j: int, trials: int) -> float:
    x = (j * 0x9E3779B97F4A7C15 + 1) & M64
    acc = 0.0
    for _ in range(trials):
        x = (x * LCG_MUL + LCG_ADD) & M64
        u = float(x >> 11) * INV_2_53
        payoff = u - STRIKE
        if payoff < 0.0:
            payoff = 0.0
        acc = acc + payoff
    return acc


def reference(n_swaptions: int, trials: int) -> float:
    total = 0.0
    for j in range(n_swaptions):
        total = total + _simulate(j, trials)
    return total


def reference_output(n_swaptions: int, trials: int) -> str:
    return f"{int(reference(n_swaptions, trials) * 1000.0)}\n"


def build(n_threads: int = 32, n_swaptions: int = 128, trials: int = 200) -> Program:
    if n_swaptions % n_threads:
        raise ValueError("n_swaptions must divide evenly over n_threads")
    chunk = n_swaptions // n_threads
    b = workload_builder()

    def post_join(bb):
        bb.la("t0", "results")
        bb.li("t1", 0)
        bb.movz("t2", 0, 0)
        bb.label(".sw_sum")
        bb.slli("t3", "t1", 3)
        bb.add("t3", "t3", "t0")
        bb.ld("t4", 0, "t3")
        bb.fadd("t2", "t2", "t4")
        bb.addi("t1", "t1", 1)
        bb.li("t5", n_swaptions)
        bb.blt("t1", "t5", ".sw_sum")
        bb.li("t5", f2b(1000.0))
        bb.fmul("t2", "t2", "t5")
        bb.fcvt_l_d("a0", "t2")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, post_join=post_join)

    b.comment("worker(i): simulate swaptions [i*chunk, (i+1)*chunk)")
    b.label("worker")
    b.li("t0", chunk)
    b.mul("a1", "a0", "t0")  # j
    b.add("a2", "a1", "t0")  # end
    b.li("a4", f2b(INV_2_53))
    b.li("a5", f2b(STRIKE))
    b.li("a6", LCG_MUL)
    b.li("a7", LCG_ADD)
    b.label(".sw_opt")
    b.comment("seed = j * golden + 1")
    b.la("s10", "results")  # worker is a leaf: s10 is ours
    b.slli("t4", "a1", 3)
    b.add("s10", "s10", "t4")  # &results[j]
    b.li("t0", 0x9E3779B97F4A7C15)
    b.mul("t0", "a1", "t0")
    b.addi("t0", "t0", 1)  # x
    b.movz("t1", 0, 0)  # acc = 0.0
    b.li("t2", trials)
    b.label(".sw_trial")
    b.mul("t0", "t0", "a6")
    b.add("t0", "t0", "a7")
    b.srli("t3", "t0", 11)
    b.fcvt_d_l("t3", "t3")
    b.fmul("t3", "t3", "a4")  # u
    b.fsub("t3", "t3", "a5")  # u - strike
    b.movz("t4", 0, 0)
    b.fmax("t3", "t3", "t4")  # max(payoff, 0)
    b.fadd("t1", "t1", "t3")
    # running result update (swaptions keeps per-item state hot: this is the
    # light false sharing that page splitting improves, §6.1.2)
    b.sd("t1", 0, "s10")
    b.addi("t2", "t2", -1)
    b.bnez("t2", ".sw_trial")
    b.addi("a1", "a1", 1)
    b.blt("a1", "a2", ".sw_opt")
    b.li("a0", 0)
    b.ret()

    b.bss()
    b.align(4096)
    b.label("results")
    b.space(8 * n_swaptions)
    b.text()
    return b.assemble()
