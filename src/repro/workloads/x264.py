"""PARSEC x264-like workload (paper Fig. 8, left).

x264 encodes a frame stream with a fork-join pipeline; encoding a dependent
frame reads the previous frame's reconstruction — heavy *true* sharing.
The paper modifies x264 to divide frames into independent groups bound to
threads and inserts grouping hints (§6.1.2, "affecting less than 1 % of the
lines"), so the hint-based locality-aware scheduler can keep a group's
frames on one node.

Model here: ``n_frames`` threads, one per frame.  Frames form groups of
``group_size`` (a GOP).  Each non-leader frame waits for its predecessor's
"done" flag, checksums the predecessor's reconstruction buffer (the
reference-frame read), then computes its own buffer and publishes its flag.
With ``hint=("div", group_size)`` a group is co-located and the reference
read is node-local; under round-robin every reference read crosses nodes.

:func:`reference` replicates the integer kernel exactly for validation.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.kernel.sysnums import SYS
from repro.workloads.common import HintSpec, emit_fanout_main, workload_builder

__all__ = ["build", "reference", "reference_output"]

M64 = (1 << 64) - 1
QWORDS_PER_PAGE = 512


def reference(n_frames: int, group_size: int, pages_per_frame: int) -> int:
    """Sum of the final checksum of each group's last frame (mod 2^64)."""
    qwords = pages_per_frame * QWORDS_PER_PAGE
    frames = [[0] * qwords for _ in range(n_frames)]
    for f in range(n_frames):
        if f % group_size == 0:
            ref = 0
        else:
            ref = sum(frames[f - 1]) & M64
        for k in range(qwords):
            frames[f][k] = (ref + (f + 1) * k + k * k) & M64
    total = 0
    for g in range(0, n_frames, group_size):
        last = min(g + group_size, n_frames) - 1
        total = (total + sum(frames[last])) & M64
    return total


def reference_output(n_frames: int, group_size: int, pages_per_frame: int) -> str:
    return f"{reference(n_frames, group_size, pages_per_frame)}\n"


FLAG_STRIDE = 4096  # one page per done-flag: frame sync vars don't false-share


def build(
    n_frames: int = 128,
    group_size: int = 8,
    pages_per_frame: int = 2,
    passes: int = 1,
    hint: HintSpec = None,
) -> Program:
    """``passes`` repeats the (idempotent) encode loop — a compute-intensity
    knob to reach the paper's execute:pagefault balance at small frames."""
    if n_frames % group_size:
        raise ValueError("n_frames must divide evenly into groups")
    if passes < 1:
        raise ValueError("passes must be >= 1")
    qwords = pages_per_frame * QWORDS_PER_PAGE
    frame_bytes = pages_per_frame * 4096
    b = workload_builder()

    def post_join(bb):
        bb.comment("sum the checksum of each group's last frame")
        bb.li("s0", group_size - 1)  # frame index of current group's last
        bb.li("s1", 0)  # acc
        bb.label(".xf_sum_groups")
        bb.li("t0", frame_bytes)
        bb.mul("t0", "s0", "t0")
        bb.la("t1", "framebufs")
        bb.add("t1", "t1", "t0")
        bb.li("t2", 0)
        bb.label(".xf_sum_frame")
        bb.slli("t3", "t2", 3)
        bb.add("t3", "t3", "t1")
        bb.ld("t4", 0, "t3")
        bb.add("s1", "s1", "t4")
        bb.addi("t2", "t2", 1)
        bb.li("t5", qwords)
        bb.blt("t2", "t5", ".xf_sum_frame")
        bb.addi("s0", "s0", group_size)
        bb.li("t5", n_frames)
        bb.blt("s0", "t5", ".xf_sum_groups")
        bb.mv("a0", "s1")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_frames, hint=hint, post_join=post_join)

    b.comment("worker(f): wait for frame f-1 (within group), encode, publish")
    b.label("worker")
    b.addi("sp", "sp", -40)
    b.sd("ra", 32, "sp")
    b.sd("s0", 24, "sp")
    b.sd("s1", 16, "sp")
    b.sd("s2", 8, "sp")
    b.sd("s3", 0, "sp")
    b.mv("s0", "a0")  # frame id
    b.li("t0", group_size)
    b.remu("t1", "s0", "t0")
    b.li("s1", 0)  # ref checksum (group leader: 0)
    b.beqz("t1", ".xf_compute")
    b.comment("wait for predecessor's done flag (futex)")
    b.la("s2", "flags")
    b.addi("t2", "s0", -1)
    b.li("t3", FLAG_STRIDE)
    b.mul("t2", "t2", "t3")
    b.add("s2", "s2", "t2")
    b.label(".xf_wait")
    b.ld("t0", 0, "s2")
    b.bnez("t0", ".xf_ref")
    b.mv("a0", "s2")
    b.li("a1", 0)  # FUTEX_WAIT
    b.li("a2", 0)
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.j(".xf_wait")
    b.label(".xf_ref")
    b.comment("reference read: checksum the previous frame's buffer")
    b.addi("t0", "s0", -1)
    b.li("t1", frame_bytes)
    b.mul("t0", "t0", "t1")
    b.la("t1", "framebufs")
    b.add("t1", "t1", "t0")
    b.li("t2", 0)
    b.label(".xf_refsum")
    b.slli("t3", "t2", 3)
    b.add("t3", "t3", "t1")
    b.ld("t4", 0, "t3")
    b.add("s1", "s1", "t4")
    b.addi("t2", "t2", 1)
    b.li("t5", qwords)
    b.blt("t2", "t5", ".xf_refsum")
    b.label(".xf_compute")
    b.comment(f"encode ({passes} passes): buf[k] = ref + (f+1)*k + k*k")
    b.li("t0", frame_bytes)
    b.mul("t0", "s0", "t0")
    b.la("t1", "framebufs")
    b.add("t1", "t1", "t0")  # my buffer
    b.addi("t6", "s0", 1)  # f+1
    b.li("s3", passes)
    b.label(".xf_pass")
    b.li("t2", 0)
    b.label(".xf_enc")
    b.mul("t3", "t6", "t2")
    b.mul("t4", "t2", "t2")
    b.add("t3", "t3", "t4")
    b.add("t3", "t3", "s1")
    b.slli("t4", "t2", 3)
    b.add("t4", "t4", "t1")
    b.sd("t3", 0, "t4")
    b.addi("t2", "t2", 1)
    b.li("t5", qwords)
    b.blt("t2", "t5", ".xf_enc")
    b.addi("s3", "s3", -1)
    b.bnez("s3", ".xf_pass")
    b.comment("publish: flags[f] = 1, wake any waiter")
    b.la("t0", "flags")
    b.li("t1", FLAG_STRIDE)
    b.mul("t1", "s0", "t1")
    b.add("s2", "t0", "t1")
    b.li("t2", 1)
    b.sd("t2", 0, "s2")
    b.mv("a0", "s2")
    b.li("a1", 1)  # FUTEX_WAKE
    b.li("a2", 64)
    b.li("a7", SYS.FUTEX)
    b.ecall()
    b.li("a0", 0)
    b.ld("ra", 32, "sp")
    b.ld("s0", 24, "sp")
    b.ld("s1", 16, "sp")
    b.ld("s2", 8, "sp")
    b.ld("s3", 0, "sp")
    b.addi("sp", "sp", 40)
    b.ret()

    b.bss()
    b.align(4096)
    b.label("framebufs")
    b.space(n_frames * frame_bytes)
    b.align(4096)
    b.label("flags")
    b.space(FLAG_STRIDE * n_frames)
    b.text()
    return b.assemble()
