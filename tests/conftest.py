"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.dbt import CPUState, ExecutionEngine, StopKind
from repro.isa import assemble
from repro.mem import STACK_TOP, FlatMemory


def run_to_ecall(source: str, *, mode: str = "dbt", regs: dict | None = None,
                 max_quanta: int = 10_000):
    """Assemble and run a program until the first ecall; returns (cpu, mem, engine).

    The ecall is treated as program end — full syscall handling lives in the
    kernel layer and has its own tests.
    """
    prog = assemble(source)
    mem = FlatMemory()
    mem.load_image(prog.iter_load_segments())
    cpu = CPUState(pc=prog.entry, tid=1, sp=STACK_TOP - 64)
    engine = ExecutionEngine(mem, mode=mode)
    for _ in range(max_quanta):
        stop = engine.run_quantum(cpu, 1_000_000)
        if stop.kind is StopKind.SYSCALL:
            return cpu, mem, engine
        if stop.kind is not StopKind.QUANTUM:
            raise AssertionError(f"unexpected stop: {stop.kind} ({stop.info})")
    raise AssertionError("program did not reach ecall")


@pytest.fixture
def run():
    return run_to_ecall
