"""Analysis-layer tests: metrics, reporting, migration, config, baselines."""

import pytest

from repro.analysis.metrics import normalized, speedup, throughput_mbps
from repro.analysis.reporting import format_value, render_series, render_table
from repro.baselines import qemu_config, run_qemu
from repro.core.config import DQEMUConfig
from repro.core.migration import build_child_context
from repro.dbt.cpu import CPUState
from repro.errors import ConfigError
from repro.isa import assemble
from repro.kernel.syscalls import CloneRequest


class TestMetrics:
    def test_speedup(self):
        assert speedup(200, 100) == 2.0
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_throughput(self):
        # 1 MB in 1 ms = 1000 MB/s
        assert throughput_mbps(1_000_000, 1_000_000) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            throughput_mbps(1, 0)

    def test_normalized(self):
        out = normalized({1: 100, 2: 50, 4: 25}, base_key=1)
        assert out == {1: 1.0, 2: 2.0, 4: 4.0}


class TestReporting:
    def test_table_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2.5], [333, 4]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_series(self):
        text = render_series("title", [1, 2], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]})
        assert "title" in text
        assert "s1" in text and "s2" in text

    def test_format_value(self):
        assert format_value(1234.5) == "1,234.5"
        assert format_value(12.345) == "12.35"
        assert format_value(0.5) == "0.500"
        assert format_value("x") == "x"
        assert format_value(0.0) == "0"


class TestMigration:
    def test_child_context(self):
        parent = CPUState(pc=0x1000, tid=1, sp=0x7000)
        parent.regs[10] = 99  # a0
        parent.regs[15] = 7
        clone = CloneRequest(flags=0, child_stack=0x9000, ptid=0, tls=0,
                             ctid=0x5000, parent_tid=1)
        snap = build_child_context(parent.snapshot(), clone, child_tid=5,
                                   hint_group=3)
        child = CPUState.from_snapshot(snap)
        assert child.tid == 5
        assert child.pc == 0x1000
        assert child.regs[10] == 0  # clone returns 0 in the child
        assert child.regs[2] == 0x9000  # sp = child stack
        assert child.regs[15] == 7  # other registers inherited
        assert child.hint_group == 3

    def test_zero_stack_keeps_parent_sp(self):
        parent = CPUState(pc=4, tid=1, sp=0x7000)
        clone = CloneRequest(flags=0, child_stack=0, ptid=0, tls=0, ctid=0,
                             parent_tid=1)
        child = CPUState.from_snapshot(
            build_child_context(parent.snapshot(), clone, 2, None)
        )
        assert child.regs[2] == 0x7000


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DQEMUConfig(cores_per_node=0)
        with pytest.raises(ConfigError):
            DQEMUConfig(mode="jit")
        with pytest.raises(ConfigError):
            DQEMUConfig(scheduler="best-fit")
        with pytest.raises(ConfigError):
            DQEMUConfig(cpu_ghz=0)

    def test_cycles_to_ns(self):
        cfg = DQEMUConfig(cpu_ghz=2.0)
        assert cfg.cycles_to_ns(2000) == 1000

    def test_with_options_copies(self):
        a = DQEMUConfig()
        b = a.with_options(forwarding_enabled=True)
        assert not a.forwarding_enabled and b.forwarding_enabled

    def test_time_scaled_divides_comm_not_traps(self):
        a = DQEMUConfig()
        b = a.time_scaled(100)
        assert b.one_way_latency_ns == a.one_way_latency_ns // 100
        assert b.dsm_service_ns == a.dsm_service_ns // 100
        assert b.bandwidth_bps == a.bandwidth_bps * 100
        assert b.page_fault_trap_cycles == a.page_fault_trap_cycles
        assert b.quantum_cycles == a.quantum_cycles
        with pytest.raises(ConfigError):
            a.time_scaled(0)

    def test_qemu_discount_only_in_pure_mode(self):
        a = DQEMUConfig()
        q = DQEMUConfig(pure_qemu=True)
        assert q.effective_cpi_dbt < a.effective_cpi_dbt


class TestBaselines:
    def test_qemu_config_flags(self):
        cfg = qemu_config()
        assert cfg.pure_qemu
        assert not cfg.forwarding_enabled and not cfg.splitting_enabled

    def test_run_qemu_executes(self):
        prog = assemble("_start:\n li a0, 3\n li a7, 94\n ecall\n")
        r = run_qemu(prog, max_virtual_ms=100)
        assert r.exit_code == 3
        # No network traffic at all in the baseline beyond loopback-free paths.
        assert r.stats.protocol.delegated_syscalls == 0
