"""CLI tests (invoking main() in-process)."""

import pytest

from repro.cli import asm as asm_cli
from repro.cli import experiments as exp_cli
from repro.cli import run as run_cli

HELLO = """
_start:
    li a0, 1
    la a1, msg
    li a2, 3
    li a7, 64
    ecall
    li a0, 5
    li a7, 94
    ecall
.data
msg: .asciz "hi\\n"
"""


@pytest.fixture
def hello_file(tmp_path):
    path = tmp_path / "hello.s"
    path.write_text(HELLO)
    return str(path)


class TestRunCli:
    def test_runs_and_propagates_exit_code(self, hello_file, capsys):
        rc = run_cli.main([hello_file, "--slaves", "2"])
        out = capsys.readouterr()
        assert rc == 5
        assert out.out == "hi\n"
        assert "ms virtual" in out.err

    def test_qemu_mode(self, hello_file, capsys):
        rc = run_cli.main([hello_file, "--qemu"])
        assert rc == 5
        assert capsys.readouterr().out == "hi\n"

    def test_stats_flag(self, hello_file, capsys):
        run_cli.main([hello_file, "--stats"])
        assert "page requests" in capsys.readouterr().err

    def test_trace_flag(self, hello_file, capsys):
        run_cli.main([hello_file, "--trace", "--trace-limit", "10"])
        err = capsys.readouterr().err
        assert "[syscall" in err or "[page" in err

    def test_optimization_flags_accepted(self, hello_file):
        assert run_cli.main(
            [hello_file, "--forwarding", "--splitting", "--scheduler", "hint"]
        ) == 5

    def test_checkpoint_flags_accepted(self, hello_file):
        assert run_cli.main(
            [
                hello_file, "--slaves", "2",
                "--rpc-timeout-ns", "2000000", "--evacuation",
                "--checkpoint-interval-ns", "50000",
                "--checkpoint-target", "peer",
                "--rebalance-threshold-ns", "100000",
            ]
        ) == 5

    def test_stdin_file(self, tmp_path, capsys):
        src = tmp_path / "cat.s"
        src.write_text(
            """
            _start:
                li a0, 0
                la a1, buf
                li a2, 4
                li a7, 63
                ecall
                li a0, 1
                la a1, buf
                li a2, 4
                li a7, 64
                ecall
                li a0, 0
                li a7, 94
                ecall
            .data
            buf: .space 8
            """
        )
        data = tmp_path / "in.txt"
        data.write_bytes(b"wxyz")
        rc = run_cli.main([str(src), "--stdin", str(data)])
        assert rc == 0
        assert capsys.readouterr().out == "wxyz"

    def test_time_scale_flag(self, hello_file):
        assert run_cli.main([hello_file, "--time-scale", "100"]) == 5


class TestAsmCli:
    def test_listing(self, hello_file, capsys):
        assert asm_cli.main([hello_file]) == 0
        out = capsys.readouterr().out
        assert "entry: 0x10000" in out
        assert ".text" in out and ".data" in out
        assert "msg" in out
        assert "ecall" in out

    def test_symbols_only(self, hello_file, capsys):
        asm_cli.main([hello_file, "--symbols"])
        out = capsys.readouterr().out
        assert "_start" in out
        assert "ecall" not in out

    def test_output_file(self, hello_file, tmp_path, capsys):
        out_path = tmp_path / "hello.lst"
        asm_cli.main([hello_file, "-o", str(out_path)])
        assert "disassembly" in out_path.read_text()
        assert capsys.readouterr().out == ""


class TestExperimentsCli:
    def test_registry_covers_every_artifact(self):
        assert set(exp_cli.EXPERIMENTS) == {
            "fig5", "fig5_crash", "fig5_heartbeat", "fig5_sharded", "fig6",
            "fig6_coherence", "table1", "fig7", "fig8", "ablations",
        }

    def test_small_fig5_run(self, capsys, monkeypatch, tmp_path):
        # shrink fig5 so the CLI test is quick
        from repro.analysis import experiments as harness

        monkeypatch.setitem(
            exp_cli.EXPERIMENTS, "fig5",
            lambda: harness.run_fig5(n_threads=4, terms=50, reps=1,
                                     slave_counts=(1, 2)),
        )
        assert exp_cli.main(["fig5", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert (tmp_path / "fig5.txt").exists()
