"""Cluster-level differential testing.

Property: for any guest program, a DQEMU cluster of any size produces
exactly the output of the single-node QEMU baseline — the DSM, delegation
and optimization layers must be semantically invisible.  Hypothesis
generates random fan-out programs (random per-thread arithmetic, shared
atomic accumulation, optional locks) and runs them on both.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Cluster, DQEMUConfig
from repro.baselines import run_qemu
from repro.mem.protocols import PROTOCOL_NAMES
from repro.workloads.common import emit_fanout_main, workload_builder

LONG = dict(max_virtual_ms=600_000)

M64 = 2**64 - 1


@st.composite
def fanout_programs(draw):
    """A random fan-out program plus its expected stdout."""
    n_threads = draw(st.integers(2, 6))
    iters = draw(st.integers(1, 40))
    mul = draw(st.integers(1, 1000))
    add = draw(st.integers(0, 1000))
    use_lock = draw(st.booleans())

    b = workload_builder()

    def post_join(bb):
        bb.la("a0", "acc")
        bb.ld("a0", 0, "a0")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, post_join=post_join)
    b.label("worker")
    b.addi("sp", "sp", -24)
    b.sd("ra", 16, "sp")
    b.sd("s0", 8, "sp")
    b.sd("s1", 0, "sp")
    b.mv("s1", "a0")  # thread index
    b.li("s0", iters)
    b.label(".w_loop")
    # v = (index * mul + add + loop) — deterministic per-thread contribution
    b.li("t0", mul)
    b.mul("t0", "s1", "t0")
    b.addi("t0", "t0", add)
    b.add("t0", "t0", "s0")
    if use_lock:
        b.la("a0", "lock")
        b.call("rt_mutex_lock")
        b.li("t0", mul)  # recompute: t-regs clobbered by the call
        b.mul("t0", "s1", "t0")
        b.addi("t0", "t0", add)
        b.add("t0", "t0", "s0")
        b.la("t1", "acc")
        b.ld("t2", 0, "t1")
        b.add("t2", "t2", "t0")
        b.sd("t2", 0, "t1")
        b.la("a0", "lock")
        b.call("rt_mutex_unlock")
    else:
        b.la("t1", "acc")
        b.amoadd("t2", "t0", "t1")
    b.addi("s0", "s0", -1)
    b.bnez("s0", ".w_loop")
    b.li("a0", 0)
    b.ld("ra", 16, "sp")
    b.ld("s0", 8, "sp")
    b.ld("s1", 0, "sp")
    b.addi("sp", "sp", 24)
    b.ret()
    b.data()
    b.align(8)
    b.label("acc").quad(0)
    b.label("lock").quad(0)

    expected = 0
    for i in range(n_threads):
        for k in range(iters, 0, -1):
            expected = (expected + i * mul + add + k) & M64
    return b.assemble(), f"{expected}\n", n_threads


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(fanout_programs(), st.integers(1, 4))
def test_dqemu_matches_qemu_baseline(case, n_slaves):
    prog, expected, _ = case
    qemu = run_qemu(prog, **LONG)
    dqemu = Cluster(n_slaves).run(prog, **LONG)
    assert qemu.stdout == expected
    assert dqemu.stdout == expected
    assert dqemu.exit_code == qemu.exit_code == 0


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(fanout_programs())
def test_optimizations_are_semantically_invisible(case):
    prog, expected, _ = case
    cfg = DQEMUConfig(
        forwarding_enabled=True,
        splitting_enabled=True,
        splitting_trigger=4,
        scheduler="hint",
        quantum_cycles=5_000,
    )
    r = Cluster(3, cfg).run(prog, **LONG)
    assert r.stdout == expected


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(fanout_programs())
def test_coherence_protocols_are_semantically_invisible(case):
    # Exclusive grants, silent upgrades, payload-free upgrade acks and home
    # migration change WHEN pages move, never WHAT the guest computes: every
    # protocol must print the analytically expected result.
    prog, expected, _ = case
    for protocol in PROTOCOL_NAMES:
        cfg = DQEMUConfig(
            coherence_protocol=protocol,
            migration_trigger=2,
            adaptive_window=4,
        )
        r = Cluster(3, cfg).run(prog, **LONG)
        assert r.stdout == expected, protocol
        assert r.exit_code == 0, protocol
