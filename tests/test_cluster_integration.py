"""End-to-end cluster integration tests.

These run real multi-threaded guest programs through the full stack:
assembler → DBT → per-node cores → DSM coherence → syscall delegation →
futex/clone — on clusters of varying size, asserting exact results.
"""

import pytest

from repro import Cluster, DQEMUConfig, assemble
from repro.errors import GuestFault, SimulationError
from repro.workloads.common import emit_fanout_main, workload_builder

HELLO = """
_start:
    la a1, msg
    li a0, 1
    li a2, 6
    li a7, 64
    ecall
    li a0, 7
    li a7, 94
    ecall
.data
msg: .asciz "hello\\n"
"""


def counter_program(n_threads, iters, lock_kind="mutex"):
    """N workers increment a shared counter `iters` times under a lock."""
    b = workload_builder()

    def post_join(bb):
        bb.la("a0", "counter")
        bb.ld("a0", 0, "a0")
        bb.call("rt_print_u64_ln")
        bb.li("a0", 0)

    emit_fanout_main(b, n_threads, post_join=post_join)
    b.label("worker")
    b.addi("sp", "sp", -16)
    b.sd("ra", 8, "sp")
    b.sd("s0", 0, "sp")
    b.li("s0", 0)
    b.label(".w_loop")
    if lock_kind == "atomic":
        b.la("t0", "counter")
        b.li("t1", 1)
        b.amoadd("t2", "t1", "t0")
    else:
        b.la("a0", "lock")
        b.call("rt_mutex_lock" if lock_kind == "mutex" else "rt_spin_lock")
        b.la("t0", "counter")
        b.ld("t1", 0, "t0")
        b.addi("t1", "t1", 1)
        b.sd("t1", 0, "t0")
        b.la("a0", "lock")
        b.call("rt_mutex_unlock" if lock_kind == "mutex" else "rt_spin_unlock")
    b.addi("s0", "s0", 1)
    b.li("t2", iters)
    b.blt("s0", "t2", ".w_loop")
    b.li("a0", 0)
    b.ld("ra", 8, "sp")
    b.ld("s0", 0, "sp")
    b.addi("sp", "sp", 16)
    b.ret()
    b.data()
    b.align(8)
    b.label("counter").quad(0)
    b.label("lock").quad(0)
    return b.assemble()


class TestBasics:
    def test_hello_world_exit_code_and_stdout(self):
        r = Cluster(1).run(assemble(HELLO), max_virtual_ms=100)
        assert r.stdout == "hello\n"
        assert r.exit_code == 7

    def test_qemu_baseline_matches_output(self):
        r = Cluster(0, DQEMUConfig(pure_qemu=True)).run(assemble(HELLO))
        assert r.stdout == "hello\n"
        assert r.exit_code == 7

    def test_cluster_is_reusable(self):
        # A Cluster is a long-lived fleet: sequential runs are admitted as
        # successive tenants on the same nodes and stay fully isolated.
        c = Cluster(1)
        first = c.run(assemble(HELLO), max_virtual_ms=100)
        second = c.run(assemble(HELLO), max_virtual_ms=100)
        assert (first.exit_code, first.stdout) == (7, "hello\n")
        assert (second.exit_code, second.stdout) == (7, "hello\n")
        assert first.tenant == 0 and second.tenant == 1
        # Each result's virtual_ns is job-relative, so equal workloads on a
        # warm fleet report comparable durations.
        assert second.virtual_ns > 0

    def test_qemu_baseline_rejects_slaves(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            Cluster(2, DQEMUConfig(pure_qemu=True))

    def test_file_io_through_delegation(self):
        src = """
        _start:
            # fd = openat(0, path, O_RDONLY)
            li a0, 0
            la a1, path
            li a2, 0
            li a7, 56
            ecall
            mv s0, a0
            # read(fd, buf, 5)
            mv a0, s0
            la a1, buf
            li a2, 5
            li a7, 63
            ecall
            # write(1, buf, 5)
            li a0, 1
            la a1, buf
            li a2, 5
            li a7, 64
            ecall
            li a0, 0
            li a7, 94
            ecall
        .data
        path: .asciz "input.txt"
        .align 8
        buf: .space 16
        """
        r = Cluster(1).run(
            assemble(src), files={"input.txt": b"12345"}, max_virtual_ms=100
        )
        assert r.stdout == "12345"

    def test_streaming_file_read_wordcount(self):
        """Chunked delegated read()s over a multi-page file: the guest
        counts spaces and bytes and writes both to stdout."""
        src = """
        main:
            addi sp, sp, -16
            sd ra, 8(sp)
            li a0, 0
            la a1, path
            li a2, 0
            li a7, 56          # openat
            ecall
            mv s0, a0          # fd
            li s1, 0           # total bytes
            li s2, 0           # spaces
        read_loop:
            mv a0, s0
            la a1, buf
            li a2, 256
            li a7, 63          # read
            ecall
            beqz a0, report
            mv s3, a0
            add s1, s1, a0
            la t0, buf
            li t1, 0
        scan:
            add t2, t0, t1
            lbu t3, 0(t2)
            li t4, 32          # ' '
            bne t3, t4, next
            addi s2, s2, 1
        next:
            addi t1, t1, 1
            blt t1, s3, scan
            j read_loop
        report:
            mv a0, s1
            call rt_print_u64_ln
            mv a0, s2
            call rt_print_u64_ln
            li a0, 0
            ld ra, 8(sp)
            addi sp, sp, 16
            ret
        .data
        path: .asciz "corpus.txt"
        .align 8
        buf: .space 256
        .text
        """
        from repro.guestlib import emit_runtime
        from repro.isa import AsmBuilder

        # merge the hand-written program with the runtime library it calls
        b = AsmBuilder()
        for line in src.splitlines():
            b.raw(line)
        emit_runtime(b)
        program = b.assemble()
        corpus = (b"word " * 1000) + b"end"
        r = Cluster(1).run(program, files={"corpus.txt": corpus},
                           max_virtual_ms=600_000)
        assert r.stdout == f"{len(corpus)}\n1000\n"

    def test_stdin_read(self):
        src = """
        _start:
            li a0, 0
            la a1, buf
            li a2, 4
            li a7, 63
            ecall
            li a0, 1
            la a1, buf
            li a2, 4
            li a7, 64
            ecall
            li a0, 0
            li a7, 94
            ecall
        .data
        buf: .space 8
        """
        r = Cluster(1).run(assemble(src), stdin=b"ping", max_virtual_ms=100)
        assert r.stdout == "ping"


class TestThreading:
    @pytest.mark.parametrize("n_slaves", [0, 1, 3])
    def test_mutex_counter_exact(self, n_slaves):
        prog = counter_program(4, 400, "mutex")
        r = Cluster(n_slaves).run(prog, max_virtual_ms=60_000)
        assert r.stdout == "1600\n"
        assert r.exit_code == 0

    @pytest.mark.parametrize("n_slaves", [0, 2])
    def test_spinlock_counter_exact(self, n_slaves):
        prog = counter_program(4, 150, "spin")
        r = Cluster(n_slaves).run(prog, max_virtual_ms=60_000)
        assert r.stdout == "600\n"

    @pytest.mark.parametrize("n_slaves", [0, 2])
    def test_amoadd_counter_exact(self, n_slaves):
        prog = counter_program(6, 500, "atomic")
        r = Cluster(n_slaves).run(prog, max_virtual_ms=60_000)
        assert r.stdout == "3000\n"

    def test_qemu_baseline_counter(self):
        prog = counter_program(4, 400, "mutex")
        r = Cluster(0, DQEMUConfig(pure_qemu=True)).run(prog, max_virtual_ms=60_000)
        assert r.stdout == "1600\n"

    def test_threads_actually_distributed(self):
        prog = counter_program(6, 50, "atomic")
        r = Cluster(3).run(prog, max_virtual_ms=60_000)
        assert r.placements == {1: 2, 2: 2, 3: 2}
        assert r.stats.protocol.remote_thread_spawns == 6

    def test_barrier_phases(self):
        """Each worker adds its index, everyone barriers, then adds again:
        after both phases the total is exactly 2 * sum(range(n))."""
        n = 4
        b = workload_builder()

        def pre(bb):
            bb.la("a0", "bar")
            bb.li("a1", n)
            bb.call("rt_barrier_init")

        def post(bb):
            bb.la("a0", "total")
            bb.ld("a0", 0, "a0")
            bb.call("rt_print_u64_ln")
            bb.li("a0", 0)

        emit_fanout_main(b, n, pre_create=pre, post_join=post)
        b.label("worker")
        b.addi("sp", "sp", -16)
        b.sd("ra", 8, "sp")
        b.sd("s0", 0, "sp")
        b.mv("s0", "a0")
        for _phase in range(2):
            b.la("t0", "total")
            b.amoadd("t1", "s0", "t0")
            b.la("a0", "bar")
            b.call("rt_barrier_wait")
        b.li("a0", 0)
        b.ld("ra", 8, "sp")
        b.ld("s0", 0, "sp")
        b.addi("sp", "sp", 16)
        b.ret()
        b.data()
        b.align(8)
        b.label("total").quad(0)
        b.label("bar").quad(0, 0, 0)
        prog = b.assemble()
        r = Cluster(2).run(prog, max_virtual_ms=60_000)
        assert r.stdout == f"{2 * sum(range(n))}\n"

    def test_malloc_per_thread_buffers(self):
        """Each worker mallocs a buffer, fills it, and sums it back."""
        n = 3
        b = workload_builder()

        def post(bb):
            bb.la("a0", "total")
            bb.ld("a0", 0, "a0")
            bb.call("rt_print_u64_ln")
            bb.li("a0", 0)

        emit_fanout_main(b, n, post_join=post)
        b.label("worker")
        b.addi("sp", "sp", -24)
        b.sd("ra", 16, "sp")
        b.sd("s0", 8, "sp")
        b.sd("s1", 0, "sp")
        b.li("a0", 256)
        b.call("rt_malloc")
        b.mv("s0", "a0")
        # fill 32 qwords with 1..32 and sum
        b.li("s1", 0)
        b.li("t0", 0)
        b.label(".mw_fill")
        b.slli("t1", "t0", 3)
        b.add("t1", "t1", "s0")
        b.addi("t2", "t0", 1)
        b.sd("t2", 0, "t1")
        b.addi("t0", "t0", 1)
        b.li("t3", 32)
        b.blt("t0", "t3", ".mw_fill")
        b.li("t0", 0)
        b.label(".mw_sum")
        b.slli("t1", "t0", 3)
        b.add("t1", "t1", "s0")
        b.ld("t2", 0, "t1")
        b.add("s1", "s1", "t2")
        b.addi("t0", "t0", 1)
        b.li("t3", 32)
        b.blt("t0", "t3", ".mw_sum")
        b.la("t0", "total")
        b.amoadd("t1", "s1", "t0")
        b.li("a0", 0)
        b.ld("ra", 16, "sp")
        b.ld("s0", 8, "sp")
        b.ld("s1", 0, "sp")
        b.addi("sp", "sp", 24)
        b.ret()
        b.data()
        b.align(8)
        b.label("total").quad(0)
        prog = b.assemble()
        r = Cluster(2).run(prog, max_virtual_ms=60_000)
        assert r.stdout == f"{n * sum(range(1, 33))}\n"


class TestScheduling:
    def test_hint_scheduler_colocates_groups(self):
        prog_b = workload_builder()
        emit_fanout_main(prog_b, 8, hint=("div", 4))  # 2 groups of 4
        prog_b.label("worker")
        prog_b.li("a0", 0)
        prog_b.ret()
        prog = prog_b.assemble()
        cfg = DQEMUConfig(scheduler="hint")
        r = Cluster(2, cfg).run(prog, max_virtual_ms=60_000)
        # group 0 -> one node x4, group 1 -> the other x4
        assert sorted(r.placements.values()) == [4, 4]

    def test_round_robin_spreads(self):
        prog_b = workload_builder()
        emit_fanout_main(prog_b, 8, hint=("div", 4))
        prog_b.label("worker")
        prog_b.li("a0", 0)
        prog_b.ret()
        prog = prog_b.assemble()
        r = Cluster(2, DQEMUConfig(scheduler="round_robin")).run(
            prog, max_virtual_ms=60_000
        )
        assert sorted(r.placements.values()) == [4, 4]  # still balanced


class TestFailureModes:
    def test_guest_deadlock_detected(self):
        src = """
        _start:
            la a0, cell
            li a1, 0
            li a2, 0
            li a7, 98      # futex_wait on value 0 (matches) — nobody wakes
            ecall
            li a7, 94
            ecall
        .data
        cell: .quad 0
        """
        with pytest.raises(SimulationError, match="deadlock"):
            Cluster(1).run(assemble(src), max_virtual_ms=100)

    def test_guest_ebreak_surfaces_as_fault(self):
        with pytest.raises(GuestFault, match="ebreak"):
            Cluster(1).run(assemble("_start:\n ebreak\n"), max_virtual_ms=100)

    def test_virtual_time_budget_enforced(self):
        src = "_start:\n j _start\n"
        with pytest.raises(SimulationError, match="budget"):
            Cluster(1).run(assemble(src), max_virtual_ms=1.0)


class TestDeterminism:
    def test_identical_runs_identical_virtual_time(self):
        prog = counter_program(4, 100, "mutex")
        r1 = Cluster(2).run(prog, max_virtual_ms=60_000)
        r2 = Cluster(2).run(prog, max_virtual_ms=60_000)
        assert r1.virtual_ns == r2.virtual_ns
        assert r1.stdout == r2.stdout
        assert r1.stats.protocol.page_requests == r2.stats.protocol.page_requests


class TestProtocolCounters:
    def test_counters_populated(self):
        prog = counter_program(4, 100, "mutex")
        r = Cluster(2).run(prog, max_virtual_ms=60_000)
        p = r.stats.protocol
        assert p.page_requests > 0
        assert p.write_requests > 0
        assert p.delegated_syscalls > 0
        assert p.invalidations > 0
        assert r.fabric.messages_sent > 0
        assert r.stats.insns_executed > 0

    def test_thread_breakdowns_cover_wall_time(self):
        prog = counter_program(2, 100, "mutex")
        r = Cluster(1).run(prog, max_virtual_ms=60_000)
        for ts in r.stats.threads.values():
            assert ts.execute_ns >= 0
            assert ts.busy_ns <= r.virtual_ns + 1
