"""Coherence-protocol layer: policy units, MESI states, end-to-end counters.

The policy objects are plain bookkeeping (no simulator), so the classifier,
hysteresis and migration triggers are tested directly; the end-to-end class
runs small clusters per protocol and checks the counters line up with what
the protocol is supposed to do on the wire.
"""

import pytest

from repro import Cluster, DQEMUConfig
from repro.analysis.reporting import render_service_breakdown
from repro.cli.run import build_parser
from repro.errors import ConfigError
from repro.mem import MSIState, PageStore
from repro.mem.directory import Directory
from repro.mem.protocols import (
    PROTOCOL_NAMES,
    AdaptivePolicy,
    CoherencePolicy,
    MESIPolicy,
    MigrationPolicy,
    make_policy,
)
from repro.workloads import memaccess, pi_taylor


class TestMSIState:
    def test_exclusive_is_readable_not_writable(self):
        assert MSIState.EXCLUSIVE.readable()
        assert not MSIState.EXCLUSIVE.writable()

    def test_modified_is_both(self):
        assert MSIState.MODIFIED.readable()
        assert MSIState.MODIFIED.writable()

    def test_silently_upgrade_flips_only_exclusive(self):
        store = PageStore()
        store.install(7, b"\x00" * 4096, MSIState.EXCLUSIVE)
        assert store.silently_upgrade(7)
        assert store.state(7) is MSIState.MODIFIED
        # Already Modified (or Shared, or absent): no flip.
        assert not store.silently_upgrade(7)
        store.install(8, b"\x00" * 4096, MSIState.SHARED)
        assert not store.silently_upgrade(8)
        assert store.state(8) is MSIState.SHARED
        assert not store.silently_upgrade(9)


class TestDirectoryExclusive:
    def test_exclusive_commit_records_owner(self):
        d = Directory()
        d.commit(3, 100, write=False, exclusive=True)
        assert d.owner(100) == 3
        assert d.sharers(100) == frozenset()

    def test_peer_read_after_exclusive_fetches_from_owner(self):
        d = Directory()
        d.commit(3, 100, write=False, exclusive=True)
        plan = d.plan(4, 100, write=False)
        # The E holder may have silently upgraded: treat it as an owner.
        assert plan.fetch_from == 3
        assert plan.downgrade == 3

    def test_evict_exclusive_owner_counts_page_lost(self):
        d = Directory()
        d.commit(3, 100, write=False, exclusive=True)
        rehomed, lost = d.evict_node(3)
        assert lost == [100]
        assert d.peek(100).is_idle()


class TestPolicies:
    def test_make_policy_covers_all_names(self):
        for name in PROTOCOL_NAMES:
            policy = make_policy(DQEMUConfig(coherence_protocol=name))
            assert policy.name == name

    def test_msi_policy_is_all_noops(self):
        p = CoherencePolicy()
        assert p.observe(1, 100, write=True) == (None, False)
        assert not p.grant_exclusive(1, 100)
        assert not p.upgrade_without_payload(1, 100)
        assert p.home_of(100) is None
        assert p.evict_node(1) == []

    def test_mesi_policy_grants(self):
        p = MESIPolicy()
        assert p.grant_exclusive(1, 100)
        assert p.upgrade_without_payload(1, 100)
        assert p.home_of(100) is None

    def test_migration_fires_on_write_streak(self):
        p = MigrationPolicy(trigger=3)
        assert p.observe(1, 100, write=True) == (None, False)
        assert p.observe(1, 100, write=True) == (None, False)
        assert p.observe(1, 100, write=True) == (1, False)
        assert p.home_of(100) == 1

    def test_migration_streak_reset_by_other_writer(self):
        p = MigrationPolicy(trigger=3)
        p.observe(1, 100, write=True)
        p.observe(1, 100, write=True)
        p.observe(2, 100, write=True)  # steals the streak
        assert p.observe(1, 100, write=True) == (None, False)
        assert p.home_of(100) is None

    def test_migration_reads_do_not_break_streak(self):
        # A producer whose writes are interleaved with consumer reads is
        # still a dominant writer.
        p = MigrationPolicy(trigger=3)
        p.observe(1, 100, write=True)
        p.observe(2, 100, write=False)
        p.observe(1, 100, write=True)
        p.observe(3, 100, write=False)
        assert p.observe(1, 100, write=True) == (1, False)

    def test_migration_evict_reverts_homes(self):
        p = MigrationPolicy(trigger=1)
        p.observe(1, 100, write=True)
        p.observe(1, 200, write=True)
        p.observe(2, 300, write=True)
        assert p.evict_node(1) == [100, 200]
        assert p.home_of(100) is None
        assert p.home_of(300) == 2


class TestAdaptiveClassifier:
    def window(self, p, page, accesses):
        """Feed (node, write) pairs; return True if any reclassification."""
        return any(p.observe(n, page, write=w)[1] for n, w in accesses)

    def test_pages_start_as_mesi(self):
        p = AdaptivePolicy(trigger=4, window=4)
        assert p.grant_exclusive(1, 100)

    def test_read_only_page_reclassifies_to_msi_with_hysteresis(self):
        p = AdaptivePolicy(trigger=4, window=4)
        reads = [(n, False) for n in (1, 2, 3, 1)]
        # First window: verdict msi goes pending, mode stays mesi.
        assert not self.window(p, 100, reads)
        assert p.grant_exclusive(1, 100)
        # Second consecutive window with the same verdict: switch.
        assert self.window(p, 100, reads)
        assert not p.grant_exclusive(1, 100)

    def test_flapping_verdict_never_switches(self):
        p = AdaptivePolicy(trigger=4, window=4)
        reads = [(n, False) for n in (1, 2, 3, 1)]
        writes = [(n, True) for n in (1, 2, 3, 1)]
        assert not self.window(p, 100, reads)  # msi pending
        # Ping-pong writes produce the same msi verdict: a second
        # consecutive window with one verdict IS a legitimate switch.
        assert self.window(p, 100, writes)
        assert not p.grant_exclusive(1, 100)
        # But alternating single-writer/multi-writer windows never settle:
        p2 = AdaptivePolicy(trigger=4, window=4)
        single = [(1, True)] * 4
        multi = [(1, True), (2, True), (1, True), (2, True)]
        assert not self.window(p2, 100, multi)   # msi pending
        assert not self.window(p2, 100, single)  # migrate pending (replaces)
        assert not self.window(p2, 100, multi)   # msi pending again
        assert p2.grant_exclusive(1, 100)        # still in the initial mesi

    def test_single_writer_write_dominated_migrates(self):
        p = AdaptivePolicy(trigger=2, window=4)
        burst = [(1, True), (1, True), (1, True), (1, True)]
        assert not self.window(p, 100, burst)  # migrate pending
        assert self.window(p, 100, burst)      # mode -> migrate
        # Now in migrate mode, the write streak triggers the home move.
        new_home, _ = p.observe(1, 100, write=True)
        assert new_home == 1 or p.home_of(100) == 1

    def test_leaving_migrate_reverts_home(self):
        p = AdaptivePolicy(trigger=2, window=4)
        burst = [(1, True)] * 4
        self.window(p, 100, burst)
        self.window(p, 100, burst)
        p.observe(1, 100, write=True)
        assert p.home_of(100) == 1
        pingpong = [(1, True), (2, True), (1, True), (2, True)]
        self.window(p, 100, pingpong)  # msi pending (3 observes + the one above)
        assert self.window(p, 100, pingpong)
        assert p.home_of(100) is None

    def test_evict_scrubs_dead_node(self):
        p = AdaptivePolicy(trigger=2, window=4)
        burst = [(1, True)] * 4
        self.window(p, 100, burst)
        self.window(p, 100, burst)
        p.observe(1, 100, write=True)
        assert p.evict_node(1) == [100]
        assert p.home_of(100) is None


class TestConfigAndCLI:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError, match="coherence protocol"):
            DQEMUConfig(coherence_protocol="mosi")

    def test_bad_trigger_and_window_rejected(self):
        with pytest.raises(ConfigError):
            DQEMUConfig(migration_trigger=0)
        with pytest.raises(ConfigError):
            DQEMUConfig(adaptive_window=1)
        with pytest.raises(ConfigError):
            DQEMUConfig(migration_penalty_ns=-1)

    def test_cli_flag_choices(self):
        parser = build_parser()
        args = parser.parse_args(["prog.s", "--coherence-protocol", "mesi"])
        assert args.coherence_protocol == "mesi"
        with pytest.raises(SystemExit):
            parser.parse_args(["prog.s", "--coherence-protocol", "mosi"])

    def test_time_scaled_keeps_protocol(self):
        cfg = DQEMUConfig(coherence_protocol="migrate").time_scaled(10)
        assert cfg.coherence_protocol == "migrate"
        assert cfg.migration_penalty_ns == 16_000


class TestEndToEnd:
    def run_rmw(self, protocol, **cfg_kw):
        prog = memaccess.build_private_rmw(
            n_threads=4, n_nodes=2, pages_per_thread=4, passes=2
        )
        cfg = DQEMUConfig(coherence_protocol=protocol, adaptive_window=8, **cfg_kw)
        return Cluster(2, cfg).run(prog, max_virtual_ms=60_000_000)

    def test_msi_never_uses_new_machinery(self):
        res = self.run_rmw("msi")
        p = res.stats.protocol
        assert res.exit_code == 0
        assert p.exclusive_grants == 0
        assert p.silent_upgrades == 0
        assert p.upgrade_acks == 0
        assert p.home_migrations == 0
        assert p.home_local_hits == 0
        assert p.home_remote_misses == 0

    def test_mesi_silent_upgrades_on_private_pages(self):
        msi = self.run_rmw("msi")
        mesi = self.run_rmw("mesi")
        assert mesi.exit_code == 0
        p = mesi.stats.protocol
        private_pages = 4 * 4
        assert p.exclusive_grants >= private_pages
        assert p.silent_upgrades >= private_pages
        # Each silent upgrade is an S->M round trip MSI had to pay.
        assert (
            p.write_upgrades
            <= msi.stats.protocol.write_upgrades - private_pages
        )
        assert mesi.virtual_ns < msi.virtual_ns

    def test_identical_guest_output_across_protocols(self):
        ref = None
        for protocol in PROTOCOL_NAMES:
            res = self.run_rmw(protocol)
            assert res.exit_code == 0
            checksum = res.stdout.strip().splitlines()[-1]
            if ref is None:
                ref = checksum
            assert checksum == ref

    def test_migrate_moves_home_and_serves_locally(self):
        prog = memaccess.build_private_rmw(
            n_threads=4, n_nodes=2, pages_per_thread=4, passes=2,
            bcast_beat=8,
        )
        # Readers racing the broadcast writer cap its write-acquisition
        # streak at 3 in this small run; trigger at 2 so the migration
        # fires with an acquisition still to come (the local hit).
        cfg = DQEMUConfig(coherence_protocol="migrate", migration_trigger=2)
        res = Cluster(2, cfg).run(prog, max_virtual_ms=60_000_000)
        p = res.stats.protocol
        assert res.exit_code == 0
        assert p.home_migrations > 0
        assert p.home_local_hits > 0

    def test_service_breakdown_columns_conditional(self):
        msi = self.run_rmw("msi")
        mesi = self.run_rmw("mesi")
        assert "E grants" not in render_service_breakdown(msi.stats)
        assert "E grants" in render_service_breakdown(mesi.stats)

    def test_pi_taylor_all_protocols(self):
        prog = pi_taylor.build(n_threads=4, terms=100, reps=2)
        ref = None
        for protocol in PROTOCOL_NAMES:
            cfg = DQEMUConfig(coherence_protocol=protocol, adaptive_window=8)
            res = Cluster(2, cfg).run(prog, max_virtual_ms=60_000_000)
            assert res.exit_code == 0
            if ref is None:
                ref = res.stdout
            assert res.stdout == ref
