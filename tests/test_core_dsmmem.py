"""DSMMemory unit tests: protection checks, split translation, atomics."""

import pytest

from repro.core.dsmmem import DSMMemory, LocalMemory, MergeStall
from repro.core.llsc import LLSCTable
from repro.dbt.cpu import CPUState
from repro.mem.api import PageStall
from repro.mem.msi import MSIState
from repro.mem.pagestore import PageStore
from repro.mem.splitmap import SplitEntry, SplitMap

PAGE = 0x10
BASE = PAGE << 12


def make_mem():
    store, split, llsc = PageStore(), SplitMap(), LLSCTable()
    return DSMMemory(store, split, llsc), store, split, llsc


def cpu(tid=1):
    return CPUState(tid=tid)


class TestProtection:
    def test_read_of_absent_page_stalls(self):
        mem, *_ = make_mem()
        with pytest.raises(PageStall) as exc:
            mem.load(BASE + 8, 8, False)
        assert exc.value.page == PAGE
        assert exc.value.write is False
        assert exc.value.offset == 8
        assert exc.value.size == 8

    def test_write_to_shared_page_stalls_for_upgrade(self):
        mem, store, *_ = make_mem()
        store.install(PAGE, bytes(4096), MSIState.SHARED)
        assert mem.load(BASE, 8, False) == 0  # read OK
        with pytest.raises(PageStall) as exc:
            mem.store(BASE + 16, 1, 7)
        assert exc.value.write is True
        assert exc.value.size == 1

    def test_modified_page_fully_accessible(self):
        mem, store, *_ = make_mem()
        store.install(PAGE, bytes(4096), MSIState.MODIFIED)
        mem.store(BASE, 8, 0xABCD)
        assert mem.load(BASE, 8, False) == 0xABCD

    def test_fetch_code_needs_read(self):
        mem, store, *_ = make_mem()
        with pytest.raises(PageStall):
            mem.fetch_code(BASE, 4)
        store.install(PAGE, b"\x01" * 4096, MSIState.SHARED)
        assert mem.fetch_code(BASE, 4) == b"\x01\x01\x01\x01"


class TestSplitTranslation:
    def setup_method(self):
        self.mem, self.store, self.split, self.llsc = make_mem()
        self.shadows = (0x60000, 0x60001)
        self.split.install(SplitEntry(PAGE, self.shadows, 2048))

    def test_access_routed_to_shadow_page(self):
        self.store.install(self.shadows[1], bytes(4096), MSIState.MODIFIED)
        addr = BASE + 2048 + 8  # region 1
        self.mem.store(addr, 8, 42)
        assert self.store.read((self.shadows[1] << 12) + 2048 + 8, 8) == 42

    def test_stall_names_shadow_page(self):
        with pytest.raises(PageStall) as exc:
            self.mem.load(BASE + 100, 8, False)  # region 0, shadow absent
        assert exc.value.page == self.shadows[0]

    def test_region_crossing_raises_merge_stall(self):
        with pytest.raises(MergeStall) as exc:
            self.mem.load(BASE + 2044, 8, False)
        assert exc.value.orig_page == PAGE

    def test_atomic_on_split_page(self):
        self.store.install(self.shadows[0], bytes(4096), MSIState.MODIFIED)
        c = cpu()
        assert self.mem.atomic_add(c, BASE + 8, 5) == 0
        assert self.store.read((self.shadows[0] << 12) + 8, 8) == 5


class TestAtomics:
    def test_lr_needs_read_sc_needs_write(self):
        mem, store, _, llsc = make_mem()
        store.install(PAGE, bytes(4096), MSIState.SHARED)
        c = cpu()
        assert mem.load_reserved(c, BASE) == 0  # S suffices for LL
        with pytest.raises(PageStall) as exc:
            mem.store_conditional(c, BASE, 1)  # SC stores -> needs M (Fig. 3)
        assert exc.value.write

    def test_sc_succeeds_with_modified_and_reservation(self):
        mem, store, _, llsc = make_mem()
        store.install(PAGE, bytes(4096), MSIState.MODIFIED)
        c = cpu()
        mem.load_reserved(c, BASE)
        assert mem.store_conditional(c, BASE, 99) is True
        assert mem.load(BASE, 8, False) == 99

    def test_reservation_killed_by_page_invalidation(self):
        """The paper's false-positive SC scheme (§4.4)."""
        mem, store, _, llsc = make_mem()
        store.install(PAGE, bytes(4096), MSIState.MODIFIED)
        c = cpu()
        mem.load_reserved(c, BASE)
        llsc.kill_page(PAGE)  # coherence invalidation
        store.install(PAGE, bytes(4096), MSIState.MODIFIED)  # re-acquired
        assert mem.store_conditional(c, BASE, 1) is False
        assert llsc.spurious_kills == 1

    def test_cas_requires_modified(self):
        mem, store, *_ = make_mem()
        store.install(PAGE, bytes(4096), MSIState.SHARED)
        with pytest.raises(PageStall):
            mem.atomic_cas(cpu(), BASE, 0, 1)


class TestLocalMemory:
    def test_auto_allocates_modified(self):
        store, llsc = PageStore(), LLSCTable()
        mem = LocalMemory(store, llsc)
        mem.store(BASE, 8, 5)
        assert store.state(PAGE) is MSIState.MODIFIED
        assert mem.load(BASE, 8, False) == 5

    def test_llsc_works_without_dsm(self):
        store, llsc = PageStore(), LLSCTable()
        mem = LocalMemory(store, llsc)
        c1, c2 = cpu(1), cpu(2)
        mem.load_reserved(c1, BASE)
        mem.store(BASE, 8, 3)  # intervening store
        assert mem.store_conditional(c1, BASE, 9) is False
