"""Unit tests for core components: LL/SC table, scheduler, forwarding, splitting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.forwarding import ReadAheadEngine
from repro.core.llsc import LLSCTable
from repro.core.scheduler import ThreadPlacer
from repro.core.splitting import FalseSharingDetector
from repro.errors import ConfigError
from repro.mem.layout import PAGE_SIZE


class TestLLSCTable:
    def test_reserve_validate_consume(self):
        t = LLSCTable()
        t.reserve(0x1000, 1)
        assert t.validate(0x1000, 1)
        assert not t.validate(0x1000, 2)
        assert t.consume(0x1000, 1)
        assert not t.consume(0x1000, 1)  # gone

    def test_successful_sc_kills_other_reservations(self):
        t = LLSCTable()
        t.reserve(0x1000, 1)
        t.reserve(0x1000, 2)
        assert t.consume(0x1000, 1)
        assert not t.validate(0x1000, 2)

    def test_store_kills_overlapping(self):
        t = LLSCTable()
        t.reserve(0x1000, 1)
        t.kill_store(0x1004, 1)
        assert not t.validate(0x1000, 1)

    def test_page_invalidation_false_positive(self):
        """Paper §4.4: page invalidation conservatively kills reservations."""
        t = LLSCTable()
        t.reserve(0x1000, 1)
        t.reserve(0x1008, 2)
        t.reserve(0x2000, 3)  # different page
        killed = t.kill_page(0x1)
        assert killed == 2
        assert t.spurious_kills == 2
        assert t.validate(0x2000, 3)

    def test_empty_flag_for_store_fast_path(self):
        t = LLSCTable()
        assert t.empty
        t.reserve(0x1000, 1)
        assert not t.empty


class TestThreadPlacer:
    def test_round_robin_equal_spread(self):
        p = ThreadPlacer("round_robin", [1, 2, 3])
        nodes = [p.place() for _ in range(9)]
        assert nodes == [1, 2, 3] * 3
        assert p.distribution() == {1: 3, 2: 3, 3: 3}

    def test_round_robin_ignores_hints(self):
        p = ThreadPlacer("round_robin", [1, 2])
        assert [p.place(hint_group=5) for _ in range(2)] == [1, 2]

    def test_hint_groups_colocate(self):
        p = ThreadPlacer("hint", [1, 2, 3])
        a = [p.place(hint_group=0) for _ in range(4)]
        b = [p.place(hint_group=1) for _ in range(4)]
        assert len(set(a)) == 1
        assert len(set(b)) == 1
        assert a[0] != b[0]

    def test_hint_fallback_round_robin(self):
        p = ThreadPlacer("hint", [1, 2])
        assert [p.place() for _ in range(4)] == [1, 2, 1, 2]

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigError):
            ThreadPlacer("round_robin", [])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            ThreadPlacer("mystery", [1])


class TestReadAhead:
    def test_no_push_below_trigger(self):
        ra = ReadAheadEngine(trigger=4, initial_window=4, max_window=32)
        assert ra.record(1, 10) == []
        assert ra.record(1, 11) == []
        assert ra.record(1, 12) == []

    def test_trigger_starts_window(self):
        ra = ReadAheadEngine(trigger=4, initial_window=4, max_window=32)
        for p in (10, 11, 12):
            ra.record(1, p)
        assert ra.record(1, 13) == [14, 15, 16, 17]
        assert ra.streams_detected == 1

    def test_window_doubles_and_continues_past_pushed_range(self):
        ra = ReadAheadEngine(trigger=4, initial_window=4, max_window=32)
        for p in (10, 11, 12, 13):
            ra.record(1, p)
        # pushed through 17; next miss is 18
        pushes = ra.record(1, 18)
        assert pushes[0] == 19
        assert len(pushes) == 8  # window doubled

    def test_window_caps_at_max(self):
        ra = ReadAheadEngine(trigger=2, initial_window=4, max_window=8)
        ra.record(1, 0)
        page = 1
        for _ in range(6):
            pushes = ra.record(1, page)
            page = (pushes[-1] if pushes else page) + 1
        assert max(s.window for s in ra.streams_of(1)) == 8

    def test_jump_starts_second_stream(self):
        ra = ReadAheadEngine(trigger=3, initial_window=4, max_window=32)
        ra.record(1, 10)
        ra.record(1, 11)
        ra.record(1, 99)  # jump: new stream, old one kept
        assert ra.record(1, 100) == []
        assert len(ra.streams_of(1)) == 2
        # the original stream can still trigger
        assert ra.record(1, 12) != []

    def test_interleaved_streams_both_detected(self):
        """Two guest threads on one node streaming different regions."""
        ra = ReadAheadEngine(trigger=3, initial_window=4, max_window=32)
        out = []
        for k in range(4):
            out.append(ra.record(1, 100 + k))
            out.append(ra.record(1, 500 + k))
        assert any(p and p[0] > 100 and p[0] < 200 for p in out)
        assert any(p and p[0] > 500 for p in out)

    def test_streams_tracked_per_node(self):
        ra = ReadAheadEngine(trigger=2, initial_window=2, max_window=4)
        ra.record(1, 10)
        ra.record(2, 50)
        assert ra.record(1, 11) != []
        assert ra.record(2, 51) != []

    def test_repeat_request_neutral(self):
        ra = ReadAheadEngine(trigger=2, initial_window=2, max_window=4)
        ra.record(1, 10)
        assert ra.record(1, 10) == []
        assert ra.streams_of(1)[0].run_length == 1

    def test_stream_table_bounded(self):
        ra = ReadAheadEngine(trigger=2, initial_window=2, max_window=4,
                             max_streams_per_node=4)
        for k in range(20):
            ra.record(1, 1000 * k)
        assert len(ra.streams_of(1)) <= 4


class TestFalseSharingDetector:
    def _pingpong(self, det, page=7, rounds=12):
        decision = None
        for i in range(rounds):
            node = 1 + (i % 4)
            offset = (node - 1) * 1024 + (i % 16)
            decision = det.record(page, node, offset, 1) or decision
        return decision

    def test_fires_after_trigger_with_separable_regions(self):
        det = FalseSharingDetector(trigger=10, history=64, max_regions=32)
        decision = self._pingpong(det, rounds=16)
        assert decision is not None
        assert decision.regions == 4
        assert decision.region_bytes == 1024

    def test_single_node_never_fires(self):
        det = FalseSharingDetector(trigger=4, history=64, max_regions=32)
        for i in range(50):
            assert det.record(7, 1, i % PAGE_SIZE, 1) is None

    def test_same_offset_pingpong_is_true_sharing_not_counted(self):
        """All nodes hammering the same offset is true sharing: no conflicts."""
        det = FalseSharingDetector(trigger=4, history=64, max_regions=32)
        fired = [det.record(7, 1 + (i % 3), 128, 8) for i in range(40)]
        assert all(f is None for f in fired)

    def test_unseparable_pattern_rejected(self):
        """Two nodes writing the *same* offsets (true sharing) cannot be
        separated into single-node regions at any granularity."""
        det = FalseSharingDetector(trigger=4, history=64, max_regions=32)
        fired = []
        offsets = [0, 64]
        for i in range(30):
            node = 1 + (i % 2)
            fired.append(det.record(7, node, offsets[(i // 2 + i) % 2], 8))
        assert all(f is None for f in fired)
        assert det.rejected >= 1

    def test_interleaved_sections_split_at_fine_granularity(self):
        """Paper Table 1 layout: 128-byte sections interleaved over nodes."""
        det = FalseSharingDetector(trigger=10, history=64, max_regions=32)
        decision = None
        for i in range(80):
            section = i % 32
            node = 1 + (section % 4)  # adjacent sections on different nodes
            decision = det.record(5, node, section * 128 + (i % 100), 1) or decision
        assert decision is not None
        assert decision.regions == 32
        assert decision.region_bytes == 128

    def test_two_nodes_two_regions(self):
        det = FalseSharingDetector(trigger=6, history=64, max_regions=32)
        decision = None
        for i in range(20):
            node = 1 + (i % 2)
            decision = det.record(9, node, (node - 1) * 2048 + i, 1) or decision
        assert decision is not None
        assert decision.regions == 2

    def test_forget_clears_history(self):
        det = FalseSharingDetector(trigger=4, history=64, max_regions=32)
        det.record(7, 1, 0, 1)
        det.forget(7)
        assert det._pages.get(7) is None


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 4), st.integers(0, PAGE_SIZE - 8)),
        min_size=1,
        max_size=100,
    )
)
def test_detector_decisions_are_well_formed(accesses):
    det = FalseSharingDetector(trigger=5, history=32, max_regions=32)
    for node, off in accesses:
        decision = det.record(3, node, off, 8)
        if decision is not None:
            assert decision.regions >= 2
            assert decision.region_bytes * decision.regions == PAGE_SIZE
