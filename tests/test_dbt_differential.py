"""Differential testing: translated code vs the reference interpreter.

Random straight-line instruction sequences are executed by both engines from
identical initial state; final registers and memory must match exactly.
This is the guard that keeps the DBT backend semantically equal to the
interpreter oracle across the whole ISA.
"""

from hypothesis import given, settings, strategies as st

from repro.dbt import CPUState, ExecutionEngine, StopKind
from repro.isa import SPECS, Instruction, encode
from repro.isa.instructions import Fmt
from repro.mem import FlatMemory

TEXT = 0x1_0000
BUF = 0x10_0000  # data buffer page, preloaded in a fixed register
BUF_REG = 9  # s1 — never clobbered by generated code
M64 = 2**64 - 1

# Mnemonics safe in random straight-line blocks (no control flow / traps).
_COMPUTE = [
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra",
    "mul", "mulh", "mulhu", "div", "divu", "rem", "remu", "slt", "sltu",
    "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti", "sltiu",
    "movz", "movk", "movn",
    "fadd", "fsub", "fmul", "fdiv", "fmin", "fmax", "fsqrt",
    "fcvt.d.l", "fcvt.l.d", "feq", "flt", "fle",
]
_LOADS = ["lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"]
_STORES = ["sb", "sh", "sw", "sd"]
_ATOMICS = ["lr", "sc", "cas", "amoadd", "amoswap"]

# rd is drawn from registers that are not BUF_REG and not x0-only cases.
gp_regs = st.integers(1, 31).filter(lambda r: r != BUF_REG)
any_src = st.integers(0, 31)


@st.composite
def random_instr(draw):
    group = draw(st.sampled_from(["compute"] * 6 + ["load"] * 2 + ["store"] * 2 + ["atomic"]))
    if group == "compute":
        m = draw(st.sampled_from(_COMPUTE))
        spec = SPECS[m]
        if spec.fmt is Fmt.M:
            return Instruction(spec, rd=draw(gp_regs), imm=draw(st.integers(0, 0xFFFF)),
                               hw=draw(st.integers(0, 3)))
        if spec.fmt is Fmt.I:
            return Instruction(spec, rd=draw(gp_regs), rs1=draw(any_src),
                               imm=draw(st.integers(-(1 << 13), (1 << 13) - 1)))
        return Instruction(spec, rd=draw(gp_regs), rs1=draw(any_src), rs2=draw(any_src))
    if group == "load":
        m = draw(st.sampled_from(_LOADS))
        spec = SPECS[m]
        off = draw(st.integers(0, 500)) * 8  # aligned, within the buffer page
        return Instruction(spec, rd=draw(gp_regs), rs1=BUF_REG, imm=off)
    if group == "store":
        m = draw(st.sampled_from(_STORES))
        spec = SPECS[m]
        off = draw(st.integers(0, 500)) * 8
        return Instruction(spec, rs1=BUF_REG, rs2=draw(any_src), imm=off)
    m = draw(st.sampled_from(_ATOMICS))
    spec = SPECS[m]
    off = draw(st.integers(0, 500)) * 8
    # Atomics take the address from rs1 directly; stage it via BUF_REG + imm
    # is not possible, so use an addi into a temp first.
    addr_setup = Instruction(SPECS["addi"], rd=28, rs1=BUF_REG, imm=off)
    if m == "lr":
        return [addr_setup, Instruction(spec, rd=draw(gp_regs), rs1=28)]
    return [addr_setup,
            Instruction(spec, rd=draw(gp_regs.filter(lambda r: r != 28)),
                        rs1=28, rs2=draw(any_src))]


@st.composite
def programs(draw):
    instrs: list[Instruction] = []
    for item in draw(st.lists(random_instr(), min_size=1, max_size=30)):
        if isinstance(item, list):
            instrs.extend(item)
        else:
            instrs.append(item)
    return instrs


@st.composite
def initial_regs(draw):
    return [0] + [draw(st.integers(0, M64)) for _ in range(31)]


def _run(instrs, regs, mode):
    mem = FlatMemory()
    words = b"".join(encode(i).to_bytes(4, "little") for i in instrs)
    ecall = encode(Instruction(SPECS["ecall"])).to_bytes(4, "little")
    mem.write_bytes(TEXT, words + ecall)
    # deterministic, non-zero data buffer
    mem.write_bytes(BUF, bytes((i * 37 + 11) % 256 for i in range(4096)))
    cpu = CPUState(pc=TEXT, tid=1)
    cpu.regs = list(regs)
    cpu.regs[BUF_REG] = BUF
    engine = ExecutionEngine(mem, mode=mode)
    stop = engine.run_quantum(cpu, 100_000_000)
    assert stop.kind is StopKind.SYSCALL, stop
    return cpu, mem


@settings(max_examples=150, deadline=None)
@given(programs(), initial_regs())
def test_dbt_matches_interpreter(instrs, regs):
    cpu_i, mem_i = _run(instrs, regs, "interp")
    cpu_d, mem_d = _run(instrs, regs, "dbt")
    assert cpu_i.regs == cpu_d.regs
    assert cpu_i.pc == cpu_d.pc
    assert mem_i.read_bytes(BUF, 4096) == mem_d.read_bytes(BUF, 4096)


@settings(max_examples=50, deadline=None)
@given(programs(), initial_regs())
def test_x0_never_modified(instrs, regs):
    cpu, _ = _run(instrs, regs, "dbt")
    assert cpu.regs[0] == 0


@settings(max_examples=50, deadline=None)
@given(programs(), initial_regs())
def test_all_registers_stay_64_bit(instrs, regs):
    cpu, _ = _run(instrs, regs, "dbt")
    assert all(0 <= r <= M64 for r in cpu.regs)
