"""Differential testing: translated code vs the reference interpreter.

Random straight-line instruction sequences are executed by both engines from
identical initial state; final registers and memory must match exactly.
This is the guard that keeps the DBT backend semantically equal to the
interpreter oracle across the whole ISA.
"""

from hypothesis import given, settings, strategies as st

from repro.dbt import CPUState, ExecutionEngine, StopKind
from repro.isa import SPECS, Instruction, assemble, encode
from repro.isa.instructions import Fmt
from repro.mem import FlatMemory

TEXT = 0x1_0000
BUF = 0x10_0000  # data buffer page, preloaded in a fixed register
BUF_REG = 9  # s1 — never clobbered by generated code
M64 = 2**64 - 1

# Mnemonics safe in random straight-line blocks (no control flow / traps).
_COMPUTE = [
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra",
    "mul", "mulh", "mulhu", "div", "divu", "rem", "remu", "slt", "sltu",
    "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti", "sltiu",
    "movz", "movk", "movn",
    "fadd", "fsub", "fmul", "fdiv", "fmin", "fmax", "fsqrt",
    "fcvt.d.l", "fcvt.l.d", "feq", "flt", "fle",
]
_LOADS = ["lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"]
_STORES = ["sb", "sh", "sw", "sd"]
_ATOMICS = ["lr", "sc", "cas", "amoadd", "amoswap"]

# rd is drawn from registers that are not BUF_REG and not x0-only cases.
gp_regs = st.integers(1, 31).filter(lambda r: r != BUF_REG)
any_src = st.integers(0, 31)


@st.composite
def random_instr(draw):
    group = draw(st.sampled_from(["compute"] * 6 + ["load"] * 2 + ["store"] * 2 + ["atomic"]))
    if group == "compute":
        m = draw(st.sampled_from(_COMPUTE))
        spec = SPECS[m]
        if spec.fmt is Fmt.M:
            return Instruction(spec, rd=draw(gp_regs), imm=draw(st.integers(0, 0xFFFF)),
                               hw=draw(st.integers(0, 3)))
        if spec.fmt is Fmt.I:
            return Instruction(spec, rd=draw(gp_regs), rs1=draw(any_src),
                               imm=draw(st.integers(-(1 << 13), (1 << 13) - 1)))
        return Instruction(spec, rd=draw(gp_regs), rs1=draw(any_src), rs2=draw(any_src))
    if group == "load":
        m = draw(st.sampled_from(_LOADS))
        spec = SPECS[m]
        off = draw(st.integers(0, 500)) * 8  # aligned, within the buffer page
        return Instruction(spec, rd=draw(gp_regs), rs1=BUF_REG, imm=off)
    if group == "store":
        m = draw(st.sampled_from(_STORES))
        spec = SPECS[m]
        off = draw(st.integers(0, 500)) * 8
        return Instruction(spec, rs1=BUF_REG, rs2=draw(any_src), imm=off)
    m = draw(st.sampled_from(_ATOMICS))
    spec = SPECS[m]
    off = draw(st.integers(0, 500)) * 8
    # Atomics take the address from rs1 directly; stage it via BUF_REG + imm
    # is not possible, so use an addi into a temp first.
    addr_setup = Instruction(SPECS["addi"], rd=28, rs1=BUF_REG, imm=off)
    if m == "lr":
        return [addr_setup, Instruction(spec, rd=draw(gp_regs), rs1=28)]
    return [addr_setup,
            Instruction(spec, rd=draw(gp_regs.filter(lambda r: r != 28)),
                        rs1=28, rs2=draw(any_src))]


@st.composite
def programs(draw):
    instrs: list[Instruction] = []
    for item in draw(st.lists(random_instr(), min_size=1, max_size=30)):
        if isinstance(item, list):
            instrs.extend(item)
        else:
            instrs.append(item)
    return instrs


@st.composite
def initial_regs(draw):
    return [0] + [draw(st.integers(0, M64)) for _ in range(31)]


def _run(instrs, regs, mode, **engine_kwargs):
    mem = FlatMemory()
    words = b"".join(encode(i).to_bytes(4, "little") for i in instrs)
    ecall = encode(Instruction(SPECS["ecall"])).to_bytes(4, "little")
    mem.write_bytes(TEXT, words + ecall)
    # deterministic, non-zero data buffer
    mem.write_bytes(BUF, bytes((i * 37 + 11) % 256 for i in range(4096)))
    cpu = CPUState(pc=TEXT, tid=1)
    cpu.regs = list(regs)
    cpu.regs[BUF_REG] = BUF
    engine = ExecutionEngine(mem, mode=mode, **engine_kwargs)
    stop = engine.run_quantum(cpu, 100_000_000)
    assert stop.kind is StopKind.SYSCALL, stop
    return cpu, mem


@settings(max_examples=150, deadline=None)
@given(programs(), initial_regs())
def test_dbt_matches_interpreter(instrs, regs):
    cpu_i, mem_i = _run(instrs, regs, "interp")
    cpu_d, mem_d = _run(instrs, regs, "dbt")
    assert cpu_i.regs == cpu_d.regs
    assert cpu_i.pc == cpu_d.pc
    assert mem_i.read_bytes(BUF, 4096) == mem_d.read_bytes(BUF, 4096)


@settings(max_examples=50, deadline=None)
@given(programs(), initial_regs())
def test_x0_never_modified(instrs, regs):
    cpu, _ = _run(instrs, regs, "dbt")
    assert cpu.regs[0] == 0


@settings(max_examples=50, deadline=None)
@given(programs(), initial_regs())
def test_all_registers_stay_64_bit(instrs, regs):
    cpu, _ = _run(instrs, regs, "dbt")
    assert all(0 <= r <= M64 for r in cpu.regs)


@settings(max_examples=100, deadline=None)
@given(programs(), initial_regs())
def test_fused_dbt_matches_interpreter(instrs, regs):
    """Idiom fusion must never change architectural state, whatever
    random combination of fusable pairs the generator produces."""
    cpu_i, mem_i = _run(instrs, regs, "interp")
    cpu_f, mem_f = _run(instrs, regs, "dbt", fusion=True)
    assert cpu_i.regs == cpu_f.regs
    assert cpu_i.pc == cpu_f.pc
    assert mem_i.read_bytes(BUF, 4096) == mem_f.read_bytes(BUF, 4096)


# -- hot-path identity on looping programs -----------------------------------
#
# Hypothesis programs are straight-line, so chaining/superblocks barely
# trigger.  These crafted loops exercise every hot-path feature at once and
# diff the full architectural state against the interpreter.

HOT_LOOP = """
_start:
  li s0, 0
  li t0, 0
  li t6, 300
outer:
  la t2, table
  andi t3, t0, 7
  slli t3, t3, 3
  add t2, t2, t3
  ld t4, 0(t2)
  add s0, s0, t4
  addi t0, t0, 1
  slt t5, t0, t6
  bne t5, zero, outer
  ecall
.data
table: .quad 3, 1, 4, 1, 5, 9, 2, 6
"""

SPIN_LOOP = """
_start:
  la a0, cell
  li s0, 0
  li t0, 0
  li t6, 40
loop:
take:
  lr t1, (a0)
  bne t1, zero, take
  li t1, 1
  sc t2, t1, (a0)
  bne t2, zero, take
  ld t3, 0(a0)
  add s0, s0, t3
  sd zero, 0(a0)
  addi t0, t0, 1
  slt t5, t0, t6
  bne t5, zero, loop
  ecall
.data
.align 8
cell: .quad 0
"""


def _run_asm(source, mode, **engine_kwargs):
    prog = assemble(source)
    mem = FlatMemory()
    mem.load_image(prog.iter_load_segments())
    cpu = CPUState(pc=prog.entry, tid=1, sp=0x7000_0000)
    engine = ExecutionEngine(mem, mode=mode, **engine_kwargs)
    stop = engine.run_quantum(cpu, 1_000_000_000)
    assert stop.kind is StopKind.SYSCALL, stop
    return cpu, engine


class TestHotPathIdentity:
    HOT = dict(superblock_threshold=8, superblock_max_blocks=8, fusion=True)

    def test_hot_loop_identical_under_full_hot_path(self):
        ref, _ = _run_asm(HOT_LOOP, "interp")
        hot, engine = _run_asm(HOT_LOOP, "dbt", **self.HOT)
        assert hot.regs == ref.regs and hot.pc == ref.pc
        # and the hot path actually engaged, this is not a vacuous pass:
        assert engine.superblocks_formed >= 1
        assert engine.fusion_hits.get("cmp_branch", 0) > 0
        assert engine.fusion_hits.get("load_op", 0) > 0

    def test_spin_loop_identical_under_full_hot_path(self):
        ref, _ = _run_asm(SPIN_LOOP, "interp")
        hot, engine = _run_asm(SPIN_LOOP, "dbt", **self.HOT)
        assert hot.regs == ref.regs and hot.pc == ref.pc
        assert engine.fusion_hits.get("atomic_branch", 0) > 0

    def test_each_feature_alone_is_identical(self):
        ref, _ = _run_asm(HOT_LOOP, "interp")
        for kwargs in (
            dict(chaining=False),
            dict(fusion=True),
            dict(superblock_threshold=4),
            dict(superblock_threshold=2, superblock_max_blocks=3),
        ):
            got, _ = _run_asm(HOT_LOOP, "dbt", **kwargs)
            assert got.regs == ref.regs and got.pc == ref.pc, kwargs
