"""Execution-engine behaviour: quanta, code cache, precise page stalls, faults."""

from repro.dbt import CPUState, EngineTiming, ExecutionEngine, StopKind
from repro.errors import InvalidInstruction, UnalignedAccess
from repro.isa import assemble
from repro.mem import FlatMemory, PAGE_SIZE, PageStall, page_of

TEXT = 0x1_0000


def load(source):
    prog = assemble(source)
    mem = FlatMemory()
    mem.load_image(prog.iter_load_segments())
    cpu = CPUState(pc=prog.entry, tid=1, sp=0x7000_0000)
    return prog, mem, cpu


class StallingMemory(FlatMemory):
    """Raises PageStall on first access to each data page, like a DSM client."""

    def __init__(self, stall_pages):
        super().__init__()
        self.stall_pages = set(stall_pages)
        self.stall_log = []

    def _maybe_stall(self, addr, write):
        page = page_of(addr)
        if page in self.stall_pages:
            self.stall_pages.discard(page)
            self.stall_log.append((page, write))
            raise PageStall(page, write, addr % PAGE_SIZE)

    def load(self, addr, size, signed):
        self._maybe_stall(addr, False)
        return super().load(addr, size, signed)

    def store(self, addr, size, value):
        self._maybe_stall(addr, True)
        super().store(addr, size, value)


class TestQuantum:
    def test_quantum_expires_on_infinite_loop(self):
        prog, mem, cpu = load("_start:\n j _start\n")
        engine = ExecutionEngine(mem)
        stop = engine.run_quantum(cpu, 10_000)
        assert stop.kind is StopKind.QUANTUM
        assert stop.cycles >= 10_000

    def test_cycles_accounted_for_translated_code(self):
        prog, mem, cpu = load("_start:\n li a0, 1\n li a1, 2\n ecall\n")
        timing = EngineTiming(cpi_dbt=2.0, translate_per_insn=100.0)
        engine = ExecutionEngine(mem, timing=timing)
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.SYSCALL
        # 3 instructions: translation 300 + execution 6
        assert stop.cycles == 306
        assert engine.insns_executed == 3
        assert engine.insns_translated == 3

    def test_retranslation_not_charged_twice(self):
        prog, mem, cpu = load(
            """
            _start:
              li t0, 0
            loop:
              addi t0, t0, 1
              li t1, 5
              blt t0, t1, loop
              ecall
            """
        )
        timing = EngineTiming(cpi_dbt=1.0, translate_per_insn=1000.0)
        engine = ExecutionEngine(mem, timing=timing)
        stop = engine.run_quantum(cpu, 10_000_000)
        assert stop.kind is StopKind.SYSCALL
        assert engine.cache.stats.translations == 3  # entry, loop body, exit


class TestCodeCache:
    def test_blocks_reused_across_loop_iterations(self):
        prog, mem, cpu = load(
            """
            _start:
              li t0, 0
            loop:
              addi t0, t0, 1
              li t1, 100
              blt t0, t1, loop
              ecall
            """
        )
        engine = ExecutionEngine(mem)
        engine.run_quantum(cpu, 100_000_000)
        stats = engine.cache.stats
        assert stats.translations <= 4
        # Every loop iteration dispatches the body; chaining turns almost
        # all of those dispatches into direct chain follows.
        assert stats.dispatches > 100
        assert stats.chain_follows > 90
        assert stats.misses == stats.translations

    def test_chaining_disabled_pays_a_lookup_per_block(self):
        prog, mem, cpu = load(
            """
            _start:
              li t0, 0
            loop:
              addi t0, t0, 1
              li t1, 100
              blt t0, t1, loop
              ecall
            """
        )
        engine = ExecutionEngine(mem, chaining=False)
        engine.run_quantum(cpu, 100_000_000)
        stats = engine.cache.stats
        assert stats.chain_follows == 0
        assert stats.lookups > 100
        assert stats.hit_rate > 0.9

    def test_invalidate_page_drops_blocks(self):
        prog, mem, cpu = load("_start:\n li a0, 1\n ecall\n")
        engine = ExecutionEngine(mem)
        engine.run_quantum(cpu, 1_000_000)
        assert len(engine.cache) > 0
        dropped = engine.cache.invalidate_page(TEXT // PAGE_SIZE)
        assert dropped > 0
        assert len(engine.cache) == 0

    def test_invalidated_block_is_retranslated(self):
        prog, mem, cpu = load("_start:\n li a0, 1\n ecall\n")
        engine = ExecutionEngine(mem)
        engine.run_quantum(cpu, 1_000_000)
        first = engine.cache.stats.translations
        engine.cache.invalidate_page(TEXT // PAGE_SIZE)
        cpu2 = CPUState(pc=prog.entry, tid=2)
        engine.run_quantum(cpu2, 1_000_000)
        assert engine.cache.stats.translations == 2 * first

    def test_block_does_not_cross_page_boundary(self):
        # straight-line code spanning a page edge must split into >= 2 blocks
        body = "\n".join("  addi t0, t0, 1" for _ in range(2000))
        prog, mem, cpu = load(f"_start:\n{body}\n  ecall\n")
        engine = ExecutionEngine(mem)
        engine.run_quantum(cpu, 100_000_000)
        for pc in list(engine.cache._blocks):
            tb = engine.cache._blocks[pc]
            last_insn_start = tb.end_pc - 4
            assert page_of(tb.pc) == page_of(last_insn_start)


class TestPreciseStalls:
    def test_stall_mid_block_resumes_exactly(self):
        src = """
        _start:
          li a0, 1
          li a1, 10
          la t2, cell
          sd a1, 0(t2)       # faults here on first touch
          addi a0, a0, 100
          ecall
        .data
        cell: .quad 0
        """
        prog = assemble(src)
        data_page = page_of(prog.symbol("cell"))
        mem = StallingMemory([data_page])
        mem.load_image(prog.iter_load_segments())
        cpu = CPUState(pc=prog.entry, tid=1)
        engine = ExecutionEngine(mem)
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.PAGE_STALL
        assert stop.info.page == data_page
        assert stop.info.write is True
        # a0 committed by earlier instructions, the store not yet done
        assert cpu.regs[10] == 1
        # resume: the faulting sd re-executes, then the block completes
        stop2 = engine.run_quantum(cpu, 1_000_000)
        assert stop2.kind is StopKind.SYSCALL
        assert cpu.regs[10] == 101
        assert mem.load(prog.symbol("cell"), 8, False) == 10

    def test_stall_cycle_accounting_counts_completed_insns_only(self):
        src = """
        _start:
          li a0, 1
          la t2, cell
          ld a1, 0(t2)
          ecall
        .data
        cell: .quad 7
        """
        prog = assemble(src)
        data_page = page_of(prog.symbol("cell"))
        mem = StallingMemory([data_page])
        mem.load_image(prog.iter_load_segments())
        cpu = CPUState(pc=prog.entry, tid=1)
        timing = EngineTiming(cpi_dbt=10.0, translate_per_insn=0.0)
        engine = ExecutionEngine(mem, timing=timing)
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.PAGE_STALL
        # li (1) + la (4 = movz+3*movk) completed; ld not committed
        assert stop.cycles == 50

    def test_interp_mode_stalls_identically(self):
        src = """
        _start:
          la t2, cell
          ld a1, 0(t2)
          ecall
        .data
        cell: .quad 99
        """
        prog = assemble(src)
        mem = StallingMemory([page_of(prog.symbol("cell"))])
        mem.load_image(prog.iter_load_segments())
        cpu = CPUState(pc=prog.entry, tid=1)
        engine = ExecutionEngine(mem, mode="interp")
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.PAGE_STALL
        stop2 = engine.run_quantum(cpu, 1_000_000)
        assert stop2.kind is StopKind.SYSCALL
        assert cpu.regs[11] == 99


class TestFaults:
    def test_invalid_instruction_faults(self):
        mem = FlatMemory()
        mem.write_bytes(TEXT, b"\x00\x00\x00\x00")  # opcode 0 undefined
        cpu = CPUState(pc=TEXT, tid=1)
        engine = ExecutionEngine(mem)
        stop = engine.run_quantum(cpu, 1000)
        assert stop.kind is StopKind.FAULT
        assert isinstance(stop.info, InvalidInstruction)

    def test_page_crossing_access_faults(self):
        src = """
        _start:
          la t0, edge
          addi t0, t0, 4090
          ld a0, 0(t0)
          ecall
        .data
        .align 4096
        edge: .space 8192
        """
        # 'edge' begins page-aligned, +4090 crosses into the next page mid-load
        prog, mem, cpu = load(src)
        engine = ExecutionEngine(mem)
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.FAULT
        assert isinstance(stop.info, UnalignedAccess)

    def test_unaligned_atomic_faults(self):
        src = """
        _start:
          la t0, cell
          addi t0, t0, 4
          lr a0, (t0)
          ecall
        .data
        .align 8
        cell: .quad 0
        """
        prog, mem, cpu = load(src)
        engine = ExecutionEngine(mem)
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.FAULT
        assert isinstance(stop.info, UnalignedAccess)

    def test_ebreak_stops_with_break(self):
        prog, mem, cpu = load("_start:\n ebreak\n")
        engine = ExecutionEngine(mem)
        stop = engine.run_quantum(cpu, 1000)
        assert stop.kind is StopKind.BREAK

    def test_fault_pc_is_precise(self):
        src = """
        _start:
          li a0, 3
          la t0, cell
          addi t0, t0, 1
          lr a1, (t0)
          ecall
        .data
        .align 8
        cell: .quad 0
        """
        prog, mem, cpu = load(src)
        engine = ExecutionEngine(mem)
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.FAULT
        # pc parked at the faulting lr, with prior instructions committed
        assert cpu.regs[10] == 3
        lr_pc = prog.entry + 4 * (1 + 4 + 1)  # li(1) + la(4) + addi(1)
        assert cpu.pc == lr_pc


class TestGeneratedCode:
    def test_tb_source_is_recorded(self):
        prog, mem, cpu = load("_start:\n li a0, 7\n ecall\n")
        engine = ExecutionEngine(mem)
        engine.run_quantum(cpu, 1_000_000)
        tb = engine.cache.lookup(prog.entry)
        assert tb is not None
        assert "def tb_" in tb.source
        assert "R = cpu.regs" in tb.source

    def test_exec_count_tracks_hot_blocks(self):
        prog, mem, cpu = load(
            """
            _start:
              li t0, 0
            loop:
              addi t0, t0, 1
              li t1, 50
              blt t0, t1, loop
              ecall
            """
        )
        engine = ExecutionEngine(mem)
        engine.run_quantum(cpu, 100_000_000)
        counts = sorted(tb.exec_count for tb in engine.cache._blocks.values())
        # The entry block subsumes the first iteration; the loop block runs 49x.
        assert counts[-1] == 49
