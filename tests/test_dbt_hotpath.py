"""DBT hot-path tier: chaining, trace superblocks, idiom fusion, and the
cycle-accounting/invalidation bugfixes that ride along.

Complements test_dbt_engine.py (baseline engine behaviour) and
test_dbt_differential.py (architectural identity).  Everything here drives
the engine directly against a flat memory, the way a single node's DBT
thread would.
"""

import pytest

from repro.dbt import CPUState, EngineTiming, ExecutionEngine, StopKind
from repro.dbt.backend import TranslationBlock
from repro.dbt.codecache import CodeCache
from repro.isa import SPECS, Instruction, assemble, encode
from repro.mem import FlatMemory, PAGE_SIZE, PageStall, page_of

TEXT = 0x1_0000

LOOP_SRC = """
_start:
  li t0, 0
loop:
  addi t0, t0, 1
  li t1, 200
  blt t0, t1, loop
  ecall
"""


def load(source):
    prog = assemble(source)
    mem = FlatMemory()
    mem.load_image(prog.iter_load_segments())
    cpu = CPUState(pc=prog.entry, tid=1, sp=0x7000_0000)
    return prog, mem, cpu


def run_to_syscall(engine, cpu, budget=100_000_000):
    stop = engine.run_quantum(cpu, budget)
    assert stop.kind is StopKind.SYSCALL, stop
    return stop


def synthetic_tb(pc, fn, *, n_insns=1, pages=None):
    return TranslationBlock(
        pc=pc,
        n_insns=n_insns,
        end_pc=pc + 4 * n_insns,
        fn=fn,
        source="<synthetic>",
        pages=pages if pages is not None else (pc // PAGE_SIZE,),
    )


class StallingMemory(FlatMemory):
    """Raises PageStall on first access to each listed data page."""

    def __init__(self, stall_pages):
        super().__init__()
        self.stall_pages = set(stall_pages)

    def _maybe_stall(self, addr, write):
        page = page_of(addr)
        if page in self.stall_pages:
            self.stall_pages.discard(page)
            raise PageStall(page, write, addr % PAGE_SIZE)

    def load(self, addr, size, signed):
        self._maybe_stall(addr, False)
        return super().load(addr, size, signed)

    def store(self, addr, size, value):
        self._maybe_stall(addr, True)
        super().store(addr, size, value)


def emit_words(mem, addr, instrs):
    code = b"".join(encode(i).to_bytes(4, "little") for i in instrs)
    mem.write_bytes(addr, code)


# -- bugfix: multi-page invalidation ---------------------------------------


class TestMultiPageInvalidation:
    def test_spanning_block_removed_from_every_page_index(self):
        cache = CodeCache()
        pc = 0x10_0000
        page = pc // PAGE_SIZE
        spanning = synthetic_tb(pc, lambda cpu, mem: 0, pages=(page, page + 1))
        cache.insert(spanning)

        assert cache.invalidate_page(page) == 1
        assert cache.peek(pc) is None

        # Re-translate at the same pc, this time within one page.  The old
        # block's stale entry in page+1's index must not shoot it down.
        smaller = synthetic_tb(pc, lambda cpu, mem: 0, pages=(page,))
        cache.insert(smaller)
        assert cache.invalidate_page(page + 1) == 0
        assert cache.peek(pc) is smaller

    def test_invalidating_either_page_drops_a_spanning_block(self):
        cache = CodeCache()
        pc = 0x10_0000
        page = pc // PAGE_SIZE
        for victim in (page, page + 1):
            tb = synthetic_tb(pc, lambda cpu, mem: 0, pages=(page, page + 1))
            cache.insert(tb)
            assert cache.invalidate_page(victim) == 1
            assert cache.peek(pc) is None
            # The sibling page's index holds no leftover entry.
            other = page + 1 if victim == page else page
            assert cache.invalidate_page(other) == 0

    def test_invalidation_count_not_inflated_by_stale_entries(self):
        cache = CodeCache()
        pc = 0x10_0000
        page = pc // PAGE_SIZE
        cache.insert(synthetic_tb(pc, lambda cpu, mem: 0, pages=(page, page + 1)))
        cache.invalidate_page(page)
        cache.insert(synthetic_tb(pc, lambda cpu, mem: 0, pages=(page,)))
        cache.invalidate_page(page + 1)
        assert cache.stats.invalidations == 1


# -- bugfix: block_ic reset before tb.fn -----------------------------------


class TestBlockIcReset:
    def test_fault_before_first_checkpoint_bills_zero_insns(self):
        # A block that stalls before its first `cpu.block_ic = k` assignment
        # (as a fused or miscompiled prologue could) must not be billed the
        # previous block's completed-instruction count.
        def stalls_immediately(cpu, mem):
            raise PageStall(0x999, False, 0)

        mem = FlatMemory()
        cpu = CPUState(pc=TEXT, tid=1)
        engine = ExecutionEngine(
            mem, timing=EngineTiming(cpi_dbt=10.0, translate_per_insn=0.0)
        )
        engine.cache.insert(synthetic_tb(TEXT, stalls_immediately, n_insns=4))
        cpu.block_ic = 57  # stale count from a previous block
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.PAGE_STALL
        assert stop.cycles == 0
        assert engine.insns_executed == 0

    def test_stall_on_blocks_first_memory_op_after_full_block(self):
        # Regression shape from the issue: a full block completes (block_ic
        # left at its length), then the next block stalls on its very first
        # memory instruction.  Only the first block's instructions may bill.
        src = """
        _start:
          li a0, 1
          li a1, 2
          la t2, cell
          j touch
        touch:
          ld a3, 0(t2)
          ecall
        .data
        cell: .quad 5
        """
        prog = assemble(src)
        mem = StallingMemory([page_of(prog.symbol("cell"))])
        mem.load_image(prog.iter_load_segments())
        cpu = CPUState(pc=prog.entry, tid=1)
        engine = ExecutionEngine(
            mem, timing=EngineTiming(cpi_dbt=10.0, translate_per_insn=0.0)
        )
        stop = engine.run_quantum(cpu, 1_000_000)
        assert stop.kind is StopKind.PAGE_STALL
        # li + li + la(movz+3*movk) + j = 7 completed instructions; the
        # stalled ld contributes nothing.
        assert stop.cycles == 70
        stop2 = engine.run_quantum(cpu, 1_000_000)
        assert stop2.kind is StopKind.SYSCALL
        assert cpu.regs[13] == 5


# -- bugfix: exact fractional-cycle accounting ------------------------------


class TestExactCycleAccounting:
    def test_fractional_cpi_carries_remainder_across_quanta(self):
        prog, mem, cpu = load(LOOP_SRC.replace("li t1, 200", "li t1, 500"))
        timing = EngineTiming(cpi_dbt=2.88, translate_per_insn=800.0)
        engine = ExecutionEngine(mem, timing=timing)
        total = 0
        quanta = 0
        while True:
            stop = engine.run_quantum(cpu, 10)  # tiny budget: many stops
            total += stop.cycles
            quanta += 1
            if stop.kind is StopKind.SYSCALL:
                break
            assert stop.kind is StopKind.QUANTUM
        # Hundreds of stops: int-truncation at each would lose ~0.5 cycles
        # per stop.  The carried remainder keeps the long-run total equal to
        # the per-instruction model to within one cycle's rounding.
        assert quanta > 100
        model = (
            engine.insns_translated * timing.translate_per_insn
            + engine.insns_executed * timing.cpi_dbt
        )
        assert total + cpu.cycle_frac == pytest.approx(model, abs=1e-6)
        assert 0.0 <= cpu.cycle_frac < 1.0
        # The engine's own mode split agrees with the model as well.
        assert engine.translate_cycles + engine.execute_cycles == pytest.approx(
            model, abs=1e-6
        )

    def test_integral_cpi_never_accumulates_fraction(self):
        prog, mem, cpu = load(LOOP_SRC)
        engine = ExecutionEngine(mem)  # default timing: all-integer costs
        while engine.run_quantum(cpu, 100).kind is not StopKind.SYSCALL:
            assert cpu.cycle_frac == 0.0
        assert cpu.cycle_frac == 0.0

    def test_interp_mode_also_carries_remainder(self):
        prog, mem, cpu = load(LOOP_SRC)
        timing = EngineTiming(cpi_interp=30.5)
        engine = ExecutionEngine(mem, mode="interp", timing=timing)
        total = 0
        while True:
            stop = engine.run_quantum(cpu, 100)
            total += stop.cycles
            if stop.kind is StopKind.SYSCALL:
                break
        model = engine.insns_executed * timing.cpi_interp
        assert total + cpu.cycle_frac == pytest.approx(model, abs=1e-6)


# -- chaining and unchaining ------------------------------------------------


class TestUnchaining:
    def _two_page_program(self, mem, value):
        """Block A (jal) on one page jumps to block B (li a0; ecall) on the
        next page, so invalidating B's page leaves A cached."""
        b_pc = TEXT + PAGE_SIZE
        emit_words(mem, TEXT, [Instruction(SPECS["jal"], rd=0, imm=b_pc - TEXT)])
        emit_words(mem, b_pc, [
            Instruction(SPECS["addi"], rd=10, rs1=0, imm=value),
            Instruction(SPECS["ecall"]),
        ])
        return b_pc

    def test_invalidation_severs_chains_to_dropped_blocks(self):
        mem = FlatMemory()
        b_pc = self._two_page_program(mem, 1)
        engine = ExecutionEngine(mem)
        run_to_syscall(engine, CPUState(pc=TEXT, tid=1))
        a_tb = engine.cache.peek(TEXT)
        assert a_tb.chain  # A chained directly to B

        engine.cache.invalidate_page(b_pc // PAGE_SIZE)
        assert not a_tb.chain
        assert engine.cache.stats.unchains >= 1

        # Guest rewrites B: the chained reference must not resurrect the
        # stale translation.
        emit_words(mem, b_pc, [
            Instruction(SPECS["addi"], rd=10, rs1=0, imm=2),
            Instruction(SPECS["ecall"]),
        ])
        cpu = CPUState(pc=TEXT, tid=2)
        run_to_syscall(engine, cpu)
        assert cpu.regs[10] == 2

    def test_flush_clears_chain_references(self):
        mem = FlatMemory()
        self._two_page_program(mem, 1)
        engine = ExecutionEngine(mem)
        run_to_syscall(engine, CPUState(pc=TEXT, tid=1))
        a_tb = engine.cache.peek(TEXT)
        engine.cache.flush()
        assert not a_tb.chain and not a_tb.chained_from
        assert len(engine.cache) == 0


# -- superblock promotion and demotion --------------------------------------


class TestSuperblocks:
    # Long enough that the cheaper superblock CPI amortizes the one-off
    # trace-compilation cost (~max_blocks * body_insns * translate_per_insn).
    HOT_SRC = LOOP_SRC.replace("li t1, 200", "li t1, 20000")

    def test_hot_loop_promotes_and_matches_baseline_state(self):
        prog, mem, cpu = load(self.HOT_SRC)
        hot = ExecutionEngine(mem, superblock_threshold=4, superblock_max_blocks=6)
        stop_hot = run_to_syscall(hot, cpu)
        assert hot.superblocks_formed >= 1
        sbs = [tb for tb in hot.cache._blocks.values() if tb.is_superblock]
        assert sbs and sbs[0].exec_count > 0
        assert len(sbs[0].member_pcs) >= 2  # the loop body unrolled

        prog2, mem2, cpu2 = load(self.HOT_SRC)
        base = ExecutionEngine(mem2)
        stop_base = run_to_syscall(base, cpu2)
        assert cpu.regs == cpu2.regs and cpu.pc == cpu2.pc
        assert hot.insns_executed == base.insns_executed
        # Cheaper superblock CPI wins despite the extra trace compilation.
        assert stop_hot.cycles < stop_base.cycles
        assert hot.superblock_saved_cycles > 0

    def test_below_threshold_is_bit_identical_to_baseline(self):
        prog, mem, cpu = load(LOOP_SRC)
        off = ExecutionEngine(mem, superblock_threshold=0)
        stop_off = run_to_syscall(off, cpu)
        prog2, mem2, cpu2 = load(LOOP_SRC)
        base = ExecutionEngine(mem2)
        stop_base = run_to_syscall(base, cpu2)
        assert off.superblocks_formed == 0
        assert stop_off.cycles == stop_base.cycles
        assert cpu.regs == cpu2.regs

    def test_demotion_on_member_page_invalidation_then_repromotion(self):
        prog, mem, cpu = load(LOOP_SRC)
        engine = ExecutionEngine(mem, superblock_threshold=4, superblock_max_blocks=6)
        run_to_syscall(engine, cpu)
        sb = next(tb for tb in engine.cache._blocks.values() if tb.is_superblock)
        dropped = engine.cache.invalidate_page(sb.pages[0])
        assert dropped >= 1
        assert not any(tb.is_superblock for tb in engine.cache._blocks.values())

        formed_before = engine.superblocks_formed
        cpu2 = CPUState(pc=prog.entry, tid=2, sp=0x7000_0000)
        run_to_syscall(engine, cpu2)
        assert engine.superblocks_formed > formed_before
        assert cpu2.regs == cpu.regs

    def test_cross_page_trace_is_demoted_from_either_page(self):
        # A 1-instruction block at the tail of one page jumps to a block on
        # the next page, which jumps back: the promoted trace spans both
        # pages and must be indexed (and invalidatable) under each.
        mem = FlatMemory()
        a_pc = TEXT + PAGE_SIZE - 4
        b_pc = TEXT + PAGE_SIZE
        emit_words(mem, a_pc, [Instruction(SPECS["jal"], rd=0, imm=4)])
        emit_words(mem, b_pc, [
            Instruction(SPECS["addi"], rd=5, rs1=5, imm=1),
            Instruction(SPECS["jal"], rd=0, imm=a_pc - (b_pc + 4)),
        ])
        engine = ExecutionEngine(mem, superblock_threshold=3, superblock_max_blocks=4)
        stop = engine.run_quantum(CPUState(pc=a_pc, tid=1), 50_000)
        assert stop.kind is StopKind.QUANTUM
        sb = next(tb for tb in engine.cache._blocks.values() if tb.is_superblock)
        assert a_pc // PAGE_SIZE in sb.pages and b_pc // PAGE_SIZE in sb.pages
        engine.cache.invalidate_page(b_pc // PAGE_SIZE)
        assert not any(tb.is_superblock for tb in engine.cache._blocks.values())
        # No stale entry left under the first page either.
        assert engine.cache.peek(a_pc) is None or not engine.cache.peek(a_pc).is_superblock

    def test_trace_tail_may_end_in_a_syscall_block(self):
        src = """
        _start:
          li t0, 0
        loop:
          addi t0, t0, 1
          li t1, 50
          blt t0, t1, loop
          li a0, 42
          ecall
        """
        prog, mem, cpu = load(src)
        engine = ExecutionEngine(mem, superblock_threshold=2, superblock_max_blocks=8)
        run_to_syscall(engine, cpu)
        assert cpu.regs[10] == 42
        assert cpu.regs[5] == 50


# -- idiom fusion ------------------------------------------------------------


class TestFusion:
    def test_cmp_branch_fusion_hits_and_matches_baseline(self):
        src = """
        _start:
          li t0, 0
          li t6, 30
        loop:
          addi t0, t0, 1
          slt t5, t0, t6
          bne t5, zero, loop
          ecall
        """
        prog, mem, cpu = load(src)
        fused = ExecutionEngine(mem, fusion=True)
        stop_f = run_to_syscall(fused, cpu)
        assert fused.fusion_hits.get("cmp_branch", 0) >= 29
        prog2, mem2, cpu2 = load(src)
        base = ExecutionEngine(mem2)
        stop_b = run_to_syscall(base, cpu2)
        assert cpu.regs == cpu2.regs and cpu.pc == cpu2.pc
        assert fused.insns_executed == base.insns_executed
        assert stop_f.cycles < stop_b.cycles
        assert fused.fusion_saved_cycles > 0

    def test_load_op_fusion_hits_and_matches_baseline(self):
        src = """
        _start:
          li s0, 0
          li t0, 0
          li t6, 16
        loop:
          la t2, table
          slli t3, t0, 3
          add t2, t2, t3
          ld t4, 0(t2)
          add s0, s0, t4
          addi t0, t0, 1
          blt t0, t6, loop
          ecall
        .data
        table: .quad 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
        """
        prog, mem, cpu = load(src)
        fused = ExecutionEngine(mem, fusion=True)
        run_to_syscall(fused, cpu)
        assert fused.fusion_hits.get("load_op", 0) >= 16
        assert cpu.regs[8] == sum(range(1, 17))
        prog2, mem2, cpu2 = load(src)
        base = ExecutionEngine(mem2)
        run_to_syscall(base, cpu2)
        assert cpu.regs == cpu2.regs

    def test_atomic_branch_fusion_on_spin_idiom(self):
        src = """
        _start:
          la a0, cell
          li t1, 1
        retry:
          lr t0, (a0)
          bne t0, zero, retry
          sc t2, t1, (a0)
          bne t2, zero, retry
          ld a1, 0(a0)
          ecall
        .data
        .align 8
        cell: .quad 0
        """
        prog, mem, cpu = load(src)
        fused = ExecutionEngine(mem, fusion=True)
        run_to_syscall(fused, cpu)
        assert fused.fusion_hits.get("atomic_branch", 0) >= 2
        assert cpu.regs[11] == 1  # the lock was taken

    def test_fusion_not_applied_when_setcond_clobbers_source(self):
        # slt t0, t0, t6 then bne t0: the branch must see the *new* t0, so
        # the pair cannot be rewritten to re-test the original operands.
        src = """
        _start:
          li t0, 5
          li t6, 30
          slt t0, t0, t6
          bne t0, zero, taken
          li a0, 111
          ecall
        taken:
          li a0, 222
          ecall
        """
        prog, mem, cpu = load(src)
        fused = ExecutionEngine(mem, fusion=True)
        run_to_syscall(fused, cpu)
        assert fused.fusion_hits.get("cmp_branch", 0) == 0
        assert cpu.regs[10] == 222

    def test_fusion_inside_superblocks_compounds(self):
        src = """
        _start:
          li t0, 0
          li t6, 100
        loop:
          addi t0, t0, 1
          slt t5, t0, t6
          bne t5, zero, loop
          ecall
        """
        prog, mem, cpu = load(src)
        engine = ExecutionEngine(
            mem, fusion=True, superblock_threshold=4, superblock_max_blocks=6
        )
        run_to_syscall(engine, cpu)
        assert engine.superblocks_formed >= 1
        assert engine.fusion_hits.get("cmp_branch", 0) > 50
        assert engine.superblock_saved_cycles > 0
        assert engine.fusion_saved_cycles > 0
        prog2, mem2, cpu2 = load(src)
        base = ExecutionEngine(mem2)
        run_to_syscall(base, cpu2)
        assert cpu.regs == cpu2.regs


# -- translation/execution mode split ---------------------------------------


class TestModeSplit:
    def test_stop_event_reports_translation_share(self):
        prog, mem, cpu = load("_start:\n li a0, 1\n li a1, 2\n ecall\n")
        timing = EngineTiming(cpi_dbt=2.0, translate_per_insn=100.0)
        engine = ExecutionEngine(mem, timing=timing)
        stop = run_to_syscall(engine, cpu)
        assert stop.cycles == 306
        assert stop.translate_cycles == 300
        assert engine.translate_cycles == 300.0
        assert engine.execute_cycles == 6.0

    def test_quantum_with_no_translation_reports_zero(self):
        prog, mem, cpu = load(LOOP_SRC)
        engine = ExecutionEngine(mem)
        engine.run_quantum(cpu, 10_000)  # warm: all blocks translated
        stop = engine.run_quantum(cpu, 10_000)
        assert stop.translate_cycles == 0
