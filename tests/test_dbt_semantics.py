"""Instruction-semantics tests, run in BOTH engine modes.

Each program ends at an ecall; results are read out of registers.  Running
every case through the interpreter and the DBT keeps the two in lock-step.
"""

import math
import pytest

from repro.dbt.fpu import b2f

pytestmark = pytest.mark.parametrize("mode", ["dbt", "interp"])

A0, A1, A2 = 10, 11, 12
T0 = 5


def test_arithmetic_basics(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li a0, 20
          li a1, 22
          add a0, a0, a1
          ecall
        """,
        mode=mode,
    )
    assert cpu.regs[A0] == 42


def test_sub_wraps_unsigned(run, mode):
    cpu, _, _ = run("_start:\n li a0, 1\n li a1, 2\n sub a0, a0, a1\n ecall\n", mode=mode)
    assert cpu.regs[A0] == 0xFFFF_FFFF_FFFF_FFFF


def test_mul_div_rem_signed(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li a0, -7
          li a1, 2
          div a2, a0, a1      # -3 (truncate toward zero)
          rem a3, a0, a1      # -1
          mul a4, a0, a1      # -14
          ecall
        """,
        mode=mode,
    )
    assert cpu.regs[12] == (-3) & (2**64 - 1)
    assert cpu.regs[13] == (-1) & (2**64 - 1)
    assert cpu.regs[14] == (-14) & (2**64 - 1)


def test_div_by_zero_riscv_semantics(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li a0, 5
          li a1, 0
          div a2, a0, a1     # all ones
          divu a3, a0, a1    # all ones
          rem a4, a0, a1     # dividend
          remu a5, a0, a1    # dividend
          ecall
        """,
        mode=mode,
    )
    M = 2**64 - 1
    assert cpu.regs[12] == M
    assert cpu.regs[13] == M
    assert cpu.regs[14] == 5
    assert cpu.regs[15] == 5


def test_shifts(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li a0, -8
          srai a1, a0, 1     # -4 arithmetic
          srli a2, a0, 60    # logical: high bits come in as 0
          slli a3, a0, 1     # -16
          ecall
        """,
        mode=mode,
    )
    M = 2**64 - 1
    assert cpu.regs[11] == (-4) & M
    assert cpu.regs[12] == ((-8) & M) >> 60
    assert cpu.regs[13] == (-16) & M


def test_shift_amount_masked_to_6_bits(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li a0, 1
          li a1, 65        # 65 & 63 == 1
          sll a2, a0, a1
          ecall
        """,
        mode=mode,
    )
    assert cpu.regs[12] == 2


def test_compare_instructions(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li a0, -1
          li a1, 1
          slt a2, a0, a1     # signed: -1 < 1 -> 1
          sltu a3, a0, a1    # unsigned: huge > 1 -> 0
          slti a4, a0, 0     # 1
          sltiu a5, a1, 2    # 1
          ecall
        """,
        mode=mode,
    )
    assert [cpu.regs[i] for i in (12, 13, 14, 15)] == [1, 0, 1, 1]


def test_loads_stores_all_widths(run, mode):
    cpu, mem, _ = run(
        """
        _start:
          la a0, buf
          li a1, -2
          sb a1, 0(a0)
          sh a1, 2(a0)
          sw a1, 4(a0)
          sd a1, 8(a0)
          lb a2, 0(a0)
          lbu a3, 0(a0)
          lh a4, 2(a0)
          lhu a5, 2(a0)
          lw a6, 4(a0)
          lwu a7, 4(a0)
          ld t0, 8(a0)
          ecall
        .data
        buf: .space 64
        """,
        mode=mode,
    )
    M = 2**64 - 1
    assert cpu.regs[12] == (-2) & M  # lb sign-extends
    assert cpu.regs[13] == 0xFE
    assert cpu.regs[14] == (-2) & M
    assert cpu.regs[15] == 0xFFFE
    assert cpu.regs[16] == (-2) & M
    assert cpu.regs[17] == 0xFFFF_FFFE
    assert cpu.regs[5] == (-2) & M


def test_branch_loop_sums(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li a0, 0
          li t0, 0
          li t1, 100
        loop:
          add a0, a0, t0
          addi t0, t0, 1
          blt t0, t1, loop
          ecall
        """,
        mode=mode,
    )
    assert cpu.regs[A0] == sum(range(100))


def test_function_call_and_return(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li a0, 5
          call double_it
          call double_it
          ecall
        double_it:
          add a0, a0, a0
          ret
        """,
        mode=mode,
    )
    assert cpu.regs[A0] == 20


def test_jalr_link_register_when_rd_equals_rs1(run, mode):
    # jalr a0, a0, 0: target must be read before the link write.
    cpu, _, _ = run(
        """
        _start:
          la a0, target
          jalr a0, a0, 0
        target:
          ecall
        """,
        mode=mode,
    )
    # link value = pc of jalr + 4 = address of 'target'
    assert cpu.regs[A0] == cpu.pc - 4


def test_zero_register_is_immutable(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li t0, 99
          add zero, t0, t0
          addi zero, zero, 55
          mv a0, zero
          ecall
        """,
        mode=mode,
    )
    assert cpu.regs[A0] == 0
    assert cpu.regs[0] == 0


def test_movz_movk_movn_compose(run, mode):
    cpu, _, _ = run(
        """
        _start:
          movz a0, 0x1111, 0
          movk a0, 0x2222, 1
          movk a0, 0x3333, 3
          movn a1, 0x00FF, 0
          ecall
        """,
        mode=mode,
    )
    assert cpu.regs[A0] == 0x3333_0000_2222_1111
    assert cpu.regs[A1] == (~0x00FF) & (2**64 - 1)


def test_fp_arithmetic(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li t0, 3
          li t1, 4
          fcvt.d.l a0, t0
          fcvt.d.l a1, t1
          fmul a2, a0, a1      # 12.0
          fadd a3, a0, a1      # 7.0
          fdiv a4, a0, a1      # 0.75
          fsqrt a5, a2         # sqrt(12)
          fcvt.l.d a6, a2      # 12
          ecall
        """,
        mode=mode,
    )
    assert b2f(cpu.regs[12]) == 12.0
    assert b2f(cpu.regs[13]) == 7.0
    assert b2f(cpu.regs[14]) == 0.75
    assert math.isclose(b2f(cpu.regs[15]), math.sqrt(12))
    assert cpu.regs[16] == 12


def test_fp_division_by_zero_gives_inf(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li t0, 1
          fcvt.d.l a0, t0
          movz a1, 0, 0        # +0.0 bits
          fdiv a2, a0, a1
          ecall
        """,
        mode=mode,
    )
    assert b2f(cpu.regs[12]) == math.inf


def test_fp_compare(run, mode):
    cpu, _, _ = run(
        """
        _start:
          li t0, 1
          li t1, 2
          fcvt.d.l a0, t0
          fcvt.d.l a1, t1
          flt a2, a0, a1
          fle a3, a1, a0
          feq a4, a0, a0
          ecall
        """,
        mode=mode,
    )
    assert [cpu.regs[i] for i in (12, 13, 14)] == [1, 0, 1]


def test_ll_sc_success_path(run, mode):
    cpu, mem, _ = run(
        """
        _start:
          la a0, cell
          lr t0, (a0)
          addi t0, t0, 1
          sc t1, t0, (a0)
          ld a1, 0(a0)
          ecall
        .data
        cell: .quad 41
        """,
        mode=mode,
    )
    assert cpu.regs[6] == 0  # sc succeeded
    assert cpu.regs[A1] == 42


def test_sc_without_reservation_fails(run, mode):
    cpu, mem, _ = run(
        """
        _start:
          la a0, cell
          li t0, 99
          sc t1, t0, (a0)
          ld a1, 0(a0)
          ecall
        .data
        cell: .quad 7
        """,
        mode=mode,
    )
    assert cpu.regs[6] == 1  # failed
    assert cpu.regs[A1] == 7  # unchanged


def test_sc_fails_after_intervening_store(run, mode):
    cpu, _, _ = run(
        """
        _start:
          la a0, cell
          lr t0, (a0)
          li t2, 5
          sd t2, 0(a0)         # plain store kills the reservation
          sc t1, t0, (a0)
          ld a1, 0(a0)
          ecall
        .data
        cell: .quad 1
        """,
        mode=mode,
    )
    assert cpu.regs[6] == 1
    assert cpu.regs[A1] == 5


def test_cas_success_and_failure(run, mode):
    cpu, _, _ = run(
        """
        _start:
          la a0, cell
          li t0, 10            # expected (in rd)
          li t1, 20            # desired
          mv a2, t0
          cas a2, t1, (a0)     # matches -> swaps, returns 10
          mv a3, t0
          cas a3, t1, (a0)     # now cell==20, expected 10 -> fails, returns 20
          ld a4, 0(a0)
          ecall
        .data
        cell: .quad 10
        """,
        mode=mode,
    )
    assert cpu.regs[12] == 10
    assert cpu.regs[13] == 20
    assert cpu.regs[14] == 20


def test_amoadd_amoswap(run, mode):
    cpu, _, _ = run(
        """
        _start:
          la a0, cell
          li t0, 5
          amoadd a1, t0, (a0)   # returns 100, cell=105
          li t1, 7
          amoswap a2, t1, (a0)  # returns 105, cell=7
          ld a3, 0(a0)
          ecall
        .data
        cell: .quad 100
        """,
        mode=mode,
    )
    assert cpu.regs[11] == 100
    assert cpu.regs[12] == 105
    assert cpu.regs[13] == 7


def test_hint_sets_group(run, mode):
    cpu, _, _ = run("_start:\n hint 3\n ecall\n", mode=mode)
    assert cpu.hint_group == 3


def test_fence_is_neutral(run, mode):
    cpu, _, _ = run("_start:\n li a0, 1\n fence\n addi a0, a0, 1\n ecall\n", mode=mode)
    assert cpu.regs[A0] == 2


def test_ecall_pc_points_past_instruction(run, mode):
    cpu, _, _ = run("_start:\n ecall\n", mode=mode)
    from repro.isa import DEFAULT_TEXT_BASE

    assert cpu.pc == DEFAULT_TEXT_BASE + 4
