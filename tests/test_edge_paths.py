"""Edge-path integration tests: kernel access through split pages,
interpreter-mode clusters, shutdown with parked threads."""

from repro import Cluster, DQEMUConfig, assemble
from repro.kernel.sysnums import SYS
from repro.workloads.common import emit_fanout_main, workload_builder

LONG = dict(max_virtual_ms=600_000)

FAST_SPLIT = dict(dsm_service_ns=30_000, splitting_trigger=6)


def split_then_syscall_program(iters=60_000):
    """Two workers false-share one page until it splits; then the main
    thread write()s a buffer that lives INSIDE the split page — the master
    kernel must read it through the shadow-page translation."""
    b = workload_builder()

    def post_join(bb):
        # write(1, arr+8, 4): the kernel reads guest memory from region 0
        bb.li("a0", 1)
        bb.la("a1", "arr")
        bb.addi("a1", "a1", 8)
        bb.li("a2", 4)
        bb.li("a7", SYS.WRITE)
        bb.ecall()
        bb.li("a0", 0)

    emit_fanout_main(b, 2, post_join=post_join)
    b.label("worker")
    b.addi("sp", "sp", -16)
    b.sd("ra", 8, "sp")
    b.sd("s0", 0, "sp")
    b.mv("s0", "a0")
    # worker 0 seeds the message bytes once, at its section start + 8
    b.bnez("s0", ".seeded")
    b.la("t0", "arr")
    b.li("t1", 0x4B4F)  # "OK"
    b.sh("t1", 8, "t0")
    b.li("t1", 0x0A21)  # "!\n"
    b.sh("t1", 10, "t0")
    b.label(".seeded")
    b.li("t0", 2048)
    b.mul("t0", "s0", "t0")
    b.la("t1", "arr")
    b.add("t1", "t1", "t0")
    b.li("t2", 0)
    b.li("t6", iters)
    b.label(".loop")
    b.andi("t3", "t2", 63)
    b.addi("t3", "t3", 64)  # offsets 64..127: keep clear of the message
    b.add("t4", "t1", "t3")
    b.lbu("t5", 0, "t4")
    b.addi("t5", "t5", 1)
    b.sb("t5", 0, "t4")
    b.addi("t2", "t2", 1)
    b.blt("t2", "t6", ".loop")
    b.li("a0", 0)
    b.ld("ra", 8, "sp")
    b.ld("s0", 0, "sp")
    b.addi("sp", "sp", 16)
    b.ret()
    b.bss()
    b.align(4096)
    b.label("arr")
    b.space(4096)
    b.text()
    return b.assemble()


class TestKernelThroughSplitPages:
    def test_write_syscall_reads_split_page(self):
        prog = split_then_syscall_program()
        cfg = DQEMUConfig(splitting_enabled=True, **FAST_SPLIT)
        r = Cluster(2, cfg).run(prog, **LONG)
        assert r.stats.protocol.splits == 1
        assert r.stdout == "OK!\n"

    def test_futex_word_on_split_page(self):
        """Futex wait/wake on a word inside a split page: the master's
        value check must go through the shadow translation."""
        b = workload_builder()

        def post_join(bb):
            bb.la("t0", "arr")
            bb.ld("a0", 0, "t0")  # flag value after wake handshake
            bb.call("rt_print_u64_ln")
            bb.li("a0", 0)

        emit_fanout_main(b, 2, post_join=post_join)
        b.label("worker")
        b.addi("sp", "sp", -16)
        b.sd("ra", 8, "sp")
        b.sd("s0", 0, "sp")
        b.mv("s0", "a0")
        b.li("t0", 2048)
        b.mul("t0", "s0", "t0")
        b.la("t1", "arr")
        b.add("t1", "t1", "t0")
        # churn to trigger the split (both workers, different regions)
        b.li("t2", 0)
        b.li("t6", 60_000)
        b.label(".churn")
        b.andi("t3", "t2", 63)
        b.addi("t3", "t3", 64)
        b.add("t4", "t1", "t3")
        b.lbu("t5", 0, "t4")
        b.addi("t5", "t5", 1)
        b.sb("t5", 0, "t4")
        b.addi("t2", "t2", 1)
        b.blt("t2", "t6", ".churn")
        b.bnez("s0", ".waker")
        # worker 0: futex_wait on arr[0] (region 0 of the split page)
        b.label(".wait")
        b.la("t0", "arr")
        b.ld("t1", 0, "t0")
        b.bnez("t1", ".done")
        b.la("a0", "arr")
        b.li("a1", 0)
        b.li("a2", 0)
        b.li("a7", SYS.FUTEX)
        b.ecall()
        b.j(".wait")
        b.label(".waker")
        # worker 1: set the flag and wake
        b.la("t0", "arr")
        b.li("t1", 77)
        b.sd("t1", 0, "t0")
        b.la("a0", "arr")
        b.li("a1", 1)
        b.li("a2", 8)
        b.li("a7", SYS.FUTEX)
        b.ecall()
        b.label(".done")
        b.li("a0", 0)
        b.ld("ra", 8, "sp")
        b.ld("s0", 0, "sp")
        b.addi("sp", "sp", 16)
        b.ret()
        b.bss()
        b.align(4096)
        b.label("arr")
        b.space(4096)
        b.text()
        cfg = DQEMUConfig(splitting_enabled=True, **FAST_SPLIT)
        r = Cluster(2, cfg).run(b.assemble(), **LONG)
        assert r.stdout == "77\n"


class TestInterpreterMode:
    def test_cluster_runs_in_interp_mode(self):
        from tests.test_cluster_integration import counter_program

        prog = counter_program(4, 100, "mutex")
        r = Cluster(2, DQEMUConfig(mode="interp")).run(prog, **LONG)
        assert r.stdout == "400\n"

    def test_interp_slower_than_dbt_on_compute(self):
        from repro.workloads import pi_taylor

        prog = pi_taylor.build(n_threads=4, terms=500, reps=4)
        cfg = DQEMUConfig().time_scaled(1000)  # make compute dominate
        dbt = Cluster(1, cfg).run(prog, **LONG)
        interp = Cluster(1, cfg.with_options(mode="interp")).run(prog, **LONG)
        assert interp.stdout == dbt.stdout == pi_taylor.reference_output(500)
        # interpretation bills ~10 cycles for every translated cycle; with
        # compute dominating, a large gap must appear in the execute
        # component (and a clear one end-to-end)
        assert interp.virtual_ns > 2 * dbt.virtual_ns
        assert (
            interp.stats.totals()["execute_ns"]
            > 4 * dbt.stats.totals()["execute_ns"]
        )


class TestShutdownEdge:
    def test_exit_group_with_sibling_parked_in_futex(self):
        """One worker sleeps forever on a futex; main exits the program —
        the run must terminate cleanly (exit_group wins)."""
        b = workload_builder()
        b.label("main")
        b.addi("sp", "sp", -16)
        b.sd("ra", 8, "sp")
        b.la("a0", "worker")
        b.li("a1", 0)
        b.call("rt_thread_create")
        # don't join: exit immediately with status 9
        b.li("a0", 9)
        b.ld("ra", 8, "sp")
        b.addi("sp", "sp", 16)
        b.ret()
        b.label("worker")
        b.la("a0", "cell")
        b.li("a1", 0)
        b.li("a2", 0)
        b.li("a7", SYS.FUTEX)
        b.ecall()
        b.li("a0", 0)
        b.ret()
        b.data().align(8).label("cell").quad(0).text()
        r = Cluster(2).run(b.assemble(), **LONG)
        assert r.exit_code == 9
